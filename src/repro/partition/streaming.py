"""Streaming graph partitioning (Stanton & Kliot, MSR-TR-2011-121).

The paper (§VII) uses "the best heuristic (linear-weighted deterministic,
greedy approach) streaming partitioner from [26]" — vertices arrive one at a
time (in storage order) with their adjacency lists, and each is irrevocably
assigned to a part using only the already-assigned prefix.

We implement the family:

* :class:`StreamingBalanced` — assign to the currently smallest part.
* :class:`StreamingChunking` — contiguous chunks of the stream order.
* :class:`StreamingGreedy` — deterministic greedy
  ``argmax_i |P_i ∩ N(v)| * w(|P_i|)`` with weight ``w`` unweighted /
  linear / exponential.  ``linear`` is the paper's pick: capacity-normalized
  penalty ``w(s) = 1 - s/C`` with ``C = n / k``.

Stream order is configurable (``natural``, ``random``, ``bfs``); the paper
reads graphs from blob storage in natural order, which is our default.
"""

from __future__ import annotations

from collections import deque
from typing import Literal

import numpy as np

from ..graph.csr import CSRGraph
from .base import Partition, Partitioner

__all__ = ["StreamingGreedy", "StreamingBalanced", "StreamingChunking", "stream_order"]

Order = Literal["natural", "random", "bfs"]
Weight = Literal["unweighted", "linear", "exponential"]


def stream_order(graph: CSRGraph, order: Order, seed: int = 0) -> np.ndarray:
    """The vertex arrival order used by streaming partitioners."""
    n = graph.num_vertices
    if order == "natural":
        return np.arange(n)
    if order == "random":
        return np.random.default_rng(seed).permutation(n)
    if order == "bfs":
        seen = np.zeros(n, dtype=bool)
        out = np.empty(n, dtype=np.int64)
        pos = 0
        for root in range(n):
            if seen[root]:
                continue
            seen[root] = True
            q = deque([root])
            while q:
                v = q.popleft()
                out[pos] = v
                pos += 1
                for u in graph.neighbors(v):
                    ui = int(u)
                    if not seen[ui]:
                        seen[ui] = True
                        q.append(ui)
        return out
    raise ValueError(f"unknown stream order {order!r}")


class StreamingBalanced(Partitioner):
    """Assign each arriving vertex to the currently least-loaded part."""

    name = "Stream-Balanced"

    def __init__(self, order: Order = "natural", seed: int = 0) -> None:
        self.order = order
        self.seed = seed

    def partition(self, graph: CSRGraph, num_parts: int) -> Partition:
        if num_parts <= 0:
            raise ValueError("num_parts must be positive")
        n = graph.num_vertices
        assign = np.full(n, -1, dtype=np.int32)
        sizes = np.zeros(num_parts, dtype=np.int64)
        for v in stream_order(graph, self.order, self.seed):
            p = int(np.argmin(sizes))
            assign[v] = p
            sizes[p] += 1
        return Partition(num_parts, assign)


class StreamingChunking(Partitioner):
    """Contiguous chunks of the stream: vertex i of the stream goes to part
    ``i // ceil(n/k)``.  Exploits any locality already present in id order."""

    name = "Stream-Chunking"

    def __init__(self, order: Order = "natural", seed: int = 0) -> None:
        self.order = order
        self.seed = seed

    def partition(self, graph: CSRGraph, num_parts: int) -> Partition:
        if num_parts <= 0:
            raise ValueError("num_parts must be positive")
        n = graph.num_vertices
        assign = np.full(n, -1, dtype=np.int32)
        chunk = -(-n // num_parts) if n else 1
        for i, v in enumerate(stream_order(graph, self.order, self.seed)):
            assign[v] = min(i // chunk, num_parts - 1)
        return Partition(num_parts, assign)


class StreamingGreedy(Partitioner):
    """Weighted deterministic greedy (the paper's streaming pick).

    For arriving vertex v, scores each part i as
    ``|P_i ∩ N(v)| * w(|P_i|)`` and assigns to the argmax, breaking ties
    toward the least-loaded part (deterministic).  Weights:

    * ``unweighted``: w = 1 (degenerates to 'join most neighbors')
    * ``linear``:     w = 1 - size/C   with C = slack * n / k
    * ``exponential``: w = 1 - exp(size - C)
    """

    name = "Streaming"

    def __init__(
        self,
        weight: Weight = "linear",
        order: Order = "natural",
        slack: float = 1.1,
        seed: int = 0,
    ) -> None:
        if weight not in ("unweighted", "linear", "exponential"):
            raise ValueError(f"unknown weight {weight!r}")
        if slack < 1.0:
            raise ValueError("slack must be >= 1.0")
        self.weight = weight
        self.order = order
        self.slack = float(slack)
        self.seed = seed

    def _weights(self, sizes: np.ndarray, capacity: float) -> np.ndarray:
        if self.weight == "unweighted":
            return np.ones_like(sizes, dtype=np.float64)
        if self.weight == "linear":
            return np.maximum(0.0, 1.0 - sizes / capacity)
        # exponential
        return 1.0 - np.exp(sizes.astype(np.float64) - capacity)

    def partition(self, graph: CSRGraph, num_parts: int) -> Partition:
        if num_parts <= 0:
            raise ValueError("num_parts must be positive")
        n = graph.num_vertices
        assign = np.full(n, -1, dtype=np.int32)
        sizes = np.zeros(num_parts, dtype=np.int64)
        capacity = max(1.0, self.slack * n / num_parts)
        for v in stream_order(graph, self.order, self.seed):
            nbrs = graph.neighbors(int(v))
            placed = assign[nbrs]
            placed = placed[placed >= 0]
            counts = (
                np.bincount(placed, minlength=num_parts).astype(np.float64)
                if len(placed)
                else np.zeros(num_parts)
            )
            scores = counts * self._weights(sizes, capacity)
            # Hard capacity guard: never overflow slack * ideal.
            full = sizes >= capacity
            if full.all():
                p = int(np.argmin(sizes))
            else:
                scores[full] = -np.inf
                best = scores.max()
                cand = np.flatnonzero(scores == best)
                # deterministic tie-break: least loaded, then lowest id
                p = int(cand[np.argmin(sizes[cand])])
            assign[v] = p
            sizes[p] += 1
        return Partition(num_parts, assign)
