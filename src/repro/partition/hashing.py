"""Hash partitioning — the paper's (and Pregel's) default strategy.

A simple deterministic hash of the vertex id decides the owning worker.
Produces near-perfect balance and near-worst-case edge cut (the paper
measures 86-87% remote edges on WG/CP with 8 workers), and — crucially for
§VII — spreads any traversal frontier *evenly* over workers, which is why it
can beat METIS under BSP barriers on imbalance-prone graphs.
"""

from __future__ import annotations

import numpy as np

from ..graph.csr import CSRGraph
from .base import Partition, Partitioner

__all__ = ["HashPartitioner", "ModuloPartitioner"]

# Knuth multiplicative-hash constant (2^64 / phi), for id scrambling.
_MIX = np.uint64(0x9E3779B97F4A7C15)


def _mix64(x: np.ndarray) -> np.ndarray:
    """splitmix64-style finalizer: decorrelates vertex id from part id."""
    with np.errstate(over="ignore"):
        z = (x.astype(np.uint64) + _MIX) * np.uint64(0xBF58476D1CE4E5B9)
        z ^= z >> np.uint64(27)
        z *= np.uint64(0x94D049BB133111EB)
        z ^= z >> np.uint64(31)
    return z


class HashPartitioner(Partitioner):
    """Scrambled-hash assignment: ``part = mix64(v) mod k``."""

    name = "Hash"

    def __init__(self, salt: int = 0) -> None:
        self.salt = int(salt)

    def partition(self, graph: CSRGraph, num_parts: int) -> Partition:
        if num_parts <= 0:
            raise ValueError("num_parts must be positive")
        ids = np.arange(graph.num_vertices, dtype=np.uint64) + np.uint64(
            self.salt & 0xFFFFFFFF
        ) * np.uint64(1 << 32)
        hashed = _mix64(ids)
        return Partition(num_parts, (hashed % np.uint64(num_parts)).astype(np.int32))


class ModuloPartitioner(Partitioner):
    """Plain ``v mod k`` — the naivest possible hash; useful as a foil in
    tests because consecutive ids land on different workers."""

    name = "Modulo"

    def partition(self, graph: CSRGraph, num_parts: int) -> Partition:
        if num_parts <= 0:
            raise ValueError("num_parts must be positive")
        return Partition(
            num_parts,
            (np.arange(graph.num_vertices) % num_parts).astype(np.int32),
        )
