"""Spectral partitioning via recursive Fiedler bisection.

The classical offline alternative to multilevel partitioning: split on the
sign/median of the graph Laplacian's second eigenvector (the Fiedler
vector), recursing until ``num_parts`` parts exist.  Included as a second
in-place strategy so the §VII analysis isn't tied to one min-cut
implementation; on community-structured graphs it finds cuts comparable to
the multilevel partitioner's at small scales (it is O(n^3)-ish dense
eigensolving, so it is guarded to modest graphs).
"""

from __future__ import annotations

import numpy as np

from ..graph.csr import CSRGraph
from .base import Partition, Partitioner

__all__ = ["SpectralPartitioner"]


class SpectralPartitioner(Partitioner):
    """Recursive Fiedler-vector bisection (dense eigensolver).

    ``num_parts`` need not be a power of two: each bisection splits the
    part's quota proportionally.  Refuses graphs beyond ``max_vertices``
    (dense eigendecomposition cost).
    """

    name = "Spectral"

    def __init__(self, max_vertices: int = 4000, seed: int = 0) -> None:
        if max_vertices < 2:
            raise ValueError("max_vertices must be >= 2")
        self.max_vertices = int(max_vertices)
        self.seed = seed

    # ------------------------------------------------------------------
    def _fiedler_split(self, graph: CSRGraph, vertices: np.ndarray, left_quota: int):
        """Split ``vertices`` into (left, right) with |left| = left_quota."""
        sub = {int(v): i for i, v in enumerate(vertices)}
        n = len(vertices)
        lap = np.zeros((n, n))
        for i, v in enumerate(vertices):
            for u in graph.neighbors(int(v)):
                j = sub.get(int(u))
                if j is not None and j != i:
                    lap[i, j] -= 1.0
                    lap[i, i] += 1.0
        # Second-smallest eigenvector of the (symmetric) Laplacian.
        vals, vecs = np.linalg.eigh(lap)
        fiedler = vecs[:, 1] if n > 1 else np.zeros(1)
        # Quota split at the sorted order (deterministic; ties by id).
        order = np.lexsort((vertices, fiedler))
        left = vertices[order[:left_quota]]
        right = vertices[order[left_quota:]]
        return self._kl_refine(graph, left, right)

    def _kl_refine(
        self, graph: CSRGraph, left: np.ndarray, right: np.ndarray,
        max_swaps: int | None = None,
    ):
        """Kernighan–Lin-style pair swaps: fixes the mixing a single Fiedler
        vector leaves when two clusters overlap at the quota boundary."""
        left_set = set(int(v) for v in left)
        right_set = set(int(v) for v in right)
        both = left_set | right_set
        if max_swaps is None:
            max_swaps = max(4, len(both) // 4)

        def gain(v: int, own: set, other: set) -> int:
            g = 0
            for u in graph.neighbors(v):
                ui = int(u)
                if ui in other:
                    g += 1
                elif ui in own:
                    g -= 1
            return g

        for _ in range(max_swaps):
            lg = sorted(
                ((gain(v, left_set, right_set), -v, v) for v in left_set),
                reverse=True,
            )[:12]
            rg = sorted(
                ((gain(v, right_set, left_set), -v, v) for v in right_set),
                reverse=True,
            )[:12]
            best = None
            for glv, _, lv in lg:
                nbrs_lv = set(int(u) for u in graph.neighbors(lv))
                for grv, _, rv in rg:
                    total = glv + grv - (2 if rv in nbrs_lv else 0)
                    if total > 0 and (best is None or total > best[0]):
                        best = (total, lv, rv)
            if best is None:
                break
            _, lv, rv = best
            left_set.remove(lv)
            left_set.add(rv)
            right_set.remove(rv)
            right_set.add(lv)
        return (
            np.array(sorted(left_set), dtype=left.dtype),
            np.array(sorted(right_set), dtype=right.dtype),
        )

    def partition(self, graph: CSRGraph, num_parts: int) -> Partition:
        if num_parts <= 0:
            raise ValueError("num_parts must be positive")
        n = graph.num_vertices
        if n > self.max_vertices:
            raise ValueError(
                f"graph has {n} vertices; SpectralPartitioner is dense and "
                f"capped at {self.max_vertices} (use MultilevelPartitioner)"
            )
        sym = graph if graph.undirected else graph.as_undirected()
        assign = np.zeros(n, dtype=np.int32)
        if num_parts == 1 or n == 0:
            return Partition(num_parts, assign)

        # Work queue of (vertex set, part-id range).
        next_part = 0
        queue: list[tuple[np.ndarray, int]] = [(np.arange(n), num_parts)]
        while queue:
            vertices, parts = queue.pop()
            if parts == 1:
                assign[vertices] = next_part
                next_part += 1
                continue
            left_parts = parts // 2
            right_parts = parts - left_parts
            left_quota = int(round(len(vertices) * left_parts / parts))
            left_quota = min(max(left_quota, left_parts), len(vertices) - right_parts)
            left, right = self._fiedler_split(sym, vertices, left_quota)
            queue.append((left, left_parts))
            queue.append((right, right_parts))
        return Partition(num_parts, assign)
