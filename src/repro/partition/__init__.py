"""Partitioning substrate: hash (default), METIS stand-in, streaming."""

from .base import Partition, Partitioner
from .hashing import HashPartitioner, ModuloPartitioner
from .metis import MultilevelPartitioner
from .streaming import StreamingBalanced, StreamingChunking, StreamingGreedy
from .advisor import Advice, PartitioningAdvisor
from .fennel import FennelPartitioner
from .spectral import SpectralPartitioner

# NOTE: repro.partition.dynamic (the GPS-style runtime re-partitioning
# engine) is intentionally NOT re-exported here: it builds on the BSP
# engine, and importing it at package level would cycle bsp -> job ->
# partition -> bsp.  Use `from repro.partition.dynamic import ...`.
from .metrics import (
    PartitionReport,
    balance,
    edge_cut,
    evaluate,
    part_degrees,
    remote_edge_fraction,
)

__all__ = [
    "Partition",
    "Partitioner",
    "HashPartitioner",
    "ModuloPartitioner",
    "MultilevelPartitioner",
    "StreamingBalanced",
    "StreamingChunking",
    "StreamingGreedy",
    "Advice",
    "FennelPartitioner",
    "SpectralPartitioner",
    "PartitioningAdvisor",
    "PartitionReport",
    "balance",
    "edge_cut",
    "evaluate",
    "part_degrees",
    "remote_edge_fraction",
]
