"""Fennel streaming partitioner (Tsourakakis et al., WSDM 2014).

The successor to the Stanton–Kliot heuristics the paper evaluates: instead
of a hard capacity with a linear multiplicative penalty, Fennel assigns the
arriving vertex to the part maximizing

``|N(v) ∩ P_i|  -  alpha * gamma * |P_i|^(gamma-1)``

— an *additive* degree-of-freedom between edge locality and balance derived
from interpolating modularity-style objectives.  With the authors'
recommended ``gamma = 1.5`` and ``alpha = sqrt(k) * m / n^1.5``, Fennel
matches or beats LDG's cut at comparable balance; having both lets the
streaming benches compare generations of heuristics.
"""

from __future__ import annotations

import numpy as np

from ..graph.csr import CSRGraph
from .base import Partition, Partitioner
from .streaming import Order, stream_order

__all__ = ["FennelPartitioner"]


class FennelPartitioner(Partitioner):
    """One-pass Fennel with the paper-recommended parameterization.

    Parameters
    ----------
    gamma:
        Balance-cost exponent (> 1); 1.5 is the authors' default.
    alpha:
        Balance-cost weight; ``None`` derives the recommended
        ``sqrt(k) * m / n**1.5`` per graph.
    slack:
        Hard balance guard: no part grows past ``slack * n / k`` (the
        additive penalty alone can drift on adversarial orders).
    order, seed:
        Stream order (see :func:`repro.partition.streaming.stream_order`).
    """

    name = "Fennel"

    def __init__(
        self,
        gamma: float = 1.5,
        alpha: float | None = None,
        slack: float = 1.1,
        order: Order = "natural",
        seed: int = 0,
    ) -> None:
        if gamma <= 1.0:
            raise ValueError("gamma must be > 1")
        if alpha is not None and alpha <= 0:
            raise ValueError("alpha must be positive")
        if slack < 1.0:
            raise ValueError("slack must be >= 1.0")
        self.gamma = float(gamma)
        self.alpha = alpha
        self.slack = float(slack)
        self.order = order
        self.seed = seed

    def _alpha_for(self, graph: CSRGraph, num_parts: int) -> float:
        if self.alpha is not None:
            return self.alpha
        n = max(graph.num_vertices, 1)
        m = max(graph.num_edges, 1)
        return float(np.sqrt(num_parts) * m / n**1.5)

    def partition(self, graph: CSRGraph, num_parts: int) -> Partition:
        if num_parts <= 0:
            raise ValueError("num_parts must be positive")
        n = graph.num_vertices
        assign = np.full(n, -1, dtype=np.int32)
        sizes = np.zeros(num_parts, dtype=np.float64)
        alpha = self._alpha_for(graph, num_parts)
        gamma = self.gamma
        capacity = max(1.0, self.slack * n / num_parts)
        for v in stream_order(graph, self.order, self.seed):
            nbrs = graph.neighbors(int(v))
            placed = assign[nbrs]
            placed = placed[placed >= 0]
            locality = (
                np.bincount(placed, minlength=num_parts).astype(np.float64)
                if len(placed)
                else np.zeros(num_parts)
            )
            penalty = alpha * gamma * np.power(sizes, gamma - 1.0)
            scores = locality - penalty
            full = sizes >= capacity
            if full.all():
                p = int(np.argmin(sizes))
            else:
                scores[full] = -np.inf
                best = scores.max()
                cand = np.flatnonzero(scores == best)
                p = int(cand[np.argmin(sizes[cand])])
            assign[v] = p
            sizes[p] += 1.0
        return Partition(num_parts, assign)
