"""Partitioning advisor — the paper's future work, implemented.

§IX: "Our work uncovered an unexpected impact of partitioning and it would
be worthwhile, in future, to examine the ability to predict, given certain
graph properties, a suitable partitioning model for Pregel/BSP."

The §VII mechanism is *frontier concentration*: min-cut partitions align
with communities, so a BFS wave occupies few partitions at a time; under
BSP's barrier the busiest worker sets the pace and the edge-cut saving is
cancelled.  The advisor measures exactly that:

1. partition the graph with the candidate min-cut strategy;
2. run a handful of sampled BFS waves (pure graph ops — no engine);
3. for each BFS level, compute the *concentration* of frontier-adjacent
   message load across partitions (normalized max/mean, weighted by level
   size);
4. compare the measured :class:`Advice` ratio — predicted barrier-limited
   superstep cost under min-cut vs under hashing — and recommend.

The predicted ratio folds the two §VII forces together:

``cost(strategy) ∝ concentration(strategy) * (local + remote_factor * cut(strategy))``

where ``remote_factor`` is the relative price of a remote message (from
:class:`~repro.cloud.costmodel.PerfModel` or supplied directly).  Tests
verify the advisor recommends min-cut for the WG analogue and hashing for
the CP analogue — reproducing Fig. 8's verdicts from structure alone, with
no engine runs.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..graph.csr import CSRGraph
from ..graph.properties import bfs_levels
from .base import Partition, Partitioner
from .hashing import HashPartitioner
from .metis import MultilevelPartitioner
from .metrics import remote_edge_fraction

__all__ = ["Advice", "PartitioningAdvisor", "repartition_hint"]


#: straggler cause -> advisor hint template (None = partitioning won't help)
_HINTS = {
    "remote-traffic": (
        "stragglers are communication-bound: consider a min-cut "
        "partitioning (PartitioningAdvisor.advise) to cut remote-edge "
        "traffic"
    ),
    "degree-skew": (
        "stragglers host a disproportionate share of out-degree: consider "
        "a degree-balanced partitioning or smaller swaths"
    ),
    "memory-pressure": (
        "stragglers are spilling: lower the swath size or add workers "
        "before changing the partitioning"
    ),
    "jitter": (
        "stragglers look environmental (multi-tenant jitter): "
        "repartitioning will not help; consider speculative retry or "
        "elastic replacement"
    ),
}


def repartition_hint(flags, num_steps: int, min_flag_fraction: float = 0.1):
    """Advisor hint from a run's straggler flags, or None.

    ``flags`` are :class:`repro.obs.diagnose.StragglerFlag`-shaped (only
    ``cause`` is read); ``num_steps`` is the supersteps the run executed —
    a handful of flagged steps out of thousands is noise, so no hint is
    issued below ``min_flag_fraction`` of steps flagged.  The mapping
    encodes §VII's causal chain: partitioning can cure traffic and degree
    imbalance, but not environmental jitter.
    """
    if num_steps <= 0 or len(flags) < max(1, min_flag_fraction * num_steps):
        return None
    counts: dict[str, int] = {}
    for f in flags:
        counts[f.cause] = counts.get(f.cause, 0) + 1
    cause = max(counts, key=lambda c: (counts[c], c))
    return _HINTS.get(cause)


@dataclass(frozen=True)
class Advice:
    """The advisor's verdict and the evidence behind it."""

    recommendation: str  # "min-cut" or "hash"
    predicted_ratio: float  # predicted time(min-cut) / time(hash); <1 = min-cut wins
    concentration_mincut: float
    concentration_hash: float
    remote_fraction_mincut: float
    remote_fraction_hash: float

    def summary(self) -> str:
        return (
            f"recommend {self.recommendation} "
            f"(predicted min-cut/hash time ratio {self.predicted_ratio:.2f}; "
            f"frontier concentration {self.concentration_mincut:.2f} vs "
            f"{self.concentration_hash:.2f}; remote edges "
            f"{self.remote_fraction_mincut:.0%} vs "
            f"{self.remote_fraction_hash:.0%})"
        )


class PartitioningAdvisor:
    """Predicts whether min-cut partitioning beats hashing under BSP.

    Parameters
    ----------
    remote_factor:
        Cost of a remote message relative to a local one (serialization +
        network vs in-memory append).  The scaled cost model's ratio is
        ~2.6; pass your own if your deployment differs.
    num_probes:
        Number of sampled BFS waves used to estimate frontier concentration.
    seed:
        Seeds probe-root sampling and the trial min-cut partitioner.
    """

    def __init__(
        self,
        remote_factor: float = 2.6,
        num_probes: int = 8,
        seed: int = 0,
        mincut_partitioner: Partitioner | None = None,
        threshold: float = 0.85,
    ) -> None:
        if remote_factor <= 0:
            raise ValueError("remote_factor must be positive")
        if num_probes < 1:
            raise ValueError("num_probes must be >= 1")
        if not 0 < threshold <= 1.0:
            raise ValueError("threshold must be in (0, 1]")
        self.remote_factor = float(remote_factor)
        self.num_probes = int(num_probes)
        self.seed = seed
        self.mincut_partitioner = mincut_partitioner or MultilevelPartitioner(
            seed=seed, imbalance=1.15, refine_passes=12
        )
        # Min-cut must be predicted at least this much faster to be worth
        # recommending: it costs an offline partitioning pass, and §VII
        # shows the imbalance downside materializes exactly in borderline
        # cases — hashing is the safe zero-preprocessing default.
        self.threshold = float(threshold)

    # ------------------------------------------------------------------
    def frontier_concentration(
        self, graph: CSRGraph, partition: Partition
    ) -> float:
        """Mean normalized max/mean of per-partition frontier message load.

        For each probe BFS and each level, the message load a partition
        hosts is the total out-degree of its frontier vertices (each
        frontier vertex sends along every edge).  1.0 = perfectly even;
        ``num_parts`` = one partition does all the work.
        """
        rng = np.random.default_rng(self.seed)
        n = graph.num_vertices
        k = partition.num_parts
        degrees = graph.out_degrees().astype(np.float64)
        roots = rng.choice(n, size=min(self.num_probes, n), replace=False)
        scores: list[float] = []
        weights: list[float] = []
        for root in roots:
            dist = bfs_levels(graph, int(root))
            max_d = int(dist.max())
            for level in range(max_d + 1):
                frontier = np.flatnonzero(dist == level)
                load = np.zeros(k)
                np.add.at(load, partition.assignment[frontier], degrees[frontier])
                total = load.sum()
                if total <= 0:
                    continue
                scores.append(float(load.max() / (total / k)))
                weights.append(total)
        if not scores:
            return 1.0
        return float(np.average(scores, weights=weights))

    def predicted_cost(self, concentration: float, remote_frac: float) -> float:
        """Barrier-limited per-superstep cost, up to a constant factor."""
        per_message = 1.0 + self.remote_factor * remote_frac
        return concentration * per_message

    # ------------------------------------------------------------------
    def advise(self, graph: CSRGraph, num_parts: int) -> Advice:
        """Measure both strategies' indicators and recommend one."""
        if num_parts < 2:
            raise ValueError("advising needs num_parts >= 2")
        mincut = self.mincut_partitioner.partition(graph, num_parts)
        hashed = HashPartitioner().partition(graph, num_parts)
        conc_m = self.frontier_concentration(graph, mincut)
        conc_h = self.frontier_concentration(graph, hashed)
        rf_m = remote_edge_fraction(graph, mincut)
        rf_h = remote_edge_fraction(graph, hashed)
        ratio = self.predicted_cost(conc_m, rf_m) / self.predicted_cost(conc_h, rf_h)
        return Advice(
            recommendation="min-cut" if ratio < self.threshold else "hash",
            predicted_ratio=ratio,
            concentration_mincut=conc_m,
            concentration_hash=conc_h,
            remote_fraction_mincut=rf_m,
            remote_fraction_hash=rf_h,
        )
