"""Runtime dynamic re-partitioning — the GPS feature the paper contrasts.

§II: GPS "explores partitioning effects on BSP performance while
introducing certain dynamic re-partitioning approaches."  This module
implements the idea on our engine: while a job runs, periodically migrate
the most *misplaced* vertices (those with the largest majority of neighbors
on another worker) toward their neighborhoods, under a balance guard — an
online, incremental version of min-cut refinement that needs no offline
partitioning pass.

The mechanics reuse the live-elastic migration path (export/import of
state, pending messages and mutation overlays), so correctness is
preserved by construction; the engine charges migration time per vertex
moved.  Tests assert results are bit-equal to static runs and that the
remote-message fraction falls over time; the bench compares it against
static hash and offline METIS on the paper's graphs.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..bsp.engine import BSPEngine
from ..bsp.job import JobSpec
from ..bsp.superstep import SuperstepStats
from ..bsp.worker import PartitionWorker
from .base import Partition

__all__ = ["MigrationEvent", "DynamicRepartitioningEngine", "run_repartitioned"]


@dataclass(frozen=True)
class MigrationEvent:
    """One re-partitioning round."""

    superstep: int
    vertices_moved: int
    remote_fraction_before: float
    remote_fraction_after: float
    overhead_seconds: float


class DynamicRepartitioningEngine(BSPEngine):
    """BSP engine that migrates misplaced vertices every ``interval`` steps.

    Parameters
    ----------
    interval:
        Superstep period between migration rounds.
    batch_fraction:
        At most this fraction of vertices moves per round (migration has a
        per-vertex cost; GPS likewise bounds churn).
    min_gain:
        A vertex moves only when its destination hosts at least this many
        more of its neighbors than its current worker.
    slack:
        Balance guard: no worker may grow past ``slack * n / k`` vertices.
    """

    def __init__(
        self,
        job: JobSpec,
        interval: int = 4,
        batch_fraction: float = 0.05,
        min_gain: int = 1,
        slack: float = 1.15,
    ) -> None:
        if job.failure_schedule:
            raise ValueError(
                "dynamic re-partitioning cannot be combined with failure "
                "injection"
            )
        if interval < 1:
            raise ValueError("interval must be >= 1")
        if not 0 < batch_fraction <= 1:
            raise ValueError("batch_fraction must be in (0, 1]")
        if min_gain < 1:
            raise ValueError("min_gain must be >= 1")
        if slack < 1.0:
            raise ValueError("slack must be >= 1.0")
        super().__init__(job)
        self.interval = interval
        self.batch_fraction = batch_fraction
        self.min_gain = min_gain
        self.slack = slack
        self.migrations: list[MigrationEvent] = []

    # ------------------------------------------------------------------
    def _remote_fraction(self, assignment: np.ndarray) -> float:
        g = self.graph
        if g.num_arcs == 0:
            return 0.0
        src_parts = np.repeat(assignment, np.diff(g.indptr))
        dst_parts = assignment[g.indices]
        return float(np.count_nonzero(src_parts != dst_parts) / g.num_arcs)

    def _plan_moves(self) -> list[tuple[int, int]]:
        """Pick (vertex, destination) moves: largest neighbor-majority gain
        first, respecting the balance guard."""
        g = self.graph
        assignment = self.partition.assignment
        k = self.num_workers
        sizes = np.bincount(assignment, minlength=k).astype(np.int64)
        capacity = self.slack * g.num_vertices / k
        budget = max(1, int(self.batch_fraction * g.num_vertices))

        candidates: list[tuple[int, int, int]] = []  # (-gain, vertex, dest)
        for v in range(g.num_vertices):
            nbrs = g.neighbors(v)
            if len(nbrs) == 0:
                continue
            counts = np.bincount(assignment[nbrs], minlength=k)
            here = int(assignment[v])
            best = int(np.argmax(counts))
            gain = int(counts[best]) - int(counts[here])
            if best != here and gain >= self.min_gain:
                candidates.append((-gain, v, best))
        candidates.sort()

        moves: list[tuple[int, int]] = []
        for _, v, dest in candidates:
            if len(moves) >= budget:
                break
            here = int(assignment[v])
            if sizes[dest] + 1 > capacity:
                continue
            moves.append((v, dest))
            sizes[here] -= 1
            sizes[dest] += 1
        return moves

    def _apply_moves(self, moves: list[tuple[int, int]]) -> None:
        assignment = self.partition.assignment.copy()
        for v, dest in moves:
            src_worker = self.workers[int(assignment[v])]
            src_worker._apply_mutations()
            state, halted, pending, overlay = src_worker.export_vertex(v)
            self.workers[dest].import_vertex(v, state, halted, pending, overlay)
            assignment[v] = dest
        new_partition = Partition(self.num_workers, assignment)
        self.partition = new_partition
        for w in self.workers:
            w.assignment = new_partition.assignment
            w.vertex_ids = np.array(sorted(w.states.keys()), dtype=np.int64)
            w.refresh_partition_footprint()

    # ------------------------------------------------------------------
    def _post_superstep(self, stats: SuperstepStats) -> None:
        if (self.superstep + 1) % self.interval != 0:
            return
        before = self._remote_fraction(self.partition.assignment)
        moves = self._plan_moves()
        if not moves:
            return
        self._apply_moves(moves)
        after = self._remote_fraction(self.partition.assignment)
        overhead = self.model.migrate_per_vertex * len(moves)
        self.sim_time += overhead
        stats.elapsed += overhead
        stats.sim_time_end = self.sim_time
        self.meter.charge(
            self.vm_spec, self.num_workers, overhead,
            label=f"repartition@{self.superstep}",
        )
        self.migrations.append(
            MigrationEvent(
                superstep=self.superstep,
                vertices_moved=len(moves),
                remote_fraction_before=before,
                remote_fraction_after=after,
                overhead_seconds=overhead,
            )
        )

    @property
    def total_moved(self) -> int:
        return sum(m.vertices_moved for m in self.migrations)


def run_repartitioned(job: JobSpec, **kwargs):
    """Convenience wrapper mirroring :func:`repro.bsp.engine.run_job`."""
    return DynamicRepartitioningEngine(job, **kwargs).run()
