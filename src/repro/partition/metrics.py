"""Partition quality metrics used throughout the paper's §VII analysis.

The paper reports *percentage of remote edges* (87% / 18% / 35% on WG for
Hash / METIS / Streaming) and implicitly relies on *balance* (vertex and
message load per worker).  All metrics here are vectorized over the CSR
arrays.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..graph.csr import CSRGraph
from .base import Partition

__all__ = [
    "edge_cut",
    "remote_edge_fraction",
    "balance",
    "part_degrees",
    "PartitionReport",
    "evaluate",
]


def _arc_parts(graph: CSRGraph, partition: Partition):
    src_parts = np.repeat(
        partition.assignment, np.diff(graph.indptr)
    )
    dst_parts = partition.assignment[graph.indices]
    return src_parts, dst_parts


def edge_cut(graph: CSRGraph, partition: Partition) -> int:
    """Number of logical edges whose endpoints lie in different parts."""
    src_parts, dst_parts = _arc_parts(graph, partition)
    cut_arcs = int(np.count_nonzero(src_parts != dst_parts))
    return cut_arcs // 2 if graph.undirected else cut_arcs


def remote_edge_fraction(graph: CSRGraph, partition: Partition) -> float:
    """Fraction of arcs crossing parts — the paper's 'percentage of remote
    edges'.  1.0 means every message goes over the network."""
    if graph.num_arcs == 0:
        return 0.0
    src_parts, dst_parts = _arc_parts(graph, partition)
    return float(np.count_nonzero(src_parts != dst_parts) / graph.num_arcs)


def balance(graph: CSRGraph, partition: Partition) -> float:
    """Load-balance ratio: ``max part size / ideal part size`` (>= 1.0)."""
    sizes = partition.sizes()
    if graph.num_vertices == 0:
        return 1.0
    ideal = graph.num_vertices / partition.num_parts
    return float(sizes.max() / ideal)


def part_degrees(graph: CSRGraph, partition: Partition) -> np.ndarray:
    """Total out-degree (≈ message volume) hosted by each part."""
    deg = graph.out_degrees()
    return np.bincount(
        partition.assignment, weights=deg, minlength=partition.num_parts
    ).astype(np.int64)


@dataclass(frozen=True)
class PartitionReport:
    """One row of a §VII-style partitioning comparison."""

    strategy: str
    num_parts: int
    edge_cut: int
    remote_fraction: float
    balance: float

    def row(self) -> str:
        return (
            f"{self.strategy:<12s} parts={self.num_parts:<3d} "
            f"cut={self.edge_cut:<8d} remote={self.remote_fraction:6.1%} "
            f"balance={self.balance:5.2f}"
        )


def evaluate(
    graph: CSRGraph, partition: Partition, strategy: str = ""
) -> PartitionReport:
    """Compute the full quality report for a partition."""
    return PartitionReport(
        strategy=strategy or "?",
        num_parts=partition.num_parts,
        edge_cut=edge_cut(graph, partition),
        remote_fraction=remote_edge_fraction(graph, partition),
        balance=balance(graph, partition),
    )
