"""Partitioner interface and the Partition assignment object.

A :class:`Partition` maps every vertex to a worker id ``0..k-1``.  The BSP
engine consumes it to decide message locality (local in-memory delivery vs
remote network transfer), exactly as Pregel.NET's workers do when loading
their share of the graph file from blob storage.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass

import numpy as np

from ..graph.csr import CSRGraph

__all__ = ["Partition", "Partitioner"]


@dataclass(frozen=True)
class Partition:
    """Assignment of vertices to ``num_parts`` workers.

    ``assignment[v]`` is the worker id owning vertex ``v``.
    """

    num_parts: int
    assignment: np.ndarray

    def __post_init__(self) -> None:
        arr = np.asarray(self.assignment, dtype=np.int32)
        object.__setattr__(self, "assignment", arr)
        if self.num_parts <= 0:
            raise ValueError("num_parts must be positive")
        if arr.ndim != 1:
            raise ValueError("assignment must be 1-D")
        if len(arr) and (arr.min() < 0 or arr.max() >= self.num_parts):
            raise ValueError("assignment contains out-of-range part ids")

    @property
    def num_vertices(self) -> int:
        return int(len(self.assignment))

    def part_of(self, v: int) -> int:
        return int(self.assignment[v])

    def vertices_of(self, part: int) -> np.ndarray:
        """Vertex ids owned by ``part`` (ascending)."""
        if not 0 <= part < self.num_parts:
            raise ValueError(f"part {part} out of range")
        return np.flatnonzero(self.assignment == part)

    def sizes(self) -> np.ndarray:
        """Vertex count per part."""
        return np.bincount(self.assignment, minlength=self.num_parts)

    def renumbered(self, perm: np.ndarray) -> "Partition":
        """Partition for a graph whose vertices were permuted by ``perm``
        (``perm[new_id] = old_id``)."""
        return Partition(self.num_parts, self.assignment[perm])


class Partitioner(ABC):
    """Strategy object producing a :class:`Partition` for a graph."""

    #: short name used in reports (e.g. "Hash", "METIS", "Streaming").
    name: str = "base"

    @abstractmethod
    def partition(self, graph: CSRGraph, num_parts: int) -> Partition:
        """Partition ``graph`` into ``num_parts`` parts."""

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}()"
