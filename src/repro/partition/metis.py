"""Multilevel k-way partitioner — from-scratch METIS stand-in.

The paper uses METIS [27] as the best-in-class in-place partitioner ("low
edge cut for both graphs": 18% remote edges on WG, 17% on CP vs 86-87% for
hashing).  We implement the same three-phase multilevel scheme METIS
popularized:

1. **Coarsening** — repeated heavy-edge matching: vertices are matched to
   the neighbor with the heaviest connecting edge; matched pairs collapse
   into a single coarse vertex, accumulating vertex and edge weights.
2. **Initial partitioning** — greedy BFS region growing on the coarsest
   graph: grow ``k`` regions from spread-out seeds until each reaches its
   weight target.
3. **Uncoarsening + refinement** — project the partition back level by
   level, each time running boundary refinement (Fiduccia–Mattheyses-style
   greedy gain moves under a balance constraint).

The result is deterministic for a fixed seed.  It is not METIS-fast, but on
our scaled dataset analogues it reproduces the paper's qualitative gap: an
order-of-magnitude lower remote-edge fraction than hashing, with near-ideal
balance (tests assert both).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..graph.csr import CSRGraph
from .base import Partition, Partitioner

__all__ = ["MultilevelPartitioner"]


@dataclass
class _WGraph:
    """Internal weighted CSR used during coarsening."""

    indptr: np.ndarray
    indices: np.ndarray
    eweights: np.ndarray
    vweights: np.ndarray

    @property
    def n(self) -> int:
        return len(self.vweights)

    @classmethod
    def from_csr(cls, g: CSRGraph, vertex_weight: str = "unit") -> "_WGraph":
        if vertex_weight == "unit":
            vw = np.ones(g.num_vertices, dtype=np.int64)
        elif vertex_weight == "degree":
            # Balance on (degree + 1): per-worker *message* load is what the
            # BSP barrier exposes, and on small analogue graphs vertex-count
            # balance does not self-average into degree balance.
            vw = np.diff(g.indptr).astype(np.int64) + 1
        else:
            raise ValueError("vertex_weight must be 'unit' or 'degree'")
        return cls(
            indptr=g.indptr.astype(np.int64),
            indices=g.indices.astype(np.int64),
            eweights=np.ones(g.num_arcs, dtype=np.int64),
            vweights=vw,
        )

    def neighbors(self, v: int):
        s, e = self.indptr[v], self.indptr[v + 1]
        return self.indices[s:e], self.eweights[s:e]


def _heavy_edge_matching(g: _WGraph, rng: np.random.Generator) -> np.ndarray:
    """Match each vertex to at most one neighbor, preferring heavy edges.

    Returns ``match`` where ``match[v]`` is v's partner (or v itself).
    Visit order is randomized (seeded) so star centers don't always match the
    same leaf across levels.
    """
    n = g.n
    match = np.full(n, -1, dtype=np.int64)
    order = rng.permutation(n)
    for v in order:
        if match[v] >= 0:
            continue
        nbrs, wts = g.neighbors(int(v))
        best, best_w = -1, -1
        for u, w in zip(nbrs, wts):
            ui = int(u)
            if ui != v and match[ui] < 0 and w > best_w:
                best, best_w = ui, int(w)
        if best >= 0:
            match[v] = best
            match[best] = v
        else:
            match[v] = v
    return match


def _coarsen(g: _WGraph, match: np.ndarray) -> tuple[_WGraph, np.ndarray]:
    """Collapse matched pairs; returns (coarse graph, fine->coarse map)."""
    n = g.n
    cmap = np.full(n, -1, dtype=np.int64)
    nxt = 0
    for v in range(n):
        if cmap[v] >= 0:
            continue
        u = int(match[v])
        cmap[v] = nxt
        if u != v:
            cmap[u] = nxt
        nxt += 1
    cn = nxt
    # Coarse vertex weights.
    cvw = np.zeros(cn, dtype=np.int64)
    np.add.at(cvw, cmap, g.vweights)
    # Coarse edges: map endpoints, drop collapsed self-loops, merge parallels.
    src = np.repeat(np.arange(n), np.diff(g.indptr))
    csrc, cdst = cmap[src], cmap[g.indices]
    keep = csrc != cdst
    csrc, cdst, cw = csrc[keep], cdst[keep], g.eweights[keep]
    if len(csrc):
        key = csrc * cn + cdst
        order = np.argsort(key, kind="stable")
        key, csrc, cdst, cw = key[order], csrc[order], cdst[order], cw[order]
        boundary = np.empty(len(key), dtype=bool)
        boundary[0] = True
        np.not_equal(key[1:], key[:-1], out=boundary[1:])
        group = np.cumsum(boundary) - 1
        merged_w = np.zeros(group[-1] + 1, dtype=np.int64)
        np.add.at(merged_w, group, cw)
        csrc, cdst, cw = csrc[boundary], cdst[boundary], merged_w
    counts = np.bincount(csrc, minlength=cn) if len(csrc) else np.zeros(cn, dtype=np.int64)
    indptr = np.zeros(cn + 1, dtype=np.int64)
    np.cumsum(counts, out=indptr[1:])
    return _WGraph(indptr, cdst.copy(), cw.copy(), cvw), cmap


def _initial_partition(
    g: _WGraph, num_parts: int, rng: np.random.Generator
) -> np.ndarray:
    """Greedy BFS region growing on the coarsest graph."""
    n = g.n
    total = int(g.vweights.sum())
    target = total / num_parts
    assign = np.full(n, -1, dtype=np.int32)
    loads = np.zeros(num_parts, dtype=np.int64)
    order = rng.permutation(n)
    cursor = 0

    def next_seed() -> int:
        nonlocal cursor
        while cursor < n and assign[order[cursor]] >= 0:
            cursor += 1
        return int(order[cursor]) if cursor < n else -1

    for p in range(num_parts):
        seed = next_seed()
        if seed < 0:
            break
        frontier = [seed]
        assign[seed] = p
        loads[p] += g.vweights[seed]
        while frontier and loads[p] < target:
            v = frontier.pop(0)
            nbrs, _ = g.neighbors(v)
            for u in nbrs:
                ui = int(u)
                if assign[ui] < 0 and loads[p] < target:
                    assign[ui] = p
                    loads[p] += g.vweights[ui]
                    frontier.append(ui)
    # Any stragglers (disconnected remainder) go to the lightest part.
    for v in range(n):
        if assign[v] < 0:
            p = int(np.argmin(loads))
            assign[v] = p
            loads[p] += g.vweights[v]
    return assign


def _refine(
    g: _WGraph,
    assign: np.ndarray,
    num_parts: int,
    imbalance: float,
    passes: int,
) -> np.ndarray:
    """FM-style greedy boundary refinement.

    Each pass visits boundary vertices in order of best gain and applies a
    move when it strictly reduces the cut without violating
    ``max_load <= imbalance * ideal``.
    """
    n = g.n
    loads = np.zeros(num_parts, dtype=np.int64)
    np.add.at(loads, assign, g.vweights)
    total = int(g.vweights.sum())
    max_load = imbalance * total / num_parts

    for _ in range(passes):
        moved = 0
        for v in range(n):
            nbrs, wts = g.neighbors(v)
            if len(nbrs) == 0:
                continue
            my = assign[v]
            # Connectivity of v to each part.
            conn = np.zeros(num_parts, dtype=np.int64)
            np.add.at(conn, assign[nbrs], wts)
            internal = conn[my]
            conn[my] = -1
            best_p = int(np.argmax(conn))
            gain = int(conn[best_p]) - int(internal)
            if gain <= 0:
                continue
            if loads[best_p] + g.vweights[v] > max_load:
                continue
            if loads[my] - g.vweights[v] < 0:
                continue
            assign[v] = best_p
            loads[my] -= g.vweights[v]
            loads[best_p] += g.vweights[v]
            moved += 1
        if moved == 0:
            break
    return assign


def _rebalance(
    g: _WGraph,
    assign: np.ndarray,
    num_parts: int,
    imbalance: float,
) -> np.ndarray:
    """Force-move vertices out of overloaded parts (least cut damage first).

    Region growing on a lumpy coarse graph can leave parts well over the
    balance target; plain FM never empties an overloaded part because those
    moves have negative gain.  This pass restores ``max_load <= imbalance *
    ideal`` by evicting the cheapest boundary vertices.
    """
    n = g.n
    loads = np.zeros(num_parts, dtype=np.int64)
    np.add.at(loads, assign, g.vweights)
    total = int(g.vweights.sum())
    max_load = imbalance * total / num_parts

    for _ in range(4 * num_parts):  # bounded; each round fixes one part
        heavy = int(np.argmax(loads))
        if loads[heavy] <= max_load:
            break
        members = np.flatnonzero(assign == heavy)
        # Rank members by (gain of best move), move best ones until balanced.
        candidates: list[tuple[int, int, int]] = []  # (-gain, v, dest)
        for v in members:
            nbrs, wts = g.neighbors(int(v))
            conn = np.zeros(num_parts, dtype=np.int64)
            if len(nbrs):
                np.add.at(conn, assign[nbrs], wts)
            internal = int(conn[heavy])
            conn[heavy] = np.iinfo(np.int64).min
            # Prefer least-loaded among the best-connected destinations.
            best = int(conn.max())
            dests = np.flatnonzero(conn == best)
            dest = int(dests[np.argmin(loads[dests])])
            candidates.append((internal - best, int(v), dest))
        candidates.sort()
        progressed = False
        for _, v, dest in candidates:
            if loads[heavy] <= max_load:
                break
            if loads[dest] + g.vweights[v] > max_load:
                continue
            assign[v] = dest
            loads[heavy] -= g.vweights[v]
            loads[dest] += g.vweights[v]
            progressed = True
        if not progressed:
            break
    return assign


class MultilevelPartitioner(Partitioner):
    """METIS-style multilevel k-way partitioner (see module docstring).

    Parameters
    ----------
    seed:
        Seeds matching order and region-growing seeds; fixed seed -> fixed
        partition.
    imbalance:
        Allowed load imbalance factor for refinement (METIS default ~1.03;
        we default to 1.05 for small coarse graphs).
    coarsen_until:
        Stop coarsening when ``n <= coarsen_until * num_parts``.
    refine_passes:
        Max FM passes per uncoarsening level.
    """

    name = "METIS"

    def __init__(
        self,
        seed: int = 0,
        imbalance: float = 1.05,
        coarsen_until: int = 25,
        refine_passes: int = 6,
        vertex_weight: str = "degree",
    ) -> None:
        if imbalance < 1.0:
            raise ValueError("imbalance must be >= 1.0")
        if vertex_weight not in ("unit", "degree"):
            raise ValueError("vertex_weight must be 'unit' or 'degree'")
        self.seed = seed
        self.imbalance = float(imbalance)
        self.coarsen_until = int(coarsen_until)
        self.refine_passes = int(refine_passes)
        self.vertex_weight = vertex_weight

    def partition(self, graph: CSRGraph, num_parts: int) -> Partition:
        if num_parts <= 0:
            raise ValueError("num_parts must be positive")
        if num_parts == 1:
            return Partition(1, np.zeros(graph.num_vertices, dtype=np.int32))
        # Partitioning quality needs symmetric adjacency.
        sym = graph if graph.undirected else graph.as_undirected()
        rng = np.random.default_rng(self.seed)

        levels: list[tuple[_WGraph, np.ndarray]] = []
        g = _WGraph.from_csr(sym, vertex_weight=self.vertex_weight)
        limit = max(self.coarsen_until * num_parts, 2 * num_parts)
        while g.n > limit:
            match = _heavy_edge_matching(g, rng)
            coarse, cmap = _coarsen(g, match)
            if coarse.n >= g.n * 0.95:  # matching stalled (e.g. star graphs)
                break
            levels.append((g, cmap))
            g = coarse

        assign = _initial_partition(g, num_parts, rng)
        assign = _rebalance(g, assign, num_parts, self.imbalance)
        assign = _refine(g, assign, num_parts, self.imbalance, self.refine_passes)

        # Uncoarsen: project through each saved level and refine.
        for fine, cmap in reversed(levels):
            assign = assign[cmap]
            assign = _rebalance(fine, assign, num_parts, self.imbalance)
            assign = _refine(
                fine, assign, num_parts, self.imbalance, self.refine_passes
            )
        return Partition(num_parts, assign.astype(np.int32))
