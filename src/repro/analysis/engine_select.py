"""Static engine auto-selection for ``repro run --engine auto``.

The paper's thesis is that BSP performance on clouds is won by choosing
the execution strategy *before* the job runs.  This module is that
choice as a pure function: given the static analyses the runner already
computes — the vectorize verdict (can the program execute densely?), the
costmodel :class:`~repro.check.costmodel.ProgramProfile` (fan-out class,
pickle safety), and the host/worker topology — rank the five backends
{dense-ref, tcp, process, threaded, sim} and return the winner together
with every reason: why it won, why each excluded engine was excluded,
and any hazards in the outcome (the RPC022 condition).

The decision is recorded on :attr:`JobResult.engine_decision
<repro.bsp.job.JobResult.engine_decision>` and in the flight recorder
(``engine.autoselect``), so a post-mortem can always answer "why did
this job run on that engine".
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

from ..check.costmodel import FanoutClass

__all__ = ["EngineDecision", "select_engine", "dense_refused_features"]

#: Ranking scores per (engine, multi-worker?).  dense-ref dominates when
#: eligible — it replaces the per-vertex Python loop with NumPy kernels.
#: With real parallelism available (num_workers > 1) the distributed
#: engines beat the GIL-bound ones; single-worker, their setup cost is
#: pure overhead and the sequential simulator wins the fallback.
_SCORES_MULTI = {
    "dense-ref": 100, "tcp": 70, "process": 60, "threaded": 40, "sim": 30,
}
_SCORES_SINGLE = {
    "dense-ref": 100, "sim": 30, "threaded": 20, "process": 15, "tcp": 10,
}


@dataclass(frozen=True)
class EngineDecision:
    """The ranked outcome of one static engine selection."""

    engine: str
    #: why the winner won, in ranking order
    reasons: tuple[str, ...]
    #: every eligible engine with its score, best first
    ranking: tuple[tuple[str, int], ...]
    #: engines ruled out, with the static fact that ruled each out
    excluded: tuple[tuple[str, str], ...]
    #: RPC022-style hazards in the outcome (non-fatal, recorded)
    hazards: tuple[str, ...]

    def as_dict(self) -> dict:
        return {
            "engine": self.engine,
            "reasons": list(self.reasons),
            "ranking": [[e, s] for e, s in self.ranking],
            "excluded": [[e, r] for e, r in self.excluded],
            "hazards": list(self.hazards),
        }

    def render(self) -> str:
        lines = [f"engine auto-selection: {self.engine}"]
        for r in self.reasons:
            lines.append(f"  + {r}")
        for e, r in self.excluded:
            lines.append(f"  - {e}: {r}")
        for h in self.hazards:
            lines.append(f"  ! {h}")
        return "\n".join(lines)


def dense_refused_features(
    program: Any,
    verdict: Any,
    *,
    observers: Any = (),
    sanitize: bool = False,
    sinks: Any = (),
    initial_messages: Any = (),
) -> list[str]:
    """Job-level features the dense executor does not model.

    The lifter proves the *program*; these are properties of the *job*
    binding it — live observers, per-delivery sinks, a sanitizing
    wrapper, or a bound attribute the plan required to be None.  The
    flight recorder is NOT such a feature: dense-ref emits no per-vertex
    events but runs fine under one.
    """
    out: list[str] = []
    if observers:
        out.append(
            f"job attaches {len(list(observers))} observer(s); dense-ref "
            "has no per-superstep observer protocol"
        )
    if sanitize:
        out.append(
            "job requests --sanitize (per-delivery payload fingerprints); "
            "dense-ref never materializes per-vertex deliveries"
        )
    for name in sinks:
        out.append(
            f"job attaches a {name} sink; dense-ref does not emit "
            "per-vertex events into it"
        )
    plan = getattr(verdict, "plan", None) if verdict is not None else None
    if plan is not None:
        for name in plan.requires_none:
            if getattr(program, name, None) is not None:
                out.append(
                    f"plan was lifted for {name}=None but the program "
                    f"binds {name}={getattr(program, name)!r}"
                )
        if getattr(plan, "_needs_prune", False) and initial_messages:
            out.append(
                "peel plans cannot start from injected messages"
            )
    return out


def select_engine(
    *,
    verdict: Any,
    profile: Any,
    num_workers: int = 1,
    tcp_hosts: Any = None,
    features: Any = (),
) -> EngineDecision:
    """Rank the backends for one job and pick the best eligible one.

    ``verdict`` is the program's :class:`LiftResult` (or None when the
    program has no locatable source); ``features`` are job-level
    dense-ref blockers from :func:`dense_refused_features`.  Never
    raises: sim is always eligible, so there is always a winner.
    """
    scores = _SCORES_MULTI if num_workers > 1 else _SCORES_SINGLE
    excluded: list[tuple[str, str]] = []

    # -- dense-ref: needs a lifted plan and a plain job ----------------
    dense_ok = True
    if verdict is None:
        dense_ok = False
        excluded.append((
            "dense-ref",
            "no kernel plan: cannot locate the program's source",
        ))
    elif getattr(verdict, "plan", None) is None:
        dense_ok = False
        excluded.append((
            "dense-ref",
            f"plan refused: {verdict.rule_id} at line "
            f"{verdict.refusal_line}: {verdict.reason}",
        ))
    for feature in features:
        dense_ok = False
        excluded.append(("dense-ref", str(feature)))

    # -- process/tcp: need picklable programs (the RPC011 gate) -------
    risks = tuple(getattr(profile, "pickle_risks", ()) or ())
    fork_ok = not risks
    if risks:
        detail = (
            f"pickle-unsafe state (RPC011, line {risks[0].line}: "
            f"{risks[0].detail})"
        )
        excluded.append(("process", detail))
        excluded.append(("tcp", detail))
    tcp_ok = fork_ok
    if fork_ok and tcp_hosts is None:
        tcp_ok = False
        excluded.append(("tcp", "no worker endpoints configured (--hosts)"))

    eligible = {"sim", "threaded"}
    if dense_ok:
        eligible.add("dense-ref")
    if fork_ok:
        eligible.add("process")
    if tcp_ok:
        eligible.add("tcp")

    ranking = tuple(sorted(
        ((e, scores[e]) for e in eligible),
        key=lambda es: (-es[1], es[0]),
    ))
    winner = ranking[0][0]

    reasons: list[str] = []
    if winner == "dense-ref":
        reasons.append(
            f"program lifts to KernelPlan {verdict.plan.digest[:16]} "
            "(RPC015): dense NumPy execution replaces the per-vertex "
            "Python loop"
        )
    elif winner == "tcp":
        reasons.append(
            f"picklable program + {num_workers} workers on configured "
            "endpoints: real multi-host parallelism"
        )
    elif winner == "process":
        reasons.append(
            f"picklable program + {num_workers} workers: process "
            "parallelism beats the GIL-bound engines"
        )
    elif winner == "threaded":
        reasons.append(
            f"{num_workers} workers but the program cannot fork; "
            "threads at least overlap engine bookkeeping"
        )
    else:
        reasons.append(
            "sequential simulator: no eligible engine beats it for "
            f"num_workers={num_workers}"
        )

    hazards: list[str] = []
    if (
        winner in ("sim", "threaded")
        and profile is not None
        and getattr(profile, "fanout", None) is FanoutClass.BROADCAST
    ):
        hazards.append(
            "broadcast fan-out routed to a single-process engine "
            f"({winner}): message volume will not parallelize (RPC022)"
        )

    return EngineDecision(
        engine=winner,
        reasons=tuple(reasons),
        ranking=ranking,
        excluded=tuple(excluded),
        hazards=tuple(hazards),
    )
