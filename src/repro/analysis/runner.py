"""High-level experiment runners shared by benchmarks, examples and tests.

Wraps the engine with the paper's standard experimental procedure:
PageRank runs to its fixed iteration count over all vertices; BC/APSP run
message-driven over a *subset of roots* (the paper uses 50-75), optionally
under a swath controller, and totals are extrapolated to all |V| roots
pro-rata (§V — "empirically verified" by the authors; our tests verify it
for the simulated engine too).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Any, Sequence

from ..algorithms import apsp as apsp_mod
from ..algorithms import bc as bc_mod
from ..algorithms.apsp import APSPProgram
from ..algorithms.bc import BCProgram
from ..algorithms.pagerank import PageRankProgram
from ..bsp.engine import BSPEngine
from ..bsp.job import JobResult, JobSpec
from ..cloud.costmodel import DEFAULT_PERF_MODEL, PerfModel
from ..cloud.specs import LARGE_VM, VMSpec, scaled_large
from ..graph.csr import CSRGraph
from ..partition.base import Partitioner
from ..partition.hashing import HashPartitioner
from ..scheduling.controller import SwathController
from ..scheduling.initiation import InitiationPolicy, SequentialInitiation
from ..scheduling.sizing import StaticSizer, SwathSizer

__all__ = ["RunConfig", "TraversalRun", "run_pagerank", "run_traversal", "calibrate_worker_memory"]


@dataclass(frozen=True)
class RunConfig:
    """Cluster + cost-model configuration for one experiment run."""

    num_workers: int = 8
    partitioner: Partitioner = field(default_factory=HashPartitioner)
    vm_spec: VMSpec = LARGE_VM
    perf_model: PerfModel = DEFAULT_PERF_MODEL
    max_supersteps: int = 100_000
    #: execution backend: "sim" (sequential), "threaded", "process"
    #: (real worker processes, repro.dist), "tcp" (worker sessions on
    #: ``repro worker`` daemons, repro.net), "dense-ref" (NumPy
    #: interpreter over the program's static KernelPlan — refuses
    #: programs the lifter cannot prove), or "auto" (static ranking over
    #: all of the above, repro.analysis.engine_select) — see
    #: docs/runtime.md
    engine: str = "sim"
    #: TCP backend endpoints: a list of ``(host, port)`` pairs or a
    #: workers-file path (str).  None auto-spawns localhost daemons.
    tcp_hosts: Any = None
    #: optional observability sinks (repro.obs), threaded into every job
    tracer: Any = None
    metrics: Any = None
    #: optional :class:`repro.obs.RunTimeline` attribution recorder
    timeline: Any = None
    #: optional :class:`repro.obs.FlightRecorder` event ring
    flight: Any = None
    #: optional postmortem sink (``dump(engine, error)``), e.g.
    #: :class:`repro.obs.PostmortemWriter`
    postmortem: Any = None
    #: statically profile the program (repro.check.costmodel) and record
    #: the ProgramProfile on the JobResult + metrics; cheap (pure AST)
    auto_profile: bool = True
    #: statically lift the program to a KernelPlan (repro.check.vectorize)
    #: and record it on the JobResult + plan-coverage metrics; cheap
    #: (pure AST; never fails the run — refusals just leave it None)
    auto_kernel_plan: bool = True

    def with_memory(self, memory_bytes: int) -> "RunConfig":
        """Same config with the worker VM memory replaced (scaled regime)."""
        return replace(self, vm_spec=scaled_large(int(memory_bytes)))

    def job(self, program, graph: CSRGraph, **kwargs) -> JobSpec:
        return JobSpec(
            program=program,
            graph=graph,
            num_workers=self.num_workers,
            partitioner=self.partitioner,
            vm_spec=self.vm_spec,
            perf_model=self.perf_model,
            max_supersteps=self.max_supersteps,
            tracer=self.tracer,
            metrics=self.metrics,
            timeline=self.timeline,
            flight=self.flight,
            postmortem=self.postmortem,
            **kwargs,
        )


def _make_engine(cfg: RunConfig, job: JobSpec) -> BSPEngine:
    """Instantiate the backend ``cfg.engine`` names for ``job``."""
    if cfg.engine == "sim":
        return BSPEngine(job)
    if cfg.engine == "threaded":
        from ..bsp.parallel import ThreadedBSPEngine

        return ThreadedBSPEngine(job)
    if cfg.engine == "process":
        from ..dist import ProcessBSPEngine

        return ProcessBSPEngine(job)
    if cfg.engine == "tcp":
        from ..net.engine import TcpBSPEngine

        hosts = cfg.tcp_hosts
        if isinstance(hosts, str):
            return TcpBSPEngine(job, workers_file=hosts)
        return TcpBSPEngine(job, endpoints=hosts)
    if cfg.engine == "dense-ref":
        from ..bsp.dense_ref import DenseRefEngine

        return DenseRefEngine(job)
    if cfg.engine == "auto":
        # the runners resolve "auto" via _resolve_auto before building
        # the job; reaching here means a caller skipped that step
        raise ValueError(
            "engine 'auto' must be resolved by the runner before "
            "_make_engine (see _resolve_auto)"
        )
    raise ValueError(
        f"unknown engine {cfg.engine!r}; use 'sim', 'threaded', 'process', "
        "'tcp', 'dense-ref' or 'auto'"
    )


def _auto_profile(cfg: RunConfig, program) -> Any:
    """Static cost model of ``program``, recorded in metrics when present.

    Never fails the run: programs defined in a REPL (no source file) just
    come back unprofiled.
    """
    if not cfg.auto_profile:
        return None
    from ..check.costmodel import profile_of

    profile = profile_of(program)
    if profile is not None and cfg.metrics is not None:
        cfg.metrics.gauge(
            "repro_program_fanout_level",
            help="Static fan-out class level (0 none, 1 O(1), "
                 "2 O(out_degree), 3 broadcast)",
            program=profile.program,
        ).set(profile.fanout.level)
        cfg.metrics.gauge(
            "repro_program_payload_nbytes",
            help="Statically modelled upper payload bytes per message",
            program=profile.program,
        ).set(profile.payload.nbytes)
    return profile


def _auto_plan(cfg: RunConfig, program) -> Any:
    """Static lift verdict of ``program``, recorded in metrics when present.

    Mirrors :func:`_auto_profile`: never fails the run.  Returns the full
    :class:`~repro.check.vectorize.LiftResult` (engine auto-selection
    needs the refusal reason, not just the plan); programs whose
    compute() the lifter refuses (or with no locatable source) come back
    with no plan — the ``repro_kernel_plan_lifted`` gauge records 0 so
    dashboards can tell "refused" apart from "analysis disabled".
    """
    if not cfg.auto_kernel_plan:
        return None
    from ..check.vectorize import lift_of

    verdict = lift_of(program)
    if verdict is None:
        return None
    if cfg.metrics is not None:
        cfg.metrics.gauge(
            "repro_kernel_plan_lifted",
            help="1 when the program statically lifted to a KernelPlan "
                 "(RPC015), 0 when the lifter refused (RPC016-018)",
            program=verdict.program,
        ).set(1 if verdict.lifted else 0)
        if verdict.plan is not None:
            cfg.metrics.gauge(
                "repro_kernel_plan_phases",
                help="Number of guarded phases in the lifted KernelPlan",
                program=verdict.program,
            ).set(len(verdict.plan.phases))
            cfg.metrics.gauge(
                "repro_kernel_plan_ops",
                help="Total kernel ops across the lifted plan's phases",
                program=verdict.program,
            ).set(verdict.plan.num_ops)
    return verdict


def _resolve_auto(
    cfg: RunConfig,
    program,
    profile,
    verdict,
    *,
    observers: Sequence = (),
    sanitized: bool = False,
    initial_messages: Sequence = (),
) -> tuple[RunConfig, Any]:
    """Resolve ``engine="auto"`` to a concrete engine before the job runs.

    Returns ``(cfg, decision)``: ``cfg`` unchanged (decision None) for
    explicit engines, else a copy with the selected engine and the full
    :class:`~repro.analysis.engine_select.EngineDecision`, which is also
    recorded in the flight event stream (``engine.autoselect``).
    """
    if cfg.engine != "auto":
        return cfg, None
    from .engine_select import dense_refused_features, select_engine

    sinks = [
        name
        for name, sink in (
            ("tracer", cfg.tracer),
            ("metrics", cfg.metrics),
            ("timeline", cfg.timeline),
        )
        if sink is not None
    ]
    features = dense_refused_features(
        program,
        verdict,
        observers=observers,
        sanitize=sanitized,
        sinks=sinks,
        initial_messages=initial_messages,
    )
    decision = select_engine(
        verdict=verdict,
        profile=profile,
        num_workers=cfg.num_workers,
        tcp_hosts=cfg.tcp_hosts,
        features=features,
    )
    if cfg.flight is not None:
        cfg.flight.record(
            "engine.autoselect",
            engine=decision.engine,
            reasons=list(decision.reasons),
            ranking=[[e, s] for e, s in decision.ranking],
            excluded=[[e, r] for e, r in decision.excluded],
            hazards=list(decision.hazards),
        )
    return replace(cfg, engine=decision.engine), decision


@dataclass
class TraversalRun:
    """Result of a BC/APSP run plus its swath log."""

    result: JobResult
    controller: SwathController

    @property
    def total_time(self) -> float:
        return self.result.total_time

    @property
    def num_swaths(self) -> int:
        return self.controller.num_swaths

    @property
    def profile(self) -> Any:
        """Static cost model recorded for the program (may be None)."""
        return self.result.profile


def run_pagerank(
    graph: CSRGraph,
    cfg: RunConfig,
    iterations: int = 30,
    use_combiner: bool = True,
    observers: Sequence = (),
    wrap_program=None,
) -> JobResult:
    """PageRank over all vertices for a fixed iteration count (paper: 30).

    ``wrap_program`` optionally wraps the constructed program before the
    job is built (tracing/sanitizing wrappers — ``repro run --sanitize``).
    """
    program = PageRankProgram(iterations=iterations, use_combiner=use_combiner)
    if wrap_program is not None:
        program = wrap_program(program)
    profile = _auto_profile(cfg, program)
    verdict = _auto_plan(cfg, program)
    cfg, decision = _resolve_auto(
        cfg, program, profile, verdict,
        observers=observers, sanitized=wrap_program is not None,
    )
    job = cfg.job(program, graph, observers=list(observers))
    result = _make_engine(cfg, job).run()
    result.profile = profile
    if result.kernel_plan is None and verdict is not None:
        result.kernel_plan = verdict.plan
    result.engine_decision = decision
    return result


def _traversal_pieces(kind: str):
    if kind == "bc":
        return BCProgram(), bc_mod.start_messages
    if kind == "apsp":
        return APSPProgram(), apsp_mod.start_messages
    raise ValueError(f"unknown traversal kind {kind!r}; use 'bc' or 'apsp'")


def run_traversal(
    graph: CSRGraph,
    cfg: RunConfig,
    roots,
    kind: str = "bc",
    sizer: SwathSizer | None = None,
    initiation: InitiationPolicy | None = None,
    extra_observers: Sequence = (),
    wrap_program=None,
) -> TraversalRun:
    """Run BC or APSP over ``roots`` under a swath controller.

    Defaults reproduce the paper's baseline: one swath holding every root
    (``StaticSizer(len(roots))``) with sequential initiation.
    ``extra_observers`` ride along after the controller (progress
    reporters, invariant checkers); ``wrap_program`` optionally wraps the
    program before the job is built (``repro run --sanitize``).
    """
    roots = [int(r) for r in roots]
    program, start_factory = _traversal_pieces(kind)
    if wrap_program is not None:
        program = wrap_program(program)
    profile = _auto_profile(cfg, program)
    verdict = _auto_plan(cfg, program)
    controller = SwathController(
        roots=roots,
        start_factory=start_factory,
        sizer=sizer if sizer is not None else StaticSizer(max(1, len(roots))),
        initiation=initiation if initiation is not None else SequentialInitiation(),
        metrics=cfg.metrics,
        timeline=cfg.timeline,
    )
    cfg, decision = _resolve_auto(
        cfg, program, profile, verdict,
        observers=[controller, *extra_observers],
        sanitized=wrap_program is not None,
    )
    job = cfg.job(
        program, graph, initially_active=False,
        observers=[controller, *extra_observers],
    )
    result = _make_engine(cfg, job).run()
    result.profile = profile
    if result.kernel_plan is None and verdict is not None:
        result.kernel_plan = verdict.plan
    result.engine_decision = decision
    if not controller.completed_all:
        raise RuntimeError(
            "traversal ended with pending roots "
            f"({len(controller._pending)} left) — raise max_supersteps"
        )
    return TraversalRun(result=result, controller=controller)


def calibrate_worker_memory(
    graph: CSRGraph,
    cfg: RunConfig,
    roots,
    kind: str = "bc",
    headroom: float = 1.25,
) -> int:
    """Choose a worker memory capacity for the scaled regime.

    Runs the given swath once on effectively unlimited memory, measures the
    cluster's peak per-worker footprint, and returns
    ``peak / headroom`` — i.e. a capacity that the measured swath would
    *overflow* by ``headroom``x.  Scenarios use this to map the paper's
    "7 GB physical / 6 GB target / baseline spills" regime onto analogue
    graphs of any size.
    """
    if headroom <= 0:
        raise ValueError("headroom must be positive")
    big = cfg.with_memory(1 << 62)
    probe = run_traversal(graph, big, roots, kind=kind)
    peak = probe.result.trace.peak_memory
    return max(1, int(peak / headroom))
