"""One-shot reproduction report: every headline experiment, one markdown file.

``python -m repro report --out report.md`` (or :func:`generate_report`)
re-runs the paper's headline experiments at a configurable scale and writes
a self-contained markdown report with paper-vs-measured tables — the
programmatic sibling of the benchmark suite, for users who want a single
artifact rather than pytest output.
"""

from __future__ import annotations

import io
from dataclasses import dataclass

from ..cloud.costmodel import SCALED_PERF_MODEL
from ..elastic import (
    ActiveFractionPolicy,
    AlignedTraces,
    ElasticityModel,
    FixedWorkers,
    OraclePolicy,
    normalize_outcomes,
)
from ..graph import datasets, summarize
from ..partition import PartitioningAdvisor, remote_edge_fraction
from ..scheduling import (
    AdaptiveSizer,
    DynamicPeakDetect,
    SamplingSizer,
    SequentialInitiation,
    StaticSizer,
)
from .extrapolate import extrapolate_runtime
from .runner import RunConfig, run_pagerank, run_traversal
from .scenarios import bc_scenario, paper_partitioners
from . import tables

__all__ = ["ReportConfig", "generate_report"]


@dataclass(frozen=True)
class ReportConfig:
    """Knobs for the report run (defaults keep it under ~2 minutes)."""

    scale: float = 0.2
    workers: int = 8
    roots: int = 20

    def __post_init__(self) -> None:
        if self.scale <= 0:
            raise ValueError("scale must be positive")
        if self.workers < 2:
            raise ValueError("workers must be >= 2")
        if self.roots < 2:
            raise ValueError("roots must be >= 2")


def _md_table(headers, rows) -> str:
    out = ["| " + " | ".join(str(h) for h in headers) + " |"]
    out.append("|" + "---|" * len(headers))
    for r in rows:
        out.append("| " + " | ".join(str(c) for c in r) + " |")
    return "\n".join(out)


# ---------------------------------------------------------------------------
# Sections
# ---------------------------------------------------------------------------
def _section_datasets(cfg: ReportConfig, w: io.StringIO) -> None:
    w.write("## Table 1 — dataset analogues\n\n")
    rows = []
    for key in ("SD", "WG", "CP", "LJ"):
        g = datasets.load(key, scale=cfg.scale)
        s = summarize(g, sample=32)
        p = datasets.PAPER_TABLE1[key]
        rows.append([
            key, f"{p['vertices']:,}", f"{s.num_vertices:,}",
            f"{p['eff_diameter']:.1f}", f"{s.effective_diameter_90:.1f}",
        ])
    w.write(_md_table(
        ["graph", "paper |V|", "analogue |V|", "paper 90%-diam", "measured"],
        rows,
    ))
    w.write("\n\n")


def _section_complexity(cfg: ReportConfig, w: io.StringIO) -> None:
    w.write("## Figure 2 — application complexity gap\n\n")
    sc = bc_scenario("WG", scale=cfg.scale, num_workers=cfg.workers)
    run_cfg = sc.unconstrained_config()
    n = sc.graph.num_vertices
    pr = run_pagerank(sc.graph, run_cfg, iterations=30).total_time
    rows = [["PageRank", f"{pr:.1f}s", "1x"]]
    for kind, label in (("apsp", "APSP"), ("bc", "BC")):
        t = run_traversal(sc.graph, run_cfg, range(cfg.roots), kind=kind).total_time
        proj = extrapolate_runtime(t, cfg.roots, n).projected_seconds
        rows.append([label, f"{proj:.1f}s", f"{proj / pr:.0f}x"])
    w.write(_md_table(["app (WG)", "sim. time (extrapolated)", "vs PageRank"], rows))
    w.write("\n\nPaper: ~4 orders of magnitude at SNAP scale; the gap scales "
            "with |V|.\n\n")


def _section_swaths(cfg: ReportConfig, w: io.StringIO) -> None:
    w.write("## Figures 4–6 — swath scheduling heuristics\n\n")
    sc = bc_scenario("WG", scale=cfg.scale, num_workers=cfg.workers)
    roots = sc.roots[: sc.base_swath]
    run_cfg = sc.config()
    base = run_traversal(
        sc.graph, run_cfg, roots, kind="bc", sizer=StaticSizer(sc.base_swath)
    )
    rows = [["baseline (one swath)", f"{base.total_time:.1f}s", "1.00x",
             f"{base.result.trace.peak_memory / sc.capacity_bytes:.2f}"]]
    for name, sizer in (
        ("sampling", SamplingSizer(sc.target_bytes)),
        ("adaptive", AdaptiveSizer(sc.target_bytes)),
    ):
        r = run_traversal(sc.graph, run_cfg, roots, kind="bc", sizer=sizer)
        rows.append([
            name, f"{r.total_time:.1f}s",
            f"{base.total_time / r.total_time:.2f}x",
            f"{r.result.trace.peak_memory / sc.capacity_bytes:.2f}",
        ])
    seq = run_traversal(
        sc.graph, run_cfg, roots, kind="bc",
        sizer=StaticSizer(max(2, sc.base_swath // 4)),
        initiation=SequentialInitiation(),
    )
    dyn = run_traversal(
        sc.graph, run_cfg, roots, kind="bc",
        sizer=StaticSizer(max(2, sc.base_swath // 4)),
        initiation=DynamicPeakDetect(),
    )
    rows.append([
        "dynamic initiation (vs sequential)", f"{dyn.total_time:.1f}s",
        f"{seq.total_time / dyn.total_time:.2f}x", "-",
    ])
    w.write(_md_table(
        ["config (BC on WG)", "sim. time", "speedup", "peak/physical"], rows
    ))
    w.write("\n\nPaper: sampling ~2.5–3x, adaptive ≤3.5x (Fig. 4); dynamic "
            "initiation ≤1.24x (Fig. 6).\n\n")


def _section_partitioning(cfg: ReportConfig, w: io.StringIO) -> None:
    w.write("## Figure 8 — partitioning under BSP barriers\n\n")
    rows = []
    for ds in ("WG", "CP"):
        g = datasets.load(ds, scale=cfg.scale)
        times = {}
        for name, part in paper_partitioners().items():
            run_cfg = RunConfig(
                num_workers=cfg.workers, partitioner=part,
                perf_model=SCALED_PERF_MODEL,
            ).with_memory(1 << 62)
            p = part.partition(g, cfg.workers)
            r = run_traversal(
                g, run_cfg, range(cfg.roots), kind="bc", sizer=StaticSizer(10)
            )
            times[name] = (r.total_time, remote_edge_fraction(g, p))
        base = times["Hash"][0]
        for name, (t, rf) in times.items():
            rows.append([ds, name, f"{rf:.0%}", f"{t / base:.2f}"])
    w.write(_md_table(
        ["graph", "strategy", "remote edges", "BC time vs Hash"], rows
    ))
    advisor = PartitioningAdvisor(seed=0)
    w.write("\n\nAdvisor (§IX future work): ")
    verdicts = []
    for ds in ("WG", "CP"):
        adv = advisor.advise(datasets.load(ds, scale=cfg.scale), cfg.workers)
        verdicts.append(f"{ds} → {adv.recommendation} "
                        f"(predicted ratio {adv.predicted_ratio:.2f})")
    w.write("; ".join(verdicts))
    w.write("\n\n")


def _section_elastic(cfg: ReportConfig, w: io.StringIO) -> None:
    w.write("## Figures 15–16 — elastic scaling\n\n")
    sc = bc_scenario("WG", scale=cfg.scale, num_workers=cfg.workers)
    runs = {}
    for workers in (4, 8):
        runs[workers] = run_traversal(
            sc.graph, sc.config(num_workers=workers), sc.roots[: sc.base_swath],
            kind="bc", sizer=StaticSizer(sc.base_swath // 2),
            initiation=SequentialInitiation(),
        )
    traces = AlignedTraces.from_traces(
        runs[4].result.trace, runs[8].result.trace, 4, 8, sc.graph.num_vertices
    )
    model = ElasticityModel(traces)
    sp = model.speedup_series()
    w.write(f"Per-superstep speedup of 8 vs 4 workers: "
            f"{sp.min():.2f}x–{sp.max():.2f}x over {len(sp)} supersteps "
            f"({int((sp > 2).sum())} superlinear, {int((sp < 1).sum())} "
            f"below 1x).\n\n")
    rows = [
        [r.label, f"{r.norm_time:.3f}x", f"{r.norm_cost:.3f}x"]
        for r in normalize_outcomes(
            model.evaluate_all(
                [FixedWorkers(4), FixedWorkers(8),
                 ActiveFractionPolicy(0.5), OraclePolicy()]
            ),
            "Fixed-4",
        )
    ]
    w.write(_md_table(["policy", "norm. time", "norm. cost"], rows))
    w.write("\n\nPaper: dynamic ≈ 8-worker performance at ≤4-worker cost; "
            "oracle-tight.\n\n")


def generate_report(cfg: ReportConfig | None = None) -> str:
    """Run the headline experiments and return the markdown report."""
    cfg = cfg or ReportConfig()
    w = io.StringIO()
    w.write("# Reproduction report\n\n")
    w.write(
        "Auto-generated by `repro.analysis.report` — Redekopp, Simmhan & "
        "Prasanna, *Optimizations and Analysis of BSP Graph Processing "
        f"Models on Public Clouds* (IPDPS 2013).  Scale={cfg.scale}, "
        f"{cfg.workers} workers, {cfg.roots} traversal roots; all times are "
        "simulated seconds (see DESIGN.md).\n\n"
    )
    _section_datasets(cfg, w)
    _section_complexity(cfg, w)
    _section_swaths(cfg, w)
    _section_partitioning(cfg, w)
    _section_elastic(cfg, w)
    w.write("---\nFull per-figure benches: `pytest benchmarks/ "
            "--benchmark-only -s`.\n")
    return w.getvalue()
