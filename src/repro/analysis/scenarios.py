"""Canonical paper-reproduction scenarios shared by benches and examples.

Each scenario fixes everything the corresponding figure's experiment fixed:
dataset analogue and scale, algorithm, root subset, worker count, cost
model (the scaled regime — see
:data:`~repro.cloud.costmodel.SCALED_PERF_MODEL`), and the memory-capacity
calibration that maps the paper's 7 GB-physical / 6 GB-target / baseline-
spills setup onto our analogue sizes:

* worker capacity = (peak footprint of the paper's baseline swath) / 1.35,
  i.e. the baseline single swath overflows physical memory by ~35% — it
  thrashes virtual memory but stays below the fabric-restart threshold,
  exactly the paper's "largest swath that completes";
* heuristic target = 6/7 of capacity (the paper's 6 GB of 7 GB).

Roots per graph follow §VII: 75 roots for WG, 50 for CP (we default to the
paper's baseline swath sizes 40/25 for Fig. 4 runs, which used those).
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache

from ..cloud.costmodel import SCALED_PERF_MODEL
from ..graph import datasets
from ..graph.csr import CSRGraph
from ..partition.base import Partitioner
from ..partition.hashing import HashPartitioner
from ..partition.metis import MultilevelPartitioner
from ..partition.streaming import StreamingGreedy
from .runner import RunConfig, calibrate_worker_memory

__all__ = [
    "TraversalScenario",
    "bc_scenario",
    "paper_partitioners",
    "PAPER_BASE_SWATH",
    "PAPER_ROOTS",
    "ELASTIC_SWATH",
]


def paper_partitioners(seed: int = 1) -> dict[str, Partitioner]:
    """The three §VII partitioning strategies, tuned as the benches use them.

    * ``Hash`` — the paper's default (scrambled id hash).
    * ``METIS`` — our multilevel partitioner; 15% imbalance slack trades a
      little balance for a much lower cut, as METIS's own defaults do.
    * ``Streaming`` — Stanton–Kliot linear-weighted deterministic greedy,
      random stream order.
    """
    return {
        "Hash": HashPartitioner(),
        "METIS": MultilevelPartitioner(seed=seed, imbalance=1.15, refine_passes=12),
        "Streaming": StreamingGreedy(order="random", seed=seed),
    }

#: §VI-B: the largest single swath that completed on 8 workers.
PAPER_BASE_SWATH = {"WG": 40, "CP": 25}
#: §VII: root-subset sizes used for the partitioning experiments.
PAPER_ROOTS = {"WG": 75, "CP": 50}
#: §VIII: fixed swath sizes for the elastic-scaling runs, chosen so peak
#: supersteps spill at 4 workers but fit at 8 — the memory-relief mechanism
#: behind the paper's superlinear per-superstep speedups (Fig. 15).
ELASTIC_SWATH = {"WG": 17, "CP": 10}

#: Baseline-overflow factor used for memory calibration (see module doc).
MEMORY_HEADROOM = 1.35
#: Heuristic memory target as a fraction of physical capacity (6 GB / 7 GB).
TARGET_FRACTION = 6.0 / 7.0

#: Default dataset scale for benchmarks: small enough for seconds-long
#: runs, large enough for the small-world shapes to be unmistakable.
BENCH_SCALE = 0.3


@dataclass(frozen=True)
class TraversalScenario:
    """A fully-calibrated BC/APSP experiment setup."""

    dataset: str
    graph: CSRGraph
    roots: tuple[int, ...]
    base_swath: int
    capacity_bytes: int
    target_bytes: int
    num_workers: int
    kind: str

    def config(self, num_workers: int | None = None) -> RunConfig:
        cfg = RunConfig(
            num_workers=num_workers or self.num_workers,
            perf_model=SCALED_PERF_MODEL,
        )
        return cfg.with_memory(self.capacity_bytes)

    def unconstrained_config(self, num_workers: int | None = None) -> RunConfig:
        """Same cluster with effectively unlimited worker memory."""
        cfg = RunConfig(
            num_workers=num_workers or self.num_workers,
            perf_model=SCALED_PERF_MODEL,
        )
        return cfg.with_memory(1 << 62)

    @property
    def elastic_swath(self) -> int:
        """Fixed swath size for §VIII runs (see :data:`ELASTIC_SWATH`)."""
        return ELASTIC_SWATH.get(self.dataset, max(2, int(0.42 * self.base_swath)))


@lru_cache(maxsize=None)
def bc_scenario(
    dataset: str = "WG",
    scale: float = BENCH_SCALE,
    num_workers: int = 8,
    num_roots: int | None = None,
    kind: str = "bc",
) -> TraversalScenario:
    """Build (and cache) the calibrated scenario for a dataset analogue.

    Calibration runs the paper-baseline swath once on unconstrained memory
    to find its peak footprint; that probe is cheap at bench scales.
    """
    graph = datasets.load(dataset, scale=scale)
    base_swath = PAPER_BASE_SWATH.get(dataset, 40)
    n_roots = num_roots if num_roots is not None else base_swath
    if n_roots > graph.num_vertices:
        raise ValueError("more roots than vertices")
    roots = tuple(range(n_roots))
    cal_cfg = RunConfig(num_workers=num_workers, perf_model=SCALED_PERF_MODEL)
    capacity = calibrate_worker_memory(
        graph,
        cal_cfg,
        roots[:base_swath],
        kind=kind,
        headroom=MEMORY_HEADROOM,
    )
    return TraversalScenario(
        dataset=dataset,
        graph=graph,
        roots=roots,
        base_swath=base_swath,
        capacity_bytes=capacity,
        target_bytes=int(capacity * TARGET_FRACTION),
        num_workers=num_workers,
        kind=kind,
    )
