"""Parameter-sweep utility: grids of experiment configurations, tidy results.

The paper's §IX suggests repeating the evaluation over "larger graphs and
more numbers of VMs"; this module provides the loop. A sweep is a cartesian
grid of named parameter values; each cell runs a user callable and collects
its scalar metrics into flat :class:`SweepRecord` rows that render as a
table or pivot into series — the tidy-data shape every plotting tool eats.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from itertools import product
from typing import Any, Callable, Mapping, Sequence

from . import tables

__all__ = ["SweepRecord", "SweepResult", "sweep"]


@dataclass(frozen=True)
class SweepRecord:
    """One grid cell: the parameter assignment and its measured metrics."""

    params: Mapping[str, Any]
    metrics: Mapping[str, float]

    def __getitem__(self, key: str):
        if key in self.params:
            return self.params[key]
        return self.metrics[key]


@dataclass
class SweepResult:
    """All records of a sweep, with convenience selectors."""

    param_names: Sequence[str]
    metric_names: Sequence[str]
    records: list[SweepRecord] = field(default_factory=list)

    def where(self, **conditions) -> "SweepResult":
        """Records matching all given parameter values."""
        kept = [
            r for r in self.records
            if all(r.params.get(k) == v for k, v in conditions.items())
        ]
        return SweepResult(self.param_names, self.metric_names, kept)

    def series(self, x: str, y: str, **conditions) -> list[tuple]:
        """(x, y) pairs sorted by x, filtered by ``conditions``."""
        rows = self.where(**conditions).records
        return sorted((r[x], r[y]) for r in rows)

    def column(self, name: str) -> list:
        return [r[name] for r in self.records]

    def render(self, title: str = "") -> str:
        headers = list(self.param_names) + list(self.metric_names)
        rows = [
            [r.params[p] for p in self.param_names]
            + [r.metrics[m] for m in self.metric_names]
            for r in self.records
        ]
        return tables.table(headers, rows, title=title)

    def __len__(self) -> int:
        return len(self.records)


def sweep(
    grid: Mapping[str, Sequence[Any]],
    run: Callable[..., Mapping[str, float]],
) -> SweepResult:
    """Run ``run(**params)`` for every cell of the cartesian ``grid``.

    ``run`` returns a flat dict of scalar metrics; all cells must return
    the same metric keys (enforced).
    """
    if not grid:
        raise ValueError("grid must name at least one parameter")
    names = list(grid)
    result: SweepResult | None = None
    for values in product(*(grid[n] for n in names)):
        params = dict(zip(names, values))
        metrics = dict(run(**params))
        if result is None:
            result = SweepResult(names, list(metrics))
        elif set(metrics) != set(result.metric_names):
            raise ValueError(
                f"inconsistent metrics at {params}: "
                f"{sorted(metrics)} vs {sorted(result.metric_names)}"
            )
        result.records.append(SweepRecord(params=params, metrics=metrics))
    assert result is not None
    return result
