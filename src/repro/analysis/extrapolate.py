"""Subset-of-roots -> whole-graph extrapolation (§V).

BC over every root of even a medium graph runs for "days or even weeks" on
the paper's deployment; they run 4 hours over a subset of roots and
extrapolate pro-rata, noting that "since BC traverses the entire graph
rooted at each vertex, extrapolating results from a subset of vertices is
reasonable and was empirically verified".  Our runs are shorter but use the
identical methodology so reported totals are comparable in kind.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["Extrapolation", "extrapolate_runtime"]


@dataclass(frozen=True)
class Extrapolation:
    """A measured subset run scaled to the full root population."""

    measured_seconds: float
    roots_measured: int
    roots_total: int

    def __post_init__(self) -> None:
        if self.roots_measured <= 0:
            raise ValueError("roots_measured must be positive")
        if self.roots_total < self.roots_measured:
            raise ValueError("roots_total must be >= roots_measured")
        if self.measured_seconds < 0:
            raise ValueError("measured_seconds must be non-negative")

    @property
    def scale_factor(self) -> float:
        return self.roots_total / self.roots_measured

    @property
    def projected_seconds(self) -> float:
        return self.measured_seconds * self.scale_factor

    @property
    def projected_hours(self) -> float:
        return self.projected_seconds / 3600.0


def extrapolate_runtime(
    measured_seconds: float, roots_measured: int, roots_total: int
) -> Extrapolation:
    """Pro-rata projection of a subset-of-roots run to all roots."""
    return Extrapolation(
        measured_seconds=measured_seconds,
        roots_measured=roots_measured,
        roots_total=roots_total,
    )
