"""Plain-text rendering helpers for paper-style tables and series.

Benchmarks print their reproduced rows through these so every bench's
output looks uniform and diff-able against EXPERIMENTS.md.
"""

from __future__ import annotations

from typing import Iterable, Sequence

import numpy as np

__all__ = ["table", "series", "bar", "sparkline", "paper_vs_measured"]


def table(headers: Sequence[str], rows: Iterable[Sequence], title: str = "") -> str:
    """Fixed-width text table; column widths fit the content."""
    rows = [[_fmt(c) for c in r] for r in rows]
    headers = [str(h) for h in headers]
    widths = [len(h) for h in headers]
    for r in rows:
        for i, c in enumerate(r):
            widths[i] = max(widths[i], len(c))
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for r in rows:
        lines.append("  ".join(c.ljust(w) for c, w in zip(r, widths)))
    return "\n".join(lines)


def _fmt(value) -> str:
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1000 or abs(value) < 0.01:
            return f"{value:.3g}"
        return f"{value:.3f}"
    return str(value)


def series(values, label: str = "", width: int = 60) -> str:
    """One labelled numeric series as a compact row of values."""
    vals = np.asarray(list(values), dtype=float)
    body = " ".join(f"{v:.3g}" for v in vals)
    return f"{label:<16s} {body}" if label else body


def bar(value: float, vmax: float, width: int = 40, fill: str = "#") -> str:
    """A single horizontal text bar scaled to ``vmax``."""
    if vmax <= 0:
        return ""
    n = int(round(width * max(0.0, min(value / vmax, 1.0))))
    return fill * n


def sparkline(values, width: int = 60) -> str:
    """Unicode block sparkline of a series (downsampled to ``width``)."""
    vals = np.asarray(list(values), dtype=float)
    if len(vals) == 0:
        return ""
    if len(vals) > width:
        # Downsample by max within buckets (peaks matter in our plots).
        edges = np.linspace(0, len(vals), width + 1).astype(int)
        vals = np.array(
            [vals[a:b].max() if b > a else 0.0 for a, b in zip(edges, edges[1:])]
        )
    blocks = "▁▂▃▄▅▆▇█"
    vmax = vals.max()
    if vmax <= 0:
        return blocks[0] * len(vals)
    idx = np.minimum((vals / vmax * (len(blocks) - 1)).round().astype(int), len(blocks) - 1)
    return "".join(blocks[i] for i in idx)


def paper_vs_measured(
    rows: Iterable[tuple[str, str, str]], title: str = ""
) -> str:
    """Three-column 'quantity | paper | measured' comparison table."""
    return table(["quantity", "paper", "measured"], rows, title=title)
