"""Experiment harness: runners, calibrated scenarios, extrapolation, tables."""

from .runner import (
    RunConfig,
    TraversalRun,
    calibrate_worker_memory,
    run_pagerank,
    run_traversal,
)
from .scenarios import (
    BENCH_SCALE,
    ELASTIC_SWATH,
    MEMORY_HEADROOM,
    PAPER_BASE_SWATH,
    PAPER_ROOTS,
    TARGET_FRACTION,
    TraversalScenario,
    bc_scenario,
    paper_partitioners,
)
from .extrapolate import Extrapolation, extrapolate_runtime
from . import tables, traces
from .sweeps import SweepRecord, SweepResult, sweep
from .report import ReportConfig, generate_report

__all__ = [
    "RunConfig",
    "TraversalRun",
    "calibrate_worker_memory",
    "run_pagerank",
    "run_traversal",
    "BENCH_SCALE",
    "ELASTIC_SWATH",
    "MEMORY_HEADROOM",
    "PAPER_BASE_SWATH",
    "PAPER_ROOTS",
    "TARGET_FRACTION",
    "TraversalScenario",
    "bc_scenario",
    "paper_partitioners",
    "Extrapolation",
    "extrapolate_runtime",
    "tables",
    "traces",
    "SweepRecord",
    "SweepResult",
    "sweep",
    "ReportConfig",
    "generate_report",
]
