"""Trace export: persist per-superstep statistics for external analysis.

The paper's figures are all per-superstep series; this module serializes a
:class:`~repro.bsp.superstep.JobTrace` to JSON or CSV so traces can be
archived next to bench output, plotted with any tool, or diffed across
cost-model revisions.  JSON round-trips losslessly (tests assert it,
including disk-buffered and jittered runs).

Format history: version 2 added ``disk_time`` and ``jitter_factor`` to
worker rows and ``injected`` to step rows; version 3 added ``queue_depth``
(messages buffered for the next superstep, measured at the barrier) to
worker rows.  :func:`trace_from_dict` still reads version-1 and -2 files;
the missing fields take their dataclass defaults (no disk I/O, no jitter,
no injections, empty queues).
"""

from __future__ import annotations

import csv
import io
import json
from pathlib import Path

from ..bsp.superstep import JobTrace, SuperstepStats, WorkerStepStats

__all__ = [
    "TRACE_FORMAT_VERSION",
    "trace_to_dict",
    "trace_from_dict",
    "write_json",
    "read_json",
    "write_csv",
    "to_csv_text",
]

TRACE_FORMAT_VERSION = 3

_WORKER_FIELDS = [
    "worker",
    "compute_calls",
    "msgs_in",
    "msgs_out_local",
    "msgs_out_remote",
    "bytes_out",
    "bytes_in",
    "peers_out",
    "peers_in",
    "queue_depth",
    "compute_time",
    "serialize_time",
    "network_time",
    "disk_time",
    "memory_bytes",
    "mem_slowdown",
    "jitter_factor",
    "restarted",
]

_STEP_FIELDS = [
    "index",
    "num_workers",
    "active_begin",
    "active_end",
    "injected",
    "barrier_time",
    "restart_time",
    "elapsed",
    "sim_time_end",
]


def trace_to_dict(trace: JobTrace) -> dict:
    """Plain-data representation of a trace (JSON-serializable)."""
    return {
        "version": TRACE_FORMAT_VERSION,
        "steps": [
            {
                **{f: getattr(s, f) for f in _STEP_FIELDS},
                "workers": [
                    {f: getattr(w, f) for f in _WORKER_FIELDS} for w in s.workers
                ],
            }
            for s in trace
        ],
    }


def trace_from_dict(data: dict) -> JobTrace:
    """Inverse of :func:`trace_to_dict`; reads format versions 1, 2 and 3."""
    version = data.get("version")
    if version not in (1, 2, TRACE_FORMAT_VERSION):
        raise ValueError(f"unsupported trace version {version!r}")
    if "steps" not in data:
        raise ValueError("not a trace dump: no 'steps' key (is this a spans file?)")
    trace = JobTrace()
    for sd in data["steps"]:
        stats = SuperstepStats(
            **{f: sd[f] for f in _STEP_FIELDS if f in sd},
        )
        for wd in sd["workers"]:
            stats.workers.append(
                WorkerStepStats(**{f: wd[f] for f in _WORKER_FIELDS if f in wd})
            )
        trace.append(stats)
    return trace


def write_json(trace: JobTrace, path: str | Path) -> None:
    Path(path).write_text(json.dumps(trace_to_dict(trace), indent=1))


def read_json(path: str | Path) -> JobTrace:
    return trace_from_dict(json.loads(Path(path).read_text()))


def write_csv(trace: JobTrace, path: str | Path) -> None:
    """Flat per-(superstep, worker) rows — convenient for spreadsheets/plots.

    Superstep-level fields repeat on each of its worker rows.
    """
    Path(path).write_text(to_csv_text(trace))


def to_csv_text(trace: JobTrace) -> str:
    buf = io.StringIO()
    writer = csv.writer(buf)
    writer.writerow(_STEP_FIELDS + _WORKER_FIELDS)
    for s in trace:
        step_part = [getattr(s, f) for f in _STEP_FIELDS]
        if not s.workers:
            writer.writerow(step_part + [""] * len(_WORKER_FIELDS))
        for w in s.workers:
            writer.writerow(step_part + [getattr(w, f) for f in _WORKER_FIELDS])
    return buf.getvalue()
