"""Observability layer: phase spans, metrics, exporters, live telemetry.

The paper's entire analysis (§V-§VII) rests on per-superstep
instrumentation of the BSP engine; this package is the runtime side of
that — always-available, near-zero-cost-when-off instrumentation the
engine stack reports into:

* :mod:`repro.obs.spans` — :class:`SpanTracer`, nested engine-phase spans
  on both the simulated and the host (``perf_counter``) clock, exportable
  as JSON or Chrome ``trace_event`` files;
* :mod:`repro.obs.metrics` — :class:`MetricsRegistry` of counters, gauges
  and fixed-bucket histograms populated by the engine, workers, swath
  controller and elastic engine;
* :mod:`repro.obs.export` — Prometheus text-format and JSON exporters for
  the registry;
* :mod:`repro.obs.progress` — :class:`RunReporter`, a superstep observer
  emitting throttled live progress lines to stderr;
* :mod:`repro.obs.summary` — utilization/breakdown tables from saved
  traces (backs ``repro trace summarize``);
* :mod:`repro.obs.timeline` — :class:`RunTimeline`, the structured
  per-(superstep, worker) attribution record, byte-identical across
  execution backends and rolled back with failure recovery;
* :mod:`repro.obs.diagnose` — straggler/skew detection with cause
  attribution (:class:`DiagnosticMonitor`) and critical-path breakdown;
* :mod:`repro.obs.perf` — timeline report/diff rendering (backs
  ``repro perf``);
* :mod:`repro.obs.flight` — :class:`FlightRecorder`, the always-on
  bounded ring of structured events (the crash "black box");
* :mod:`repro.obs.postmortem` — crash bundles dumped on abnormal job end
  and the incident-report renderer (backs ``repro postmortem``);
* :mod:`repro.obs.live` — :class:`LiveTelemetryServer`, a scrapeable
  ``/metrics`` + ``/healthz`` + ``/events`` HTTP endpoint for in-flight
  runs (backs ``repro run --live-port``);
* :mod:`repro.obs.cluster` — cluster telemetry plane: NTP-style
  :class:`ClockSync` remote-clock alignment, the JSON wire encoding of
  registry snapshots, and :class:`ClusterScraper` federation over every
  fleet daemon's telemetry server (backs ``/cluster`` and
  ``repro cluster status``).

Attach instruments through the job spec and read them after the run::

    from repro.obs import MetricsRegistry, SpanTracer, to_prometheus_text

    metrics, tracer = MetricsRegistry(), SpanTracer()
    run_job(JobSpec(..., metrics=metrics, tracer=tracer))
    print(to_prometheus_text(metrics))
    tracer.write_chrome_trace("run.trace.json")

A job with neither attached runs exactly as before: every instrumentation
site in the engine is guarded by a single ``is None`` check.
"""

from .cluster import (
    ClockSync,
    ClusterMember,
    ClusterScraper,
    discover_members,
    snapshot_to_wire,
    wire_to_snapshot,
)
from .diagnose import (
    DiagnosticMonitor,
    StragglerFlag,
    attribute_run,
    critical_path,
    flag_stragglers_step,
    worker_skew,
)
from .export import (
    to_json_dict,
    to_prometheus_text,
    write_metrics_json,
    write_prometheus,
)
from .flight import FlightEvent, FlightRecorder, read_event_log
from .live import EngineHealth, LiveTelemetryServer
from .metrics import (
    DEFAULT_SIZE_BUCKETS,
    DEFAULT_TIME_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)
from .perf import perf_diff, perf_report
from .postmortem import (
    PostmortemWriter,
    build_bundle,
    load_postmortem,
    render_incident_report,
    write_postmortem,
)
from .progress import RunReporter
from .spans import Span, SpanTracer
from .summary import summarize_events, summarize_spans, summarize_trace
from .sync import apply_snapshot, delta_snapshot, snapshot_registry
from .timeline import (
    RunTimeline,
    StepMeta,
    TimelineRow,
    read_timeline,
    timeline_from_dict,
    timeline_to_dict,
)

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "DEFAULT_TIME_BUCKETS",
    "DEFAULT_SIZE_BUCKETS",
    "Span",
    "SpanTracer",
    "RunReporter",
    "to_prometheus_text",
    "to_json_dict",
    "write_prometheus",
    "write_metrics_json",
    "summarize_trace",
    "summarize_spans",
    "summarize_events",
    "snapshot_registry",
    "delta_snapshot",
    "apply_snapshot",
    "RunTimeline",
    "TimelineRow",
    "StepMeta",
    "read_timeline",
    "timeline_to_dict",
    "timeline_from_dict",
    "DiagnosticMonitor",
    "StragglerFlag",
    "flag_stragglers_step",
    "attribute_run",
    "critical_path",
    "worker_skew",
    "perf_report",
    "perf_diff",
    "FlightEvent",
    "FlightRecorder",
    "read_event_log",
    "EngineHealth",
    "LiveTelemetryServer",
    "ClockSync",
    "ClusterMember",
    "ClusterScraper",
    "discover_members",
    "snapshot_to_wire",
    "wire_to_snapshot",
    "PostmortemWriter",
    "build_bundle",
    "write_postmortem",
    "load_postmortem",
    "render_incident_report",
]
