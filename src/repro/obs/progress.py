"""Live run telemetry: a throttled progress reporter for long jobs.

:class:`RunReporter` is a superstep observer (duck-typed against
:class:`~repro.bsp.engine.SuperstepObserver` so this module stays free of
engine imports) that prints one status line per superstep to stderr —
active vertices, message throughput, peak worker memory, swath progress,
simulated time — throttled to at most one line per ``min_interval`` host
seconds so tight simulated loops don't flood the terminal.  The first
superstep and the end-of-job summary always print.

Attach it like any observer::

    reporter = RunReporter()
    run_job(JobSpec(..., observers=[controller, reporter]))

or from the CLI with ``repro run ... --progress``.

Two multiprocess-safety details: the reporter records the pid that built
it and silently drops emits from any other process, so a forked
:class:`~repro.dist.engine.ProcessBSPEngine` child that inherits the
observer can never interleave bytes with the coordinator's lines (child
stdout/stderr is instead captured and relayed through the coordinator,
which prints it atomically with a ``[worker N]`` prefix); and when a
:class:`~repro.obs.diagnose.DiagnosticMonitor` is attached, the throttled
line carries the current straggler annotation (``straggler w2 x2.14
(jitter)``) so skew is visible live, not just post-mortem.
"""

from __future__ import annotations

import os
import sys
import time
from typing import Callable, TextIO

__all__ = ["RunReporter"]


def _si(n: float) -> str:
    """Compact human number: 1234567 -> '1.23M'."""
    for factor, suffix in ((1e9, "G"), (1e6, "M"), (1e3, "k")):
        if abs(n) >= factor:
            return f"{n / factor:.2f}{suffix}"
    return f"{n:.0f}" if float(n).is_integer() else f"{n:.2f}"


class RunReporter:
    """Throttled per-superstep progress lines (see module docstring)."""

    def __init__(
        self,
        stream: TextIO | None = None,
        min_interval: float = 0.5,
        clock: Callable[[], float] = time.perf_counter,
        monitor=None,
    ) -> None:
        if min_interval < 0:
            raise ValueError("min_interval must be >= 0")
        self.stream = stream if stream is not None else sys.stderr
        self.min_interval = min_interval
        self._clock = clock
        #: optional DiagnosticMonitor whose flags annotate progress lines
        self.monitor = monitor
        # Forked ProcessBSPEngine children inherit this observer; only the
        # process that constructed it may write, or lines interleave.
        self._owner_pid = os.getpid()
        self._last_emit = -float("inf")
        self._host_start = 0.0
        self.lines_emitted = 0

    # ------------------------------------------------------------------
    # Observer protocol (duck-typed SuperstepObserver)
    # ------------------------------------------------------------------
    def on_job_start(self, engine) -> None:
        self._host_start = self._clock()
        self._emit(
            f"[repro] job start | {engine.graph.num_vertices:,} vertices | "
            f"{engine.num_workers} workers | "
            f"program {type(engine.job.program).__name__}"
        )

    def on_superstep_end(self, engine, stats) -> None:
        now = self._clock()
        if stats.index > 0 and now - self._last_emit < self.min_interval:
            return
        self._last_emit = now
        msg_rate = stats.total_messages / stats.elapsed if stats.elapsed > 0 else 0.0
        line = (
            f"[repro] step {stats.index} | active {stats.active_end:,} | "
            f"msgs {_si(stats.total_messages)} ({_si(msg_rate)}/s sim) | "
            f"peak mem {stats.peak_memory / 1e6:.1f}MB | "
            f"workers {stats.num_workers} | sim {stats.sim_time_end:.2f}s"
        )
        swath = self._swath_phase(engine)
        if swath:
            line += f" | {swath}"
        straggler = self._straggler_phase(stats.index)
        if straggler:
            line += f" | {straggler}"
        self._emit(line)

    def has_pending_work(self) -> bool:
        return False

    def on_job_end(self, engine, result) -> None:
        host = self._clock() - self._host_start
        trace = result.trace
        self._emit(
            f"[repro] done | {result.supersteps} supersteps | "
            f"sim {trace.total_time:.2f}s | host {host:.2f}s | "
            f"msgs {_si(trace.total_messages)} | "
            f"util {trace.utilization():.0%} | cost ${result.total_cost:.4f}"
        )

    # ------------------------------------------------------------------
    def _swath_phase(self, engine) -> str:
        """Swath progress when a swath controller rides the same job."""
        for obs in getattr(engine, "_observers", ()):
            events = getattr(obs, "events", None)
            if events and hasattr(obs, "num_swaths"):
                remaining = events[-1].remaining_after
                return f"swath {obs.num_swaths} ({remaining} roots left)"
        return ""

    def _straggler_phase(self, index: int) -> str:
        """Current straggler annotation from an attached monitor."""
        if self.monitor is None:
            return ""
        flags = [f for f in self.monitor.flags if f.superstep == index]
        if not flags:
            return ""
        worst = max(flags, key=lambda f: f.ratio)
        return (
            f"straggler w{worst.worker} x{worst.ratio:.2f} ({worst.cause})"
        )

    def _emit(self, line: str) -> None:
        if os.getpid() != self._owner_pid:
            return
        print(line, file=self.stream)
        self.lines_emitted += 1
