"""`repro perf`: render and diff recorded run timelines.

Two entry points, both pure functions over
:class:`~repro.obs.timeline.RunTimeline` dumps:

* :func:`perf_report` — the attribution tables: run summary,
  critical-path phase breakdown (compute / comm / barrier / overhead +
  barrier-skew utilization, Figs. 9-14 offline), per-worker skew, the
  straggler flags with causes, and the repartition hint when the flags
  support one.
* :func:`perf_diff` — per-phase comparison of two runs; any phase (or
  message volume) regressing beyond ``threshold`` flags the diff, which
  the CI smoke step turns into a failing exit code.  Phases below
  ``min_share`` of either run's total are ignored — a 3x blowup of a
  0.1% phase is noise, not a regression.
"""

from __future__ import annotations

from ..analysis.tables import table
from .diagnose import attribute_run, critical_path, dominant_cause, worker_skew

__all__ = ["perf_report", "perf_diff", "PHASES"]

#: critical-path phases compared by perf_diff, in report order
PHASES = ("compute", "comm", "barrier", "overhead")


def _fmt_secs(x: float) -> str:
    return f"{x:.4g}s"


def _cost_report(timeline):
    """Price a timeline with the default book (paper's VM flavors).

    Timeline dumps carry no VM information, so reports price them with
    the paper's standard fleet (large workers, small manager) — the
    same table the engines bill with by default, which keeps the perf
    dollars comparable with ``JobResult.cost``.
    """
    from ..cloud.costmeter import attribute_cost

    return attribute_cost(timeline)


def perf_report(
    timeline,
    mad_threshold: float = 3.5,
    min_ratio: float = 1.2,
    degree_share=None,
    max_flags: int = 20,
) -> str:
    """Human-readable attribution report for one recorded timeline."""
    cp = critical_path(timeline)
    cost = _cost_report(timeline)
    flags = attribute_run(
        timeline,
        mad_threshold=mad_threshold,
        min_ratio=min_ratio,
        degree_share=degree_share,
    )
    sections = []

    sections.append(
        "run: "
        f"{len(timeline.steps)} supersteps x {timeline.num_workers} workers, "
        f"{_fmt_secs(cp['total'])} simulated, "
        f"{timeline.total_messages} messages, "
        f"${cost.total:.4f}"
        + (
            f", {timeline.rolled_back_rows} rows rolled back by recovery"
            if timeline.rolled_back_rows
            else ""
        )
    )

    total = cp["total"]
    rows = [
        (phase, _fmt_secs(cp[phase]),
         f"{cp[phase] / total:.1%}" if total > 0 else "-")
        for phase in PHASES
    ]
    rows.append(("total", _fmt_secs(total), "100.0%" if total > 0 else "-"))
    sections.append(
        table(["phase", "sim time", "share"], rows,
              title="critical path (pacing worker per superstep)")
    )
    sections.append(
        f"utilization {cp['utilization']:.1%} "
        f"(barrier-skew wait {_fmt_secs(cp['skew_wait'])} worker-seconds)"
    )

    skew = worker_skew(timeline)
    per_worker_flags = [0] * timeline.num_workers
    for f in flags:
        per_worker_flags[f.worker] += 1
    worker_cost = {
        entry["worker"]: entry["total"] for entry in cost.per_worker
    }
    wrows = [
        (
            f"w{w}",
            _fmt_secs(float(skew["elapsed"][w])),
            _fmt_secs(float(skew["compute_time"][w])),
            _fmt_secs(float(skew["comm_time"][w])),
            int(skew["msgs_out"][w]),
            int(skew["msgs_out_remote"][w]),
            f"${worker_cost.get(w, 0.0):.4f}",
            per_worker_flags[w] or "",
        )
        for w in range(timeline.num_workers)
    ]
    sections.append(
        table(
            ["worker", "elapsed", "compute", "comm",
             "msgs out", "remote", "cost", "flags"],
            wrows,
            title="per-worker totals",
        )
    )
    sections.append("cost: " + cost.summary())

    if flags:
        cause, count = dominant_cause(flags)
        lines = [f"straggler flags ({len(flags)}; dominant cause: "
                 f"{cause} x{count}):"]
        lines += [f"  {f.line()}" for f in flags[:max_flags]]
        if len(flags) > max_flags:
            lines.append(f"  ... {len(flags) - max_flags} more")
        sections.append("\n".join(lines))
        from ..partition.advisor import repartition_hint

        hint = repartition_hint(flags, num_steps=len(timeline.steps))
        if hint:
            sections.append(f"hint: {hint}")
    else:
        sections.append("straggler flags: none")

    if timeline.events:
        kinds: dict[str, int] = {}
        for e in timeline.events:
            kinds[e["kind"]] = kinds.get(e["kind"], 0) + 1
        sections.append(
            "events: "
            + ", ".join(f"{k} x{n}" for k, n in sorted(kinds.items()))
        )
    return "\n\n".join(sections)


def perf_diff(
    base,
    new,
    threshold: float = 0.10,
    min_share: float = 0.005,
) -> tuple[str, bool]:
    """Compare two timelines phase by phase.

    Returns ``(report_text, regressed)``; ``regressed`` is True when any
    phase carrying at least ``min_share`` of either run's total slowed
    down by more than ``threshold`` (relative), or total simulated time
    or message volume did.
    """
    cp_base = critical_path(base)
    cp_new = critical_path(new)
    regressed = []
    rows = []
    for phase in (*PHASES, "total"):
        b, n = cp_base[phase], cp_new[phase]
        share = max(
            b / cp_base["total"] if cp_base["total"] > 0 else 0.0,
            n / cp_new["total"] if cp_new["total"] > 0 else 0.0,
        )
        delta = (n - b) / b if b > 0 else (float("inf") if n > 0 else 0.0)
        material = phase == "total" or share >= min_share
        bad = material and delta > threshold
        if bad:
            regressed.append(phase)
        rows.append(
            (
                phase,
                _fmt_secs(b),
                _fmt_secs(n),
                f"{delta:+.1%}" if delta != float("inf") else "new",
                "REGRESSED" if bad else ("" if material else "(minor)"),
            )
        )
    mb, mn = base.total_messages, new.total_messages
    mdelta = (mn - mb) / mb if mb > 0 else (float("inf") if mn > 0 else 0.0)
    if mdelta > threshold:
        regressed.append("messages")
    rows.append(
        (
            "messages",
            str(mb),
            str(mn),
            f"{mdelta:+.1%}" if mdelta != float("inf") else "new",
            "REGRESSED" if mdelta > threshold else "",
        )
    )
    # Dollar gating: same threshold, same default price book both sides
    # — a run that got faster but costlier (more workers, more egress)
    # still flags.
    cb, cn = _cost_report(base).total, _cost_report(new).total
    cdelta = (cn - cb) / cb if cb > 0 else (float("inf") if cn > 0 else 0.0)
    if cdelta > threshold:
        regressed.append("cost")
    rows.append(
        (
            "cost",
            f"${cb:.4f}",
            f"${cn:.4f}",
            f"{cdelta:+.1%}" if cdelta != float("inf") else "new",
            "REGRESSED" if cdelta > threshold else "",
        )
    )
    rows.append(
        ("supersteps", str(len(base.steps)), str(len(new.steps)), "", "")
    )
    text = table(
        ["phase", "base", "new", "delta", ""],
        rows,
        title=f"perf diff (threshold {threshold:.0%})",
    )
    if regressed:
        text += (
            "\n\nREGRESSION: "
            + ", ".join(regressed)
            + f" beyond {threshold:.0%}"
        )
    else:
        text += "\n\nclean: no phase regressed beyond the threshold"
    return text, bool(regressed)
