"""Cross-process metric marshalling: snapshot deltas, apply to a registry.

The process engine (:mod:`repro.dist`) runs each partition worker in its
own OS process, and each child keeps a private :class:`MetricsRegistry`
so hot-path instrumentation never crosses a process boundary.  At every
superstep barrier the child ships *deltas* — what changed since the last
barrier — and the coordinator folds them into the parent registry, so
``--metrics-out`` sees one coherent registry regardless of engine.

Wire format is plain tuples/dicts (picklable, no instrument objects):

``snapshot_registry(reg)`` → ``{key: state}`` where

* ``key``   = ``(name, kind, labels, help, buckets-or-None)``
* ``state`` = counter/gauge value, or ``(bucket_counts, sum, count)``

``delta_snapshot(cur, prev)`` subtracts a previous snapshot (gauges are
last-writer-wins, so their delta is the current value), and
``apply_snapshot(reg, snap)`` replays a delta into a registry — counters
via :meth:`Counter.inc`, gauges via :meth:`Gauge.set`, histograms via
:meth:`Histogram.add_raw`.  Applying is idempotent-free by design: apply
each delta exactly once.
"""

from __future__ import annotations

from typing import Any, Mapping

from .metrics import Counter, Gauge, Histogram, MetricsRegistry

__all__ = [
    "snapshot_registry",
    "delta_snapshot",
    "apply_snapshot",
]

#: key = (name, kind, labels, help, buckets-or-None)
SnapKey = tuple[str, str, tuple, str, tuple | None]


def snapshot_registry(reg: MetricsRegistry) -> dict[SnapKey, Any]:
    """Freeze a registry's current state into a picklable dict."""
    snap: dict[SnapKey, Any] = {}
    for name, kind, help, insts in reg.collect():
        for inst in insts:
            if isinstance(inst, Histogram):
                key = (name, kind, inst.labels, help, inst.buckets)
                snap[key] = (tuple(inst.counts), inst.sum, inst.count)
            else:
                key = (name, kind, inst.labels, help, None)
                snap[key] = inst.value
    return snap


def delta_snapshot(
    cur: Mapping[SnapKey, Any], prev: Mapping[SnapKey, Any]
) -> dict[SnapKey, Any]:
    """What changed between two snapshots of the *same* registry.

    Counters and histograms subtract; gauges carry their current value
    (the parent will ``set()`` it).  Keys absent from ``prev`` pass
    through whole.  Unchanged entries are dropped, keeping barrier
    payloads proportional to activity, not registry size.
    """
    out: dict[SnapKey, Any] = {}
    for key, cur_state in cur.items():
        kind = key[1]
        prev_state = prev.get(key)
        if kind == "gauge":
            if prev_state is None or prev_state != cur_state:
                out[key] = cur_state
        elif kind == "histogram":
            if prev_state is None:
                if cur_state[2]:  # any observations at all
                    out[key] = cur_state
                continue
            counts = tuple(
                c - p for c, p in zip(cur_state[0], prev_state[0])
            )
            d_count = cur_state[2] - prev_state[2]
            if d_count:
                out[key] = (counts, cur_state[1] - prev_state[1], d_count)
        else:  # counter
            delta = cur_state - (prev_state or 0.0)
            if delta:
                out[key] = delta
    return out


def apply_snapshot(reg: MetricsRegistry, snap: Mapping[SnapKey, Any]) -> None:
    """Fold a (delta) snapshot into ``reg``, creating instruments lazily."""
    for (name, kind, labels, help, buckets), state in snap.items():
        label_kwargs = dict(labels)
        if kind == "counter":
            reg.counter(name, help=help, **label_kwargs).inc(state)
        elif kind == "gauge":
            reg.gauge(name, help=help, **label_kwargs).set(state)
        elif kind == "histogram":
            counts, total, count = state
            reg.histogram(
                name, help=help, buckets=buckets, **label_kwargs
            ).add_raw(counts, total, count)
        else:  # pragma: no cover - future instrument kinds
            raise ValueError(f"cannot marshal instrument kind {kind!r}")
