"""Exporters: render a :class:`~repro.obs.metrics.MetricsRegistry`.

Two formats:

* **Prometheus text exposition format** (``to_prometheus_text``) — the
  de-facto standard for metrics interchange; every counter/gauge becomes a
  ``name{labels} value`` sample line, histograms expand into cumulative
  ``_bucket{le=...}`` series plus ``_sum``/``_count``.  Output is parseable
  by any Prometheus scraper and by the syntax checks in our tests.
* **JSON** (``to_json_dict``) — a faithful machine-readable dump for
  archiving next to bench output and diffing across revisions.
"""

from __future__ import annotations

import json
from pathlib import Path

from .metrics import Histogram, MetricsRegistry

__all__ = [
    "to_prometheus_text",
    "to_json_dict",
    "write_prometheus",
    "write_metrics_json",
]


def _escape_label_value(v: str) -> str:
    return v.replace("\\", r"\\").replace('"', r"\"").replace("\n", r"\n")


def _escape_help(v: str) -> str:
    return v.replace("\\", r"\\").replace("\n", r"\n")


def _labels_text(labels: tuple[tuple[str, str], ...], extra: str = "") -> str:
    parts = [f'{k}="{_escape_label_value(v)}"' for k, v in labels]
    if extra:
        parts.append(extra)
    return "{" + ",".join(parts) + "}" if parts else ""


def _num(v: float) -> str:
    """Prometheus sample value: integers render bare, floats via repr."""
    if float(v).is_integer() and abs(v) < 1e15:
        return str(int(v))
    return repr(float(v))


def _bound(b: float) -> str:
    return _num(b) if not float(b).is_integer() else str(float(b))


def to_prometheus_text(registry: MetricsRegistry) -> str:
    """The whole registry in Prometheus text exposition format."""
    lines: list[str] = []
    for name, kind, help_text, instruments in registry.collect():
        if help_text:
            lines.append(f"# HELP {name} {_escape_help(help_text)}")
        lines.append(f"# TYPE {name} {kind}")
        for inst in instruments:
            if isinstance(inst, Histogram):
                cumulative = inst.cumulative_counts()
                bounds = [_bound(b) for b in inst.buckets] + ["+Inf"]
                for le, count in zip(bounds, cumulative):
                    labels = _labels_text(inst.labels, 'le="' + le + '"')
                    lines.append(f"{name}_bucket{labels} {count}")
                lines.append(
                    f"{name}_sum{_labels_text(inst.labels)} {_num(inst.sum)}"
                )
                lines.append(
                    f"{name}_count{_labels_text(inst.labels)} {inst.count}"
                )
            else:
                lines.append(
                    f"{name}{_labels_text(inst.labels)} {_num(inst.value)}"
                )
    return "\n".join(lines) + ("\n" if lines else "")


def to_json_dict(registry: MetricsRegistry) -> dict:
    """JSON-serializable dump of every instrument in the registry."""
    families = []
    for name, kind, help_text, instruments in registry.collect():
        series = []
        for inst in instruments:
            entry: dict = {"labels": dict(inst.labels)}
            if isinstance(inst, Histogram):
                entry["buckets"] = list(inst.buckets)
                entry["counts"] = list(inst.counts)
                entry["sum"] = inst.sum
                entry["count"] = inst.count
            else:
                entry["value"] = inst.value
            series.append(entry)
        families.append(
            {"name": name, "kind": kind, "help": help_text, "series": series}
        )
    return {"version": 1, "metrics": families}


def write_prometheus(registry: MetricsRegistry, path: str | Path) -> None:
    Path(path).write_text(to_prometheus_text(registry))


def write_metrics_json(registry: MetricsRegistry, path: str | Path) -> None:
    Path(path).write_text(json.dumps(to_json_dict(registry), indent=1))
