"""Phase-span tracer: nested engine phases on two clocks at once.

Every engine phase — superstep, compute, flush, aggregate-merge,
master-compute, barrier, checkpoint, recovery, elastic-resize — is recorded
as a :class:`Span` carrying *both* timelines the reproduction cares about:

* **host time** (``time.perf_counter``): where real CPU time goes in this
  Python process, the prerequisite for optimizing the engine itself;
* **simulated time**: the cloud model's seconds, the paper's currency.

Spans nest (a stack tracks the open span), so the export preserves the
phase hierarchy::

    job
      superstep 0
        compute | flush | aggregate-merge | master-compute | barrier
      superstep 1
        ...

Exports:

* :meth:`SpanTracer.to_dict` / :meth:`write_json` — plain JSON, stable
  field names, host times relative to the tracer's epoch;
* :meth:`SpanTracer.to_chrome_trace` / :meth:`write_chrome_trace` — Chrome
  ``trace_event`` format ("X" complete events, microsecond timestamps),
  loadable in ``chrome://tracing`` / Perfetto; simulated times ride along
  in each event's ``args``.

Besides spans, the tracer records **counter samples**
(:meth:`SpanTracer.counter`): named numeric series sampled at a point in
time — messages in flight, per-worker memory — exported as Chrome "C"
(counter) events, which the trace viewers render as stacked area tracks
under the phase rows.  Counter samples bumped the span dump to format
version 2; version-1 dumps (no ``counters`` key) stay readable.

The engine holds a tracer only when the job attached one; with none
attached every instrumentation site is a single ``is None`` check.
"""

from __future__ import annotations

import json
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable

__all__ = ["Span", "SpanTracer"]

#: version 2 added the ``counters`` list; readers accept 1 and 2
SPAN_FORMAT_VERSION = 2


@dataclass
class Span:
    """One recorded phase: name + the two timelines + free-form attrs."""

    index: int
    name: str
    category: str
    host_start: float  # seconds since the tracer's epoch
    sim_start: float
    parent: int | None = None
    depth: int = 0
    host_end: float | None = None
    sim_end: float | None = None
    attrs: dict[str, Any] = field(default_factory=dict)

    @property
    def host_duration(self) -> float:
        return (self.host_end - self.host_start) if self.host_end is not None else 0.0

    @property
    def sim_duration(self) -> float:
        return (self.sim_end - self.sim_start) if self.sim_end is not None else 0.0

    @property
    def closed(self) -> bool:
        return self.host_end is not None

    def set_sim_duration(self, seconds: float) -> None:
        """Attribute simulated seconds explicitly (phases the cost model
        prices in one lump rather than while they execute)."""
        self.sim_end = self.sim_start + float(seconds)

    def to_dict(self) -> dict:
        return {
            "index": self.index,
            "name": self.name,
            "category": self.category,
            "parent": self.parent,
            "depth": self.depth,
            "host_start": self.host_start,
            "host_duration": self.host_duration,
            "sim_start": self.sim_start,
            "sim_duration": self.sim_duration,
            "attrs": self.attrs,
        }


class SpanTracer:
    """Records nested :class:`Span`\\ s; the engine's phase chronicle.

    ``start``/``end`` follow stack discipline (the engine's phases are
    strictly nested); ``record`` emits a leaf span in one call for phases
    whose cost is known only as a lump sum (e.g. the modeled barrier).
    """

    def __init__(self, clock: Callable[[], float] = time.perf_counter) -> None:
        self._clock = clock
        self._epoch = clock()
        self.spans: list[Span] = []
        self._stack: list[Span] = []
        self.counters: list[dict[str, Any]] = []
        #: optional :class:`repro.obs.FlightRecorder`; when set (the engine
        #: wires it when a job attaches both sinks), every start/end also
        #: emits a ``span-open``/``span-close`` flight event so the crash
        #: tail shows the phase that was in flight
        self.flight: Any = None

    # ------------------------------------------------------------------
    def _now(self) -> float:
        return self._clock() - self._epoch

    def now(self) -> float:
        """Current tracer time (seconds since epoch), for restamping."""
        return self._now()

    def start(self, name: str, sim: float = 0.0, category: str = "phase",
              **attrs: Any) -> Span:
        """Open a span; it becomes the parent of spans started before end."""
        parent = self._stack[-1] if self._stack else None
        span = Span(
            index=len(self.spans),
            name=name,
            category=category,
            host_start=self._now(),
            sim_start=float(sim),
            parent=parent.index if parent is not None else None,
            depth=len(self._stack),
            attrs=dict(attrs),
        )
        self.spans.append(span)
        self._stack.append(span)
        if self.flight is not None:
            self.flight.record(
                "span-open", sim=span.sim_start, name=span.name,
                superstep=int(span.attrs.get("superstep", -1)),
                depth=span.depth,
            )
        return span

    def end(self, span: Span, sim: float | None = None, **attrs: Any) -> Span:
        """Close ``span``; must be the innermost open span."""
        if not self._stack or self._stack[-1] is not span:
            raise RuntimeError(
                f"span {span.name!r} is not the innermost open span"
            )
        self._stack.pop()
        span.host_end = self._now()
        if span.sim_end is None or sim is not None:
            # an explicit set_sim_duration() survives a bare end()
            span.sim_end = float(sim) if sim is not None else span.sim_start
        if attrs:
            span.attrs.update(attrs)
        if self.flight is not None:
            self.flight.record(
                "span-close", sim=span.sim_end, name=span.name,
                superstep=int(span.attrs.get("superstep", -1)),
                host_seconds=round(span.host_duration, 6),
            )
        return span

    def record(self, name: str, sim: float = 0.0, sim_duration: float = 0.0,
               host_duration: float = 0.0, category: str = "phase",
               host_end: float | None = None, **attrs: Any) -> Span:
        """Emit an already-complete leaf span (no stack interaction).

        By default the span ends *now* and extends ``host_duration``
        backwards.  Pass ``host_end`` (tracer time) to place it
        elsewhere — used when restamping remote work into this tracer's
        timebase after clock alignment.
        """
        parent = self._stack[-1] if self._stack else None
        now = self._now() if host_end is None else float(host_end)
        span = Span(
            index=len(self.spans),
            name=name,
            category=category,
            host_start=now - host_duration,
            sim_start=float(sim),
            parent=parent.index if parent is not None else None,
            depth=len(self._stack),
            host_end=now,
            sim_end=float(sim) + float(sim_duration),
            attrs=dict(attrs),
        )
        self.spans.append(span)
        return span

    def counter(self, name: str, sim: float = 0.0, **values: float) -> None:
        """Sample a named counter track at this instant.

        ``values`` are the track's series (a Chrome "C" event draws one
        stacked area per key) — e.g. ``counter("worker-memory", sim=t,
        w0=..., w1=...)``.  Samples are ordered by recording time.
        """
        self.counters.append(
            {
                "name": name,
                "host": self._now(),
                "sim": float(sim),
                "values": {k: float(v) for k, v in values.items()},
            }
        )

    def unwind(self, span: Span | None = None, sim: float | None = None) -> int:
        """Abort-close spans left open above ``span``; returns the count.

        The abnormal-end path breaks stack discipline: a compute phase
        that raises leaves its span open, and closing the enclosing
        superstep span would then fail — masking the original error.
        ``unwind(span)`` repairs the stack by closing (``aborted: true``)
        everything opened inside ``span``, leaving ``span`` itself as the
        innermost open span for a normal :meth:`end`.  With ``span`` None
        every open span is aborted (final job teardown).
        """
        if span is not None and span not in self._stack:
            return 0
        n = 0
        while self._stack and self._stack[-1] is not span:
            self.end(self._stack[-1], sim=sim, aborted=True)
            n += 1
        return n

    # ------------------------------------------------------------------
    @property
    def open_spans(self) -> int:
        return len(self._stack)

    def named(self, name: str) -> list[Span]:
        return [s for s in self.spans if s.name == name]

    def total_sim(self, name: str) -> float:
        """Sum of simulated durations over all spans called ``name``."""
        return sum(s.sim_duration for s in self.named(name))

    def total_host(self, name: str) -> float:
        return sum(s.host_duration for s in self.named(name))

    # ------------------------------------------------------------------
    # Exports
    # ------------------------------------------------------------------
    def to_dict(self) -> dict:
        return {
            "version": SPAN_FORMAT_VERSION,
            "clock": "perf_counter",
            "spans": [s.to_dict() for s in self.spans],
            "counters": [dict(c) for c in self.counters],
        }

    def write_json(self, path: str | Path) -> None:
        Path(path).write_text(json.dumps(self.to_dict(), indent=1))

    def to_chrome_trace(self) -> dict:
        """Chrome ``trace_event`` JSON (open in chrome://tracing/Perfetto)."""
        events = []
        for s in self.spans:
            events.append(
                {
                    "name": s.name,
                    "cat": s.category,
                    "ph": "X",
                    "ts": s.host_start * 1e6,
                    "dur": s.host_duration * 1e6,
                    "pid": 0,
                    "tid": 0,
                    "args": {
                        "sim_start": s.sim_start,
                        "sim_duration": s.sim_duration,
                        **s.attrs,
                    },
                }
            )
        for c in self.counters:
            events.append(
                {
                    "name": c["name"],
                    "cat": "counter",
                    "ph": "C",
                    "ts": c["host"] * 1e6,
                    "pid": 0,
                    "args": {**c["values"]},
                }
            )
        return {"traceEvents": events, "displayTimeUnit": "ms"}

    def write_chrome_trace(self, path: str | Path) -> None:
        Path(path).write_text(json.dumps(self.to_chrome_trace()))
