"""Straggler/skew attribution and critical-path analysis over timelines.

The paper's §V-§VII diagnosis questions — *which worker is pacing the
barrier, and why* — answered online.  Works on anything row-shaped like
:class:`~repro.obs.timeline.TimelineRow` (the engine's live
:class:`~repro.bsp.superstep.WorkerStepStats` qualify), so the same code
runs inside the job as a superstep observer and offline over a saved
timeline (``repro perf report``).

Detection: per superstep, the MAD modified z-score of per-worker elapsed
times (z = 0.6745·(x−med)/MAD — robust to the one straggler it is looking
for) plus a minimum slowdown ratio so microsecond wobbles never flag.
When the fleet is too symmetric for a meaningful MAD (the common case:
identical workers + one outlier makes MAD exactly 0), the ratio test
alone decides.

Attribution walks the row's own decomposition, most-specific cause first:

* ``jitter``          — the injected multi-tenant wobble (the row records
                        the factor the engine applied);
* ``memory-pressure`` — spill slowdown from the memory model;
* ``remote-traffic``  — comm-dominated row with an outsized share of the
                        fleet's remote bytes (§VII's min-cut cure);
* ``degree-skew``     — compute-dominated row on the partition hosting an
                        outsized share of total out-degree
                        (:func:`repro.partition.metrics.part_degrees`);
* ``unknown``         — slow without a story (surfaced, never guessed).

:class:`DiagnosticMonitor` packages the detector as a superstep observer:
flags export as ``repro_straggler_flags_total{cause=}``, trace events, and
a :meth:`~DiagnosticMonitor.skew_signal` the elastic layer's
:class:`~repro.elastic.live.LiveSkewGuard` and the repartition advisor
(:func:`repro.partition.advisor.repartition_hint`) consume.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

__all__ = [
    "StragglerFlag",
    "flag_stragglers_step",
    "attribute_run",
    "DiagnosticMonitor",
    "critical_path",
    "worker_skew",
    "dominant_cause",
]

#: slowdown factors this close to 1.0 are considered "not applied"
_FACTOR_EPS = 0.02


@dataclass(frozen=True)
class StragglerFlag:
    """One (superstep, worker) flagged as pacing the barrier."""

    superstep: int
    worker: int
    #: elapsed / median elapsed of the fleet this superstep
    ratio: float
    #: MAD modified z-score (0.0 when the fleet was too symmetric for MAD)
    z: float
    cause: str  # jitter | memory-pressure | remote-traffic | degree-skew | unknown
    detail: str

    def line(self) -> str:
        return (
            f"s{self.superstep:<4d} w{self.worker:<3d} "
            f"x{self.ratio:.2f} {self.cause} ({self.detail})"
        )


def _comm_time(row) -> float:
    return row.serialize_time + row.network_time + row.disk_time


def _attribute(row, rows, degree_share) -> tuple[str, str]:
    """Why is this row slow? Most specific recorded cause wins."""
    if row.jitter_factor > 1.0 + _FACTOR_EPS:
        return "jitter", f"jitter_factor={row.jitter_factor:.2f}"
    if row.mem_slowdown > 1.0 + _FACTOR_EPS:
        return "memory-pressure", f"mem_slowdown={row.mem_slowdown:.2f}"
    comm = _comm_time(row)
    busy = row.compute_time + comm
    if busy <= 0:
        return "unknown", "no recorded activity"
    n = len(rows)
    if comm > row.compute_time:
        total_remote = sum(r.msgs_out_remote + r.msgs_in for r in rows)
        own_remote = row.msgs_out_remote + row.msgs_in
        share = own_remote / total_remote if total_remote > 0 else 0.0
        if n > 1 and share > 1.15 / n:
            return (
                "remote-traffic",
                f"comm {comm / busy:.0%} of busy, "
                f"{share:.0%} of fleet message traffic",
            )
    if degree_share is not None and row.worker < len(degree_share):
        share = float(degree_share[row.worker])
        if n > 1 and share > 1.15 / n:
            return (
                "degree-skew",
                f"hosts {share:.0%} of total out-degree",
            )
    total_calls = sum(r.compute_calls for r in rows)
    if n > 1 and total_calls > 0:
        share = row.compute_calls / total_calls
        if share > 1.15 / n:
            return "degree-skew", f"{share:.0%} of fleet compute calls"
    return "unknown", f"compute {row.compute_time / busy:.0%} of busy"


def flag_stragglers_step(
    rows: Sequence,
    mad_threshold: float = 3.5,
    min_ratio: float = 1.2,
    degree_share=None,
) -> list[StragglerFlag]:
    """Flag stragglers among one superstep's per-worker rows.

    ``rows`` duck-type :class:`~repro.obs.timeline.TimelineRow`;
    ``degree_share`` is the optional per-worker fraction of total
    out-degree hosted (for degree-skew attribution).
    """
    if len(rows) < 2:
        return []
    elapsed = np.array([r.elapsed for r in rows])
    med = float(np.median(elapsed))
    if med <= 0:
        return []
    mad = float(np.median(np.abs(elapsed - med)))
    flags = []
    for r, x in zip(rows, elapsed):
        ratio = float(x / med)
        if ratio < min_ratio:
            continue
        z = 0.6745 * (x - med) / mad if mad > 0 else 0.0
        if mad > 0 and z < mad_threshold:
            continue
        cause, detail = _attribute(r, rows, degree_share)
        flags.append(
            StragglerFlag(
                superstep=r.superstep if hasattr(r, "superstep") else -1,
                worker=r.worker,
                ratio=ratio,
                z=float(z),
                cause=cause,
                detail=detail,
            )
        )
    return flags


def attribute_run(
    timeline,
    mad_threshold: float = 3.5,
    min_ratio: float = 1.2,
    degree_share=None,
) -> list[StragglerFlag]:
    """Run the per-superstep detector over a whole recorded timeline."""
    flags: list[StragglerFlag] = []
    for step in timeline.steps:
        flags.extend(
            flag_stragglers_step(
                timeline.rows_of_step(step.superstep),
                mad_threshold=mad_threshold,
                min_ratio=min_ratio,
                degree_share=degree_share,
            )
        )
    return flags


def dominant_cause(flags: Sequence[StragglerFlag]) -> tuple[str, int] | None:
    """(cause, count) of the most common attribution, or None."""
    counts: dict[str, int] = {}
    for f in flags:
        counts[f.cause] = counts.get(f.cause, 0) + 1
    if not counts:
        return None
    cause = max(counts, key=lambda c: (counts[c], c))
    return cause, counts[cause]


class DiagnosticMonitor:
    """Online straggler detector as a superstep observer.

    Attach like any observer (``observers=[DiagnosticMonitor(...)]``);
    needs no timeline — it reads each superstep's live stats.  Flags
    accumulate on :attr:`flags`, export as
    ``repro_straggler_flags_total{cause=}`` on the engine's registry and
    as ``straggler`` trace events on its tracer, and feed
    :meth:`skew_signal` — an EMA of the worst per-step slowdown ratio
    (1.0 = balanced) that :class:`~repro.elastic.live.LiveSkewGuard`
    vetoes scale-in on.
    """

    def __init__(
        self,
        mad_threshold: float = 3.5,
        min_ratio: float = 1.2,
        ema_alpha: float = 0.3,
    ) -> None:
        if not 0 < ema_alpha <= 1:
            raise ValueError("ema_alpha must be in (0, 1]")
        self.mad_threshold = float(mad_threshold)
        self.min_ratio = float(min_ratio)
        self.ema_alpha = float(ema_alpha)
        self.flags: list[StragglerFlag] = []
        self._degree_share = None
        self._skew = 1.0
        self._metrics = None
        self._tracer = None
        self._flight = None

    # ---- observer protocol -------------------------------------------
    def on_job_start(self, engine) -> None:
        self._metrics = engine.metrics
        self._tracer = engine.tracer
        self._flight = getattr(engine, "flight", None)
        self._degree_share = self._degree_share_of(engine)

    @staticmethod
    def _degree_share_of(engine):
        from ..partition.metrics import part_degrees

        deg = part_degrees(engine.graph, engine.partition)
        total = deg.sum()
        return deg / total if total > 0 else None

    def on_superstep_end(self, engine, stats) -> None:
        rows = stats.workers
        ds = self._degree_share
        if ds is None or len(ds) != stats.num_workers:
            # Elastic resize changed the fleet; re-derive the shares.
            self._degree_share = self._degree_share_of(engine)
        elapsed = [w.elapsed for w in rows]
        med = float(np.median(elapsed)) if rows else 0.0
        worst = max(elapsed) / med if med > 0 else 1.0
        self._skew += self.ema_alpha * (worst - self._skew)
        step_flags = flag_stragglers_step(
            rows,
            mad_threshold=self.mad_threshold,
            min_ratio=self.min_ratio,
            degree_share=self._degree_share,
        )
        for f in step_flags:
            # The live stats rows don't know their superstep index.
            f = StragglerFlag(
                superstep=stats.index, worker=f.worker, ratio=f.ratio,
                z=f.z, cause=f.cause, detail=f.detail,
            )
            self.flags.append(f)
            if self._metrics is not None:
                self._metrics.counter(
                    "repro_straggler_flags_total",
                    help="Superstep-worker pairs flagged as stragglers",
                    cause=f.cause,
                ).inc()
            if self._tracer is not None:
                self._tracer.record(
                    "straggler", sim=stats.sim_time_end, category="diagnose",
                    superstep=stats.index, worker=f.worker,
                    ratio=round(f.ratio, 3), cause=f.cause,
                )
            if self._flight is not None:
                self._flight.record(
                    "straggler", superstep=stats.index, worker=f.worker,
                    sim=stats.sim_time_end, ratio=round(f.ratio, 3),
                    cause=f.cause,
                )

    def has_pending_work(self) -> bool:
        return False

    # ---- consumers ----------------------------------------------------
    def skew_signal(self) -> float:
        """EMA of max-elapsed/median-elapsed per superstep (1.0 = even)."""
        return self._skew

    def worst_flag(self) -> StragglerFlag | None:
        """Most severe flag so far (by slowdown ratio)."""
        return max(self.flags, key=lambda f: f.ratio, default=None)


# ----------------------------------------------------------------------
# Critical-path breakdown (Figs. 9-14, online)
# ----------------------------------------------------------------------
def critical_path(timeline) -> dict[str, float]:
    """Phase breakdown of the run's simulated wall clock.

    Each superstep's elapsed time decomposes along the *pacing* (slowest)
    worker: its compute and comm time (scaled by its spill/jitter factors,
    which stretch both proportionally), the modeled barrier, and the
    overhead charged beyond the slowest worker (checkpoints, recovery,
    restarts, elastic stalls).  ``skew_wait`` totals the other workers'
    idle time at barriers — the utilization gap of Figs. 9/12.
    """
    compute = comm = barrier = overhead = 0.0
    skew_wait = 0.0
    allocated = busy = 0.0
    for step in timeline.steps:
        rows = timeline.rows_of_step(step.superstep)
        slowest = max(rows, key=lambda r: r.elapsed, default=None)
        if slowest is not None and slowest.busy_time > 0:
            stretch = slowest.mem_slowdown * slowest.jitter_factor
            compute += slowest.compute_time * stretch
            comm += _comm_time(slowest) * stretch
            pace = slowest.elapsed
        else:
            pace = 0.0
        barrier += step.barrier_time
        overhead += step.overhead_time + step.restart_time
        skew_wait += sum(pace - r.elapsed for r in rows)
        allocated += step.elapsed * step.num_workers
        busy += sum(r.elapsed for r in rows)
    total = sum(s.elapsed for s in timeline.steps)
    return {
        "compute": compute,
        "comm": comm,
        "barrier": barrier,
        "overhead": overhead,
        "total": total,
        "skew_wait": skew_wait,
        "utilization": busy / allocated if allocated > 0 else 0.0,
    }


def worker_skew(timeline) -> dict[str, np.ndarray]:
    """Per-worker totals over the run (Figs. 10-14's x-axis = worker id)."""
    return {
        "elapsed": timeline.per_worker_total("elapsed"),
        "compute_time": timeline.per_worker_total("compute_time"),
        "comm_time": timeline.per_worker_total("comm_time"),
        "msgs_out": timeline.per_worker_total("msgs_out"),
        "msgs_out_remote": timeline.per_worker_total("msgs_out_remote"),
        "queue_depth": timeline.per_worker_total("queue_depth"),
    }
