"""Metrics registry: counters, gauges, and fixed-bucket histograms.

The registry is the numeric side of the observability layer (the span
tracer in :mod:`repro.obs.spans` is the temporal side).  Engine components
— :class:`~repro.bsp.engine.BSPEngine`, the partition workers, the swath
controller, the live elastic engine — create instruments lazily through a
shared registry and update them as the job runs; exporters in
:mod:`repro.obs.export` render the whole registry as Prometheus text or
JSON.

Design points, mirrored from the Prometheus client-library data model:

* an instrument is identified by ``(name, labels)``; asking the registry
  for the same pair again returns the *same* object, so callers can
  resolve instruments once and hit them cheaply on hot paths;
* one name has one type (and, for histograms, one bucket layout) — a
  conflicting re-registration raises instead of silently forking series;
* histograms use *fixed* bucket boundaries chosen at creation, recorded
  cumulatively at export time (Prometheus ``le`` semantics);
* every mutation (``inc``/``set``/``observe``) takes the instrument's own
  lock, so engines that update instruments from worker threads
  (:class:`~repro.bsp.parallel.ThreadedBSPEngine`'s pooled compute tasks)
  need no serialize-after-join workaround — matching the Prometheus client
  libraries, which are thread-safe by contract.

Everything is plain Python with no engine imports, so the registry can be
used standalone (tests do) and the engine only ever talks to it through
duck typing — a job with no registry attached pays a single ``is None``
check per instrumentation site.
"""

from __future__ import annotations

import re
import threading
from bisect import bisect_left
from typing import Iterable, Mapping

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "DEFAULT_TIME_BUCKETS",
    "DEFAULT_SIZE_BUCKETS",
]

_NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
_LABEL_RE = re.compile(r"^[a-zA-Z_][a-zA-Z0-9_]*$")

#: seconds, spanning sub-millisecond host phases to multi-hour simulated runs
DEFAULT_TIME_BUCKETS = (
    0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5,
    1.0, 2.5, 5.0, 10.0, 25.0, 50.0, 100.0, 250.0, 500.0, 1000.0,
)

#: bytes, 1 KB .. 16 GB in powers of four
DEFAULT_SIZE_BUCKETS = tuple(float(1024 * 4**i) for i in range(13))


def _check_name(name: str) -> str:
    if not _NAME_RE.match(name):
        raise ValueError(f"invalid metric name {name!r}")
    return name


def _freeze_labels(labels: Mapping[str, str]) -> tuple[tuple[str, str], ...]:
    for k in labels:
        if not _LABEL_RE.match(k):
            raise ValueError(f"invalid label name {k!r}")
    return tuple(sorted((k, str(v)) for k, v in labels.items()))


class _Instrument:
    """Common identity/bookkeeping for all instrument kinds."""

    kind = "untyped"

    def __init__(self, name: str, labels: tuple[tuple[str, str], ...],
                 help: str = "") -> None:
        self.name = name
        self.labels = labels
        self.help = help
        self._lock = threading.Lock()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        lbl = ",".join(f"{k}={v!r}" for k, v in self.labels)
        return f"<{type(self).__name__} {self.name}{{{lbl}}}>"


class Counter(_Instrument):
    """Monotonically increasing total."""

    kind = "counter"

    def __init__(self, name, labels, help="") -> None:
        super().__init__(name, labels, help)
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError("counters can only increase")
        with self._lock:
            self.value += amount


class Gauge(_Instrument):
    """A value that can go up and down (fleet size, active vertices)."""

    kind = "gauge"

    def __init__(self, name, labels, help="") -> None:
        super().__init__(name, labels, help)
        self.value = 0.0

    def set(self, value: float) -> None:
        with self._lock:
            self.value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        with self._lock:
            self.value += amount

    def dec(self, amount: float = 1.0) -> None:
        with self._lock:
            self.value -= amount


class Histogram(_Instrument):
    """Fixed-boundary histogram with Prometheus ``le`` export semantics.

    ``buckets`` are the *upper bounds* of the finite buckets, strictly
    increasing; an implicit ``+Inf`` bucket catches the tail.  Counts are
    stored per-bucket and cumulated at export.
    """

    kind = "histogram"

    def __init__(self, name, labels, help="",
                 buckets: Iterable[float] = DEFAULT_TIME_BUCKETS) -> None:
        super().__init__(name, labels, help)
        bounds = tuple(float(b) for b in buckets)
        if not bounds:
            raise ValueError("histogram needs at least one bucket boundary")
        if any(b2 <= b1 for b1, b2 in zip(bounds, bounds[1:])):
            raise ValueError("bucket boundaries must be strictly increasing")
        self.buckets = bounds
        self.counts = [0] * (len(bounds) + 1)  # last slot = +Inf
        self.sum = 0.0
        self.count = 0

    def observe(self, value: float) -> None:
        with self._lock:
            self.counts[bisect_left(self.buckets, value)] += 1
            self.sum += value
            self.count += 1

    def add_raw(self, counts: Iterable[int], sum: float, count: int) -> None:
        """Merge another histogram's raw tallies (same bucket layout).

        Backs cross-process marshalling (:mod:`repro.obs.sync`): a child
        process observes locally and the parent folds the deltas in here.
        """
        counts = list(counts)
        if len(counts) != len(self.counts):
            raise ValueError(
                f"histogram {self.name!r}: cannot merge {len(counts)} bucket "
                f"counts into {len(self.counts)} buckets"
            )
        with self._lock:
            for i, c in enumerate(counts):
                self.counts[i] += int(c)
            self.sum += sum
            self.count += int(count)

    def cumulative_counts(self) -> list[int]:
        """Counts per ``le`` bucket, cumulative, ending with the +Inf total."""
        out, acc = [], 0
        for c in self.counts:
            acc += c
            out.append(acc)
        return out

    def quantile(self, q: float) -> float:
        """Estimate the ``q``-quantile from the bucket tallies.

        Prometheus ``histogram_quantile`` semantics: find the bucket the
        target rank falls in and interpolate linearly within it, treating
        the lowest bucket as spanning ``[0, bound]``.  A rank landing in
        the +Inf bucket clamps to the highest finite bound (the estimate
        cannot exceed what the layout can resolve).  Returns ``nan`` on an
        empty histogram.
        """
        if not 0.0 <= q <= 1.0:
            raise ValueError("quantile must be in [0, 1]")
        with self._lock:
            total = self.count
            cumulative = []
            acc = 0
            for c in self.counts:
                acc += c
                cumulative.append(acc)
        if total == 0:
            return float("nan")
        rank = q * total
        for i, bound in enumerate(self.buckets):
            if cumulative[i] >= rank:
                lo = 0.0 if i == 0 else self.buckets[i - 1]
                below = 0 if i == 0 else cumulative[i - 1]
                in_bucket = cumulative[i] - below
                if in_bucket == 0:
                    return bound
                return lo + (bound - lo) * (rank - below) / in_bucket
        return self.buckets[-1]


class MetricsRegistry:
    """Home of every instrument for one run (or one process).

    Instruments are created on first request and shared afterwards::

        reg = MetricsRegistry()
        msgs = reg.counter("bsp_messages_total", help="...", kind="remote")
        msgs.inc(42)
        reg.counter("bsp_messages_total", kind="remote") is msgs  # True
    """

    def __init__(self) -> None:
        self._instruments: dict[tuple, _Instrument] = {}
        # name -> (kind, bucket layout or None); guards against forked series
        self._schema: dict[str, tuple[str, tuple | None]] = {}
        self._help: dict[str, str] = {}
        self._lock = threading.Lock()  # guards instrument creation

    # ------------------------------------------------------------------
    def _get(self, cls, name: str, help: str, labels: Mapping[str, str],
             buckets: tuple | None = None):
        _check_name(name)
        frozen = _freeze_labels(labels)
        key = (name, frozen)
        with self._lock:
            inst = self._instruments.get(key)
            if inst is not None:
                if inst.kind != cls.kind:
                    raise ValueError(
                        f"metric {name!r} already registered as {inst.kind}"
                    )
                return inst
            schema = self._schema.get(name)
            if schema is not None and schema[0] != cls.kind:
                raise ValueError(
                    f"metric {name!r} already registered as {schema[0]}"
                )
            if cls is Histogram:
                if buckets is None:
                    buckets = DEFAULT_TIME_BUCKETS
                bounds = tuple(float(b) for b in buckets)
                if schema is not None and schema[1] != bounds:
                    raise ValueError(
                        f"histogram {name!r} already registered with different "
                        "bucket boundaries"
                    )
                inst = Histogram(name, frozen, help=help, buckets=bounds)
                self._schema[name] = (cls.kind, bounds)
            else:
                inst = cls(name, frozen, help=help)
                self._schema[name] = (cls.kind, None)
            if help and not self._help.get(name):
                self._help[name] = help
            self._instruments[key] = inst
            return inst

    def counter(self, name: str, help: str = "", **labels: str) -> Counter:
        return self._get(Counter, name, help, labels)

    def gauge(self, name: str, help: str = "", **labels: str) -> Gauge:
        return self._get(Gauge, name, help, labels)

    def histogram(self, name: str, help: str = "",
                  buckets: Iterable[float] | None = None,
                  **labels: str) -> Histogram:
        return self._get(
            Histogram, name, help, labels,
            buckets=tuple(buckets) if buckets is not None else None,
        )

    # ------------------------------------------------------------------
    def collect(self) -> list[tuple[str, str, str, list[_Instrument]]]:
        """``(name, kind, help, instruments)`` families, sorted for export."""
        families: dict[str, list[_Instrument]] = {}
        for (name, _), inst in self._instruments.items():
            families.setdefault(name, []).append(inst)
        out = []
        for name in sorted(families):
            insts = sorted(families[name], key=lambda i: i.labels)
            out.append(
                (name, self._schema[name][0], self._help.get(name, ""), insts)
            )
        return out

    def get(self, name: str, **labels: str) -> _Instrument | None:
        """Look up an existing instrument without creating it."""
        return self._instruments.get((name, _freeze_labels(labels)))

    def __len__(self) -> int:
        return len(self._instruments)
