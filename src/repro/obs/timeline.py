"""RunTimeline: the structured per-(superstep, worker) attribution record.

The paper's core analyses (§V-§VII, Figs. 9-14) are all per-superstep,
per-worker measurements — worker utilization under barrier skew, load
imbalance inside supersteps, message/memory phase behavior.  The engines
already *compute* every one of those quantities while accounting a
superstep; this module records them as first-class rows instead of leaving
them to offline trace reconstruction.

One :class:`TimelineRow` per superstep x worker, carrying only
*deterministic simulated* quantities (no host clocks), so the recorded
timeline is **byte-identical across execution backends** — sequential,
threaded, and multiprocess runs of the same job on the same seed serialize
to the same JSON (tests assert it).  Alongside the rows:

* one :class:`StepMeta` per superstep — cluster-level quantities (barrier
  time, restart/checkpoint/recovery overhead, active counts);
* free-form :meth:`RunTimeline.annotate` events (swath initiations, etc.).

Recording is engine-driven through the same duck-typed slot pattern as the
tracer/metrics sinks: ``JobSpec(timeline=RunTimeline())``, one ``is None``
guard per site, zero cost when unattached.  Failure recovery calls
:meth:`RunTimeline.rollback` so rows from a killed epoch are discarded with
the checkpoint — the final timeline of a failed-and-recovered run equals
that of an undisturbed run (tests assert this for the process engine's
real kill/respawn path too).

On top of the rows, :mod:`repro.obs.diagnose` runs straggler/skew
attribution and critical-path analysis, and ``repro perf`` renders and
diffs saved timelines.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, fields
from pathlib import Path
from typing import Any

import numpy as np

__all__ = [
    "TIMELINE_FORMAT_VERSION",
    "TimelineRow",
    "StepMeta",
    "RunTimeline",
    "timeline_to_dict",
    "timeline_from_dict",
    "read_timeline",
]

TIMELINE_FORMAT_VERSION = 1


@dataclass
class TimelineRow:
    """One worker's attribution row for one superstep (simulated clock only)."""

    superstep: int
    worker: int
    compute_calls: int = 0
    msgs_in: int = 0
    msgs_out_local: int = 0
    msgs_out_remote: int = 0
    bytes_in: float = 0.0
    bytes_out: float = 0.0
    #: messages buffered for the next superstep at the barrier
    queue_depth: int = 0
    compute_time: float = 0.0
    serialize_time: float = 0.0
    network_time: float = 0.0
    disk_time: float = 0.0
    memory_bytes: float = 0.0
    mem_slowdown: float = 1.0
    #: injected multi-tenant jitter multiplier (1.0 = none)
    jitter_factor: float = 1.0
    restarted: bool = False

    # ---- derived (not serialized; recomputed on load) --------------------
    @property
    def comm_time(self) -> float:
        """Data-plane time: serialization + network + disk buffering."""
        return self.serialize_time + self.network_time + self.disk_time

    @property
    def busy_time(self) -> float:
        return self.compute_time + self.comm_time

    @property
    def elapsed(self) -> float:
        """Worker wall time including spill penalty and tenant jitter."""
        return self.busy_time * self.mem_slowdown * self.jitter_factor

    @property
    def msgs_out(self) -> int:
        return self.msgs_out_local + self.msgs_out_remote


@dataclass
class StepMeta:
    """Cluster-level quantities of one superstep."""

    superstep: int
    num_workers: int
    active_begin: int = 0
    active_end: int = 0
    injected: int = 0
    barrier_time: float = 0.0
    restart_time: float = 0.0
    #: checkpoint writes / recovery restores / elastic stalls charged to
    #: this superstep beyond the slowest worker + barrier + restarts
    overhead_time: float = 0.0
    elapsed: float = 0.0
    sim_time_end: float = 0.0


_ROW_FIELDS = [f.name for f in fields(TimelineRow)]
_STEP_FIELDS = [f.name for f in fields(StepMeta)]


class RunTimeline:
    """Recorder + container for one run's attribution rows.

    Attach through the job spec (``JobSpec(timeline=...)`` or
    ``RunConfig(timeline=...)``); the engine calls
    :meth:`record_superstep` once per *committed* superstep — aborted
    epochs (worker death mid-superstep) never record, and scheduled
    failures roll their rows back via :meth:`rollback`.
    """

    def __init__(self) -> None:
        self.rows: list[TimelineRow] = []
        self.steps: list[StepMeta] = []
        #: free-form annotations: {"superstep", "kind", ...attrs}
        self.events: list[dict[str, Any]] = []
        #: rows discarded by failure rollbacks (diagnostic counter)
        self.rolled_back_rows = 0

    # ------------------------------------------------------------------
    # Recording (engine-facing)
    # ------------------------------------------------------------------
    def record_superstep(self, stats) -> None:
        """Append one step's meta + per-worker rows from its
        :class:`~repro.bsp.superstep.SuperstepStats` (duck-typed)."""
        slowest = max((w.elapsed for w in stats.workers), default=0.0)
        overhead = stats.elapsed - slowest - stats.barrier_time - stats.restart_time
        self.steps.append(
            StepMeta(
                superstep=stats.index,
                num_workers=stats.num_workers,
                active_begin=stats.active_begin,
                active_end=stats.active_end,
                injected=stats.injected,
                barrier_time=stats.barrier_time,
                restart_time=stats.restart_time,
                overhead_time=max(0.0, overhead),
                elapsed=stats.elapsed,
                sim_time_end=stats.sim_time_end,
            )
        )
        for w in stats.workers:
            self.rows.append(
                TimelineRow(
                    superstep=stats.index,
                    worker=w.worker,
                    compute_calls=w.compute_calls,
                    msgs_in=w.msgs_in,
                    msgs_out_local=w.msgs_out_local,
                    msgs_out_remote=w.msgs_out_remote,
                    bytes_in=w.bytes_in,
                    bytes_out=w.bytes_out,
                    queue_depth=w.queue_depth,
                    compute_time=w.compute_time,
                    serialize_time=w.serialize_time,
                    network_time=w.network_time,
                    disk_time=w.disk_time,
                    memory_bytes=w.memory_bytes,
                    mem_slowdown=w.mem_slowdown,
                    jitter_factor=w.jitter_factor,
                    restarted=w.restarted,
                )
            )

    def annotate(self, superstep: int, kind: str, **attrs: Any) -> None:
        """Attach a control-plane event (swath start, policy decision...)."""
        self.events.append({"superstep": int(superstep), "kind": kind, **attrs})

    def rollback(self, resume_from: int) -> None:
        """Discard everything recorded for supersteps >= ``resume_from``.

        Called by the engine's coordinated rollback so a killed epoch's
        rows vanish with the checkpoint; the replayed supersteps re-record.
        Annotations made before the rolled-back range survive.
        """
        kept = [r for r in self.rows if r.superstep < resume_from]
        self.rolled_back_rows += len(self.rows) - len(kept)
        self.rows = kept
        self.steps = [s for s in self.steps if s.superstep < resume_from]
        self.events = [e for e in self.events if e["superstep"] < resume_from]

    # ------------------------------------------------------------------
    # Access
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self.steps)

    @property
    def num_workers(self) -> int:
        """Widest fleet seen (elastic runs vary per step)."""
        return max((s.num_workers for s in self.steps), default=0)

    @property
    def total_time(self) -> float:
        return sum(s.elapsed for s in self.steps)

    @property
    def total_messages(self) -> int:
        return sum(r.msgs_out for r in self.rows)

    def rows_of_step(self, superstep: int) -> list[TimelineRow]:
        return [r for r in self.rows if r.superstep == superstep]

    def rows_of_worker(self, worker: int) -> list[TimelineRow]:
        return [r for r in self.rows if r.worker == worker]

    def matrix(self, field_name: str) -> np.ndarray:
        """(steps x workers) matrix of one row field/property.

        Rows are zero-padded on the right when worker counts differ across
        supersteps (elastic runs); step order follows the recorded order.
        """
        if not self.steps:
            return np.zeros((0, 0))
        width = self.num_workers
        out = np.zeros((len(self.steps), width))
        index = {s.superstep: i for i, s in enumerate(self.steps)}
        for r in self.rows:
            out[index[r.superstep], r.worker] = getattr(r, field_name)
        return out

    def per_worker_total(self, field_name: str) -> np.ndarray:
        """Sum of one row field/property per worker id."""
        out = np.zeros(self.num_workers)
        for r in self.rows:
            out[r.worker] += getattr(r, field_name)
        return out

    # ------------------------------------------------------------------
    # Serialization (deterministic: fixed key order, raw fields only)
    # ------------------------------------------------------------------
    def to_dict(self) -> dict:
        return timeline_to_dict(self)

    def write_json(self, path: str | Path) -> None:
        Path(path).write_text(json.dumps(self.to_dict(), indent=1))


def timeline_to_dict(timeline: RunTimeline) -> dict:
    """Plain-data representation (JSON-serializable, deterministic order)."""
    return {
        "version": TIMELINE_FORMAT_VERSION,
        "steps": [
            {f: getattr(s, f) for f in _STEP_FIELDS} for s in timeline.steps
        ],
        "rows": [
            {f: getattr(r, f) for f in _ROW_FIELDS} for r in timeline.rows
        ],
        "events": list(timeline.events),
    }


def timeline_from_dict(data: dict) -> RunTimeline:
    """Inverse of :func:`timeline_to_dict`."""
    version = data.get("version")
    if version != TIMELINE_FORMAT_VERSION:
        raise ValueError(f"unsupported timeline version {version!r}")
    if "rows" not in data or "steps" not in data:
        raise ValueError(
            "not a timeline dump: missing 'rows'/'steps' "
            "(is this a trace or spans file?)"
        )
    tl = RunTimeline()
    tl.steps = [
        StepMeta(**{f: s[f] for f in _STEP_FIELDS if f in s})
        for s in data["steps"]
    ]
    tl.rows = [
        TimelineRow(**{f: r[f] for f in _ROW_FIELDS if f in r})
        for r in data["rows"]
    ]
    tl.events = [dict(e) for e in data.get("events", ())]
    return tl


def read_timeline(path: str | Path) -> RunTimeline:
    return timeline_from_dict(json.loads(Path(path).read_text()))
