"""Human-readable summaries of saved run telemetry.

Backs ``repro trace summarize <trace.json>``: turns a persisted
:class:`~repro.bsp.superstep.JobTrace` into the paper's utilization and
runtime-breakdown tables (Figs. 9/12 style) plus a per-superstep digest,
without re-running anything.  Long traces are elided around the middle so
the output stays terminal-sized.

``summarize_events`` is the same idea for flight-recorder NDJSON logs
(``repro run --events-out``): per-event-type counts, per-worker volume,
and inter-barrier latency percentiles estimated the Prometheus way
(:meth:`~repro.obs.metrics.Histogram.quantile` over bucket tallies).
``repro trace summarize`` sniffs the file format and picks the right one.
"""

from __future__ import annotations

from ..analysis.tables import table
from ..bsp.superstep import JobTrace
from .metrics import DEFAULT_TIME_BUCKETS, Histogram

__all__ = ["summarize_trace", "summarize_spans", "summarize_events"]


def _rows_with_elision(steps, max_rows: int):
    if len(steps) <= max_rows:
        return list(steps), None
    head = max_rows // 2
    tail = max_rows - head
    return list(steps[:head]) + list(steps[-tail:]), len(steps) - max_rows


def summarize_trace(trace: JobTrace, max_rows: int = 24) -> str:
    """Utilization/breakdown tables plus a per-superstep digest."""
    bd = trace.breakdown()
    total = bd["total"] or 1.0
    sections = []

    # Bucketed quantiles of per-superstep elapsed time: the same estimate
    # a Prometheus histogram_quantile over the exported metrics would give.
    hist = Histogram(
        "superstep_elapsed", (), buckets=DEFAULT_TIME_BUCKETS
    )
    for s in trace:
        hist.observe(s.elapsed)
    rows = [
        ["supersteps", len(trace)],
        ["simulated time (s)", trace.total_time],
        ["total messages", trace.total_messages],
        ["peak worker memory (MB)", trace.peak_memory / 1e6],
        ["barrier time (s)", trace.total_barrier_time],
        ["VM restarts", trace.num_restarts],
    ]
    if len(trace):
        rows.append(
            ["superstep elapsed p50/p90/p99 (s)",
             "/".join(f"{hist.quantile(q):.3g}" for q in (0.5, 0.9, 0.99))]
        )
    sections.append(table(["metric", "value"], rows, title="run summary"))

    sections.append(
        table(
            ["component", "seconds", "share"],
            [
                ["compute + I/O", bd["compute_io"],
                 f"{bd['compute_io'] / total:.1%}"],
                ["barrier wait", bd["barrier_wait"],
                 f"{bd['barrier_wait'] / total:.1%}"],
                ["total", bd["total"], "100.0%"],
            ],
            title="runtime breakdown (utilization "
                  f"{bd['utilization']:.1%})",
        )
    )

    shown, elided = _rows_with_elision(list(trace), max_rows)
    rows = [
        [
            s.index,
            s.num_workers,
            s.active_end,
            s.total_messages,
            s.peak_memory / 1e6,
            s.barrier_time,
            s.elapsed,
            s.sim_time_end,
        ]
        for s in shown
    ]
    per_step = table(
        ["step", "workers", "active", "msgs", "peak MB",
         "barrier s", "elapsed s", "cum sim s"],
        rows,
        title="per-superstep digest",
    )
    if elided:
        per_step += f"\n({elided} middle supersteps elided)"
    sections.append(per_step)
    return "\n\n".join(sections)


def summarize_events(events, max_kinds: int = 32) -> str:
    """Digest a flight-recorder event list (see :func:`read_event_log`).

    Three tables: per-kind counts (with host-time span), per-worker event
    volume, and — when the log holds ``barrier-exit`` events — the
    inter-barrier latency distribution (host-clock gap between successive
    coordinator barrier exits) as bucketed p50/p90/p99 quantiles.
    """
    events = list(events)
    if not events:
        return "event log is empty"
    sections = []

    kinds: dict[str, list[float]] = {}
    order: list[str] = []
    for e in events:
        if e.kind not in kinds:
            kinds[e.kind] = [0, e.host, e.host]
            order.append(e.kind)
        entry = kinds[e.kind]
        entry[0] += 1
        entry[1] = min(entry[1], e.host)
        entry[2] = max(entry[2], e.host)
    rows = [
        [k, kinds[k][0], kinds[k][1], kinds[k][2]]
        for k in sorted(order, key=lambda k: -kinds[k][0])[:max_kinds]
    ]
    title = f"event kinds ({len(events)} events)"
    if len(order) > max_kinds:
        title += f" — top {max_kinds} of {len(order)} kinds"
    sections.append(
        table(["kind", "count", "first s", "last s"], rows, title=title)
    )

    per_worker: dict[int, int] = {}
    for e in events:
        per_worker[e.worker] = per_worker.get(e.worker, 0) + 1
    rows = [
        ["coordinator" if w < 0 else f"worker {w}", n]
        for w, n in sorted(per_worker.items())
    ]
    sections.append(table(["source", "events"], rows, title="event sources"))

    exits = sorted(
        (e.host for e in events if e.kind == "barrier-exit" and e.worker < 0)
    )
    if len(exits) >= 2:
        hist = Histogram(
            "inter_barrier_seconds", (), buckets=DEFAULT_TIME_BUCKETS
        )
        for a, b in zip(exits, exits[1:]):
            hist.observe(b - a)
        rows = [
            [f"p{int(q * 100)}", f"{hist.quantile(q):.3g}"]
            for q in (0.5, 0.9, 0.99)
        ]
        rows.append(["barriers", len(exits)])
        sections.append(
            table(
                ["quantile", "host s"], rows,
                title="inter-barrier latency (coordinator host clock)",
            )
        )
    return "\n\n".join(sections)


def summarize_spans(data: dict) -> str:
    """Aggregate a spans-JSON dump (one row per phase name)."""
    spans = data.get("spans", [])
    agg: dict[str, list[float]] = {}
    order: list[str] = []
    for s in spans:
        name = s["name"]
        if name not in agg:
            agg[name] = [0, 0.0, 0.0]
            order.append(name)
        entry = agg[name]
        entry[0] += 1
        entry[1] += s["sim_duration"]
        entry[2] += s["host_duration"]
    rows = [
        [name, agg[name][0], agg[name][1], agg[name][2] * 1e3]
        for name in order
    ]
    return table(
        ["phase", "count", "sim s", "host ms"],
        rows,
        title="phase spans",
    )
