"""Crash postmortem bundles: capture on abnormal end, render as a report.

When a run dies — a worker SIGKILLed past its respawn budget, an uncaught
``compute()`` exception, a :class:`~repro.dist.engine.ProgramSafetyError`,
a ``KeyboardInterrupt`` — the engines dump one self-contained JSON bundle
(conventional suffix ``.postmortem``) holding everything a person needs to
reconstruct the incident without re-running:

* the **flight recorder** contents (:mod:`repro.obs.flight`) — the last N
  structured events per worker, including heartbeat misses and kills;
* the partial :class:`~repro.obs.RunTimeline` and per-superstep trace as
  recorded up to the failure;
* a **metrics snapshot** of the registry at death;
* the **last-committed-superstep marker** plus the checkpoint the next
  attempt would resume from;
* an **environment/config manifest** (python, platform, program, graph,
  fleet, cost model) so the bundle is interpretable months later.

The engine never imports this module: ``JobSpec(postmortem=...)`` carries
a duck-typed writer (anything with ``dump(engine, error)``), following the
same sink pattern as the tracer/metrics/timeline slots.
:class:`PostmortemWriter` is the standard implementation; ``repro
postmortem <bundle>`` renders :func:`render_incident_report` — suspect
worker (via the flight log's ``worker-lost`` events and
:mod:`repro.obs.diagnose` cause attribution), progress markers, the
critical-path-so-far breakdown, and each worker's final events.
"""

from __future__ import annotations

import dataclasses
import json
import platform
import sys
import time
import traceback as tb_mod
from pathlib import Path
from typing import Any, Mapping

from ..analysis.tables import table
from .diagnose import attribute_run, critical_path, dominant_cause
from .export import to_json_dict
from .flight import FlightEvent
from .timeline import timeline_from_dict, timeline_to_dict

__all__ = [
    "POSTMORTEM_FORMAT_VERSION",
    "BUNDLE_SUFFIX",
    "PostmortemWriter",
    "build_bundle",
    "write_postmortem",
    "load_postmortem",
    "render_incident_report",
]

POSTMORTEM_FORMAT_VERSION = 1
BUNDLE_SUFFIX = ".postmortem"


def _plain(obj: Any) -> Any:
    """Best-effort JSON-safe rendering of config objects."""
    if obj is None or isinstance(obj, (bool, int, float, str)):
        return obj
    if dataclasses.is_dataclass(obj) and not isinstance(obj, type):
        try:
            return {
                f.name: _plain(getattr(obj, f.name))
                for f in dataclasses.fields(obj)
            }
        except Exception:
            return repr(obj)
    if isinstance(obj, (list, tuple)):
        return [_plain(x) for x in obj]
    if isinstance(obj, Mapping):
        return {str(k): _plain(v) for k, v in obj.items()}
    return repr(obj)


def _manifest(engine: Any) -> dict:
    job = engine.job
    graph = engine.graph
    return {
        "python": sys.version.split()[0],
        "platform": platform.platform(),
        "argv": list(sys.argv),
        "engine": type(engine).__name__,
        "program": type(job.program).__name__,
        "graph": {
            "vertices": int(graph.num_vertices),
            "edges": int(graph.num_edges),
        },
        "num_workers": int(engine.num_workers),
        "checkpoint_interval": int(job.checkpoint_interval),
        "max_supersteps": int(job.max_supersteps),
        "vm_spec": _plain(job.vm_spec),
        "perf_model": _plain(job.perf_model),
    }


def _observer_flags(engine: Any) -> list[dict]:
    """Straggler flags from any DiagnosticMonitor riding the job."""
    for obs in getattr(engine, "_observers", ()):
        flags = getattr(obs, "flags", None)
        if flags is not None and hasattr(obs, "skew_signal"):
            return [
                {
                    "superstep": f.superstep,
                    "worker": f.worker,
                    "ratio": f.ratio,
                    "cause": f.cause,
                    "detail": f.detail,
                }
                for f in flags
            ]
    return []


def build_bundle(engine: Any, error: BaseException) -> dict:
    """Assemble the bundle dict from a (possibly broken) engine.

    Every section is collected defensively: a failure mid-superstep can
    leave sinks half-written, and a postmortem that crashes while being
    captured would mask the original error.
    """
    bundle: dict[str, Any] = {
        "version": POSTMORTEM_FORMAT_VERSION,
        "created_unix": time.time(),
        "reason": {
            "type": type(error).__name__,
            "message": str(error),
            "traceback": "".join(
                tb_mod.format_exception(type(error), error, error.__traceback__)
            ),
        },
    }

    def section(name: str, build) -> None:
        try:
            bundle[name] = build()
        except Exception as exc:  # never mask the original failure
            bundle[name] = {"error": f"{type(exc).__name__}: {exc}"}

    section("manifest", lambda: _manifest(engine))

    def _progress():
        committed = list(engine.trace)
        return {
            "last_committed_superstep": (
                int(committed[-1].index) if committed else -1
            ),
            "supersteps_committed": len(committed),
            "current_superstep": int(engine.superstep),
            "checkpoint_superstep": (
                int(engine._checkpoint["superstep"])
                if getattr(engine, "_checkpoint", None) is not None
                else -1
            ),
            "sim_time": float(engine.sim_time),
            "recoveries": [
                _plain(r) for r in getattr(engine, "recoveries", ())
            ],
        }

    section("progress", _progress)
    section(
        "flight",
        lambda: engine.flight.to_dict() if engine.flight is not None else None,
    )
    section(
        "timeline",
        lambda: (
            timeline_to_dict(engine.timeline)
            if engine.timeline is not None
            else None
        ),
    )
    section(
        "metrics",
        lambda: (
            to_json_dict(engine.metrics) if engine.metrics is not None else None
        ),
    )
    section("straggler_flags", lambda: _observer_flags(engine))

    def _cost():
        # Dollar attribution over whatever committed before the crash —
        # the abandoned allocation is exactly what a postmortem should
        # price.  Uses the engine's own VM flavors.
        from ..cloud.costmeter import attribute_cost

        if not len(engine.trace):
            return None
        return attribute_cost(
            engine.trace,
            worker_vm=engine.vm_spec,
            manager_vm=engine.job.manager_vm,
        ).to_dict()

    section("cost", _cost)

    def _trace():
        from ..analysis.traces import trace_to_dict

        return trace_to_dict(engine.trace)

    section("trace", _trace)
    return bundle


def write_postmortem(
    path: str | Path, engine: Any, error: BaseException
) -> Path:
    """Build and write a bundle; returns the path written."""
    path = Path(path)
    if path.suffix != BUNDLE_SUFFIX:
        path = path.with_suffix(path.suffix + BUNDLE_SUFFIX)
    bundle = build_bundle(engine, error)
    path.write_text(json.dumps(bundle, indent=1, default=repr))
    return path


class PostmortemWriter:
    """The duck-typed ``JobSpec.postmortem`` sink (see module docs).

    ``path`` is where the bundle lands (suffix ``.postmortem`` appended
    when missing); :attr:`written` holds the path after a dump.  ``dump``
    is idempotent per writer — the first failure wins, re-entrant dumps
    (an engine whose cleanup fails too) are ignored.
    """

    def __init__(self, path: str | Path) -> None:
        self.path = Path(path)
        self.written: Path | None = None

    def dump(self, engine: Any, error: BaseException) -> Path | None:
        if self.written is not None:
            return self.written
        self.written = write_postmortem(self.path, engine, error)
        return self.written


def load_postmortem(path: str | Path) -> dict:
    """Read a bundle back; validates the format version."""
    data = json.loads(Path(path).read_text())
    if not isinstance(data, dict) or "reason" not in data:
        raise ValueError(f"{path}: not a postmortem bundle (no 'reason')")
    version = data.get("version")
    if version != POSTMORTEM_FORMAT_VERSION:
        raise ValueError(f"unsupported postmortem version {version!r}")
    return data


# ----------------------------------------------------------------------
# Incident report rendering (`repro postmortem <bundle>`)
# ----------------------------------------------------------------------
def _suspects(bundle: dict) -> list[str]:
    """Who is to blame, most direct evidence first."""
    lines: list[str] = []
    flight = bundle.get("flight") or {}
    events = [FlightEvent.from_dict(d) for d in flight.get("events", ())]
    for e in events:
        if e.kind == "worker-lost":
            reason = e.attrs.get("reason", "unknown cause")
            lines.append(
                f"worker {e.attrs.get('lost_worker', e.worker)} lost at "
                f"superstep {e.superstep} ({reason})"
            )
        elif e.kind == "heartbeat-miss":
            lines.append(
                f"worker {e.attrs.get('lost_worker', e.worker)} heartbeat "
                f"miss at superstep {e.superstep} "
                f"(age {e.attrs.get('age_seconds', '?')}s)"
            )
    tl_data = bundle.get("timeline")
    if tl_data:
        try:
            tl = timeline_from_dict(tl_data)
            flags = attribute_run(tl)
        except (ValueError, KeyError):
            flags = []
        dom = dominant_cause(flags)
        if dom is not None:
            worst = max(flags, key=lambda f: f.ratio)
            lines.append(
                f"straggler attribution: dominant cause '{dom[0]}' "
                f"({dom[1]} flags); worst w{worst.worker} x{worst.ratio:.2f} "
                f"at s{worst.superstep} ({worst.detail})"
            )
    saved = bundle.get("straggler_flags") or []
    if saved and not tl_data:
        worst = max(saved, key=lambda f: f["ratio"])
        lines.append(
            f"live monitor: {len(saved)} straggler flags, worst "
            f"w{worst['worker']} x{worst['ratio']:.2f} ({worst['cause']})"
        )
    return lines or ["no direct evidence recorded (flight log empty?)"]


def _event_line(e: FlightEvent) -> str:
    extra = ", ".join(
        f"{k}={v}" for k, v in e.attrs.items()
        if k not in ("worker_seq", "worker_host")
    )
    step = f"s{e.superstep}" if e.superstep >= 0 else "--"
    return (
        f"#{e.seq:<6d} {e.host:9.3f}s {step:>5} {e.kind}"
        + (f" [{extra}]" if extra else "")
    )


def render_incident_report(bundle: dict, last_events: int = 8) -> str:
    """Human-readable incident report of a loaded bundle."""
    reason = bundle.get("reason", {})
    manifest = bundle.get("manifest", {})
    progress = bundle.get("progress", {})
    sections: list[str] = []

    graph = manifest.get("graph", {})
    head = [
        ["failure", f"{reason.get('type')}: {reason.get('message', '')[:90]}"],
        ["engine", manifest.get("engine", "?")],
        ["program", manifest.get("program", "?")],
        ["graph",
         f"{graph.get('vertices', '?')} vertices / "
         f"{graph.get('edges', '?')} edges"],
        ["workers", manifest.get("num_workers", "?")],
        ["python / platform",
         f"{manifest.get('python', '?')} / {manifest.get('platform', '?')}"],
    ]
    sections.append(table(["field", "value"], head, title="incident"))

    prog_rows = [
        ["last committed superstep", progress.get("last_committed_superstep")],
        ["supersteps committed", progress.get("supersteps_committed")],
        ["failing superstep", progress.get("current_superstep")],
        ["resume checkpoint", progress.get("checkpoint_superstep")],
        ["simulated time (s)", progress.get("sim_time")],
        ["recoveries before failure", len(progress.get("recoveries", []))],
    ]
    sections.append(table(["marker", "value"], prog_rows, title="progress"))

    sections.append(
        "suspects\n" + "\n".join(f"  - {s}" for s in _suspects(bundle))
    )

    tl_data = bundle.get("timeline")
    if tl_data:
        try:
            cp = critical_path(timeline_from_dict(tl_data))
        except (ValueError, KeyError):
            cp = None
        if cp and cp["total"] > 0:
            rows = [
                [k, cp[k], f"{cp[k] / cp['total']:.1%}"]
                for k in ("compute", "comm", "barrier", "overhead")
            ]
            rows.append(["total", cp["total"], "100.0%"])
            sections.append(
                table(
                    ["phase", "sim s", "share"], rows,
                    title="critical path so far "
                          f"(utilization {cp['utilization']:.1%})",
                )
            )

    flight = bundle.get("flight") or {}
    events = [FlightEvent.from_dict(d) for d in flight.get("events", ())]
    if events:
        by_worker: dict[int, list[FlightEvent]] = {}
        for e in events:
            by_worker.setdefault(e.worker, []).append(e)
        parts = []
        for w in sorted(by_worker):
            who = "coordinator" if w < 0 else f"worker {w}"
            tail = by_worker[w][-last_events:]
            parts.append(
                f"{who} (last {len(tail)} of {len(by_worker[w])} events):\n"
                + "\n".join(f"  {_event_line(e)}" for e in tail)
            )
        dropped = flight.get("dropped", 0)
        header = f"flight recorder ({len(events)} events"
        header += f", {dropped} dropped)" if dropped else ")"
        sections.append(header + "\n" + "\n".join(parts))

    tb = reason.get("traceback")
    if tb:
        sections.append("traceback\n" + tb.rstrip())
    return "\n\n".join(sections)
