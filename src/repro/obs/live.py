"""Live telemetry plane: a scrapeable HTTP endpoint for in-flight runs.

Everything else in :mod:`repro.obs` is either post-hoc (files written
after the run) or push-based (progress lines on stderr).  This module is
the *pull* side — the shape every cluster scheduler and the elastic
papers (PAPERS.md: "Elastic Resource Allocation for Distributed Graph
Processing Platforms") assume: a live endpoint that can be scraped while
the job runs.

:class:`LiveTelemetryServer` is a stdlib ``http.server`` running on a
daemon thread (bind port 0 by default — the OS picks a free port), serving:

* ``GET /metrics``  — the attached :class:`~repro.obs.MetricsRegistry` in
  Prometheus text exposition format (``to_prometheus_text``), scrapeable
  by an actual Prometheus;
* ``GET /healthz``  — JSON liveness/progress: superstep, active vertices,
  simulated time, per-worker liveness (real heartbeat ages under the
  process engine), and how long ago the engine last crossed a barrier;
* ``GET /events?since=<seq>`` — JSON tail of the attached
  :class:`~repro.obs.flight.FlightRecorder` ring; the returned ``cursor``
  feeds the next poll (monotonic across ring wraps; a wrap between polls
  is reported as a synthetic ``gap`` event);
* ``GET /sync``     — the registry as a lossless JSON snapshot, the
  merge source cluster federation scrapes;
* ``GET /cluster``  — coordinator-only fan-out: scrape every fleet
  daemon's ``/sync``, merge with ``host`` labels, render Prometheus
  text (``?format=json`` for the JSON snapshot + member summary).

:class:`EngineHealth` is the glue: a superstep observer that keeps a
thread-safe snapshot of engine progress, readable both by the HTTP
handler and *in-process* — :class:`repro.elastic.live.LiveHealthGuard`
consumes the same snapshot to veto fleet resizes while liveness is
degraded, so policies and external scrapers see one truth.

Wire it manually or via ``repro run --live-port``::

    health = EngineHealth()
    flight = FlightRecorder()
    server = LiveTelemetryServer(metrics=reg, flight=flight, health=health)
    server.start()                      # http://127.0.0.1:<server.port>
    run_job(JobSpec(..., metrics=reg, flight=flight,
                    observers=[health]))
    server.stop()
"""

from __future__ import annotations

import json
import threading
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any
from urllib.parse import parse_qs, urlparse

from .cluster import snapshot_to_wire
from .export import to_prometheus_text
from .sync import snapshot_registry

__all__ = ["EngineHealth", "LiveTelemetryServer"]


class EngineHealth:
    """Thread-safe ``/healthz``-equivalent snapshot of a running engine.

    Attach as an observer (``observers=[health]``); every superstep
    boundary refreshes the snapshot under a lock.  :meth:`snapshot` is
    safe from any thread and never touches engine internals beyond plain
    attribute reads — the same information the HTTP endpoint serves is
    available in-process to elastic policies
    (:class:`repro.elastic.live.LiveHealthGuard`).

    ``stale_after`` bounds how old the last boundary may be before the
    snapshot reports ``ok: false`` (a hung superstep stops crossing
    barriers but keeps the process alive — exactly the case post-hoc
    artifacts cannot see).  ``max_heartbeat_age`` (seconds) additionally
    degrades ``ok`` when any live worker's heartbeat age exceeds it,
    and with ``metrics`` attached every snapshot mirrors the ages into
    ``repro_heartbeat_age_seconds{worker=…}`` gauges so ``/healthz``
    degradation is graphable before it trips.
    """

    def __init__(
        self,
        stale_after: float = 60.0,
        max_heartbeat_age: float | None = None,
        metrics: Any = None,
    ) -> None:
        if stale_after <= 0:
            raise ValueError("stale_after must be positive")
        if max_heartbeat_age is not None and max_heartbeat_age <= 0:
            raise ValueError("max_heartbeat_age must be positive")
        self.stale_after = float(stale_after)
        self.max_heartbeat_age = (
            float(max_heartbeat_age) if max_heartbeat_age is not None
            else None
        )
        self.metrics = metrics
        self._lock = threading.Lock()
        self._engine: Any = None
        self._state = "idle"
        self._step = -1
        self._active = 0
        self._sim_time = 0.0
        self._workers = 0
        self._last_boundary = time.monotonic()

    # ---- observer protocol -------------------------------------------
    def on_job_start(self, engine) -> None:
        with self._lock:
            self._engine = engine
            self._state = "running"
            self._workers = engine.num_workers
            self._last_boundary = time.monotonic()

    def on_superstep_end(self, engine, stats) -> None:
        with self._lock:
            self._step = stats.index
            self._active = stats.active_end
            self._sim_time = stats.sim_time_end
            self._workers = stats.num_workers
            self._last_boundary = time.monotonic()

    def has_pending_work(self) -> bool:
        return False

    def on_job_end(self, engine, result) -> None:
        with self._lock:
            self._state = "done"
            self._last_boundary = time.monotonic()

    # ---- consumers ----------------------------------------------------
    def _liveness(self) -> list[dict]:
        engine = self._engine
        if engine is None:
            return []
        liveness = getattr(engine, "worker_liveness", None)
        if liveness is None:
            return []
        try:
            return liveness()
        except Exception:
            return []

    def snapshot(self) -> dict:
        """Current health as a JSON-safe dict (any thread)."""
        with self._lock:
            state = self._state
            boundary_age = time.monotonic() - self._last_boundary
            snap = {
                "state": state,
                "superstep": self._step,
                "active_vertices": self._active,
                "sim_time": self._sim_time,
                "workers": self._workers,
                "boundary_age_seconds": round(boundary_age, 3),
            }
        workers = self._liveness()
        alive = sum(1 for w in workers if w.get("alive", True))
        snap["workers_alive"] = alive if workers else snap["workers"]
        snap["worker_liveness"] = workers
        lagging = 0
        for w in workers:
            age = w.get("heartbeat_age_seconds")
            if age is None:
                continue
            if self.metrics is not None:
                self.metrics.gauge(
                    "repro_heartbeat_age_seconds",
                    help="Seconds since each worker's last heartbeat.",
                    worker=str(w.get("worker")),
                ).set(float(age))
            if (
                self.max_heartbeat_age is not None
                and w.get("alive", True)
                and float(age) > self.max_heartbeat_age
            ):
                lagging += 1
        snap["workers_lagging"] = lagging
        stalled = state == "running" and boundary_age > self.stale_after
        dead = bool(workers) and alive < len(workers)
        snap["ok"] = not (stalled or dead or lagging > 0)
        return snap


class _Handler(BaseHTTPRequestHandler):
    """Routes /metrics, /healthz, /events over the server's attachments.

    ``self.server`` is the ``ThreadingHTTPServer``; its ``owner`` attribute
    points back at the :class:`LiveTelemetryServer` holding the sinks.
    """

    def log_message(self, fmt, *args):  # pragma: no cover - silence stdlib
        pass

    def _reply(self, code: int, body: str, content_type: str) -> None:
        payload = body.encode()
        self.send_response(code)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(payload)))
        self.end_headers()
        self.wfile.write(payload)

    def _reply_json(self, code: int, data: dict) -> None:
        self._reply(code, json.dumps(data), "application/json")

    def do_GET(self) -> None:  # noqa: N802 - stdlib handler contract
        try:
            parsed = urlparse(self.path)
            route = parsed.path.rstrip("/") or "/"
            owner: LiveTelemetryServer = self.server.owner
            if route == "/metrics":
                if owner.metrics is None:
                    self._reply(503, "no metrics registry attached\n",
                                "text/plain; charset=utf-8")
                    return
                self._reply(
                    200, to_prometheus_text(owner.metrics),
                    "text/plain; version=0.0.4; charset=utf-8",
                )
            elif route == "/healthz":
                if owner.health is None:
                    self._reply_json(503, {"ok": False,
                                           "error": "no health probe attached"})
                    return
                snap = owner.health.snapshot()
                self._reply_json(200 if snap.get("ok") else 503, snap)
            elif route == "/events":
                if owner.flight is None:
                    self._reply_json(503, {"error":
                                           "no flight recorder attached"})
                    return
                query = parse_qs(parsed.query)
                try:
                    since = int(query.get("since", ["-1"])[0])
                except ValueError:
                    self._reply_json(400, {"error": "since must be an integer"})
                    return
                events, cursor = owner.flight.events_since(
                    since, mark_gaps=True
                )
                self._reply_json(200, {
                    "events": [e.to_dict() for e in events],
                    "cursor": cursor,
                    "dropped": owner.flight.dropped,
                })
            elif route == "/sync":
                # Lossless registry snapshot (JSON wire encoding) —
                # the merge source /cluster federation scrapes; the
                # Prometheus text on /metrics cannot be merged exactly.
                if owner.metrics is None:
                    self._reply_json(503, {"error":
                                           "no metrics registry attached"})
                    return
                body: dict = {
                    "snapshot": snapshot_to_wire(
                        snapshot_registry(owner.metrics)
                    ),
                }
                if owner.health is not None:
                    body["health"] = owner.health.snapshot()
                self._reply_json(200, body)
            elif route == "/cluster":
                if owner.cluster is None:
                    self._reply_json(503, {"error":
                                           "no cluster scraper attached"})
                    return
                registry, summary = owner.cluster.scrape()
                query = parse_qs(parsed.query)
                if query.get("format", [""])[0] == "json":
                    self._reply_json(200, {
                        "members": summary["members"],
                        "errors": summary["errors"],
                        "snapshot": snapshot_to_wire(
                            snapshot_registry(registry)
                        ),
                    })
                else:
                    self._reply(
                        200, to_prometheus_text(registry),
                        "text/plain; version=0.0.4; charset=utf-8",
                    )
            elif route == "/":
                self._reply(
                    200,
                    "repro live telemetry: /metrics /healthz "
                    "/events?since= /sync /cluster\n",
                    "text/plain; charset=utf-8",
                )
            else:
                self._reply(404, f"unknown route {route}\n",
                            "text/plain; charset=utf-8")
        except BrokenPipeError:  # pragma: no cover - client went away
            pass


class LiveTelemetryServer:
    """Background-thread HTTP server over the run's telemetry sinks.

    Binds ``host:port`` at :meth:`start` (port 0 = ephemeral; read the
    real one from :attr:`port`).  All attachments are optional — routes
    without a backing sink answer 503 so scrapers can tell "not wired"
    from "unhealthy".  ``stop`` is idempotent and joins the serve thread.
    """

    def __init__(
        self,
        metrics: Any = None,
        flight: Any = None,
        health: EngineHealth | None = None,
        host: str = "127.0.0.1",
        port: int = 0,
        cluster: Any = None,
    ) -> None:
        self.metrics = metrics
        self.flight = flight
        self.health = health
        #: optional :class:`~repro.obs.cluster.ClusterScraper` backing
        #: the ``/cluster`` fan-out route (coordinator-side only)
        self.cluster = cluster
        self._bind = (host, int(port))
        self._httpd: ThreadingHTTPServer | None = None
        self._thread: threading.Thread | None = None

    def start(self) -> "LiveTelemetryServer":
        if self._httpd is not None:
            raise RuntimeError("server already started")
        httpd = ThreadingHTTPServer(self._bind, _Handler)
        httpd.daemon_threads = True
        httpd.owner = self  # type: ignore[attr-defined]
        self._httpd = httpd
        self._thread = threading.Thread(
            target=httpd.serve_forever,
            name="repro-live-telemetry",
            daemon=True,
        )
        self._thread.start()
        return self

    @property
    def running(self) -> bool:
        return self._httpd is not None

    @property
    def port(self) -> int:
        if self._httpd is None:
            raise RuntimeError("server not started")
        return self._httpd.server_address[1]

    @property
    def url(self) -> str:
        host = self._bind[0]
        return f"http://{host}:{self.port}"

    def stop(self) -> None:
        httpd, thread = self._httpd, self._thread
        self._httpd = self._thread = None
        if httpd is not None:
            httpd.shutdown()
            httpd.server_close()
        if thread is not None:
            thread.join(timeout=5.0)

    def __enter__(self) -> "LiveTelemetryServer":
        return self.start() if self._httpd is None else self

    def __exit__(self, *exc) -> None:
        self.stop()
