"""Cluster-wide telemetry plane for the multi-host TCP runtime.

Three concerns live here, all coordinator-side:

* :class:`ClockSync` — an NTP-style offset/uncertainty estimator fed by
  the hello handshake (four-timestamp exchange) and by one-way clock
  stamps piggybacked on heartbeat frames.  Remote flight events and
  worker-compute spans are restamped into the coordinator's timebase so
  a merged trace is monotonic in a single clock.
* registry *wire encoding* — JSON-safe snapshot transport used by the
  ``/sync`` route so daemons can ship their metric registries losslessly
  (Prometheus text is lossy to merge; snapshots are not).
* :class:`ClusterScraper` — fan-out scrape of every fleet daemon's
  telemetry server, merging the snapshots into one registry with a
  ``host`` label per member.  Backs the coordinator's ``/cluster`` route
  and the ``repro cluster status`` CLI.

The paper's analysis is performance-per-dollar on public clouds; this
module is the substrate that makes cross-host runs measurable in one
coherent timebase so the dollar attribution downstream is trustworthy.
"""

from __future__ import annotations

import json
import urllib.request
from typing import Any, Callable, Dict, Iterable, List, Optional, Tuple

from .metrics import MetricsRegistry
from .sync import SnapKey, apply_snapshot, snapshot_registry

Snapshot = Dict[SnapKey, Any]

__all__ = [
    "ClockSync",
    "ClusterScraper",
    "ClusterMember",
    "discover_members",
    "snapshot_to_wire",
    "wire_to_snapshot",
    "scrape_url",
]


# ---------------------------------------------------------------------------
# Clock alignment
# ---------------------------------------------------------------------------


class ClockSync:
    """Estimate a remote monotonic clock's offset from the local one.

    The estimator follows the classic NTP four-timestamp exchange: the
    coordinator stamps ``t0`` just before sending hello and ``t3`` just
    after receiving ready; the daemon stamps ``t1`` on hello receipt and
    ``t2`` on ready send.  Then

    * ``offset = ((t1 - t0) + (t2 - t3)) / 2``  (remote minus local)
    * ``rtt    = (t3 - t0) - (t2 - t1)``
    * ``uncertainty = rtt / 2`` — the asymmetry bound: the true offset
      lies within ``offset ± rtt/2`` regardless of how the path delay is
      split between the two directions.

    Heartbeat frames carry a one-way daemon stamp; each arrival yields a
    biased sample ``remote - local`` (bias = one-way latency, unknown).
    Those cannot refine the base offset, but *changes* across them track
    relative drift between the two clocks, which we expose and fold into
    :meth:`to_local` so long runs stay aligned.

    All times are ``monotonic_now()`` floats; wall clocks never enter.
    """

    def __init__(self) -> None:
        self._offset = 0.0
        self._uncertainty = 0.0
        self._rtt = 0.0
        self._handshakes = 0
        # One-way drift tracking: first sample anchors the bias, later
        # samples regress (local_t, delta - anchor) to a drift rate.
        self._oneway_anchor: Optional[Tuple[float, float]] = None
        self._oneway_last: Optional[Tuple[float, float]] = None
        self._oneway_count = 0
        self._drift = 0.0

    # -- feeding ------------------------------------------------------
    def observe_handshake(
        self, t0: float, t1: float, t2: float, t3: float
    ) -> None:
        """Fold a four-timestamp exchange into the estimate.

        Keeps the minimum-RTT sample: queueing inflates RTT and with it
        the asymmetry bound, so the tightest exchange is the best one.
        """
        rtt = (t3 - t0) - (t2 - t1)
        if rtt < 0.0:
            rtt = 0.0  # clamp: sub-resolution timestamps on loopback
        if self._handshakes and rtt >= self._rtt:
            self._handshakes += 1
            return
        self._offset = ((t1 - t0) + (t2 - t3)) / 2.0
        self._uncertainty = rtt / 2.0
        self._rtt = rtt
        self._handshakes += 1
        # A fresh base invalidates the one-way bias anchor.
        self._oneway_anchor = None
        self._oneway_last = None
        self._drift = 0.0

    def observe_oneway(self, remote_t: float, local_t: float) -> None:
        """Fold a one-way clock stamp (heartbeat) into drift tracking."""
        delta = remote_t - local_t
        self._oneway_count += 1
        if self._oneway_anchor is None:
            self._oneway_anchor = (local_t, delta)
            self._oneway_last = (local_t, delta)
            return
        t_a, d_a = self._oneway_anchor
        self._oneway_last = (local_t, delta)
        span = local_t - t_a
        if span > 1e-9:
            # Drift rate in seconds of remote clock per second of local
            # clock, relative to the handshake base.  One-way latency
            # bias cancels in the difference as long as it is stable.
            self._drift = (delta - d_a) / span

    # -- reading ------------------------------------------------------
    @property
    def synchronized(self) -> bool:
        return self._handshakes > 0

    def offset(self) -> float:
        """Remote-minus-local offset in seconds (0.0 until synced)."""
        return self._offset

    def uncertainty(self) -> float:
        """Half the minimum observed RTT — the offset error bound."""
        return self._uncertainty

    def rtt(self) -> float:
        return self._rtt

    def drift(self) -> float:
        """Relative drift rate (remote seconds per local second) - 0."""
        return self._drift

    def to_local(self, remote_t: float) -> float:
        """Map a remote monotonic stamp into the local timebase."""
        local = remote_t - self._offset
        if self._drift and self._oneway_anchor is not None:
            t_a, _ = self._oneway_anchor
            elapsed = local - t_a
            if elapsed > 0.0:
                local -= self._drift * elapsed
        return local

    def stats(self) -> Dict[str, float]:
        return {
            "offset_seconds": self._offset,
            "uncertainty_seconds": self._uncertainty,
            "rtt_seconds": self._rtt,
            "drift_rate": self._drift,
            "handshakes": float(self._handshakes),
            "oneway_samples": float(self._oneway_count),
        }


# ---------------------------------------------------------------------------
# Registry wire encoding (/sync payloads)
# ---------------------------------------------------------------------------


def snapshot_to_wire(snap: Snapshot) -> List[List[Any]]:
    """Encode a registry snapshot as JSON-safe nested lists.

    A :data:`~repro.obs.sync.SnapKey` is a tuple-of-tuples; JSON turns
    tuples into lists and dict keys must be strings, so the wire format
    is an explicit ``[key_parts, value]`` list per instrument.
    """
    wire: List[List[Any]] = []
    for (name, kind, labels, help_, buckets), value in snap.items():
        wire.append([
            [name, kind, [list(p) for p in labels], help_,
             list(buckets) if buckets is not None else None],
            list(value) if isinstance(value, tuple) else value,
        ])
    return wire


def wire_to_snapshot(wire: Iterable[Iterable[Any]]) -> Snapshot:
    """Decode :func:`snapshot_to_wire` output back into a snapshot."""
    snap: Snapshot = {}
    for key_parts, value in wire:
        name, kind, labels, help_, buckets = key_parts
        key = (
            name,
            kind,
            tuple(tuple(p) for p in labels),
            help_,
            tuple(buckets) if buckets is not None else None,
        )
        if kind == "histogram":
            counts, total, count = value
            snap[key] = (tuple(counts), total, int(count))
        else:
            snap[key] = value
    return snap


def _relabel(snap: Snapshot, **extra: str) -> Snapshot:
    """Return ``snap`` with ``extra`` labels merged into every key.

    Existing labels win: a daemon that already stamps its own ``host``
    keeps it, so double-scraping through a relay cannot rewrite origin.
    """
    out: Snapshot = {}
    for (name, kind, labels, help_, buckets), value in snap.items():
        merged = dict(extra)
        merged.update(dict(labels))
        key = (name, kind, tuple(sorted(merged.items())), help_, buckets)
        if key in out and kind != "gauge":
            old = out[key]
            if kind == "histogram":
                oc, os_, on = old
                nc, ns, nn = value
                value = (
                    tuple(a + b for a, b in zip(oc, nc)), os_ + ns, on + nn,
                )
            else:
                value = old + value
        out[key] = value
    return out


# ---------------------------------------------------------------------------
# Fleet scraping
# ---------------------------------------------------------------------------


class ClusterMember:
    """One scrape target: a name (host label value) plus telemetry URL."""

    __slots__ = ("name", "url")

    def __init__(self, name: str, url: str) -> None:
        self.name = name
        self.url = url.rstrip("/")

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"ClusterMember({self.name!r}, {self.url!r})"


def scrape_url(url: str, timeout: float = 5.0) -> Any:
    """GET ``url`` and parse the JSON body (tests monkeypatch this)."""
    with urllib.request.urlopen(url, timeout=timeout) as resp:
        return json.loads(resp.read().decode("utf-8"))


class ClusterScraper:
    """Fan-out scrape of fleet daemons, merged into one registry.

    ``local`` is the coordinator's own registry; it joins the merge
    under ``local_name`` so one ``/cluster`` response covers the whole
    fleet.  Members whose scrape fails are reported in the summary
    rather than failing the merge — a flaky daemon should degrade the
    picture, not blank it.
    """

    def __init__(
        self,
        members: Optional[Iterable[ClusterMember]] = None,
        local: Optional[MetricsRegistry] = None,
        local_name: str = "coordinator",
        timeout: float = 5.0,
        fetch: Callable[[str, float], Any] = None,  # type: ignore[assignment]
    ) -> None:
        self.members: List[ClusterMember] = list(members or [])
        self.local = local
        self.local_name = local_name
        self.timeout = timeout
        self._fetch = fetch or scrape_url

    def add_member(self, name: str, url: str) -> None:
        self.members.append(ClusterMember(name, url))

    # -- scraping -----------------------------------------------------
    def scrape(self) -> Tuple[MetricsRegistry, Dict[str, Any]]:
        """Scrape every member's ``/sync`` route and merge.

        Returns ``(registry, summary)`` where the registry holds the
        merged, host-labelled instruments and the summary records which
        members answered (with their health payload when available).
        """
        merged = MetricsRegistry()
        summary: Dict[str, Any] = {"members": {}, "errors": {}}
        if self.local is not None:
            snap = _relabel(snapshot_registry(self.local),
                            host=self.local_name)
            apply_snapshot(merged, snap)
            summary["members"][self.local_name] = {"source": "local"}
        for member in self.members:
            try:
                body = self._fetch(member.url + "/sync", self.timeout)
                snap = _relabel(wire_to_snapshot(body["snapshot"]),
                                host=member.name)
                apply_snapshot(merged, snap)
                summary["members"][member.name] = {
                    "source": member.url,
                    "health": body.get("health"),
                }
            except Exception as exc:  # noqa: BLE001 - degrade, don't die
                summary["errors"][member.name] = repr(exc)
        return merged, summary

    def status(self) -> Dict[str, Any]:
        """Machine-readable cluster status for the CLI and ``/cluster``."""
        registry, summary = self.scrape()
        payload: Dict[str, Any] = {
            "members": summary["members"],
            "errors": summary["errors"],
            "instruments": sum(
                len(insts) for _, _, _, insts in registry.collect()
            ),
        }
        return payload


def discover_members(
    endpoints: Iterable[Any], timeout: float = 2.0
) -> Tuple[List[ClusterMember], Dict[str, str]]:
    """Probe daemon endpoints and collect their telemetry URLs.

    ``endpoints`` mixes ``"host:port"`` strings and ``(host, port)``
    pairs.  Daemons advertise ``telemetry_port`` in their status vitals
    when a telemetry server is attached.  Returns ``(members, errors)``
    keyed by ``host:port``.  Imported lazily from ``repro.net`` to keep
    the obs package import-free of the network plane at module level.
    """
    from ..net.tcp import parse_endpoint, probe_endpoint

    members: List[ClusterMember] = []
    errors: Dict[str, str] = {}
    for endpoint in endpoints:
        if isinstance(endpoint, str):
            host, port_n = parse_endpoint(endpoint)
        else:
            host, port_n = endpoint
        name = f"{host}:{port_n}"
        try:
            vitals = probe_endpoint((host, port_n), timeout=timeout)
            port = vitals.get("telemetry_port")
            if not port:
                errors[name] = "daemon exposes no telemetry server"
                continue
            members.append(ClusterMember(name, f"http://{host}:{port}"))
        except Exception as exc:  # noqa: BLE001 - report per endpoint
            errors[name] = repr(exc)
    return members, errors
