"""Flight recorder: an always-on, bounded ring buffer of structured events.

Every artifact the observability layer produced so far — spans, metrics,
timelines — is written *after* a run completes.  A hung superstep, a
SIGKILLed worker, or a mid-run OOM therefore left nothing to inspect,
exactly the failure modes the paper's swath/memory analysis (§VI) is
about.  The flight recorder closes that gap the way avionics do: a small,
fixed-cost ring of recent structured events that is *always* capturing,
can be tailed live (``/events`` on :class:`~repro.obs.live.LiveTelemetryServer`),
and is dumped wholesale into a crash bundle by
:mod:`repro.obs.postmortem` when a run ends abnormally.

Design:

* **Bounded, drop-oldest.**  ``capacity`` caps memory; when full, the
  oldest event is evicted (``dropped`` counts evictions).  Sequence
  numbers are global and never reused, so a reader's ``since=`` cursor
  stays monotonic across wraps — events lost to eviction are simply
  absent from the reply, never re-ordered.
* **Thread-safe.**  One lock guards the ring: the engine records from the
  superstep loop (and the threaded engine's pool), the live HTTP server
  reads from its own thread, and the process engine's heartbeat threads
  record child-side.
* **Cross-process.**  Each worker process keeps a private recorder;
  :mod:`repro.dist.worker_proc` ships the fresh tail at every barrier and
  the coordinator folds it in with :meth:`FlightRecorder.merge_remote`,
  preserving each child's per-worker event order (re-stamped with
  coordinator sequence numbers; the child's own ``seq``/``host`` ride
  along as ``worker_seq``/``worker_host`` attrs).
* **Optional NDJSON sink.**  :meth:`attach_sink` tees every recorded
  event to an append-only newline-delimited-JSON log (``repro run
  --events-out``) for unbounded capture; ``repro trace summarize``
  understands the format.

Event vocabulary (the engines emit these; anything goes):

``job-start/job-end``, ``superstep-open/superstep-commit``,
``barrier-enter/barrier-exit``, ``span-open/span-close``,
``checkpoint``, ``recovery``, ``memory-sample``, ``message-batch``,
``heartbeat-send``, ``heartbeat-miss``, ``worker-lost``,
``worker-respawn``, ``worker-compute``, ``straggler``,
``sanitizer-violation``, ``abort``.

Like every sink in :mod:`repro.obs`, the recorder attaches through the
job spec (``JobSpec(flight=FlightRecorder())``); the engine guards each
recording site with a single ``is None`` check, so unobserved runs pay
nothing (``benchmarks/bench_flight.py`` bounds the attached overhead).
"""

from __future__ import annotations

import json
import threading
import time
from collections import deque
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable, Iterable, Mapping

__all__ = [
    "FLIGHT_FORMAT_VERSION",
    "FlightEvent",
    "FlightRecorder",
    "read_event_log",
]

FLIGHT_FORMAT_VERSION = 1

#: worker id used for coordinator-originated events
COORDINATOR = -1


@dataclass
class FlightEvent:
    """One structured event in the ring.

    ``seq`` is globally monotonic per recorder (never reused, so it doubles
    as the tail cursor); ``worker`` is :data:`COORDINATOR` (-1) for
    coordinator-side events; ``superstep`` is -1 when the event is not
    step-scoped; ``host`` is seconds since the recorder's epoch and ``sim``
    the simulated clock when the emitter knew it.
    """

    seq: int
    kind: str
    superstep: int = -1
    worker: int = COORDINATOR
    host: float = 0.0
    sim: float = 0.0
    attrs: dict[str, Any] = field(default_factory=dict)

    def to_dict(self) -> dict:
        return {
            "seq": self.seq,
            "kind": self.kind,
            "superstep": self.superstep,
            "worker": self.worker,
            "host": self.host,
            "sim": self.sim,
            "attrs": self.attrs,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "FlightEvent":
        return cls(
            seq=int(data["seq"]),
            kind=str(data["kind"]),
            superstep=int(data.get("superstep", -1)),
            worker=int(data.get("worker", COORDINATOR)),
            host=float(data.get("host", 0.0)),
            sim=float(data.get("sim", 0.0)),
            attrs=dict(data.get("attrs", {})),
        )


class FlightRecorder:
    """Bounded drop-oldest ring of :class:`FlightEvent` (see module docs)."""

    def __init__(
        self,
        capacity: int = 4096,
        clock: Callable[[], float] = time.perf_counter,
    ) -> None:
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        self.capacity = int(capacity)
        self._clock = clock
        self._epoch = clock()
        self._ring: deque[FlightEvent] = deque(maxlen=self.capacity)
        self._lock = threading.Lock()
        self._next_seq = 0
        self.dropped = 0
        self._sink = None
        self._sink_path: Path | None = None
        self._sink_pending = 0
        self._dropped_counter = None

    # ------------------------------------------------------------------
    # Recording
    # ------------------------------------------------------------------
    def _now(self) -> float:
        return self._clock() - self._epoch

    @property
    def epoch(self) -> float:
        """The clock reading all ``host`` stamps are relative to."""
        return self._epoch

    def now(self) -> float:
        """Current recorder time (seconds since epoch), for anchoring."""
        return self._now()

    def bind_dropped_counter(self, counter: Any) -> None:
        """Mirror ring evictions into a metrics counter (``.inc()``).

        Lets ``repro_flight_dropped_total`` expose eviction pressure on
        the live scrape surface without the recorder importing metrics.
        """
        self._dropped_counter = counter

    def record(
        self,
        kind: str,
        superstep: int = -1,
        worker: int = COORDINATOR,
        sim: float = 0.0,
        **attrs: Any,
    ) -> FlightEvent:
        """Append one event to the ring (and the sink, when attached)."""
        with self._lock:
            event = FlightEvent(
                seq=self._next_seq,
                kind=kind,
                superstep=int(superstep),
                worker=int(worker),
                host=self._now(),
                sim=float(sim),
                attrs=dict(attrs),
            )
            self._next_seq += 1
            self._append(event)
            return event

    def _append(self, event: FlightEvent) -> None:
        """Ring + sink append; caller holds the lock."""
        if len(self._ring) == self.capacity:
            self.dropped += 1
            if self._dropped_counter is not None:
                self._dropped_counter.inc()
        self._ring.append(event)
        if self._sink is not None:
            self._sink.write(json.dumps(event.to_dict()) + "\n")
            self._sink_pending += 1
            if self._sink_pending >= 64:
                self._sink.flush()
                self._sink_pending = 0

    def merge_remote(
        self,
        worker: int,
        events: Iterable[Mapping[str, Any]],
        restamp: Callable[[float], float] | None = None,
    ) -> int:
        """Fold a child process's shipped event dicts into this ring.

        Events are appended in the order given (the child sends its own
        recording order, so per-worker order is preserved); each gets a
        fresh coordinator ``seq``, with the child's own ``seq``/``host``
        preserved as ``worker_seq``/``worker_host`` attrs.

        Without ``restamp`` the coordinator stamps merge time (arrival
        order — fine on one host, where all clocks agree).  With it,
        each event's ``host`` becomes ``restamp(child_host)``: the
        caller maps the child's recorder time into this recorder's
        timebase (see :class:`~repro.obs.cluster.ClockSync`), so a
        multi-host trace is monotonic in one clock.  Returns the number
        of events merged.
        """
        n = 0
        with self._lock:
            for d in events:
                worker_host = float(d.get("host", 0.0))
                event = FlightEvent(
                    seq=self._next_seq,
                    kind=str(d["kind"]),
                    superstep=int(d.get("superstep", -1)),
                    worker=int(worker),
                    host=(
                        self._now() if restamp is None
                        else restamp(worker_host)
                    ),
                    sim=float(d.get("sim", 0.0)),
                    attrs={
                        **dict(d.get("attrs", {})),
                        "worker_seq": int(d["seq"]),
                        "worker_host": worker_host,
                    },
                )
                self._next_seq += 1
                self._append(event)
                n += 1
        return n

    # ------------------------------------------------------------------
    # Reading
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        with self._lock:
            return len(self._ring)

    @property
    def last_seq(self) -> int:
        """Highest sequence number recorded so far (-1 when empty ring)."""
        return self._next_seq - 1

    def snapshot(self) -> list[FlightEvent]:
        """The ring's current contents, oldest first."""
        with self._lock:
            return list(self._ring)

    def events_since(
        self, cursor: int = -1, mark_gaps: bool = False
    ) -> tuple[list[FlightEvent], int]:
        """Tail the ring: events with ``seq > cursor`` plus the new cursor.

        The cursor is the last ``seq`` the reader has seen (-1 = from the
        beginning).  It stays monotonic across ring wraps: events evicted
        before the reader caught up are skipped, never replayed out of
        order.  With ``mark_gaps`` a wrap between polls is reported
        explicitly: when the oldest fresh event is not ``cursor + 1``, a
        synthetic ``gap`` event (not stored in the ring) is prepended
        with ``attrs["missed"]`` counting the evicted events.  Returns
        ``(events, next_cursor)`` where ``next_cursor`` is the argument
        unchanged when nothing is new.
        """
        cursor = int(cursor)
        with self._lock:
            fresh = [e for e in self._ring if e.seq > cursor]
        if (
            mark_gaps
            and fresh
            and cursor >= 0
            and fresh[0].seq > cursor + 1
        ):
            missed = fresh[0].seq - cursor - 1
            fresh.insert(0, FlightEvent(
                seq=fresh[0].seq - 1,
                kind="gap",
                host=fresh[0].host,
                attrs={"missed": missed},
            ))
        return fresh, (fresh[-1].seq if fresh else cursor)

    def by_worker(self) -> dict[int, list[FlightEvent]]:
        """Ring contents grouped by worker id, each oldest first."""
        out: dict[int, list[FlightEvent]] = {}
        for e in self.snapshot():
            out.setdefault(e.worker, []).append(e)
        return out

    # ------------------------------------------------------------------
    # NDJSON sink
    # ------------------------------------------------------------------
    def attach_sink(self, path: str | Path) -> None:
        """Tee every subsequent event to an NDJSON log at ``path``.

        Events already in the ring are written out first, so the log is a
        complete record from recorder construction when attached early.
        """
        with self._lock:
            if self._sink is not None:
                raise RuntimeError("a sink is already attached")
            self._sink_path = Path(path)
            self._sink = open(self._sink_path, "w")
            for e in self._ring:
                self._sink.write(json.dumps(e.to_dict()) + "\n")
            self._sink.flush()
            self._sink_pending = 0

    @property
    def sink_path(self) -> Path | None:
        return self._sink_path

    def flush(self) -> None:
        with self._lock:
            if self._sink is not None:
                self._sink.flush()
                self._sink_pending = 0

    def close(self) -> None:
        """Flush and detach the sink (idempotent; the ring stays usable)."""
        with self._lock:
            if self._sink is not None:
                self._sink.flush()
                self._sink.close()
                self._sink = None
                self._sink_pending = 0

    # ------------------------------------------------------------------
    # Serialization (postmortem bundles)
    # ------------------------------------------------------------------
    def to_dict(self) -> dict:
        with self._lock:
            return {
                "version": FLIGHT_FORMAT_VERSION,
                "capacity": self.capacity,
                "dropped": self.dropped,
                "next_seq": self._next_seq,
                "events": [e.to_dict() for e in self._ring],
            }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "FlightRecorder":
        version = data.get("version")
        if version != FLIGHT_FORMAT_VERSION:
            raise ValueError(f"unsupported flight format version {version!r}")
        rec = cls(capacity=int(data.get("capacity", 4096)))
        with rec._lock:
            for d in data.get("events", ()):
                rec._ring.append(FlightEvent.from_dict(d))
            rec.dropped = int(data.get("dropped", 0))
            rec._next_seq = int(
                data.get(
                    "next_seq",
                    (rec._ring[-1].seq + 1) if rec._ring else 0,
                )
            )
        return rec


def read_event_log(path: str | Path) -> list[FlightEvent]:
    """Parse an NDJSON event log written by :meth:`FlightRecorder.attach_sink`."""
    events = []
    with open(path) as f:
        for lineno, line in enumerate(f, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                data = json.loads(line)
            except json.JSONDecodeError as exc:
                raise ValueError(
                    f"{path}:{lineno}: not NDJSON ({exc})"
                ) from exc
            if not isinstance(data, dict) or "kind" not in data:
                raise ValueError(
                    f"{path}:{lineno}: not a flight event (no 'kind')"
                )
            try:
                events.append(FlightEvent.from_dict(data))
            except (KeyError, TypeError) as exc:
                raise ValueError(
                    f"{path}:{lineno}: malformed flight event ({exc!r})"
                ) from exc
    return events
