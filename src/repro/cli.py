"""Command-line interface for quick experiments.

Mirrors the Pregel.NET web role's job-submission surface (§III: graph file
location, application, worker count, partitioning scheme) as a CLI::

    python -m repro info --dataset WG --scale 0.3
    python -m repro generate --dataset CP --scale 0.2 --out cp.txt
    python -m repro partition --graph cp.txt --workers 8 --strategy metis
    python -m repro advise --graph cp.txt --workers 8
    python -m repro run --graph cp.txt --app pagerank --workers 8
    python -m repro run --dataset WG --app bc --roots 20 --workers 8 \\
        --sizer adaptive --initiation dynamic --trace-out trace.json
    python -m repro run --dataset WG --app pagerank --workers 4 \\
        --metrics-out m.prom --spans-out s.json --progress
    python -m repro trace summarize trace.json
    python -m repro check src/repro/algorithms examples --sanitize
    python -m repro run --dataset SD --app pagerank --sanitize
    python -m repro run --dataset WG --app bc --timeline-out tl.json
    python -m repro perf report tl.json
    python -m repro perf diff base.json new.json --threshold 0.1
    python -m repro run --dataset SD --app pagerank --live-port 0 \\
        --live-port-file port.txt --events-out events.ndjson
    python -m repro trace summarize events.ndjson
    python -m repro postmortem repro-crash.postmortem
    python -m repro worker serve --port 9001 --telemetry-port 0 \\
        --telemetry-port-file telemetry.port
    python -m repro cluster status localhost:9001 localhost:9002

``run`` prints the simulated runtime/cost summary and optionally dumps the
per-superstep trace (JSON) for plotting.  The observability flags attach
the :mod:`repro.obs` layer: ``--metrics-out`` writes the metrics registry
(Prometheus text, or JSON when the path ends in ``.json``),
``--spans-out``/``--chrome-out`` write engine phase spans (plain JSON /
Chrome ``trace_event``), ``--progress`` streams live telemetry to stderr,
and ``--check-invariants`` rides an
:class:`~repro.bsp.debug.InvariantChecker` along and fails the run (exit
code 1) on any violation.  ``trace summarize`` prints the paper-style
utilization/breakdown tables from a saved trace file.

``check`` is the Pregel-contract analyzer (:mod:`repro.check`): a static
AST pass (rules RPC001..RPC014) over vertex programs, plus — with
``--sanitize`` — the dynamic sanitizer smoke (payload-mutation
fingerprinting, 1-vs-N worker determinism diff, aggregator law probes),
and — with ``--profile`` — the static cost model per program (fan-out
class, payload bytes, combiner/aggregator inference).  ``run --sanitize``
rides the same sanitizer along a real run and fails it (exit code 1) on
any violation.

``run --timeline-out`` records the per-(superstep, worker)
:class:`~repro.obs.RunTimeline` (rows are byte-identical across
``--engine sim|threaded|process`` on the same seed) and rides a
:class:`~repro.obs.DiagnosticMonitor` along for online straggler flags;
``perf report`` renders a saved timeline's critical-path and straggler
attribution tables, and ``perf diff`` compares two timelines and exits 1
when any phase regressed beyond ``--threshold``.

Every ``run`` carries an always-on flight recorder (bounded event ring,
``--flight-size``; tee to NDJSON with ``--events-out``) and a postmortem
sink: an abnormal end (worker killed past its respawn budget, uncaught
compute exception, safety gate, Ctrl-C) dumps a self-contained crash
bundle to ``--postmortem-out`` and still flushes every ``--*-out``
artifact recorded so far.  ``repro postmortem <bundle>`` renders the
incident report; ``run --live-port N`` serves ``/metrics`` (Prometheus
text), ``/healthz`` (liveness/progress JSON) and ``/events?since=``
(flight tail) from a background thread while the job runs.  On a
``--engine tcp`` run with explicit hosts the live server also serves
``/cluster``: a fan-out scrape of every daemon's own telemetry server
(``worker serve --telemetry-port``) merged into one host-labelled
registry; ``repro cluster status`` prints the same merged view from
the shell.  Metrics-attached runs ride a live
:class:`~repro.cloud.CostMeter` along, so ``/metrics`` carries running
``repro_cost_*`` dollar gauges while the job is in flight.

``run`` auto-profiles the program (disable with ``--no-profile``): the
profile is printed with the summary, recorded on the result/metrics, and
— for ``--sizer sampling``/``adaptive`` — seeds the swath sizer via
``from_profile(...)`` so the first probe swath is model-sized instead of
a blind guess.  Under ``--engine process`` the RPC011 pickle-safety gate
runs before any worker process is forked.
"""

from __future__ import annotations

import argparse
import sys

from .analysis import RunConfig, run_pagerank, run_traversal
from .analysis.traces import read_json, write_json
from .bsp.debug import InvariantChecker
from .cloud import CostMeter
from .cloud.costmodel import SCALED_PERF_MODEL
from .obs import (
    ClusterScraper,
    DiagnosticMonitor,
    EngineHealth,
    FlightRecorder,
    LiveTelemetryServer,
    MetricsRegistry,
    PostmortemWriter,
    RunReporter,
    RunTimeline,
    SpanTracer,
    discover_members,
    load_postmortem,
    perf_diff,
    perf_report,
    read_event_log,
    read_timeline,
    render_incident_report,
    summarize_events,
    summarize_trace,
    write_metrics_json,
    write_prometheus,
)
from .graph import datasets, io as graph_io, summarize
from .partition import (
    HashPartitioner,
    MultilevelPartitioner,
    PartitioningAdvisor,
    StreamingGreedy,
    evaluate,
)
from .scheduling import (
    AdaptiveSizer,
    DynamicPeakDetect,
    SamplingSizer,
    SequentialInitiation,
    StaticEveryN,
    StaticSizer,
)

__all__ = ["main", "build_parser"]

_STRATEGIES = {
    "hash": lambda seed: HashPartitioner(),
    "metis": lambda seed: MultilevelPartitioner(
        seed=seed, imbalance=1.15, refine_passes=12
    ),
    "streaming": lambda seed: StreamingGreedy(order="random", seed=seed),
}


def _load_graph(args) -> "object":
    if args.graph:
        return graph_io.read_edge_list(args.graph)
    if args.dataset:
        return datasets.load(args.dataset, scale=args.scale)
    raise SystemExit("one of --graph or --dataset is required")


def _add_graph_args(p: argparse.ArgumentParser) -> None:
    p.add_argument("--graph", help="edge-list file to load")
    p.add_argument(
        "--dataset", choices=sorted(datasets.DATASETS),
        help="synthetic dataset analogue (SD/WG/CP/LJ)",
    )
    p.add_argument("--scale", type=float, default=0.3, help="dataset scale knob")


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro", description="BSP graph processing on a simulated cloud"
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("info", help="print a graph's Table-1-style summary")
    _add_graph_args(p)

    p = sub.add_parser("generate", help="write a dataset analogue to a file")
    _add_graph_args(p)
    p.add_argument("--out", required=True, help="output edge-list path")

    p = sub.add_parser("partition", help="partition a graph and report quality")
    _add_graph_args(p)
    p.add_argument("--workers", type=int, default=8)
    p.add_argument("--strategy", choices=sorted(_STRATEGIES), default="hash")
    p.add_argument("--seed", type=int, default=1)

    p = sub.add_parser("advise", help="recommend hash vs min-cut partitioning")
    _add_graph_args(p)
    p.add_argument("--workers", type=int, default=8)
    p.add_argument("--seed", type=int, default=0)

    p = sub.add_parser("run", help="run an application on the simulated cloud")
    _add_graph_args(p)
    p.add_argument("--app", choices=["pagerank", "bc", "apsp"], default="pagerank")
    p.add_argument("--workers", type=int, default=8)
    p.add_argument("--strategy", choices=sorted(_STRATEGIES), default="hash")
    p.add_argument("--seed", type=int, default=1)
    p.add_argument("--iterations", type=int, default=30, help="pagerank rounds")
    p.add_argument("--roots", type=int, default=20, help="bc/apsp traversal roots")
    p.add_argument(
        "--engine",
        choices=["sim", "threaded", "process", "tcp", "dense-ref", "auto"],
        default="sim",
        help="execution backend: sequential simulator, thread pool, real "
             "worker processes (repro.dist), TCP worker daemons "
             "(repro.net — see --hosts/--workers-file), the NumPy "
             "kernel-plan interpreter (refuses programs `repro check "
             "--kernel-plan` cannot lift), or 'auto' (static ranking "
             "over all of the above from the kernel-plan verdict, cost "
             "profile and topology; decision + reasons recorded in the "
             "result and flight stream) — see docs/runtime.md",
    )
    p.add_argument(
        "--hosts", metavar="HOST:PORT,...",
        help="--engine tcp: comma-separated `repro worker` daemon "
             "endpoints (default: auto-spawn localhost daemons)",
    )
    p.add_argument(
        "--workers-file", metavar="PATH",
        help="--engine tcp: file naming one daemon host:port per line "
             "(# comments allowed); alternative to --hosts",
    )
    p.add_argument(
        "--sizer", choices=["all", "static", "sampling", "adaptive"], default="all",
        help="swath-size heuristic (bc/apsp)",
    )
    p.add_argument("--swath", type=int, default=10, help="static swath size")
    p.add_argument(
        "--initiation", choices=["sequential", "static", "dynamic"],
        default="sequential",
    )
    p.add_argument("--every", type=int, default=4, help="static initiation N")
    p.add_argument(
        "--memory-mb", type=float, default=None,
        help="worker memory cap in MB (default: unconstrained)",
    )
    p.add_argument("--trace-out", help="write per-superstep trace JSON here")
    p.add_argument(
        "--timeline-out",
        help="write the per-(superstep, worker) attribution timeline "
             "(JSON) here for `repro perf report`/`diff`",
    )
    p.add_argument(
        "--metrics-out",
        help="write run metrics here (Prometheus text; JSON if path "
             "ends in .json)",
    )
    p.add_argument(
        "--spans-out", help="write engine phase spans here (JSON)"
    )
    p.add_argument(
        "--chrome-out",
        help="write phase spans in Chrome trace_event format "
             "(open in chrome://tracing or Perfetto)",
    )
    p.add_argument(
        "--progress", action="store_true",
        help="stream live per-superstep telemetry to stderr",
    )
    p.add_argument(
        "--check-invariants", action="store_true",
        help="run the engine invariant checker; exit 1 on any violation",
    )
    p.add_argument(
        "--sanitize", action="store_true",
        help="ride the vertex-program sanitizer along (payload-mutation "
             "fingerprinting + aggregator law probes); exit 1 on violations",
    )
    p.add_argument(
        "--no-profile", action="store_true",
        help="skip the static cost profile (repro.check.costmodel); "
             "disables model-seeded swath sizing",
    )
    p.add_argument(
        "--live-port", type=int, default=None, metavar="PORT",
        help="serve live telemetry (/metrics /healthz /events) on "
             "127.0.0.1:PORT while the run is in flight (0 = ephemeral)",
    )
    p.add_argument(
        "--live-port-file", metavar="PATH",
        help="write the bound live-telemetry port here (for scrapers "
             "when --live-port 0 picked an ephemeral port)",
    )
    p.add_argument(
        "--events-out", metavar="PATH",
        help="tee every flight-recorder event to an NDJSON log here "
             "(`repro trace summarize` understands the format)",
    )
    p.add_argument(
        "--flight-size", type=int, default=4096, metavar="N",
        help="flight-recorder ring capacity (drop-oldest beyond N events)",
    )
    p.add_argument(
        "--postmortem-out", default="repro-crash.postmortem", metavar="PATH",
        help="where to dump the crash bundle if the run ends abnormally "
             "(render with `repro postmortem PATH`)",
    )

    p = sub.add_parser(
        "check",
        help="Pregel-contract static analyzer (+ --sanitize dynamic smoke)",
    )
    from .check.cli import add_check_arguments

    add_check_arguments(p)

    p = sub.add_parser("trace", help="inspect saved per-superstep trace files")
    tsub = p.add_subparsers(dest="trace_command", required=True)
    ps = tsub.add_parser(
        "summarize",
        help="print the utilization/breakdown tables of a saved trace",
    )
    ps.add_argument("path", help="trace JSON written by run --trace-out")
    ps.add_argument(
        "--max-rows", type=int, default=24,
        help="per-superstep digest rows before eliding the middle",
    )

    p = sub.add_parser(
        "perf", help="analyze and diff recorded run timelines"
    )
    psub = p.add_subparsers(dest="perf_command", required=True)
    pr = psub.add_parser(
        "report",
        help="print critical-path + straggler attribution of a timeline",
    )
    pr.add_argument("path", help="timeline JSON written by run --timeline-out")
    pr.add_argument(
        "--mad-threshold", type=float, default=3.5,
        help="MAD modified z-score above which a worker flags",
    )
    pr.add_argument(
        "--min-ratio", type=float, default=1.2,
        help="minimum elapsed/median ratio for a straggler flag",
    )
    pd = psub.add_parser(
        "diff",
        help="compare two timelines; exit 1 on per-phase regression",
    )
    pd.add_argument("base", help="baseline timeline JSON")
    pd.add_argument("new", help="candidate timeline JSON")
    pd.add_argument(
        "--threshold", type=float, default=0.10,
        help="relative slowdown that counts as a regression",
    )

    p = sub.add_parser(
        "postmortem",
        help="render the incident report of a crash bundle "
             "(written by `run` on abnormal end)",
    )
    p.add_argument("path", help="bundle path (suffix .postmortem)")
    p.add_argument(
        "--last-events", type=int, default=8,
        help="flight-recorder tail length shown per worker",
    )

    p = sub.add_parser(
        "report", help="regenerate the headline experiments as markdown"
    )
    p.add_argument("--out", required=True, help="output markdown path")
    p.add_argument("--scale", type=float, default=0.2)
    p.add_argument("--workers", type=int, default=8)
    p.add_argument("--roots", type=int, default=20)

    p = sub.add_parser(
        "worker",
        help="TCP worker daemon for `repro run --engine tcp` (repro.net)",
    )
    wsub = p.add_subparsers(dest="worker_command", required=True)
    ws = wsub.add_parser(
        "serve",
        help="host PartitionWorker sessions for a remote coordinator "
             "(pickle transport: bind to trusted networks only)",
    )
    ws.add_argument(
        "--host", default="127.0.0.1",
        help="bind address (default 127.0.0.1; pickle frames execute "
             "code — never expose to an untrusted network)",
    )
    ws.add_argument(
        "--port", type=int, default=0,
        help="bind port (0 = ephemeral; see --port-file)",
    )
    ws.add_argument(
        "--port-file", metavar="PATH",
        help="write the bound port here once listening (for scripts "
             "launching with --port 0)",
    )
    ws.add_argument(
        "--max-sessions", type=int, default=None, metavar="N",
        help="refuse worker sessions beyond N at once (default: unlimited)",
    )
    ws.add_argument(
        "--telemetry-port", type=int, default=None, metavar="PORT",
        help="serve this daemon's own /metrics /healthz /events /sync "
             "on PORT (0 = ephemeral; scraped by the coordinator's "
             "/cluster route and `repro cluster status`)",
    )
    ws.add_argument(
        "--telemetry-port-file", metavar="PATH",
        help="write the bound telemetry port here (for scrapers when "
             "--telemetry-port 0 picked an ephemeral port)",
    )
    wst = wsub.add_parser(
        "status", help="probe a daemon's vitals and print them as JSON"
    )
    wst.add_argument("endpoint", help="daemon address, host:port")

    p = sub.add_parser(
        "cluster",
        help="inspect a fleet of worker daemons (repro.obs.cluster)",
    )
    csub = p.add_subparsers(dest="cluster_command", required=True)
    cs = csub.add_parser(
        "status",
        help="probe daemons, scrape their telemetry servers, and print "
             "the merged fleet status as JSON",
    )
    cs.add_argument(
        "endpoints", nargs="+", metavar="HOST:PORT",
        help="daemon endpoints to probe",
    )
    cs.add_argument(
        "--timeout", type=float, default=2.0,
        help="per-daemon probe/scrape timeout in seconds",
    )
    return parser


def _cmd_info(args) -> int:
    g = _load_graph(args)
    print(summarize(g, sample=48).row())
    return 0


def _cmd_generate(args) -> int:
    if not args.dataset:
        raise SystemExit("generate requires --dataset")
    g = datasets.load(args.dataset, scale=args.scale)
    graph_io.write_edge_list(g, args.out)
    print(f"wrote {g} to {args.out}")
    return 0


def _cmd_partition(args) -> int:
    g = _load_graph(args)
    part = _STRATEGIES[args.strategy](args.seed)
    p = part.partition(g, args.workers)
    print(evaluate(g, p, part.name).row())
    return 0


def _cmd_advise(args) -> int:
    g = _load_graph(args)
    advice = PartitioningAdvisor(seed=args.seed).advise(g, args.workers)
    print(advice.summary())
    return 0


def _make_sizer(args, roots: int, graph=None, profile=None):
    target = int(args.memory_mb * 1e6 * 6 / 7) if args.memory_mb else 1 << 40
    if args.sizer == "all":
        return StaticSizer(max(1, roots))
    if args.sizer == "static":
        return StaticSizer(args.swath)
    seeded = profile is not None and graph is not None
    if args.sizer == "sampling":
        if seeded:
            return SamplingSizer.from_profile(
                profile, target, num_vertices=graph.num_vertices,
                num_edges=graph.num_edges, num_workers=args.workers,
            )
        return SamplingSizer(target)
    if seeded:
        return AdaptiveSizer.from_profile(
            profile, target, num_vertices=graph.num_vertices,
            num_edges=graph.num_edges, num_workers=args.workers,
        )
    return AdaptiveSizer(target)


def _make_initiation(args):
    if args.initiation == "sequential":
        return SequentialInitiation()
    if args.initiation == "static":
        return StaticEveryN(args.every)
    return DynamicPeakDetect()


def _write_obs_artifacts(args, metrics, tracer, timeline, monitor) -> None:
    """Flush the attached observability sinks to their --*-out files.

    Called on success *and* from the failure path: partially-recorded
    metrics/spans/timelines from a crashed run are exactly what the
    postmortem workflow needs, so an engine failure must not lose them.
    """
    if timeline is not None:
        timeline.write_json(args.timeline_out)
        n_flags = len(monitor.flags) if monitor is not None else 0
        print(
            f"timeline written to {args.timeline_out} "
            f"({len(timeline.rows)} rows, {n_flags} straggler flags)"
        )
    if metrics is not None and args.metrics_out:
        if args.metrics_out.endswith(".json"):
            write_metrics_json(metrics, args.metrics_out)
        else:
            write_prometheus(metrics, args.metrics_out)
        print(f"metrics written to {args.metrics_out}")
    if tracer is not None:
        if args.spans_out:
            tracer.write_json(args.spans_out)
            print(f"spans written to {args.spans_out}")
        if args.chrome_out:
            tracer.write_chrome_trace(args.chrome_out)
            print(f"chrome trace written to {args.chrome_out}")


def _cmd_run(args) -> int:
    g = _load_graph(args)
    live = args.live_port is not None
    metrics = MetricsRegistry() if (args.metrics_out or live) else None
    tracer = SpanTracer() if (args.spans_out or args.chrome_out) else None
    timeline = RunTimeline() if args.timeline_out else None
    # The flight recorder is always on for CLI runs: fixed-cost ring, and
    # the crash bundle / live /events tail are worthless without it.
    flight = FlightRecorder(capacity=args.flight_size)
    if args.events_out:
        flight.attach_sink(args.events_out)
    if metrics is not None:
        flight.bind_dropped_counter(
            metrics.counter(
                "repro_flight_dropped_total",
                help="flight events evicted from the bounded ring",
            )
        )
    postmortem = PostmortemWriter(args.postmortem_out)
    extra_observers = []
    monitor = None
    if args.timeline_out or args.progress:
        monitor = DiagnosticMonitor()
        extra_observers.append(monitor)
    if args.progress:
        extra_observers.append(RunReporter(monitor=monitor))
    checker = InvariantChecker() if args.check_invariants else None
    if checker is not None:
        extra_observers.append(checker)
    sanitizer = None
    wrap_program = None
    if args.sanitize:
        from .check import SanitizerObserver, SanitizingProgram

        # The observer binds to the wrapped program at job start.
        sanitizer = SanitizerObserver(metrics=metrics)
        wrap_program = SanitizingProgram
        extra_observers.append(sanitizer)
    if metrics is not None:
        # Live dollar attribution: running repro_cost_* gauges on
        # /metrics, finalized (billing-grain surcharge) at job end.
        extra_observers.append(CostMeter(metrics))
    tcp_hosts = None
    if getattr(args, "hosts", None):
        from .net import parse_endpoint

        tcp_hosts = [
            parse_endpoint(spec)
            for spec in args.hosts.split(",") if spec.strip()
        ]
    elif getattr(args, "workers_file", None):
        tcp_hosts = args.workers_file
    server = None
    if live:
        health = EngineHealth(metrics=metrics)
        extra_observers.append(health)
        cluster = None
        if args.engine == "tcp" and tcp_hosts is not None:
            # Federate the fleet: probe each daemon for its telemetry
            # server and let /cluster fan-out scrape the lot.
            endpoints = tcp_hosts
            if isinstance(endpoints, str):
                from .net import load_workers_file

                endpoints = load_workers_file(endpoints)
            members, errs = discover_members(endpoints)
            for name, why in errs.items():
                print(
                    f"cluster scrape disabled for {name}: {why}",
                    file=sys.stderr,
                )
            if members:
                cluster = ClusterScraper(members, local=metrics)
        server = LiveTelemetryServer(
            metrics=metrics, flight=flight, health=health,
            port=args.live_port, cluster=cluster,
        ).start()
        print(f"live telemetry at {server.url}", file=sys.stderr)
        if args.live_port_file:
            from pathlib import Path

            Path(args.live_port_file).write_text(f"{server.port}\n")
    cfg = RunConfig(
        num_workers=args.workers,
        partitioner=_STRATEGIES[args.strategy](args.seed),
        perf_model=SCALED_PERF_MODEL,
        engine=args.engine,
        tcp_hosts=tcp_hosts,
        tracer=tracer,
        metrics=metrics,
        timeline=timeline,
        flight=flight,
        postmortem=postmortem,
        auto_profile=not args.no_profile,
    )
    cfg = cfg.with_memory(
        int(args.memory_mb * 1e6) if args.memory_mb else (1 << 62)
    )
    from .bsp.dense_ref import PlanRefusedError
    from .dist import ProgramSafetyError

    try:
        try:
            if args.app == "pagerank":
                res = run_pagerank(
                    g, cfg, iterations=args.iterations,
                    observers=extra_observers, wrap_program=wrap_program,
                )
                trace = res.trace
                print(f"pagerank: {res.supersteps} supersteps")
            else:
                profile = None
                if not args.no_profile:
                    from .algorithms.apsp import APSPProgram
                    from .algorithms.bc import BCProgram
                    from .check import profile_of

                    profile = profile_of(
                        BCProgram if args.app == "bc" else APSPProgram
                    )
                run = run_traversal(
                    g, cfg, range(min(args.roots, g.num_vertices)),
                    kind=args.app,
                    sizer=_make_sizer(
                        args, args.roots, graph=g, profile=profile
                    ),
                    initiation=_make_initiation(args),
                    extra_observers=extra_observers,
                    wrap_program=wrap_program,
                )
                res = run.result
                trace = res.trace
                print(
                    f"{args.app}: {res.supersteps} supersteps, "
                    f"{run.num_swaths} swaths"
                )
        except PlanRefusedError as exc:
            # dense-ref gate: the program has no certified kernel plan;
            # the message carries the blocking rule and source span.
            print(f"repro run: {exc}", file=sys.stderr)
            print(
                "hint: `repro check --kernel-plan` explains what blocks "
                "the lift; other engines run this program unchanged",
                file=sys.stderr,
            )
            return 1
        except ProgramSafetyError as exc:
            # RPC011 gate: refused before forking any worker process (no
            # engine exists yet; the bundle carries the reason alone).
            print(f"repro run: {exc}", file=sys.stderr)
            postmortem.dump(None, exc)
            print(
                f"postmortem bundle written to {postmortem.written}",
                file=sys.stderr,
            )
            return 1
        except (Exception, KeyboardInterrupt) as exc:
            # Abnormal end: the engine already dumped the postmortem via
            # its JobSpec sink; flush whatever the other sinks recorded.
            _write_obs_artifacts(args, metrics, tracer, timeline, monitor)
            if postmortem.written is not None:
                print(
                    f"postmortem bundle written to {postmortem.written} "
                    f"(render: repro postmortem {postmortem.written})",
                    file=sys.stderr,
                )
            print(
                f"repro run: {type(exc).__name__}: {exc}", file=sys.stderr
            )
            return 130 if isinstance(exc, KeyboardInterrupt) else 1
    finally:
        if server is not None:
            server.stop()
        flight.close()
    if res.engine_decision is not None:
        print(res.engine_decision.render())
    if res.profile is not None:
        print(f"profile: {res.profile.render()}")
    print(
        f"simulated time {trace.total_time:.2f}s | cost ${res.total_cost:.4f} | "
        f"messages {trace.total_messages:,} | peak worker memory "
        f"{trace.peak_memory / 1e6:.2f} MB"
    )
    if res.cost is not None:
        print(f"cost attribution: {res.cost.summary()}")
    if args.trace_out:
        write_json(trace, args.trace_out)
        print(f"trace written to {args.trace_out}")
    _write_obs_artifacts(args, metrics, tracer, timeline, monitor)
    if args.events_out:
        print(f"events written to {args.events_out}")
    if checker is not None:
        if checker.violations:
            print(
                f"invariants: {len(checker.violations)} violation(s)",
                file=sys.stderr,
            )
            for v in checker.violations:
                print(f"  {v}", file=sys.stderr)
            return 1
        print("invariants: ok")
    if sanitizer is not None:
        if sanitizer.violations:
            print(
                f"sanitizer: {len(sanitizer.violations)} violation(s)",
                file=sys.stderr,
            )
            for v in sanitizer.violations:
                print(
                    f"  [{v.kind}] superstep {v.superstep} vertex "
                    f"{v.vertex}: {v.detail}",
                    file=sys.stderr,
                )
            return 1
        print("sanitizer: ok")
    return 0


def _cmd_check(args) -> int:
    from .check.cli import run_check

    return run_check(args)


def _looks_like_event_log(path: str) -> bool:
    """True when the first non-blank line is a one-line flight event."""
    import json

    try:
        with open(path) as f:
            for line in f:
                line = line.strip()
                if not line:
                    continue
                try:
                    data = json.loads(line)
                except json.JSONDecodeError:
                    return False
                return isinstance(data, dict) and "kind" in data
    except OSError:
        return False
    return False


def _cmd_trace(args) -> int:
    if _looks_like_event_log(args.path):
        try:
            events = read_event_log(args.path)
        except (ValueError, OSError) as exc:
            print(f"repro trace: {exc}", file=sys.stderr)
            return 2
        print(summarize_events(events))
        return 0
    trace = read_json(args.path)
    print(summarize_trace(trace, max_rows=args.max_rows))
    return 0


def _cmd_postmortem(args) -> int:
    try:
        bundle = load_postmortem(args.path)
    except (OSError, ValueError) as exc:
        print(f"repro postmortem: {exc}", file=sys.stderr)
        return 2
    print(render_incident_report(bundle, last_events=args.last_events))
    return 0


def _cmd_perf(args) -> int:
    try:
        if args.perf_command == "report":
            tl = read_timeline(args.path)
            print(
                perf_report(
                    tl,
                    mad_threshold=args.mad_threshold,
                    min_ratio=args.min_ratio,
                )
            )
            return 0
        base = read_timeline(args.base)
        new = read_timeline(args.new)
        text, regressed = perf_diff(base, new, threshold=args.threshold)
        print(text)
        return 1 if regressed else 0
    except (ValueError, OSError) as exc:
        print(f"repro perf: {exc}", file=sys.stderr)
        return 2


def _cmd_report(args) -> int:
    from pathlib import Path

    from .analysis.report import ReportConfig, generate_report

    text = generate_report(
        ReportConfig(scale=args.scale, workers=args.workers, roots=args.roots)
    )
    Path(args.out).write_text(text)
    print(f"wrote reproduction report to {args.out} ({len(text)} chars)")
    return 0


def _cmd_worker(args) -> int:
    if args.worker_command == "serve":
        from .net.daemon import serve

        return serve(
            host=args.host, port=args.port, port_file=args.port_file,
            max_sessions=args.max_sessions,
            telemetry_port=args.telemetry_port,
            telemetry_port_file=args.telemetry_port_file,
        )
    # status
    import json

    from .net import parse_endpoint, probe_endpoint
    from .net.transport import TransportError

    try:
        vitals = probe_endpoint(parse_endpoint(args.endpoint))
    except (TransportError, ValueError, OSError) as exc:
        print(f"repro worker: {exc}", file=sys.stderr)
        return 1
    print(json.dumps(vitals, indent=2, sort_keys=True))
    return 0


def _cmd_cluster(args) -> int:
    """`repro cluster status`: probe + scrape a daemon fleet, print JSON."""
    import json

    members, errors = discover_members(args.endpoints, timeout=args.timeout)
    scraper = ClusterScraper(members, timeout=args.timeout)
    payload = scraper.status()
    payload["errors"].update(errors)
    print(json.dumps(payload, indent=2, sort_keys=True))
    return 1 if payload["errors"] else 0


_COMMANDS = {
    "info": _cmd_info,
    "generate": _cmd_generate,
    "partition": _cmd_partition,
    "advise": _cmd_advise,
    "run": _cmd_run,
    "check": _cmd_check,
    "trace": _cmd_trace,
    "perf": _cmd_perf,
    "postmortem": _cmd_postmortem,
    "report": _cmd_report,
    "worker": _cmd_worker,
    "cluster": _cmd_cluster,
}


def main(argv=None) -> int:
    args = build_parser().parse_args(argv)
    return _COMMANDS[args.command](args)


if __name__ == "__main__":  # pragma: no cover - exercised via tests/CLI
    sys.exit(main())
