"""Swath-*size* heuristics (§IV, evaluated in §VI-B / Fig. 4).

A *swath* is the subset of traversal roots started together.  Its size is
the memory knob: too large and buffered messages overflow physical memory
(virtual-memory thrashing, even fabric-initiated VM restarts); too small and
workers idle.  The paper proposes picking the size automatically:

* :class:`StaticSizer` — the baseline: a hand-picked constant (the paper's
  baseline is the *largest* single swath that completes at all).
* :class:`SamplingSizer` — run a few small probe swaths, measure peak
  memory, linearly extrapolate bytes-per-root, then commit to the static
  size that fills the target threshold (paper: 6 GB of a 7 GB VM).
* :class:`AdaptiveSizer` — feedback controller: scale the next swath size
  by ``target / observed-peak`` each swath (the paper's "simple linear
  interpolation"), clamped to a growth factor for stability.

Sizers see one observation per *swath window* (the supersteps between two
initiations): the cluster-wide peak per-worker memory in that window.

Two cross-cutting facilities:

* **Static seeding** — ``SamplingSizer.from_profile(...)`` /
  ``AdaptiveSizer.from_profile(...)`` start from the
  :class:`~repro.check.costmodel.ProgramProfile` cost model instead of a
  blind guess: the model's bytes-per-root prior sizes the first (single)
  probe, so the sampler commits after one window where the cold-start
  sampler needs its full probe budget.
* **Observability** — when a sizer's ``metrics`` slot holds a
  :class:`~repro.obs.metrics.MetricsRegistry`, every decision lands in
  ``repro_swath_size`` and every window measurement in
  ``repro_swath_probe_mem_bytes`` (labelled by sizer), so swath sizing is
  auditable from the run report alone.  :class:`SwathController`
  propagates its own registry into the sizer automatically.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import TYPE_CHECKING, Any

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, types only
    from repro.check.costmodel import ProgramProfile

__all__ = ["SwathSizer", "StaticSizer", "SamplingSizer", "AdaptiveSizer", "SizerObservation"]


def _profile_prior_size(
    profile: "ProgramProfile",
    target_bytes: float,
    num_vertices: int,
    num_edges: int,
    num_workers: int,
    max_size: int,
) -> int:
    """Model-predicted committed swath size for a memory target."""
    from repro.check.costmodel import estimate_bytes_per_root

    per_root = estimate_bytes_per_root(
        profile, num_vertices=num_vertices, num_edges=num_edges,
        num_workers=num_workers,
    )
    if per_root <= 0:
        return max_size
    return max(1, min(int(float(target_bytes) / per_root), max_size))


@dataclass(frozen=True)
class SizerObservation:
    """What the controller measured for the last completed swath window."""

    swath_size: int
    peak_memory: float  # max per-worker bytes seen in the window
    baseline_memory: float  # footprint with no traversal in flight


class SwathSizer(ABC):
    """Chooses how many roots to start in the next swath."""

    #: optional :class:`~repro.obs.metrics.MetricsRegistry` (duck-typed);
    #: set directly or inherited from the owning SwathController.
    metrics: Any = None

    @abstractmethod
    def next_size(self, remaining: int) -> int:
        """Size of the next swath (>=1, <= remaining)."""

    def observe(self, obs: SizerObservation) -> None:
        """Feed back the previous window's memory measurement."""

    def _emit_size(self, size: int) -> None:
        if self.metrics is not None:
            self.metrics.gauge(
                "repro_swath_size",
                help="Swath size chosen by the sizer",
                sizer=self.label,
            ).set(size)

    def _emit_probe(self, obs: SizerObservation) -> None:
        if self.metrics is not None:
            self.metrics.gauge(
                "repro_swath_probe_mem_bytes",
                help="Peak per-worker memory measured for a swath window",
                sizer=self.label,
            ).set(obs.peak_memory)

    @property
    def label(self) -> str:
        return type(self).__name__


class StaticSizer(SwathSizer):
    """A constant swath size (the paper's baseline when set to |roots|)."""

    def __init__(self, size: int) -> None:
        if size < 1:
            raise ValueError("size must be >= 1")
        self.size = size

    def next_size(self, remaining: int) -> int:
        size = max(1, min(self.size, remaining))
        self._emit_size(size)
        return size

    @property
    def label(self) -> str:
        return f"Static({self.size})"


class SamplingSizer(SwathSizer):
    """Probe swaths -> linear extrapolation -> committed static size.

    Runs ``probes`` swaths of ``probe_size`` roots, estimates marginal bytes
    per root from the worst probe, then commits to
    ``(target - baseline) / bytes_per_root`` for the rest of the job.
    """

    def __init__(
        self,
        target_bytes: float,
        probe_size: int = 2,
        probes: int = 2,
        max_size: int = 10_000,
    ) -> None:
        if target_bytes <= 0:
            raise ValueError("target_bytes must be positive")
        if probe_size < 1 or probes < 1:
            raise ValueError("probe_size and probes must be >= 1")
        self.target_bytes = float(target_bytes)
        self.probe_size = probe_size
        self.probes = probes
        self.max_size = max_size
        self._observations: list[SizerObservation] = []
        self._committed: int | None = None

    @classmethod
    def from_profile(
        cls,
        profile: "ProgramProfile",
        target_bytes: float,
        *,
        num_vertices: int,
        num_edges: int,
        num_workers: int = 1,
        max_size: int = 10_000,
    ) -> "SamplingSizer":
        """Seed the sampler from a static cost model (informed cold start).

        The profile's bytes-per-root prior predicts the committed size; the
        sizer then runs a *single* probe swath at half that prediction
        (large enough to measure, conservative enough to survive a model
        that under-estimated) and commits off it.  The cold-start default
        needs ``probes`` (=2) tiny swaths to reach the same point, so the
        seeded sampler always commits in strictly fewer probe windows.
        """
        prior = _profile_prior_size(
            profile, target_bytes, num_vertices, num_edges, num_workers,
            max_size,
        )
        return cls(
            target_bytes,
            probe_size=max(1, prior // 2),
            probes=1,
            max_size=max_size,
        )

    def observe(self, obs: SizerObservation) -> None:
        self._emit_probe(obs)
        if self._committed is None:
            self._observations.append(obs)

    def next_size(self, remaining: int) -> int:
        if self._committed is None and len(self._observations) >= self.probes:
            # Worst-case marginal memory per root across probes.
            per_root = max(
                (o.peak_memory - o.baseline_memory) / max(o.swath_size, 1)
                for o in self._observations
            )
            baseline = max(o.baseline_memory for o in self._observations)
            headroom = self.target_bytes - baseline
            if per_root <= 0:
                self._committed = self.max_size
            else:
                self._committed = max(1, min(int(headroom / per_root), self.max_size))
        if self._committed is not None:
            size = max(1, min(self._committed, remaining))
        else:
            size = max(1, min(self.probe_size, remaining))
        self._emit_size(size)
        return size

    @property
    def committed_size(self) -> int | None:
        """The extrapolated size once sampling finished (None while probing)."""
        return self._committed

    @property
    def probe_swaths_used(self) -> int:
        """Probe windows consumed so far (stops growing once committed)."""
        return len(self._observations)

    @property
    def label(self) -> str:
        return "Sampling"


class AdaptiveSizer(SwathSizer):
    """Linear-interpolation feedback: grow/shrink by target/observed peak.

    ``next = prev * (target - baseline) / (observed_peak - baseline)``,
    clamped to ``[1, prev * max_growth]`` so a near-empty probe cannot
    explode the swath size in one step.
    """

    def __init__(
        self,
        target_bytes: float,
        initial_size: int = 2,
        max_growth: float = 4.0,
        max_size: int = 10_000,
    ) -> None:
        if target_bytes <= 0:
            raise ValueError("target_bytes must be positive")
        if initial_size < 1:
            raise ValueError("initial_size must be >= 1")
        if max_growth <= 1.0:
            raise ValueError("max_growth must be > 1.0")
        self.target_bytes = float(target_bytes)
        self.max_growth = float(max_growth)
        self.max_size = max_size
        self._size = initial_size

    @classmethod
    def from_profile(
        cls,
        profile: "ProgramProfile",
        target_bytes: float,
        *,
        num_vertices: int,
        num_edges: int,
        num_workers: int = 1,
        max_growth: float = 4.0,
        max_size: int = 10_000,
    ) -> "AdaptiveSizer":
        """Start the feedback loop at the model-predicted size (halved for
        safety) instead of the blind 2-root default, so the controller
        converges in O(1) windows rather than O(log(size)/log(growth))."""
        prior = _profile_prior_size(
            profile, target_bytes, num_vertices, num_edges, num_workers,
            max_size,
        )
        return cls(
            target_bytes,
            initial_size=max(1, prior // 2),
            max_growth=max_growth,
            max_size=max_size,
        )

    def observe(self, obs: SizerObservation) -> None:
        self._emit_probe(obs)
        used = obs.peak_memory - obs.baseline_memory
        headroom = self.target_bytes - obs.baseline_memory
        if used <= 0:
            scale = self.max_growth  # nothing measured: grow boldly
        else:
            scale = headroom / used
        proposed = obs.swath_size * scale
        ceiling = obs.swath_size * self.max_growth
        self._size = int(max(1, min(proposed, ceiling, self.max_size)))

    def next_size(self, remaining: int) -> int:
        size = max(1, min(self._size, remaining))
        self._emit_size(size)
        return size

    @property
    def label(self) -> str:
        return "Adaptive"
