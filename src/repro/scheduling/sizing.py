"""Swath-*size* heuristics (§IV, evaluated in §VI-B / Fig. 4).

A *swath* is the subset of traversal roots started together.  Its size is
the memory knob: too large and buffered messages overflow physical memory
(virtual-memory thrashing, even fabric-initiated VM restarts); too small and
workers idle.  The paper proposes picking the size automatically:

* :class:`StaticSizer` — the baseline: a hand-picked constant (the paper's
  baseline is the *largest* single swath that completes at all).
* :class:`SamplingSizer` — run a few small probe swaths, measure peak
  memory, linearly extrapolate bytes-per-root, then commit to the static
  size that fills the target threshold (paper: 6 GB of a 7 GB VM).
* :class:`AdaptiveSizer` — feedback controller: scale the next swath size
  by ``target / observed-peak`` each swath (the paper's "simple linear
  interpolation"), clamped to a growth factor for stability.

Sizers see one observation per *swath window* (the supersteps between two
initiations): the cluster-wide peak per-worker memory in that window.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass

__all__ = ["SwathSizer", "StaticSizer", "SamplingSizer", "AdaptiveSizer", "SizerObservation"]


@dataclass(frozen=True)
class SizerObservation:
    """What the controller measured for the last completed swath window."""

    swath_size: int
    peak_memory: float  # max per-worker bytes seen in the window
    baseline_memory: float  # footprint with no traversal in flight


class SwathSizer(ABC):
    """Chooses how many roots to start in the next swath."""

    @abstractmethod
    def next_size(self, remaining: int) -> int:
        """Size of the next swath (>=1, <= remaining)."""

    def observe(self, obs: SizerObservation) -> None:
        """Feed back the previous window's memory measurement."""

    @property
    def label(self) -> str:
        return type(self).__name__


class StaticSizer(SwathSizer):
    """A constant swath size (the paper's baseline when set to |roots|)."""

    def __init__(self, size: int) -> None:
        if size < 1:
            raise ValueError("size must be >= 1")
        self.size = size

    def next_size(self, remaining: int) -> int:
        return max(1, min(self.size, remaining))

    @property
    def label(self) -> str:
        return f"Static({self.size})"


class SamplingSizer(SwathSizer):
    """Probe swaths -> linear extrapolation -> committed static size.

    Runs ``probes`` swaths of ``probe_size`` roots, estimates marginal bytes
    per root from the worst probe, then commits to
    ``(target - baseline) / bytes_per_root`` for the rest of the job.
    """

    def __init__(
        self,
        target_bytes: float,
        probe_size: int = 2,
        probes: int = 2,
        max_size: int = 10_000,
    ) -> None:
        if target_bytes <= 0:
            raise ValueError("target_bytes must be positive")
        if probe_size < 1 or probes < 1:
            raise ValueError("probe_size and probes must be >= 1")
        self.target_bytes = float(target_bytes)
        self.probe_size = probe_size
        self.probes = probes
        self.max_size = max_size
        self._observations: list[SizerObservation] = []
        self._committed: int | None = None

    def observe(self, obs: SizerObservation) -> None:
        if self._committed is None:
            self._observations.append(obs)

    def next_size(self, remaining: int) -> int:
        if self._committed is None and len(self._observations) >= self.probes:
            # Worst-case marginal memory per root across probes.
            per_root = max(
                (o.peak_memory - o.baseline_memory) / max(o.swath_size, 1)
                for o in self._observations
            )
            baseline = max(o.baseline_memory for o in self._observations)
            headroom = self.target_bytes - baseline
            if per_root <= 0:
                self._committed = self.max_size
            else:
                self._committed = max(1, min(int(headroom / per_root), self.max_size))
        if self._committed is not None:
            return max(1, min(self._committed, remaining))
        return max(1, min(self.probe_size, remaining))

    @property
    def committed_size(self) -> int | None:
        """The extrapolated size once sampling finished (None while probing)."""
        return self._committed

    @property
    def label(self) -> str:
        return "Sampling"


class AdaptiveSizer(SwathSizer):
    """Linear-interpolation feedback: grow/shrink by target/observed peak.

    ``next = prev * (target - baseline) / (observed_peak - baseline)``,
    clamped to ``[1, prev * max_growth]`` so a near-empty probe cannot
    explode the swath size in one step.
    """

    def __init__(
        self,
        target_bytes: float,
        initial_size: int = 2,
        max_growth: float = 4.0,
        max_size: int = 10_000,
    ) -> None:
        if target_bytes <= 0:
            raise ValueError("target_bytes must be positive")
        if initial_size < 1:
            raise ValueError("initial_size must be >= 1")
        if max_growth <= 1.0:
            raise ValueError("max_growth must be > 1.0")
        self.target_bytes = float(target_bytes)
        self.max_growth = float(max_growth)
        self.max_size = max_size
        self._size = initial_size

    def observe(self, obs: SizerObservation) -> None:
        used = obs.peak_memory - obs.baseline_memory
        headroom = self.target_bytes - obs.baseline_memory
        if used <= 0:
            scale = self.max_growth  # nothing measured: grow boldly
        else:
            scale = headroom / used
        proposed = obs.swath_size * scale
        ceiling = obs.swath_size * self.max_growth
        self._size = int(max(1, min(proposed, ceiling, self.max_size)))

    def next_size(self, remaining: int) -> int:
        return max(1, min(self._size, remaining))

    @property
    def label(self) -> str:
        return "Adaptive"
