"""Swath-*initiation* heuristics (§IV, evaluated in §VI-C / Figs. 6-7).

Once computation runs as a series of swaths, the second knob is *when* to
start the next one.  Waiting for the previous swath to fully drain
(sequential) under-utilizes the long tail of its supersteps; starting too
early stacks two peaks on top of each other.

* :class:`SequentialInitiation` — baseline: initiate only at quiescence
  (previous swath fully complete).
* :class:`StaticEveryN` — initiate every N supersteps; best when N ≈ the
  graph's average shortest-path length ("6 degrees from Kevin Bacon"), but
  that must be known a priori — the guesswork the paper criticizes.
* :class:`DynamicPeakDetect` — the paper's automated heuristic: watch the
  per-superstep sent-message totals and initiate when traffic shows a
  *rise-then-fall* phase change (the swath's frontier peak has passed).

Regardless of policy, the controller always initiates at engine quiescence
(no active vertices, no buffered messages) so roots are never stranded.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass, field

__all__ = [
    "InitiationContext",
    "InitiationPolicy",
    "SequentialInitiation",
    "StaticEveryN",
    "DynamicPeakDetect",
]


@dataclass
class InitiationContext:
    """What a policy may look at when deciding to start the next swath."""

    superstep: int
    steps_since_initiation: int
    messages_history: list[int] = field(default_factory=list)  # since last init
    quiescent: bool = False


class InitiationPolicy(ABC):
    """Decides whether to start the next swath at this superstep boundary."""

    @abstractmethod
    def should_initiate(self, ctx: InitiationContext) -> bool: ...

    def reset(self) -> None:
        """Called by the controller right after a swath is initiated."""

    @property
    def label(self) -> str:
        return type(self).__name__


class SequentialInitiation(InitiationPolicy):
    """Baseline: only start when the engine is fully drained."""

    def should_initiate(self, ctx: InitiationContext) -> bool:
        return ctx.quiescent

    @property
    def label(self) -> str:
        return "Sequential"


class StaticEveryN(InitiationPolicy):
    """Start a new swath every ``n`` supersteps (paper's Static-N)."""

    def __init__(self, n: int) -> None:
        if n < 1:
            raise ValueError("n must be >= 1")
        self.n = n

    def should_initiate(self, ctx: InitiationContext) -> bool:
        return ctx.quiescent or ctx.steps_since_initiation >= self.n

    @property
    def label(self) -> str:
        return f"Static-{self.n}"


class DynamicPeakDetect(InitiationPolicy):
    """Initiate when message traffic rises then falls (phase change).

    Tracks the totals since the last initiation; fires at the first
    superstep whose traffic is strictly below the preceding superstep's,
    provided an earlier rise was seen — i.e. the frontier peak of the
    youngest swath has passed (§IV's dynamic initiation heuristic).
    """

    def __init__(self) -> None:
        self._seen_rise = False

    def should_initiate(self, ctx: InitiationContext) -> bool:
        if ctx.quiescent:
            return True
        hist = ctx.messages_history
        if len(hist) < 2:
            return False
        if hist[-1] > hist[-2]:
            self._seen_rise = True
            return False
        if self._seen_rise and hist[-1] < hist[-2]:
            return True
        return False

    def reset(self) -> None:
        self._seen_rise = False

    @property
    def label(self) -> str:
        return "Dynamic"
