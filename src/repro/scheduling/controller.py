"""The swath controller: wires sizing + initiation heuristics to the engine.

The controller is a plain :class:`~repro.bsp.engine.SuperstepObserver` — it
only consumes the public superstep statistics and injects control-plane
start messages, exactly the coupling the paper claims makes the heuristics
"generalizable ... by other BSP and distributed graph frameworks".

Responsibilities:

* keep the ordered list of pending traversal roots;
* at each superstep boundary, feed the window's peak memory to the
  :class:`~repro.scheduling.sizing.SwathSizer` and ask the
  :class:`~repro.scheduling.initiation.InitiationPolicy` whether to start
  the next swath (always starting one at quiescence so the job can't
  strand roots);
* record a :class:`SwathEvent` log that the benches plot.

Works with any message-driven program that provides a ``start_messages``
factory (BC and APSP do).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Sequence

from ..bsp.engine import BSPEngine, SuperstepObserver
from ..bsp.superstep import SuperstepStats
from .initiation import InitiationContext, InitiationPolicy, SequentialInitiation
from .sizing import SizerObservation, StaticSizer, SwathSizer

__all__ = ["SwathController", "SwathEvent"]

StartFactory = Callable[[Sequence[int]], list[tuple[int, tuple]]]


@dataclass(frozen=True)
class SwathEvent:
    """One swath initiation, for traces and reports."""

    superstep: int
    size: int
    roots: tuple[int, ...]
    remaining_after: int


@dataclass
class SwathController(SuperstepObserver):
    """Schedules traversal roots in swaths (see module docstring)."""

    roots: Sequence[int]
    start_factory: StartFactory
    sizer: SwathSizer = field(default_factory=lambda: StaticSizer(1))
    initiation: InitiationPolicy = field(default_factory=SequentialInitiation)
    events: list[SwathEvent] = field(default_factory=list)
    #: optional :class:`repro.obs.MetricsRegistry` for swath telemetry
    metrics: Any = None
    #: optional :class:`repro.obs.RunTimeline`; initiations annotate it so
    #: `repro perf report` shows swath boundaries next to straggler flags
    timeline: Any = None

    def __post_init__(self) -> None:
        self._pending: list[int] = [int(r) for r in self.roots]
        seen = set()
        for r in self._pending:
            if r in seen:
                raise ValueError(f"duplicate root {r}")
            seen.add(r)
        self._baseline_memory = 0.0
        self._window_peak = 0.0
        self._window_size = 0
        self._steps_since_initiation = 0
        self._messages_history: list[int] = []
        self._started_any = False
        # Sizer decisions ride the same registry as controller telemetry
        # (repro_swath_size / repro_swath_probe_mem_bytes) unless the
        # sizer was given its own.
        if self.metrics is not None and self.sizer.metrics is None:
            self.sizer.metrics = self.metrics

    # ------------------------------------------------------------------
    # Observer protocol
    # ------------------------------------------------------------------
    def on_job_start(self, engine: BSPEngine) -> None:
        # Footprint before any traversal: partition + initial states.
        self._baseline_memory = max(
            (w.memory_footprint() for w in engine.workers), default=0.0
        )
        self._initiate(engine, superstep=-1)

    def on_superstep_end(self, engine: BSPEngine, stats: SuperstepStats) -> None:
        self._window_peak = max(self._window_peak, stats.peak_memory)
        self._steps_since_initiation += 1
        self._messages_history.append(stats.total_messages)
        if not self._pending:
            return
        quiescent = engine.active_vertices == 0 and not engine.buffered_messages
        ctx = InitiationContext(
            superstep=stats.index,
            steps_since_initiation=self._steps_since_initiation,
            messages_history=self._messages_history,
            quiescent=quiescent,
        )
        if quiescent or self.initiation.should_initiate(ctx):
            self._close_window()
            self._initiate(engine, superstep=stats.index)

    def has_pending_work(self) -> bool:
        return bool(self._pending)

    # ------------------------------------------------------------------
    def _close_window(self) -> None:
        """Report the finished swath window's memory peak to the sizer."""
        if self._window_size > 0:
            self.sizer.observe(
                SizerObservation(
                    swath_size=self._window_size,
                    peak_memory=max(self._window_peak, self._baseline_memory),
                    baseline_memory=self._baseline_memory,
                )
            )
            if self.metrics is not None:
                self.metrics.gauge(
                    "swath_window_peak_memory_bytes",
                    help="Peak per-worker memory in the last swath window",
                ).set(max(self._window_peak, self._baseline_memory))
        self._window_peak = 0.0

    def _initiate(self, engine: BSPEngine, superstep: int) -> None:
        if not self._pending:
            return
        size = self.sizer.next_size(remaining=len(self._pending))
        swath, self._pending = self._pending[:size], self._pending[size:]
        engine.inject_messages(self.start_factory(swath))
        self.events.append(
            SwathEvent(
                superstep=superstep,
                size=len(swath),
                roots=tuple(swath),
                remaining_after=len(self._pending),
            )
        )
        if self.timeline is not None:
            # The injected messages run in superstep+1; annotate there.
            self.timeline.annotate(
                superstep + 1, "swath-initiation",
                size=len(swath), remaining=len(self._pending),
            )
        self._window_size = len(swath)
        self._steps_since_initiation = 0
        self._messages_history = []
        self.initiation.reset()
        self._started_any = True
        if self.metrics is not None:
            self.metrics.counter(
                "swath_initiations_total",
                help="Swaths started by the controller",
            ).inc()
            self.metrics.gauge(
                "swath_size", help="Roots started in the most recent swath"
            ).set(len(swath))
            self.metrics.gauge(
                "swath_pending_roots",
                help="Traversal roots not yet started",
            ).set(len(self._pending))

    # ------------------------------------------------------------------
    @property
    def num_swaths(self) -> int:
        return len(self.events)

    @property
    def completed_all(self) -> bool:
        return not self._pending
