"""Swath scheduling — the paper's primary contribution (§IV)."""

from .sizing import (
    AdaptiveSizer,
    SamplingSizer,
    SizerObservation,
    StaticSizer,
    SwathSizer,
)
from .initiation import (
    DynamicPeakDetect,
    InitiationContext,
    InitiationPolicy,
    SequentialInitiation,
    StaticEveryN,
)
from .controller import SwathController, SwathEvent

__all__ = [
    "AdaptiveSizer",
    "SamplingSizer",
    "SizerObservation",
    "StaticSizer",
    "SwathSizer",
    "DynamicPeakDetect",
    "InitiationContext",
    "InitiationPolicy",
    "SequentialInitiation",
    "StaticEveryN",
    "SwathController",
    "SwathEvent",
]
