"""All-pairs shortest paths on Pregel/BSP (multi-root BFS waves).

The paper's second high-complexity workload: a BFS traversal rooted at every
vertex, O(|V||E|) messages total with the same triangle-waveform per-swath
profile as BC (Fig. 3) but no backward phase, so its peak is lower (the
paper measures 3M vs BC's 4.7M peak messages on WG).

Like :class:`~repro.algorithms.bc.BCProgram`, roots are message-driven via
``("start", root)`` injections so swath scheduling composes.

Per-vertex memory grows by one distance entry per started root — the APSP
memory pressure §IV describes.  ``retain`` controls what is kept:

* ``"distances"`` (default) — full per-root distance table (true APSP);
* ``"aggregate"`` — only the running sum/count per vertex (enough for
  closeness-style validation at a fraction of the memory).
"""

from __future__ import annotations

from typing import Any

from ..bsp.api import VertexContext, VertexProgram

__all__ = ["APSPProgram", "APSPState", "start_messages"]

_DIST = 0  # (tag, root, distance)
_START = 1  # (tag, root)


def start_messages(roots) -> list[tuple[int, tuple]]:
    """Control messages that start a BFS wave at each given root."""
    return [(int(r), (_START, int(r))) for r in roots]


class APSPState:
    """Distances discovered so far (or their running aggregate)."""

    __slots__ = ("distances", "sum_dist", "count")

    def __init__(self) -> None:
        self.distances: dict[int, int] = {}
        self.sum_dist = 0
        self.count = 0

    def nbytes(self) -> int:
        return 40 + 24 * len(self.distances)


class APSPProgram(VertexProgram):
    """Multi-root BFS producing per-vertex shortest-path distances."""

    def __init__(self, retain: str = "distances") -> None:
        if retain not in ("distances", "aggregate"):
            raise ValueError("retain must be 'distances' or 'aggregate'")
        self.retain = retain

    def init_state(self, vertex_id: int, graph) -> APSPState:
        return APSPState()

    def state_nbytes(self, state: APSPState) -> int:
        return state.nbytes()

    def payload_nbytes(self, payload: Any) -> int:
        return 8 * len(payload)

    def extract(self, vertex_id: int, state: APSPState):
        if self.retain == "distances":
            return dict(state.distances)
        return (state.sum_dist, state.count)

    # ------------------------------------------------------------------
    def _record(self, state: APSPState, root: int, dist: int) -> bool:
        """Record root->vertex distance; True when newly discovered."""
        seen = state.distances if self.retain == "distances" else None
        if seen is not None:
            if root in seen:
                return False
            seen[root] = dist
        else:
            # Aggregate mode still needs dedup; reuse the dict transiently
            # but drop the value to one byte of bookkeeping.
            if root in state.distances:
                return False
            state.distances[root] = dist
        state.sum_dist += dist
        state.count += 1
        return True

    def compute(self, ctx: VertexContext, state: APSPState, messages) -> APSPState:
        v = ctx.vertex_id
        for msg in messages:
            tag = msg[0]
            if tag == _START:
                root = msg[1]
                if root != v:
                    raise ValueError(f"start message for root {root} at vertex {v}")
                if self._record(state, root, 0):
                    ctx.send_to_neighbors((_DIST, root, 1))
            elif tag == _DIST:
                _, root, dist = msg
                if self._record(state, root, dist):
                    ctx.send_to_neighbors((_DIST, root, dist + 1))
            else:  # pragma: no cover - defensive
                raise ValueError(f"unknown APSP message tag {tag!r}")
        ctx.vote_to_halt()
        return state
