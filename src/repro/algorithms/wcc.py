"""Weakly connected components on Pregel/BSP (broadcast-then-relax).

A second components formulation, distinct from
:class:`~repro.algorithms.cc.ConnectedComponentsProgram`'s changed-flag
style: every vertex announces its own id once at superstep 0, then relaxes
to the minimum label heard and forwards only improvements.  The
announce/relax split gives the program an explicit per-superstep phase
structure, which makes it the canonical two-phase fixture for the
kernel-plan lifter (``repro check --kernel-plan``).

Like CC, run it on a symmetrized graph (``graph.as_undirected()``) to get
weakly connected components of a directed input.
"""

from __future__ import annotations

from typing import Any

from ..bsp.api import VertexContext, VertexProgram
from ..bsp.combiners import MinCombiner

__all__ = ["WCCProgram"]


class WCCProgram(VertexProgram):
    """Min-label WCC: announce own id at step 0, then min-relax."""

    combiner = MinCombiner()

    def init_state(self, vertex_id: int, graph) -> int:
        return vertex_id

    def state_nbytes(self, state: Any) -> int:
        return 8

    def payload_nbytes(self, payload: Any) -> int:
        return 8

    def compute(self, ctx: VertexContext, state: int, messages) -> int:
        candidate = min(messages, default=state)
        if ctx.superstep == 0:
            ctx.send_to_neighbors(state)
        elif candidate < state:
            state = candidate
            ctx.send_to_neighbors(state)
        ctx.vote_to_halt()
        return state
