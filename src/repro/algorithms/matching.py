"""Randomized maximal bipartite matching — another Pregel-paper workload.

The four-phase handshake from Malewicz et al., run on a bipartite graph
whose vertices are tagged left/right by a predicate:

* phase 0 — unmatched left vertices send match *requests* to neighbors not
  known to be taken;
* phase 1 — unmatched right vertices *grant* one request (lowest sender id:
  deterministic stand-in for Pregel's "randomly chosen") and deny the rest;
  already-matched right vertices deny *permanently*;
* phase 2 — left vertices *accept* one grant and notify the chosen right
  vertex; permanent denials mark that neighbor as exhausted;
* phase 3 — right vertices record the accepted match.

Rounds repeat until every left vertex is matched or has exhausted its
neighborhood.  The result is a maximal (not maximum) matching; tests verify
matched pairs are real edges, each vertex is matched at most once, and
maximality (no unmatched adjacent left/right pair remains).
"""

from __future__ import annotations

from typing import Any, Callable

from ..bsp.api import VertexContext, VertexProgram

__all__ = ["BipartiteMatchingProgram"]

_REQUEST = 0
_GRANT = 1
_DENY = 2  # lost a tie this round; retry later
_DENY_PERM = 3  # the right vertex is matched; never retry
_ACCEPT = 4


class _LeftState:
    __slots__ = ("match", "dead")

    def __init__(self) -> None:
        self.match = -1
        self.dead: set[int] = set()


class BipartiteMatchingProgram(VertexProgram):
    """Maximal matching on a bipartite graph (left/right by predicate)."""

    def __init__(self, is_left: Callable[[int], bool]) -> None:
        self.is_left = is_left

    def init_state(self, vertex_id: int, graph) -> Any:
        return _LeftState() if self.is_left(vertex_id) else -1

    def state_nbytes(self, state: Any) -> int:
        if isinstance(state, _LeftState):
            return 24 + 8 * len(state.dead)
        return 8

    def payload_nbytes(self, payload: Any) -> int:
        return 16

    def extract(self, vertex_id: int, state: Any) -> int:
        return state.match if isinstance(state, _LeftState) else state

    # ------------------------------------------------------------------
    def compute(self, ctx: VertexContext, state: Any, messages) -> Any:
        phase = ctx.superstep % 4
        v = ctx.vertex_id
        if isinstance(state, _LeftState):
            self._compute_left(ctx, state, messages, phase, v)
        else:
            state = self._compute_right(ctx, state, messages, phase, v)
        return state

    def _compute_left(self, ctx, state: _LeftState, messages, phase, v) -> None:
        # Robustness on non-bipartite input: a request reaching a *left*
        # vertex means the edge joins two same-side vertices; such an edge
        # can never be matched — deny it permanently instead of ignoring it
        # (ignoring would livelock the requester).
        for tag, sender in messages:
            if tag == _REQUEST:
                ctx.send(sender, (_DENY_PERM, v))
        if state.match >= 0:
            ctx.vote_to_halt()
            return
        if phase == 0:
            targets = [
                int(u) for u in ctx.out_neighbors if int(u) not in state.dead
            ]
            if not targets:
                ctx.vote_to_halt()  # neighborhood exhausted: stays unmatched
                return
            for u in targets:
                ctx.send(u, (_REQUEST, v))
        elif phase == 2:
            grants = []
            for tag, sender in messages:
                if tag == _GRANT:
                    grants.append(sender)
                elif tag == _DENY_PERM:
                    state.dead.add(sender)
            if grants:
                state.match = min(grants)
                ctx.send(state.match, (_ACCEPT, v))
                ctx.vote_to_halt()
        # Phases 1 and 3: stay awake awaiting the handshake's next phase.

    def _compute_right(self, ctx, state: int, messages, phase, v) -> int:
        if phase == 1:
            requests = sorted(m[1] for m in messages if m[0] == _REQUEST)
            if state >= 0:
                for r in requests:
                    ctx.send(r, (_DENY_PERM, v))
                ctx.vote_to_halt()
            elif requests:
                ctx.send(requests[0], (_GRANT, v))
                for r in requests[1:]:
                    ctx.send(r, (_DENY, v))
            else:
                ctx.vote_to_halt()
        elif phase == 3:
            accepts = [m[1] for m in messages if m[0] == _ACCEPT]
            if accepts:
                # We granted exactly one request, so at most one accept.
                state = accepts[0]
            ctx.vote_to_halt()
        return state
