"""Connected components on Pregel/BSP (min-label propagation).

Each vertex adopts the minimum vertex id seen in its (weak) neighborhood and
propagates changes; at convergence every vertex holds the smallest id of its
component.  A standard Pregel example; validates against
:func:`repro.graph.properties.connected_components`.
"""

from __future__ import annotations

from typing import Any

from ..bsp.api import VertexContext, VertexProgram
from ..bsp.combiners import MinCombiner

__all__ = ["ConnectedComponentsProgram"]


class ConnectedComponentsProgram(VertexProgram):
    """Minimum-label propagation over the symmetrized edge set.

    On directed graphs this computes *weakly* connected components provided
    the input graph has been symmetrized (``graph.as_undirected()``); the
    program itself only follows out-edges, per the Pregel model.
    """

    combiner = MinCombiner()

    def init_state(self, vertex_id: int, graph) -> int:
        return vertex_id

    def state_nbytes(self, state: Any) -> int:
        return 8

    def payload_nbytes(self, payload: Any) -> int:
        return 8

    def compute(self, ctx: VertexContext, state: int, messages) -> int:
        candidate = min(messages, default=state)
        if ctx.superstep == 0:
            candidate = min(candidate, ctx.vertex_id)
            changed = True  # everyone announces once
        else:
            changed = candidate < state
        if changed:
            state = min(state, candidate)
            ctx.send_to_neighbors(state)
        ctx.vote_to_halt()
        return state
