"""Effective-diameter estimation on Pregel/BSP (multi-source bitmask BFS).

§V sizes the evaluation datasets by their *90% effective diameter*
(Table 1); computing it exactly needs all-pairs BFS.  This program
estimates it inside the engine with the classic bitmask trick (the
HyperANF family's exact small-k special case): pick ``k <= 64`` sample
sources, give every vertex a ``k``-bit reachability mask, and each
superstep OR-in the neighbors' masks.  Newly-set bits at superstep ``d``
are exactly the (source, vertex) pairs at distance ``d``; a per-superstep
aggregator accumulates the distance histogram, from which the master
computes the interpolated effective diameter and halts when the masks
stop changing.

Validates against :func:`repro.graph.properties.effective_diameter` with
the same sample sources (bit-exact histogram), at O(diameter) supersteps
and one 8-byte message per edge per superstep instead of |sources| BFS
passes.
"""

from __future__ import annotations

from typing import Any

import numpy as np

from ..bsp.aggregators import SumAggregator
from ..bsp.api import MasterContext, VertexContext, VertexProgram
from ..bsp.combiners import Combiner

__all__ = ["DiameterEstimationProgram"]


class _OrCombiner(Combiner):
    """Bitwise OR — reachability masks fold losslessly."""

    def combine(self, a: int, b: int) -> int:
        return a | b


class DiameterEstimationProgram(VertexProgram):
    """Distance histogram + effective diameter from k sampled sources.

    After the run: :attr:`histogram` maps distance -> pair count (distance
    0 entries are the sources themselves) and :meth:`effective_diameter`
    interpolates the 90% (or requested) quantile exactly as
    :func:`repro.graph.properties.effective_diameter` does.
    """

    combiner = _OrCombiner()

    def __init__(self, sources, fraction: float = 0.9) -> None:
        sources = [int(s) for s in sources]
        if not 1 <= len(sources) <= 64:
            raise ValueError("need between 1 and 64 sample sources")
        if len(set(sources)) != len(sources):
            raise ValueError("duplicate sources")
        if not 0 < fraction <= 1:
            raise ValueError("fraction must be in (0, 1]")
        self.sources = sources
        self.fraction = fraction
        self._bit = {s: 1 << i for i, s in enumerate(sources)}
        self.histogram: dict[int, int] = {}
        self.finished_at: int | None = None

    def aggregators(self):
        return {"new_bits": SumAggregator()}

    def init_state(self, vertex_id: int, graph) -> int:
        return self._bit.get(vertex_id, 0)

    def state_nbytes(self, state: Any) -> int:
        return 8

    def payload_nbytes(self, payload: Any) -> int:
        return 8

    def compute(self, ctx: VertexContext, state: int, messages) -> int:
        incoming = 0
        for m in messages:
            incoming |= m
        new_bits = incoming & ~state
        if ctx.superstep == 0:
            new_bits = state  # sources count themselves at distance 0
        if new_bits:
            ctx.aggregate("new_bits", int(bin(new_bits).count("1")))
            state |= incoming
            # Forward the full mask; the OR-combiner dedups in flight.
            ctx.send_to_neighbors(state)
        elif ctx.superstep == 0 and state == 0:
            pass  # non-source vertices idle until a mask reaches them
        return state  # master halts the job

    def master_compute(self, master: MasterContext) -> None:
        new = master.aggregated("new_bits")
        if new:
            self.histogram[master.superstep] = int(new)
        elif master.superstep > 0:
            self.finished_at = master.superstep
            master.halt_job()

    # ------------------------------------------------------------------
    def effective_diameter(self) -> float:
        """Interpolated quantile of the measured distance histogram."""
        if not self.histogram:
            return 0.0
        max_d = max(self.histogram)
        counts = np.zeros(max_d + 1, dtype=np.int64)
        for d, c in self.histogram.items():
            counts[d] = c
        counts[0] = 0  # self-pairs excluded, as in graph.properties
        total = counts.sum()
        if total == 0:
            return 0.0
        cum = np.cumsum(counts)
        target = self.fraction * total
        d = int(np.searchsorted(cum, target))
        if d == 0:
            return 0.0
        prev = cum[d - 1]
        span = cum[d] - prev
        return float(d - 1 + (target - prev) / span) if span > 0 else float(d)
