"""Triangle counting on Pregel/BSP (neighborhood-intersection pattern).

A different communication shape from the traversal workloads: one heavy
superstep where every vertex ships its (pruned) adjacency list to selected
neighbors, then local set intersection.  Uses the standard degree-ordering
trick — vertex ``u`` only announces neighbors ranked above it, and only to
neighbors ranked above it — so each triangle is counted exactly once and
total message volume is O(sum of min-degree per edge) instead of O(Σd²).

Validates against ``networkx.triangles`` in tests; the per-vertex result is
the number of triangles through that vertex.
"""

from __future__ import annotations

from typing import Any

from ..bsp.api import VertexContext, VertexProgram

__all__ = ["TriangleCountProgram"]


def _rank(v: int, deg: int) -> tuple[int, int]:
    """Degree-then-id total order (the standard tie-broken degree order)."""
    return (deg, v)


# Broadcast-class by design, but the whole run is exactly three supersteps
# with self-limiting wedge traffic — there is no per-root wave to swath.
class TriangleCountProgram(VertexProgram):  # repro: noqa[RPC012]
    """Counts triangles through each vertex of an undirected graph."""

    def init_state(self, vertex_id: int, graph) -> int:
        self._graph = graph
        return 0

    def state_nbytes(self, state: Any) -> int:
        return 8

    def payload_nbytes(self, payload: Any) -> int:
        if len(payload) == 2 and isinstance(payload[1], tuple):
            return 8 * (1 + len(payload[1]))  # (src, candidate ids)
        return 8  # credit token

    def compute(self, ctx: VertexContext, state: int, messages):
        g = self._graph
        my_rank = _rank(ctx.vertex_id, ctx.out_degree)

        if ctx.superstep == 0:
            # Send my higher-ranked neighbor set to each higher neighbor.
            higher = tuple(
                int(u)
                for u in ctx.out_neighbors
                if _rank(int(u), g.out_degree(int(u))) > my_rank
            )
            for u in higher:
                others = tuple(x for x in higher if x != u)
                if others:
                    ctx.send(u, (ctx.vertex_id, others))
            ctx.vote_to_halt()
            return state

        if ctx.superstep == 1:
            # Intersect announced candidate sets with my adjacency.  Keeping
            # only candidates ranked above me makes me the *middle* corner
            # (src < me < other), so each triangle closes exactly once.
            nbrs = set(int(x) for x in ctx.out_neighbors)
            for src, candidates in messages:
                for other in candidates:
                    if other in nbrs and _rank(other, g.out_degree(other)) > my_rank:
                        state += 1
                        # Credit the other two corners.
                        ctx.send(src, ("credit",))
                        ctx.send(other, ("credit",))
            ctx.vote_to_halt()
            return state

        # Superstep 2: collect credits for triangles closed elsewhere.
        for msg in messages:
            if msg[0] == "credit":
                state += 1
        ctx.vote_to_halt()
        return state
