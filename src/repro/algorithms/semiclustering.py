"""Semi-clustering — the community-detection workload from the Pregel paper.

§II-B lists community detection among the high-complexity analyses the
paper's class of frameworks should support; Pregel's own paper (Malewicz et
al., the model this engine reproduces) demonstrates it with
*semi-clustering*: vertices greedily accumulate overlapping clusters scored
by ``S = (I - f_B * B) / (V * (V - 1) / 2)`` where ``I`` is the weight of
edges inside the cluster, ``B`` the weight of boundary edges, and ``V`` the
cluster size; each vertex keeps its ``c_max`` best clusters and gossips
them to neighbors until the cluster sets stabilize.

Unit edge weights are assumed (our CSR graphs are unweighted); determinism
comes from lexicographic tie-breaking on (score, members).
"""

from __future__ import annotations

from typing import Any

from ..bsp.api import VertexContext, VertexProgram

__all__ = ["SemiClusteringProgram", "cluster_score"]


def cluster_score(
    members: frozenset[int], graph, boundary_factor: float
) -> float:
    """Pregel's semi-cluster score for a member set on an unweighted graph."""
    v = len(members)
    if v < 2:
        return 0.0
    inside = 0
    boundary = 0
    for m in members:
        for u in graph.neighbors(m):
            if int(u) in members:
                inside += 1  # counted twice over the loop; halve below
            else:
                boundary += 1
    inside //= 2
    return (inside - boundary_factor * boundary) / (v * (v - 1) / 2.0)


class SemiClusteringProgram(VertexProgram):
    """Greedy overlapping clustering via cluster gossip.

    Parameters
    ----------
    max_rounds:
        Gossip supersteps (the Pregel paper also bounds iterations).
    c_max:
        Clusters each vertex retains and forwards.
    v_max:
        Maximum cluster size; larger candidates are not extended.
    boundary_factor:
        The score's boundary-edge penalty (Pregel's ``f_B``), in [0, 1].
        Must be small (Pregel suggests ~0.1): with a large penalty every
        small growing cluster scores below a singleton and growth never
        starts.
    """

    def __init__(
        self,
        max_rounds: int = 6,
        c_max: int = 2,
        v_max: int = 4,
        boundary_factor: float = 0.1,
    ) -> None:
        if max_rounds < 1 or c_max < 1 or v_max < 2:
            raise ValueError("max_rounds, c_max >= 1 and v_max >= 2 required")
        if not 0.0 <= boundary_factor <= 1.0:
            raise ValueError("boundary_factor must be in [0, 1]")
        self.max_rounds = max_rounds
        self.c_max = c_max
        self.v_max = v_max
        self.boundary_factor = boundary_factor

    # ------------------------------------------------------------------
    def init_state(self, vertex_id: int, graph) -> list:
        self._graph = graph
        return [frozenset([vertex_id])]

    def state_nbytes(self, state: Any) -> int:
        return 16 + sum(16 + 8 * len(c) for c in state)

    def payload_nbytes(self, payload: Any) -> int:
        return 16 + sum(16 + 8 * len(c) for c in payload)

    def extract(self, vertex_id: int, state: list) -> list[frozenset[int]]:
        return list(state)

    # ------------------------------------------------------------------
    def _rank_key(self, cluster: frozenset[int]):
        return (-cluster_score(cluster, self._graph, self.boundary_factor),
                sorted(cluster))

    def compute(self, ctx: VertexContext, state: list, messages) -> list:
        v = ctx.vertex_id
        candidates: set[frozenset[int]] = set(state)
        for clusters in messages:
            for cluster in clusters:
                candidates.add(cluster)
                # Extend the incoming cluster with myself when allowed.
                if v not in cluster and len(cluster) < self.v_max:
                    candidates.add(cluster | {v})
        best = sorted(candidates, key=self._rank_key)[: self.c_max]

        changed = best != list(state)
        if ctx.superstep < self.max_rounds and (changed or ctx.superstep == 0):
            ctx.send_to_neighbors(tuple(best))
        ctx.vote_to_halt()
        return best
