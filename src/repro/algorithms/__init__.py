"""Vertex programs (PageRank, BC, APSP, SSSP, CC) and sequential references."""

from .pagerank import PageRankProgram
from .pagerank_convergent import ConvergentPageRankProgram
from .bc import BCProgram, BCState
from .apsp import APSPProgram, APSPState
from .sssp import SSSPProgram
from .cc import ConnectedComponentsProgram
from .wcc import WCCProgram
from .kcore import KCoreProgram
from .triangles import TriangleCountProgram
from .semiclustering import SemiClusteringProgram, cluster_score
from .matching import BipartiteMatchingProgram
from .lpa import LabelPropagationProgram
from .diameter import DiameterEstimationProgram
from . import bc, apsp, reference
from .reference import (
    apsp_reference,
    dijkstra_reference,
    betweenness_reference,
    pagerank_reference,
    sssp_reference,
)

__all__ = [
    "PageRankProgram",
    "ConvergentPageRankProgram",
    "KCoreProgram",
    "TriangleCountProgram",
    "SemiClusteringProgram",
    "cluster_score",
    "BipartiteMatchingProgram",
    "LabelPropagationProgram",
    "DiameterEstimationProgram",
    "BCProgram",
    "BCState",
    "APSPProgram",
    "APSPState",
    "SSSPProgram",
    "ConnectedComponentsProgram",
    "WCCProgram",
    "bc",
    "apsp",
    "reference",
    "apsp_reference",
    "dijkstra_reference",
    "betweenness_reference",
    "pagerank_reference",
    "sssp_reference",
]
