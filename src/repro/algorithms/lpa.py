"""Label-propagation community detection (§II-B's "CD" workload class).

The paper names community detection among the high-complexity analyses
beyond PageRank; label propagation is its standard vertex-centric form:
every vertex repeatedly adopts the most frequent label among its neighbors
(ties to the smallest label, for determinism), until no label changes or a
round bound hits.  Communities = final label groups.

Implementation notes:

* every vertex re-broadcasts its label each round so receivers always see
  their *full* neighborhood (a changed-only protocol would tally partial
  views and corrupt the majority vote);
* global convergence is detected by the *master* via a ``changes``
  aggregator and :meth:`~repro.bsp.api.VertexProgram.master_compute` —
  vertices never vote to halt themselves;
* synchronous LPA can two-color oscillate on bipartite structures; the
  round bound keeps such runs finite, and the deterministic tie-break keeps
  them reproducible.
"""

from __future__ import annotations

from collections import Counter
from typing import Any

from ..bsp.aggregators import SumAggregator
from ..bsp.api import MasterContext, VertexContext, VertexProgram

__all__ = ["LabelPropagationProgram"]


class LabelPropagationProgram(VertexProgram):
    """Synchronous LPA with master-detected convergence."""

    def __init__(self, max_rounds: int = 20) -> None:
        if max_rounds < 1:
            raise ValueError("max_rounds must be >= 1")
        self.max_rounds = max_rounds
        self.converged_at: int | None = None

    def aggregators(self):
        return {"changes": SumAggregator()}

    def init_state(self, vertex_id: int, graph) -> int:
        return vertex_id

    def state_nbytes(self, state: Any) -> int:
        return 8

    def payload_nbytes(self, payload: Any) -> int:
        return 8

    def compute(self, ctx: VertexContext, state: int, messages) -> int:
        if ctx.superstep > 0 and messages:
            counts = Counter(messages)
            # Include the own label (self-loop weighting): the standard LPA
            # damping that breaks two-coloring oscillation on bipartite
            # structures like paths and stars.
            counts[state] += 1
            best = max(counts.values())
            new_label = min(l for l, c in counts.items() if c == best)
            if new_label != state:
                ctx.aggregate("changes", 1)
                state = new_label
        ctx.send_to_neighbors(state)
        return state  # the master ends the job; vertices stay active

    def master_compute(self, master: MasterContext) -> None:
        if master.superstep >= 1 and master.aggregated("changes") == 0:
            self.converged_at = master.superstep
            master.halt_job()
        elif master.superstep + 1 >= self.max_rounds:
            master.halt_job()
