"""PageRank on Pregel/BSP — the paper's uniform-message-profile baseline.

Every iteration passes one message along every edge, so messages per
superstep are constant (the flat line in Fig. 3) and resource usage is
predictable — the foil against which BC/APSP's triangle waveform is
contrasted throughout the paper.

Implementation notes:

* Runs a fixed number of iterations (paper: 30) rather than to convergence,
  matching §VI-A.
* Dangling vertices (no out-edges) contribute their rank mass through a
  :class:`~repro.bsp.aggregators.SumAggregator`, which is redistributed
  uniformly next superstep — this matches networkx's handling, so results
  validate against ``networkx.pagerank`` to tight tolerances.
* A :class:`~repro.bsp.combiners.SumCombiner` folds rank mass bound for the
  same destination, exactly Pregel's canonical combiner example.
"""

from __future__ import annotations

from typing import Any

from ..bsp.aggregators import SumAggregator
from ..bsp.api import VertexContext, VertexProgram
from ..bsp.combiners import SumCombiner

__all__ = ["PageRankProgram"]


class PageRankProgram(VertexProgram):
    """Fixed-iteration PageRank with dangling-mass redistribution."""

    combiner = SumCombiner()

    def __init__(
        self,
        iterations: int = 30,
        damping: float = 0.85,
        use_combiner: bool = True,
    ) -> None:
        if iterations < 1:
            raise ValueError("iterations must be >= 1")
        if not 0.0 < damping < 1.0:
            raise ValueError("damping must be in (0, 1)")
        self.iterations = iterations
        self.damping = damping
        if not use_combiner:
            self.combiner = None

    def aggregators(self):
        return {"dangling": SumAggregator()}

    def init_state(self, vertex_id: int, graph) -> float:
        return 1.0 / graph.num_vertices

    def state_nbytes(self, state: Any) -> int:
        return 8

    def payload_nbytes(self, payload: Any) -> int:
        return 8

    def compute(self, ctx: VertexContext, state: float, messages) -> float:
        n = ctx.num_vertices
        d = self.damping
        if ctx.superstep > 0:
            incoming = 0.0
            for m in messages:
                incoming += m
            dangling = ctx.aggregated("dangling")
            state = (1.0 - d) / n + d * (incoming + dangling / n)
        if ctx.superstep < self.iterations:
            deg = ctx.out_degree
            if deg > 0:
                ctx.send_to_neighbors(state / deg)
            else:
                ctx.aggregate("dangling", state)
        else:
            ctx.vote_to_halt()
        return state
