"""Convergence-driven PageRank using GPS-style master compute.

The paper's PageRank (like its Pregel.NET) runs a fixed 30 supersteps; GPS
(§II's closest related system) extends Pregel with master-side global
computation.  This variant shows why that extension matters: vertices
aggregate their per-superstep rank delta, and the *master* halts the job
the moment the L1 delta falls under a tolerance — no hand-picked iteration
count, no wasted supersteps on already-converged graphs.
"""

from __future__ import annotations

from typing import Any

from ..bsp.aggregators import SumAggregator
from ..bsp.api import MasterContext, VertexContext, VertexProgram
from ..bsp.combiners import SumCombiner

__all__ = ["ConvergentPageRankProgram"]


class ConvergentPageRankProgram(VertexProgram):
    """PageRank that runs until the global L1 delta drops below ``tol``."""

    combiner = SumCombiner()

    def __init__(
        self, tol: float = 1e-9, damping: float = 0.85, max_iterations: int = 500
    ) -> None:
        if tol <= 0:
            raise ValueError("tol must be positive")
        if not 0.0 < damping < 1.0:
            raise ValueError("damping must be in (0, 1)")
        self.tol = tol
        self.damping = damping
        self.max_iterations = max_iterations
        self.converged_at: int | None = None

    def aggregators(self):
        return {"dangling": SumAggregator(), "delta": SumAggregator()}

    def init_state(self, vertex_id: int, graph) -> float:
        return 1.0 / graph.num_vertices

    def state_nbytes(self, state: Any) -> int:
        return 8

    def payload_nbytes(self, payload: Any) -> int:
        return 8

    def compute(self, ctx: VertexContext, state: float, messages) -> float:
        n = ctx.num_vertices
        d = self.damping
        if ctx.superstep > 0:
            incoming = 0.0
            for m in messages:
                incoming += m
            dangling = ctx.aggregated("dangling")
            new_state = (1.0 - d) / n + d * (incoming + dangling / n)
            ctx.aggregate("delta", abs(new_state - state))
            state = new_state
        deg = ctx.out_degree
        if deg > 0:
            ctx.send_to_neighbors(state / deg)
        else:
            ctx.aggregate("dangling", state)
        # Never votes to halt: the MASTER ends the job on convergence.
        return state

    def master_compute(self, master: MasterContext) -> None:
        if master.superstep == 0:
            return  # no delta measured yet
        if master.aggregated("delta") < self.tol:
            self.converged_at = master.superstep
            master.halt_job()
        elif master.superstep + 1 >= self.max_iterations:
            master.halt_job()
