"""Sequential reference implementations for validating the BSP programs.

Pure-Python/numpy, independent of the engine: tests compare every BSP
algorithm's output against these (and these, in turn, against networkx in
the test suite, closing the loop).
"""

from __future__ import annotations

from collections import deque

import numpy as np

from ..graph.csr import CSRGraph
from ..graph.properties import bfs_levels

__all__ = [
    "pagerank_reference",
    "dijkstra_reference",
    "betweenness_reference",
    "apsp_reference",
    "sssp_reference",
]


def pagerank_reference(
    graph: CSRGraph, iterations: int = 30, damping: float = 0.85
) -> np.ndarray:
    """Power iteration with uniform dangling-mass redistribution.

    Matches :class:`~repro.algorithms.pagerank.PageRankProgram` exactly
    (same fixed iteration count, same dangling handling).
    """
    n = graph.num_vertices
    if n == 0:
        return np.zeros(0)
    rank = np.full(n, 1.0 / n)
    out_deg = graph.out_degrees().astype(np.float64)
    dangling_mask = out_deg == 0
    src = np.repeat(np.arange(n), np.diff(graph.indptr))
    dst = graph.indices
    for _ in range(iterations):
        contrib = np.zeros(n)
        live = ~dangling_mask
        share = np.zeros(n)
        share[live] = rank[live] / out_deg[live]
        np.add.at(contrib, dst, share[src])
        dangling = rank[dangling_mask].sum()
        rank = (1.0 - damping) / n + damping * (contrib + dangling / n)
    return rank


def betweenness_reference(
    graph: CSRGraph, roots=None, normalize_undirected: bool = True
) -> np.ndarray:
    """Brandes' sequential algorithm (unweighted), optionally over a subset
    of roots — the paper's extrapolation methodology runs exactly this way.
    """
    n = graph.num_vertices
    bc = np.zeros(n)
    if roots is None:
        roots = range(n)
    for s in roots:
        s = int(s)
        # BFS computing sigma and predecessor lists.
        sigma = np.zeros(n)
        dist = np.full(n, -1, dtype=np.int64)
        preds: list[list[int]] = [[] for _ in range(n)]
        sigma[s] = 1.0
        dist[s] = 0
        order: list[int] = []
        q = deque([s])
        while q:
            v = q.popleft()
            order.append(v)
            for u in graph.neighbors(v):
                ui = int(u)
                if dist[ui] < 0:
                    dist[ui] = dist[v] + 1
                    q.append(ui)
                if dist[ui] == dist[v] + 1:
                    sigma[ui] += sigma[v]
                    preds[ui].append(v)
        # Dependency accumulation in reverse BFS order.
        delta = np.zeros(n)
        for v in reversed(order):
            for u in preds[v]:
                delta[u] += sigma[u] / sigma[v] * (1.0 + delta[v])
            if v != s:
                bc[v] += delta[v]
    if normalize_undirected and graph.undirected:
        bc /= 2.0
    return bc


def apsp_reference(graph: CSRGraph, roots=None) -> dict[int, np.ndarray]:
    """BFS distances from each root: ``{root: dist array (-1 unreachable)}``."""
    if roots is None:
        roots = range(graph.num_vertices)
    return {int(r): bfs_levels(graph, int(r)) for r in roots}


def sssp_reference(graph: CSRGraph, source: int) -> np.ndarray:
    """Unit-weight shortest distances (float, inf = unreachable)."""
    levels = bfs_levels(graph, source).astype(np.float64)
    levels[levels < 0] = np.inf
    return levels


def dijkstra_reference(graph: CSRGraph, source: int) -> np.ndarray:
    """Weighted shortest distances via scipy's Dijkstra (inf = unreachable)."""
    from scipy.sparse import csr_matrix
    from scipy.sparse.csgraph import dijkstra

    n = graph.num_vertices
    data = (
        graph.weights
        if graph.weights is not None
        else np.ones(graph.num_arcs)
    )
    mat = csr_matrix(
        (data, graph.indices.astype(np.int64), graph.indptr), shape=(n, n)
    )
    return dijkstra(mat, directed=True, indices=source)
