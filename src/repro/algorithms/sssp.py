"""Single-source shortest paths on Pregel/BSP.

The classic introductory Pregel program and the building block APSP fans out
per root.  Uses a :class:`~repro.bsp.combiners.MinCombiner` (Pregel's
canonical SSSP combiner) so concurrent relaxations to the same vertex fold
into one message.

Supports optional integer edge weights supplied as a callable; the default
unit weight makes this a BFS that validates against
:func:`repro.graph.properties.bfs_levels`.
"""

from __future__ import annotations

import math
from typing import Any, Callable

from ..bsp.api import VertexContext, VertexProgram
from ..bsp.combiners import MinCombiner

__all__ = ["SSSPProgram"]


class SSSPProgram(VertexProgram):
    """Distance relaxation from a single ``source`` vertex.

    Edge weights come from, in priority order: an explicit ``weight_fn``,
    the graph's own :attr:`~repro.graph.csr.CSRGraph.weights`, or unit
    weights.  Negative weights are not supported (Pregel SSSP relaxation is
    label-correcting, not Bellman–Ford complete).
    """

    combiner = MinCombiner()

    def __init__(
        self,
        source: int,
        weight_fn: Callable[[int, int], float] | None = None,
    ) -> None:
        if source < 0:
            raise ValueError("source must be a valid vertex id")
        self.source = source
        self.weight_fn = weight_fn

    def init_state(self, vertex_id: int, graph) -> float:
        # Even the source starts at infinity; its superstep-0 self-relaxation
        # to 0.0 is what triggers the first propagation wave.
        return math.inf

    def state_nbytes(self, state: Any) -> int:
        return 8

    def payload_nbytes(self, payload: Any) -> int:
        return 8

    def compute(self, ctx: VertexContext, state: float, messages) -> float:
        candidate = min(messages, default=math.inf)
        if ctx.superstep == 0 and ctx.vertex_id == self.source:
            candidate = 0.0
        if candidate < state:
            state = candidate
            v = ctx.vertex_id
            if self.weight_fn is not None:
                for u in ctx.out_neighbors:
                    ctx.send(int(u), state + self.weight_fn(v, int(u)))
            else:
                for u, w in zip(ctx.out_neighbors, ctx.out_weights):
                    ctx.send(int(u), state + float(w))
        ctx.vote_to_halt()
        return state
