"""k-core decomposition via Pregel topology mutation.

Demonstrates the engine's edge-mutation API (a Pregel feature the paper's
framework omits): vertices below the degree threshold delete their own
out-edges and notify neighbors, who prune their reciprocal edges and may
cascade — classic iterative k-core peeling, expressed entirely with
self-scoped mutations and messages.

A vertex's final state is ``True`` iff it belongs to the k-core (validated
against ``networkx.k_core`` in tests).
"""

from __future__ import annotations

from typing import Any

from ..bsp.api import VertexContext, VertexProgram

__all__ = ["KCoreProgram"]

_DROPPED = 0  # (tag, src): src left the core; remove your edge to it


class KCoreProgram(VertexProgram):
    """Iterative peeling to the k-core of an undirected graph."""

    def __init__(self, k: int) -> None:
        if k < 1:
            raise ValueError("k must be >= 1")
        self.k = k

    def init_state(self, vertex_id: int, graph) -> bool:
        return True  # everyone starts in the candidate core

    def state_nbytes(self, state: Any) -> int:
        return 1

    def payload_nbytes(self, payload: Any) -> int:
        return 16

    def compute(self, ctx: VertexContext, state: bool, messages) -> bool:
        if not state:
            # Already peeled; late notifications need no action.
            ctx.vote_to_halt()
            return state
        # Prune edges to neighbors that dropped out last superstep.
        for msg in messages:
            if msg[0] == _DROPPED:
                ctx.remove_out_edge(msg[1])
        # Effective degree after this superstep's pruning requests: current
        # degree minus the prunes just queued (mutations apply next step).
        pruned = sum(1 for m in messages if m[0] == _DROPPED)
        degree = ctx.out_degree - pruned
        if degree < self.k:
            # Leave the core: notify remaining neighbors, drop all edges.
            for u in ctx.out_neighbors:
                ctx.send(int(u), (_DROPPED, ctx.vertex_id))
                ctx.remove_out_edge(int(u))
            state = False
        ctx.vote_to_halt()
        return state
