"""Betweenness centrality on Pregel/BSP (Brandes' algorithm, multi-root).

The paper's stress workload (§II-B): for every *root* vertex, a breadth-first
traversal counts shortest paths (sigma) through each vertex, then a backward
walk up the BFS tree accumulates dependency scores (delta); summing deltas
over all roots gives each vertex's centrality [Brandes 2001].

BSP mapping (message-driven, so the swath controller can start any subset of
roots at any superstep by injecting ``("start", root)`` control messages):

* **Forward wave** — a vertex discovered at depth *k* for root *r* receives
  all its discovery messages in one superstep (BFS on an unweighted graph
  guarantees every depth-(k-1) predecessor sent in the previous superstep),
  so its sigma is complete immediately; it forwards ``(fwd, r, k, sigma)``
  to its neighbors and acknowledges each predecessor with ``(succ, r)``.
* **Successor counting** — predecessor acks all arrive exactly two
  supersteps after a vertex was discovered, so each vertex learns its exact
  shortest-path-successor count without global coordination.
* **Backward wave** — a vertex with zero successors (a BFS-tree leaf)
  starts the backward phase; every vertex waits for exactly ``nsucc``
  dependency messages ``(bwd, r, sigma_w, delta_w)``, computes
  ``delta_v = sigma_v * sum((1 + delta_w) / sigma_w)``, adds it to its
  centrality score, forwards to its own predecessors, and *frees the
  per-root record* — which is what makes the memory profile the triangle
  waveform the paper's swath heuristics exploit.

Message volume is O(|E|) per root for each of the three waves — the
paper's O(|V||E|) total, with the near-exponential ramp-up/drain-down
shape on small-world graphs (Fig. 3).
"""

from __future__ import annotations

from typing import Any, Sequence

from ..bsp.api import VertexContext, VertexProgram

__all__ = ["BCProgram", "BCState", "start_messages"]

# Message type tags.
_FWD = 0  # (tag, root, sender_depth, sender_sigma, sender_id)
_SUCC = 1  # (tag, root)
_BWD = 2  # (tag, root, sigma_w, delta_w)
_START = 3  # (tag, root)


class _RootRecord:
    """Per-(vertex, root) traversal bookkeeping; freed when backward done."""

    __slots__ = (
        "depth",
        "sigma",
        "preds",
        "discovered_at",
        "nsucc",
        "acks",
        "partial",
        "nbwd",
        "phase",
    )

    # phases
    WAIT_ACKS = 0
    WAIT_BWD = 1

    def __init__(self, depth: int, superstep: int) -> None:
        self.depth = depth
        self.sigma = 0
        self.preds: list[int] = []
        self.discovered_at = superstep
        self.nsucc = 0
        self.acks = 0
        self.partial = 0.0
        self.nbwd = 0
        self.phase = _RootRecord.WAIT_ACKS

    def nbytes(self) -> int:
        return 96 + 8 * len(self.preds)


class BCState:
    """Vertex state: live per-root records plus the accumulated score."""

    __slots__ = ("records", "score", "roots_completed")

    def __init__(self) -> None:
        self.records: dict[int, _RootRecord] = {}
        self.score = 0.0
        self.roots_completed = 0

    def nbytes(self) -> int:
        return 48 + sum(rec.nbytes() for rec in self.records.values())


def start_messages(roots: Sequence[int]) -> list[tuple[int, tuple]]:
    """Control messages that start a BC traversal at each given root."""
    return [(int(r), (_START, int(r))) for r in roots]


class BCProgram(VertexProgram):
    """Brandes-style betweenness centrality as a Pregel vertex program.

    Roots are started via :func:`start_messages` (all at once for the
    classic Pregel behavior; in swaths via the
    :class:`~repro.scheduling.controller.SwathController`).

    ``normalize_undirected`` halves final scores on undirected graphs
    (each unordered pair is counted from both endpoints), matching
    networkx's convention.
    """

    def __init__(self, normalize_undirected: bool = True) -> None:
        self.normalize_undirected = normalize_undirected

    # ------------------------------------------------------------------
    def init_state(self, vertex_id: int, graph) -> BCState:
        self._undirected = graph.undirected
        return BCState()

    def state_nbytes(self, state: BCState) -> int:
        return state.nbytes()

    def payload_nbytes(self, payload: Any) -> int:
        return 8 * len(payload)

    def extract(self, vertex_id: int, state: BCState) -> float:
        score = state.score
        if self.normalize_undirected and getattr(self, "_undirected", False):
            score /= 2.0
        return score

    # ------------------------------------------------------------------
    def compute(self, ctx: VertexContext, state: BCState, messages) -> BCState:
        superstep = ctx.superstep
        v = ctx.vertex_id
        records = state.records

        # ---- 1. drain messages, grouped per root --------------------------
        fwd_new: dict[int, _RootRecord] = {}
        for msg in messages:
            tag = msg[0]
            if tag == _FWD:
                _, root, sender_depth, sender_sigma, sender = msg
                rec = records.get(root)
                if rec is None:
                    rec = fwd_new.get(root)
                    if rec is None:
                        rec = _RootRecord(sender_depth + 1, superstep)
                        fwd_new[root] = rec
                        records[root] = rec
                if rec.depth == sender_depth + 1:
                    rec.sigma += sender_sigma
                    rec.preds.append(sender)
                # else: non-shortest-path edge; ignore.
            elif tag == _SUCC:
                root = msg[1]
                rec = records.get(root)
                if rec is not None:
                    rec.acks += 1
            elif tag == _BWD:
                _, root, sigma_w, delta_w = msg
                rec = records.get(root)
                if rec is not None:
                    rec.partial += (1.0 + delta_w) / sigma_w
                    rec.nbwd += 1
            elif tag == _START:
                root = msg[1]
                if root != v:
                    raise ValueError(f"start message for root {root} at vertex {v}")
                rec = _RootRecord(depth=0, superstep=superstep)
                rec.sigma = 1
                records[root] = rec
                fwd_new[root] = rec
            else:  # pragma: no cover - defensive
                raise ValueError(f"unknown BC message tag {tag!r}")

        # ---- 2. newly discovered records: forward wave + pred acks --------
        for root, rec in fwd_new.items():
            for u in ctx.out_neighbors:
                ctx.send(int(u), (_FWD, root, rec.depth, rec.sigma, v))
            for u in rec.preds:
                ctx.send(u, (_SUCC, root))

        # ---- 3. lifecycle transitions --------------------------------------
        done_roots: list[int] = []
        for root, rec in records.items():
            if rec.phase == _RootRecord.WAIT_ACKS:
                # All acks arrive exactly 2 supersteps after discovery.
                if superstep >= rec.discovered_at + 2:
                    rec.nsucc = rec.acks
                    rec.phase = _RootRecord.WAIT_BWD
            if rec.phase == _RootRecord.WAIT_BWD and rec.nbwd >= rec.nsucc:
                delta = rec.sigma * rec.partial
                if rec.depth > 0:
                    # Interior vertex: accumulate own dependency and pass up.
                    state.score += delta
                    for u in rec.preds:
                        ctx.send(u, (_BWD, root, rec.sigma, delta))
                # Root (depth 0) simply completes; its delta is not scored.
                done_roots.append(root)
        for root in done_roots:
            del records[root]
            state.roots_completed += 1

        # Stay awake only while some record still awaits acks or deltas.
        if not records:
            ctx.vote_to_halt()
        return state
