"""Worker-scaling policies for §VIII's elasticity analysis.

The paper scales between two fleet sizes (4 and 8 workers) at superstep
boundaries.  A policy sees one superstep's context (active vertices, and —
for the oracle — the measured per-superstep times at both sizes) and picks
the fleet size for that superstep.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass

__all__ = [
    "ScalingContext",
    "ScalingPolicy",
    "FixedWorkers",
    "ActiveFractionPolicy",
    "OraclePolicy",
]


@dataclass(frozen=True)
class ScalingContext:
    """Per-superstep information available to a scaling decision."""

    step: int
    active_vertices: int
    max_active: int  # peak active count over the trace (normalization)
    num_graph_vertices: int
    time_low: float  # measured superstep time with the small fleet
    time_high: float  # measured superstep time with the large fleet
    low: int
    high: int

    @property
    def active_fraction_of_peak(self) -> float:
        return self.active_vertices / self.max_active if self.max_active else 0.0

    @property
    def active_fraction_of_graph(self) -> float:
        return (
            self.active_vertices / self.num_graph_vertices
            if self.num_graph_vertices
            else 0.0
        )


class ScalingPolicy(ABC):
    """Chooses a fleet size (low or high) for each superstep."""

    @abstractmethod
    def choose(self, ctx: ScalingContext) -> int: ...

    @property
    def label(self) -> str:
        return type(self).__name__


class FixedWorkers(ScalingPolicy):
    """Static provisioning at a constant fleet size."""

    def __init__(self, workers: int) -> None:
        if workers <= 0:
            raise ValueError("workers must be positive")
        self.workers = workers

    def choose(self, ctx: ScalingContext) -> int:
        if self.workers not in (ctx.low, ctx.high):
            raise ValueError(
                f"FixedWorkers({self.workers}) outside the measured sizes "
                f"({ctx.low}, {ctx.high})"
            )
        return self.workers

    @property
    def label(self) -> str:
        return f"Fixed-{self.workers}"


class ActiveFractionPolicy(ScalingPolicy):
    """The paper's dynamic heuristic: scale out when >= ``threshold`` of
    vertices are active (default 50%), scale in otherwise.

    ``reference`` selects the denominator: ``"peak"`` (fraction of the
    trace's peak active count — robust across swath sizes, our default) or
    ``"graph"`` (fraction of |V|).
    """

    def __init__(self, threshold: float = 0.5, reference: str = "peak") -> None:
        if not 0.0 < threshold <= 1.0:
            raise ValueError("threshold must be in (0, 1]")
        if reference not in ("peak", "graph"):
            raise ValueError("reference must be 'peak' or 'graph'")
        self.threshold = threshold
        self.reference = reference

    def choose(self, ctx: ScalingContext) -> int:
        frac = (
            ctx.active_fraction_of_peak
            if self.reference == "peak"
            else ctx.active_fraction_of_graph
        )
        return ctx.high if frac >= self.threshold else ctx.low

    @property
    def label(self) -> str:
        return f"Dynamic({self.threshold:.0%} of {self.reference})"


class OraclePolicy(ScalingPolicy):
    """Ideal scaling: per superstep, whichever size was measured faster."""

    def choose(self, ctx: ScalingContext) -> int:
        return ctx.high if ctx.time_high < ctx.time_low else ctx.low

    @property
    def label(self) -> str:
        return "Oracle"
