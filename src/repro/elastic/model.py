"""Extrapolation model for elastic scaling (§VIII, Figs. 15-16).

The paper's methodology, reproduced exactly: run the same job (fixed swath
size and initiation interval, so the superstep sequence is identical) at
both fleet sizes, align the two traces superstep-by-superstep, then

* Fig. 15 — per-superstep speedup ``t_low / t_high`` against the active-
  vertex profile (superlinear spikes at activity peaks, speed-*down* in the
  tail);
* Fig. 16 — for each scaling policy, total time = sum over supersteps of
  the measured time at the chosen size, and cost = sum of
  ``chosen_workers x chosen_time`` VM-seconds — the paper's "pro-rata
  normalized cost per VM-second".

``include_scaling_overheads=False`` matches the paper ("these projections do
not yet consider the overheads of scaling"); setting it True additionally
charges provisioning/drain delays per fleet change, quantifying how much of
the projected win survives realistic scaling costs.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..bsp.superstep import JobTrace
from ..cloud.costmodel import DEFAULT_PERF_MODEL, PerfModel
from ..cloud.specs import LARGE_VM, VMSpec
from .policies import ScalingContext, ScalingPolicy

__all__ = ["AlignedTraces", "ElasticOutcome", "ElasticityModel"]


@dataclass(frozen=True)
class AlignedTraces:
    """Per-superstep series from the low- and high-fleet runs."""

    low: int
    high: int
    time_low: np.ndarray
    time_high: np.ndarray
    active: np.ndarray
    num_graph_vertices: int

    def __post_init__(self) -> None:
        if not (len(self.time_low) == len(self.time_high) == len(self.active)):
            raise ValueError("aligned series must have equal length")
        if self.low >= self.high:
            raise ValueError("low fleet size must be < high fleet size")

    @property
    def num_steps(self) -> int:
        return len(self.time_low)

    @classmethod
    def from_traces(
        cls,
        trace_low: JobTrace,
        trace_high: JobTrace,
        low: int,
        high: int,
        num_graph_vertices: int,
    ) -> "AlignedTraces":
        """Align two runs of the same superstep sequence.

        The engine is deterministic, so with fixed swath parameters the two
        runs have the same superstep count ("the number of workers does not
        impact the number of supersteps"); a mismatch signals misuse and
        raises rather than silently truncating.
        """
        if len(trace_low) != len(trace_high):
            raise ValueError(
                f"trace lengths differ ({len(trace_low)} vs {len(trace_high)}): "
                "elastic extrapolation needs identical superstep sequences"
            )
        return cls(
            low=low,
            high=high,
            time_low=trace_low.series_elapsed(),
            time_high=trace_high.series_elapsed(),
            active=trace_low.series_active_vertices(),
            num_graph_vertices=num_graph_vertices,
        )


@dataclass
class ElasticOutcome:
    """A policy's projected run: per-step choices, total time and cost."""

    policy_label: str
    workers: np.ndarray
    step_times: np.ndarray
    scaling_overhead: float
    vm_spec: VMSpec

    @property
    def total_time(self) -> float:
        return float(self.step_times.sum() + self.scaling_overhead)

    @property
    def vm_seconds(self) -> float:
        # During scaling overhead the larger fleet of each transition bills.
        return float((self.workers * self.step_times).sum()) + self._overhead_vm_s

    _overhead_vm_s: float = 0.0

    @property
    def cost(self) -> float:
        return self.vm_seconds * self.vm_spec.price_per_second

    @property
    def num_scale_events(self) -> int:
        return int(np.count_nonzero(np.diff(self.workers)))


@dataclass
class ElasticityModel:
    """Evaluates scaling policies over a pair of aligned traces."""

    traces: AlignedTraces
    vm_spec: VMSpec = LARGE_VM
    perf_model: PerfModel = DEFAULT_PERF_MODEL
    include_scaling_overheads: bool = False

    # ------------------------------------------------------------------
    def speedup_series(self) -> np.ndarray:
        """Fig. 15 bottom: per-superstep speedup of high vs low fleet."""
        with np.errstate(divide="ignore", invalid="ignore"):
            s = self.traces.time_low / self.traces.time_high
        return np.nan_to_num(s, nan=1.0, posinf=1.0)

    def active_series(self) -> np.ndarray:
        """Fig. 15 top: active vertices per superstep."""
        return self.traces.active

    # ------------------------------------------------------------------
    def _context(self, i: int, max_active: int) -> ScalingContext:
        t = self.traces
        return ScalingContext(
            step=i,
            active_vertices=int(t.active[i]),
            max_active=max_active,
            num_graph_vertices=t.num_graph_vertices,
            time_low=float(t.time_low[i]),
            time_high=float(t.time_high[i]),
            low=t.low,
            high=t.high,
        )

    def evaluate(self, policy: ScalingPolicy) -> ElasticOutcome:
        """Project total runtime and cost for one policy."""
        t = self.traces
        n = t.num_steps
        max_active = int(t.active.max()) if n else 0
        workers = np.zeros(n, dtype=np.int64)
        times = np.zeros(n)
        for i in range(n):
            w = policy.choose(self._context(i, max_active))
            if w not in (t.low, t.high):
                raise ValueError(f"policy chose unmeasured fleet size {w}")
            workers[i] = w
            times[i] = t.time_low[i] if w == t.low else t.time_high[i]

        overhead = 0.0
        overhead_vm_s = 0.0
        if self.include_scaling_overheads and n:
            m = self.perf_model
            for i in range(1, n):
                if workers[i] > workers[i - 1]:
                    overhead += m.provision_delay
                    overhead_vm_s += m.provision_delay * workers[i]
                elif workers[i] < workers[i - 1]:
                    overhead += m.release_delay
                    overhead_vm_s += m.release_delay * workers[i - 1]
        out = ElasticOutcome(
            policy_label=policy.label,
            workers=workers,
            step_times=times,
            scaling_overhead=overhead,
            vm_spec=self.vm_spec,
        )
        out._overhead_vm_s = overhead_vm_s
        return out

    def evaluate_all(self, policies) -> list[ElasticOutcome]:
        return [self.evaluate(p) for p in policies]
