"""Elastic cloud scaling analysis (§VIII, Figs. 15-16)."""

from .policies import (
    ActiveFractionPolicy,
    FixedWorkers,
    OraclePolicy,
    ScalingContext,
    ScalingPolicy,
)
from .model import AlignedTraces, ElasticityModel, ElasticOutcome
from .report import NormalizedRow, normalize_outcomes, render_fig16
from .live import (
    LiveActiveFraction,
    LiveElasticEngine,
    LiveFixed,
    LiveFleetGuard,
    LiveHealthGuard,
    LivePolicy,
    LiveSkewGuard,
    run_live,
)

__all__ = [
    "ActiveFractionPolicy",
    "FixedWorkers",
    "OraclePolicy",
    "ScalingContext",
    "ScalingPolicy",
    "AlignedTraces",
    "ElasticityModel",
    "ElasticOutcome",
    "NormalizedRow",
    "normalize_outcomes",
    "render_fig16",
    "LiveActiveFraction",
    "LiveElasticEngine",
    "LiveFixed",
    "LiveFleetGuard",
    "LiveHealthGuard",
    "LivePolicy",
    "LiveSkewGuard",
    "run_live",
]
