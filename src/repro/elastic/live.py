"""Live elastic scaling — executing what §VIII only extrapolates.

The paper projects elastic-scaling benefits from statically-provisioned
runs ("these projections do not yet consider the overheads of scaling").
This module *implements* the mechanism: a :class:`LiveElasticEngine` that,
at each superstep boundary, consults a :class:`LivePolicy` and actually
resizes the worker fleet — repartitioning the graph, migrating vertex
state and buffered messages, and charging provisioning/drain/migration
time through the elastic provisioner.

Correctness is unaffected by construction (tests assert bit-equal results
with and without scaling): vertex state and undelivered messages move
wholesale; only *where* a vertex computes changes.

The default repartitioning strategy is hash-based per fleet size, matching
how Pregel.NET assigns partitions when workers join.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

import numpy as np

from ..bsp.engine import BSPEngine
from ..bsp.job import JobResult, JobSpec
from ..bsp.superstep import SuperstepStats
from ..bsp.worker import PartitionWorker
from ..cloud.provisioner import ElasticProvisioner
from ..partition.base import Partition
from ..partition.hashing import HashPartitioner

__all__ = [
    "LivePolicy",
    "LiveActiveFraction",
    "LiveFixed",
    "LiveSkewGuard",
    "LiveHealthGuard",
    "LiveFleetGuard",
    "LiveElasticEngine",
]


class LivePolicy:
    """Decides the fleet size for the *next* superstep from live stats."""

    def decide(self, engine: "LiveElasticEngine", stats: SuperstepStats) -> int:
        raise NotImplementedError

    @property
    def label(self) -> str:
        return type(self).__name__


@dataclass
class LiveFixed(LivePolicy):
    """Never scales (control case)."""

    workers: int

    def decide(self, engine, stats) -> int:
        return self.workers

    @property
    def label(self) -> str:
        return f"LiveFixed-{self.workers}"


@dataclass
class LiveActiveFraction(LivePolicy):
    """The paper's 50%-threshold heuristic, applied online.

    Scales to ``high`` workers when active vertices exceed ``threshold`` of
    the *peak seen so far* (an online stand-in for Fig. 15's peak), else to
    ``low``.  A short cool-down suppresses thrash around the threshold.
    """

    low: int = 4
    high: int = 8
    threshold: float = 0.5
    cooldown: int = 2
    _peak: int = field(default=0, repr=False)
    _last_change: int = field(default=-(10**9), repr=False)

    def decide(self, engine, stats) -> int:
        self._peak = max(self._peak, stats.active_end)
        if stats.index - self._last_change < self.cooldown:
            return engine.num_workers
        frac = stats.active_end / self._peak if self._peak else 0.0
        want = self.high if frac >= self.threshold else self.low
        if want != engine.num_workers:
            self._last_change = stats.index
        return want

    @property
    def label(self) -> str:
        return f"LiveDynamic({self.threshold:.0%}, {self.low}<->{self.high})"


@dataclass
class LiveSkewGuard(LivePolicy):
    """Wrap a policy; veto scale-*in* while the fleet is skewed.

    Consumes the straggler signal of a
    :class:`repro.obs.diagnose.DiagnosticMonitor` (duck-typed: anything
    with a ``skew_signal() -> float``).  Scaling in during a straggler
    episode concentrates the hot partition's load on fewer workers and
    lengthens the barrier-dominated tail the scale-in was meant to trim —
    so while ``skew_signal()`` exceeds ``threshold``, requests for a
    smaller fleet hold at the current size.  Scale-*out* always passes.
    """

    inner: LivePolicy
    monitor: "object"
    threshold: float = 1.5
    vetoes: int = field(default=0, repr=False)

    def decide(self, engine, stats) -> int:
        want = int(self.inner.decide(engine, stats))
        if want < engine.num_workers and (
            self.monitor.skew_signal() > self.threshold
        ):
            self.vetoes += 1
            return engine.num_workers
        return want

    @property
    def label(self) -> str:
        return f"SkewGuard({self.inner.label}, >{self.threshold:g})"


@dataclass
class LiveHealthGuard(LivePolicy):
    """Wrap a policy; veto *any* resize while run health is degraded.

    Consumes the same liveness truth the ``/healthz`` endpoint serves: a
    :class:`repro.obs.live.EngineHealth` (duck-typed: anything with a
    ``snapshot() -> dict`` carrying ``ok``/``workers_alive``/
    ``worker_liveness``).  Resizing while a worker is dead or the engine
    has stopped crossing barriers would migrate state onto (or off of) a
    fleet that is mid-recovery — so while the snapshot reports unhealthy,
    requests for a different size hold at the current one.  External
    scrapers and in-process policies thus act on one signal.
    """

    inner: LivePolicy
    health: "object"
    vetoes: int = field(default=0, repr=False)

    def decide(self, engine, stats) -> int:
        want = int(self.inner.decide(engine, stats))
        if want != engine.num_workers:
            snap = self.health.snapshot()
            alive = snap.get("workers_alive", snap.get("workers", 0))
            degraded = not snap.get("ok", True) or (
                snap.get("worker_liveness") and alive < snap.get("workers", 0)
            )
            if degraded:
                self.vetoes += 1
                return engine.num_workers
        return want

    @property
    def label(self) -> str:
        return f"HealthGuard({self.inner.label})"


@dataclass
class LiveFleetGuard(LivePolicy):
    """Wrap a policy; cap scale-*out* at a remote fleet's live capacity.

    Consumes a :class:`repro.net.WorkerFleet` (duck-typed: anything with
    a ``capacity() -> int``), which probes ``repro worker`` daemons and
    sums their advertised session slots.  On a real cluster a scale-out
    decision is only as good as the machines backing it — asking for 16
    workers when the reachable daemons can host 8 sessions would stall
    the resize (or land every extra worker on an overloaded host).  A
    request beyond capacity is *clamped* to it, never below the current
    size; scale-in always passes.  Capacity is probed only when the
    inner policy actually asks to grow, so steady state costs nothing.
    """

    inner: LivePolicy
    fleet: "object"
    vetoes: int = field(default=0, repr=False)

    def decide(self, engine, stats) -> int:
        want = int(self.inner.decide(engine, stats))
        if want > engine.num_workers:
            cap = int(self.fleet.capacity())
            if want > cap:
                self.vetoes += 1
                return max(engine.num_workers, cap)
        return want

    @property
    def label(self) -> str:
        return f"FleetGuard({self.inner.label})"


class LiveElasticEngine(BSPEngine):
    """A BSP engine whose fleet resizes at superstep boundaries.

    Parameters
    ----------
    job:
        Standard job spec; ``job.num_workers`` is the initial fleet.
        Failure injection cannot be combined with live scaling.
    policy:
        The :class:`LivePolicy` consulted after every superstep.
    partition_for:
        ``fleet size -> Partition`` factory (default: salted hash, stable
        per size so repeated visits to a size reuse the same layout).
    """

    def __init__(
        self,
        job: JobSpec,
        policy: LivePolicy,
        partition_for: Callable[[int], Partition] | None = None,
    ) -> None:
        if job.failure_schedule:
            raise ValueError(
                "live elastic scaling cannot be combined with failure injection"
            )
        super().__init__(job)
        self.policy = policy
        self._partition_for = partition_for or (
            lambda k: HashPartitioner().partition(job.graph, k)
        )
        self.provisioner = ElasticProvisioner(
            spec=job.vm_spec, model=job.perf_model, workers=job.num_workers,
            meter=self.meter,
        )
        self.scale_overhead_total = 0.0

    # ------------------------------------------------------------------
    def _post_superstep(self, stats: SuperstepStats) -> None:
        want = int(self.policy.decide(self, stats))
        if want <= 0:
            raise ValueError(f"policy requested invalid fleet size {want}")
        if want == self.num_workers:
            return
        before = self.num_workers
        span = (
            self.tracer.start("elastic-resize", sim=self.sim_time,
                              from_workers=before, to_workers=want)
            if self.tracer is not None else None
        )
        moved = self._resize_fleet(want)
        overhead = self.provisioner.scale_to(
            want, superstep=self.superstep, vertices_moved=moved
        )
        # Scaling stalls the job: everyone waits for boots/drains/migration.
        self.sim_time += overhead
        stats.elapsed += overhead
        stats.sim_time_end = self.sim_time
        self.scale_overhead_total += overhead
        if self.timeline is not None:
            # The resize happens between supersteps; its overhead lands in
            # the *current* step's row (recorded right after this hook).
            self.timeline.annotate(
                stats.index, "elastic-resize",
                from_workers=before, to_workers=want, vertices_moved=moved,
            )
        if span is not None:
            self.tracer.end(span, sim=self.sim_time, vertices_moved=moved)
        if self.metrics is not None:
            direction = "up" if want > before else "down"
            self.metrics.counter(
                "elastic_scale_events_total",
                help="Fleet resizes at superstep boundaries",
                direction=direction,
            ).inc()
            self.metrics.counter(
                "elastic_vertices_moved_total",
                help="Vertices migrated across resizes",
            ).inc(moved)
            self.metrics.counter(
                "elastic_overhead_sim_seconds_total",
                help="Simulated seconds the job stalled for scaling",
            ).inc(overhead)

    def _resize_fleet(self, new_count: int) -> int:
        """Repartition and migrate vertex data; returns vertices moved."""
        old_partition = self.partition
        old_workers = self.workers
        new_partition = self._partition_for(new_count)
        if new_partition.num_parts != new_count:
            raise ValueError("partition_for returned wrong part count")
        if new_partition.num_vertices != self.graph.num_vertices:
            raise ValueError("partition_for does not cover the graph")

        new_workers = [
            PartitionWorker(
                worker_id=w,
                graph=self.graph,
                vertex_ids=new_partition.vertices_of(w),
                program=self.job.program,
                model=self.model,
                assignment=new_partition.assignment,
                initially_active=False,
                metrics=self.metrics,
            )
            for w in range(new_count)
        ]
        moved = int(
            np.count_nonzero(old_partition.assignment != new_partition.assignment)
        )
        for ow in old_workers:
            # Flush queued edge mutations into the overlay before export so
            # they migrate (they'd otherwise apply at the next superstep,
            # which happens on the new worker).
            ow._apply_mutations()
            for v in list(ow.states.keys()):
                state, halted, pending, overlay = ow.export_vertex(v)
                nw = new_workers[int(new_partition.assignment[v])]
                nw.import_vertex(v, state, halted, pending, overlay)

        self.partition = new_partition
        self.workers = new_workers
        self.num_workers = new_count
        return moved

    # ------------------------------------------------------------------
    @property
    def scale_events(self):
        return self.provisioner.events


def run_live(job: JobSpec, policy: LivePolicy, **kwargs) -> JobResult:
    """Convenience wrapper mirroring :func:`repro.bsp.engine.run_job`."""
    return LiveElasticEngine(job, policy, **kwargs).run()
