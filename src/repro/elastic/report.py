"""Fig. 16-style reporting: runtime and cost normalized to the small fleet."""

from __future__ import annotations

from dataclasses import dataclass

from .model import ElasticOutcome

__all__ = ["NormalizedRow", "normalize_outcomes", "render_fig16"]


@dataclass(frozen=True)
class NormalizedRow:
    """One bar pair of Fig. 16: a policy's time and cost vs the baseline."""

    label: str
    norm_time: float
    norm_cost: float
    scale_events: int

    def row(self) -> str:
        return (
            f"{self.label:<28s} time={self.norm_time:6.3f}x "
            f"cost={self.norm_cost:6.3f}x scale-events={self.scale_events}"
        )


def normalize_outcomes(
    outcomes: list[ElasticOutcome], baseline_label: str
) -> list[NormalizedRow]:
    """Normalize every outcome's time and cost to the named baseline's."""
    base = next((o for o in outcomes if o.policy_label == baseline_label), None)
    if base is None:
        raise ValueError(f"baseline {baseline_label!r} not among outcomes")
    if base.total_time <= 0 or base.cost <= 0:
        raise ValueError("baseline outcome has zero time or cost")
    return [
        NormalizedRow(
            label=o.policy_label,
            norm_time=o.total_time / base.total_time,
            norm_cost=o.cost / base.cost,
            scale_events=o.num_scale_events,
        )
        for o in outcomes
    ]


def render_fig16(rows: list[NormalizedRow], title: str = "") -> str:
    """Text rendering of a Fig. 16 panel."""
    lines = []
    if title:
        lines.append(title)
    lines.append(f"{'policy':<28s} {'norm. time':>10s} {'norm. cost':>10s}")
    for r in rows:
        lines.append(
            f"{r.label:<28s} {r.norm_time:>9.3f}x {r.norm_cost:>9.3f}x"
        )
    return "\n".join(lines)
