"""Dollar attribution: timelines + egress → per-step / per-worker cost.

The paper's entire evaluation is *performance per dollar* on a public
cloud, and :class:`~repro.cloud.billing.BillingMeter` already answers
"what did the run cost?".  This module answers the follow-ups the
paper's optimization loop needs: **where** did the dollars go — which
superstep, which worker, how much of it was instance-hours vs. network
egress — using a :class:`PriceBook` (instance $/hr with billing-grain
rounding, $/GB egress; Azure-2012 defaults to match :mod:`.specs`).

:func:`attribute_cost` folds a finished run into a :class:`CostReport`;
it accepts either a :class:`~repro.obs.timeline.RunTimeline` or a raw
:class:`~repro.bsp.superstep.JobTrace` (duck-typed), so the engine can
attach a report to every :class:`~repro.bsp.job.JobResult` without
requiring a timeline sink.  :class:`CostMeter` is the *live* variant: an
engine observer that accumulates the same attribution superstep by
superstep and mirrors it into ``repro_cost_*`` gauges on a metrics
registry, so the dollar burn is visible on ``/metrics`` mid-run.

Invariant (tested): the per-superstep attributions sum *exactly* to the
report total — the billing-grain rounding surcharge is distributed
pro-rata over steps by elapsed time, never dropped or double-counted.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Any, Mapping

from .specs import GB, LARGE_VM, SMALL_VM, VMSpec

__all__ = [
    "PriceBook",
    "CostReport",
    "CostMeter",
    "attribute_cost",
    "DEFAULT_PRICES",
]


@dataclass(frozen=True)
class PriceBook:
    """Cloud pricing: instance $/hr, egress $/GB, billing granularity.

    ``instance_rates`` overrides hourly prices by VM spec name; specs
    not listed fall back to their own ``price_per_hour``.  The default
    ``egress_per_gb`` is the Azure-2012 outbound-data price the paper's
    deployment paid.  ``billing_grain_seconds`` rounds each instance's
    billed run duration *up* to the grain (3600 = the paper's hourly
    billing); 0 bills exact seconds.
    """

    instance_rates: Mapping[str, float] = field(default_factory=dict)
    egress_per_gb: float = 0.12
    billing_grain_seconds: float = 0.0

    def rate_per_second(self, spec: VMSpec) -> float:
        hourly = self.instance_rates.get(spec.name, spec.price_per_hour)
        return hourly / 3600.0

    def egress_cost(self, transferred_bytes: float) -> float:
        return (transferred_bytes / GB) * self.egress_per_gb

    def billed_duration(self, seconds: float) -> float:
        grain = self.billing_grain_seconds
        if grain <= 0 or seconds <= 0:
            return seconds
        return math.ceil(seconds / grain - 1e-9) * grain


#: Pay-per-second, spec-listed instance prices, Azure-2012 egress.
DEFAULT_PRICES = PriceBook()


@dataclass
class CostReport:
    """Per-superstep and per-worker dollar attribution for one run."""

    total: float
    compute: float
    manager: float
    egress: float
    rounding: float
    per_step: list[dict]
    per_worker: list[dict]
    prices: PriceBook
    worker_spec: str
    manager_spec: str

    def to_dict(self) -> dict:
        return {
            "total": self.total,
            "compute": self.compute,
            "manager": self.manager,
            "egress": self.egress,
            "rounding": self.rounding,
            "worker_spec": self.worker_spec,
            "manager_spec": self.manager_spec,
            "egress_per_gb": self.prices.egress_per_gb,
            "billing_grain_seconds": self.prices.billing_grain_seconds,
            "per_step": self.per_step,
            "per_worker": self.per_worker,
        }

    def summary(self) -> str:
        """One line for run footers and incident reports."""
        return (
            f"${self.total:.4f} total "
            f"(compute ${self.compute:.4f}, manager ${self.manager:.4f}, "
            f"egress ${self.egress:.4f}"
            + (
                f", grain rounding ${self.rounding:.4f}"
                if self.rounding else ""
            )
            + f") across {len(self.per_step)} supersteps"
        )


def _steps_and_rows(source: Any) -> list[tuple[int, int, float, list]]:
    """Normalize a RunTimeline or JobTrace into attribution inputs.

    Returns ``[(superstep, num_workers, elapsed, rows)]`` where each row
    is ``(worker, elapsed, bytes_out)``.  Duck-typed on the two shapes:
    a timeline has ``steps`` of ``StepMeta`` + flat ``rows``; a job
    trace has ``steps`` of ``SuperstepStats`` with nested ``workers``.
    """
    steps = getattr(source, "steps", None)
    if steps is None:
        raise TypeError(
            f"cannot attribute cost over {type(source).__name__}: "
            "expected a RunTimeline or JobTrace"
        )
    out: list[tuple[int, int, float, list]] = []
    if hasattr(source, "rows"):  # RunTimeline
        by_step: dict[int, list] = {}
        for row in source.rows:
            by_step.setdefault(int(row.superstep), []).append(
                (int(row.worker), float(row.elapsed), float(row.bytes_out))
            )
        for meta in steps:
            out.append((
                int(meta.superstep),
                int(meta.num_workers),
                float(meta.elapsed),
                by_step.get(int(meta.superstep), []),
            ))
    else:  # JobTrace
        for stats in steps:
            out.append((
                int(stats.index),
                int(stats.num_workers),
                float(stats.elapsed),
                [
                    (int(w.worker), float(w.elapsed), float(w.bytes_out))
                    for w in stats.workers
                ],
            ))
    return out


def attribute_cost(
    source: Any,
    worker_vm: VMSpec = LARGE_VM,
    manager_vm: VMSpec = SMALL_VM,
    prices: PriceBook = DEFAULT_PRICES,
) -> CostReport:
    """Fold a finished run into per-step / per-worker dollars.

    Pay-as-you-go semantics match :class:`~repro.cloud.billing.BillingMeter`:
    every worker VM is billed for the step's full elapsed time — idle at
    the barrier is still allocated — plus the manager VM alongside.
    Egress is charged where the bytes originated (per sending worker).
    A positive billing grain rounds each VM's *whole-run* allocation up;
    the surcharge is then spread over steps pro-rata by elapsed time so
    the per-step column still sums exactly to the total.
    """
    steps = _steps_and_rows(source)
    w_rate = prices.rate_per_second(worker_vm)
    m_rate = prices.rate_per_second(manager_vm)

    per_step: list[dict] = []
    worker_seconds: dict[int, float] = {}
    worker_egress: dict[int, float] = {}
    total_compute = total_manager = total_egress = 0.0
    run_seconds = 0.0
    max_workers = 0
    for index, num_workers, elapsed, rows in steps:
        compute = num_workers * elapsed * w_rate
        manager = elapsed * m_rate
        step_bytes = sum(b for _, _, b in rows)
        egress = prices.egress_cost(step_bytes)
        per_step.append({
            "superstep": index,
            "elapsed": elapsed,
            "workers": num_workers,
            "compute": compute,
            "manager": manager,
            "egress": egress,
            "total": compute + manager + egress,
        })
        total_compute += compute
        total_manager += manager
        total_egress += egress
        run_seconds += elapsed
        max_workers = max(max_workers, num_workers)
        for worker, _w_elapsed, w_bytes in rows:
            # Billed for the barrier-synchronized step, not own busy time.
            worker_seconds[worker] = (
                worker_seconds.get(worker, 0.0) + elapsed
            )
            worker_egress[worker] = worker_egress.get(worker, 0.0) + w_bytes

    # Billing-grain surcharge: each instance's run allocation rounds up.
    rounding = 0.0
    if prices.billing_grain_seconds > 0 and run_seconds > 0:
        extra_wall = prices.billed_duration(run_seconds) - run_seconds
        rounding = extra_wall * (m_rate + max_workers * w_rate)
        for entry in per_step:
            share = rounding * (entry["elapsed"] / run_seconds)
            entry["rounding"] = share
            entry["total"] += share

    per_worker = [
        {
            "worker": worker,
            "billed_seconds": seconds,
            "compute": seconds * w_rate,
            "egress": prices.egress_cost(worker_egress.get(worker, 0.0)),
            "total": seconds * w_rate
            + prices.egress_cost(worker_egress.get(worker, 0.0)),
        }
        for worker, seconds in sorted(worker_seconds.items())
    ]

    return CostReport(
        total=total_compute + total_manager + total_egress + rounding,
        compute=total_compute,
        manager=total_manager,
        egress=total_egress,
        rounding=rounding,
        per_step=per_step,
        per_worker=per_worker,
        prices=prices,
        worker_spec=worker_vm.name,
        manager_spec=manager_vm.name,
    )


class CostMeter:
    """Engine observer: live dollar attribution into ``repro_cost_*``.

    Attach via ``engine.add_observer(CostMeter(registry))`` (or let the
    CLI wire it when a live server is up).  At every superstep boundary
    it prices the step exactly like :func:`attribute_cost` and updates:

    * ``repro_cost_total_dollars`` — run total so far (gauge)
    * ``repro_cost_compute_dollars`` / ``repro_cost_manager_dollars`` /
      ``repro_cost_egress_dollars`` — component breakdown (gauges)
    * ``repro_cost_superstep_dollars`` — the last step's cost (gauge)

    Grain rounding is a whole-run quantity, so the live gauges bill
    exact seconds; :meth:`finalize` (called from ``on_job_end``) adds
    the surcharge once the run duration is known.
    """

    def __init__(
        self,
        registry,
        prices: PriceBook = DEFAULT_PRICES,
        worker_vm: VMSpec | None = None,
        manager_vm: VMSpec | None = None,
    ) -> None:
        self.prices = prices
        self.worker_vm = worker_vm
        self.manager_vm = manager_vm
        self.total = 0.0
        self.compute = 0.0
        self.manager = 0.0
        self.egress = 0.0
        self.run_seconds = 0.0
        self.max_workers = 0
        self._g_total = registry.gauge(
            "repro_cost_total_dollars",
            help="Attributed run cost so far (instance time + egress).",
        )
        self._g_compute = registry.gauge(
            "repro_cost_compute_dollars",
            help="Worker instance-time dollars so far.",
        )
        self._g_manager = registry.gauge(
            "repro_cost_manager_dollars",
            help="Manager instance-time dollars so far.",
        )
        self._g_egress = registry.gauge(
            "repro_cost_egress_dollars",
            help="Network egress dollars so far.",
        )
        self._g_step = registry.gauge(
            "repro_cost_superstep_dollars",
            help="Dollar cost attributed to the latest superstep.",
        )

    # Engine-observer protocol (duck-typed; see BSPEngine.add_observer).
    def on_job_start(self, engine) -> None:
        pass

    def has_pending_work(self) -> bool:
        return False

    def on_superstep_end(self, engine, stats) -> None:
        worker_vm = self.worker_vm or engine.vm_spec
        manager_vm = self.manager_vm or engine.job.manager_vm
        elapsed = float(stats.elapsed)
        compute = stats.num_workers * elapsed * self.prices.rate_per_second(
            worker_vm
        )
        manager = elapsed * self.prices.rate_per_second(manager_vm)
        egress = self.prices.egress_cost(
            sum(float(w.bytes_out) for w in stats.workers)
        )
        step_total = compute + manager + egress
        self.compute += compute
        self.manager += manager
        self.egress += egress
        self.total += step_total
        self.run_seconds += elapsed
        self.max_workers = max(self.max_workers, int(stats.num_workers))
        self._g_compute.set(self.compute)
        self._g_manager.set(self.manager)
        self._g_egress.set(self.egress)
        self._g_total.set(self.total)
        self._g_step.set(step_total)

    def on_job_end(self, engine, result) -> None:
        self.finalize(
            worker_vm=self.worker_vm or engine.vm_spec,
            manager_vm=self.manager_vm or engine.job.manager_vm,
        )

    def finalize(
        self, worker_vm: VMSpec, manager_vm: VMSpec
    ) -> float:
        """Add the billing-grain surcharge; returns the final total."""
        if self.prices.billing_grain_seconds > 0 and self.run_seconds > 0:
            extra = (
                self.prices.billed_duration(self.run_seconds)
                - self.run_seconds
            )
            self.total += extra * (
                self.prices.rate_per_second(manager_vm)
                + self.max_workers * self.prices.rate_per_second(worker_vm)
            )
            self._g_total.set(self.total)
        return self.total
