"""Worker memory accounting and the virtual-memory spill penalty.

§IV: buffered messages "can easily overwhelm the physical memory and
punitively spill over to virtual memory on disk", whose random-access
patterns are *worse* than sequential disk buffering; §VI-B adds that badly
overflowing workers "seem unresponsive and the cloud fabric [restarts] the
VM".  Both effects are modeled here:

* :meth:`MemoryModel.slowdown` — multiplicative penalty growing linearly in
  the overflow ratio (1.0 while within physical memory).
* :meth:`MemoryModel.restart_triggered` — true when overflow exceeds the
  fabric's tolerance; the engine then charges
  :attr:`~repro.cloud.costmodel.PerfModel.restart_time` and records the
  event in the superstep trace.
"""

from __future__ import annotations

from dataclasses import dataclass

from .costmodel import PerfModel
from .specs import VMSpec

__all__ = ["MemoryModel", "MemoryUsage"]


@dataclass(frozen=True)
class MemoryUsage:
    """A worker's resident footprint at a superstep boundary (bytes)."""

    graph_bytes: float
    state_bytes: float
    buffered_message_bytes: float

    def __post_init__(self) -> None:
        if min(self.graph_bytes, self.state_bytes, self.buffered_message_bytes) < 0:
            raise ValueError("memory components must be non-negative")

    @property
    def total(self) -> float:
        return self.graph_bytes + self.state_bytes + self.buffered_message_bytes


class MemoryModel:
    """Maps a worker's footprint to spill slowdown / restart events."""

    def __init__(self, spec: VMSpec, model: PerfModel) -> None:
        self.spec = spec
        self.model = model

    def overflow_ratio(self, used_bytes: float) -> float:
        """How far past physical memory the worker is (0.0 when within)."""
        cap = self.spec.memory_bytes
        return max(0.0, used_bytes / cap - 1.0)

    def slowdown(self, used_bytes: float) -> float:
        """Multiplier on the worker's superstep time (>= 1.0)."""
        over = self.overflow_ratio(used_bytes)
        if over <= 0.0:
            return 1.0
        return 1.0 + self.model.spill_penalty * over

    def restart_triggered(self, used_bytes: float) -> bool:
        """True when the fabric would consider the VM unresponsive."""
        return self.overflow_ratio(used_bytes) > self.model.restart_overflow_ratio
