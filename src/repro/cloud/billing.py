"""Pay-as-you-go billing meter.

§VIII compares policies by "pro-rata normalized cost per VM-second": every
second a VM is allocated is billed at its hourly price / 3600, whether busy
or idle at a barrier.  The meter accumulates (spec, seconds) charges and can
render totals in dollars or normalized to a baseline.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .specs import VMSpec

__all__ = ["BillingMeter", "ChargeLine"]


@dataclass(frozen=True)
class ChargeLine:
    """One accrual: ``count`` VMs of ``spec`` held for ``seconds``."""

    spec: VMSpec
    count: int
    seconds: float
    label: str = ""

    @property
    def vm_seconds(self) -> float:
        return self.count * self.seconds

    @property
    def cost(self) -> float:
        return self.vm_seconds * self.spec.price_per_second


@dataclass
class BillingMeter:
    """Accumulates VM-time charges over a job run."""

    lines: list[ChargeLine] = field(default_factory=list)

    def charge(
        self, spec: VMSpec, count: int, seconds: float, label: str = ""
    ) -> ChargeLine:
        """Accrue ``count`` VMs for ``seconds`` of wall time."""
        if count < 0:
            raise ValueError("count must be non-negative")
        if seconds < 0:
            raise ValueError("seconds must be non-negative")
        line = ChargeLine(spec=spec, count=count, seconds=seconds, label=label)
        self.lines.append(line)
        return line

    @property
    def total_vm_seconds(self) -> float:
        return sum(line.vm_seconds for line in self.lines)

    @property
    def total_cost(self) -> float:
        return sum(line.cost for line in self.lines)

    def cost_normalized_to(self, baseline: "BillingMeter") -> float:
        """This meter's cost as a multiple of ``baseline``'s (Fig. 16 axis)."""
        base = baseline.total_cost
        if base <= 0:
            raise ValueError("baseline has zero cost")
        return self.total_cost / base

    def merged(self) -> dict[str, float]:
        """Cost per spec name (for reports)."""
        out: dict[str, float] = {}
        for line in self.lines:
            out[line.spec.name] = out.get(line.spec.name, 0.0) + line.cost
        return out
