"""Simulated public-cloud substrate (Azure stand-in).

Deterministic models for everything the paper's evaluation depends on:
VM flavors and pricing (:mod:`specs`), the time/memory coefficient set
(:mod:`costmodel`), data-plane transfer timing (:mod:`network`), physical
memory + virtual-memory spill (:mod:`memorymodel`), pro-rata billing
(:mod:`billing`), elastic provisioning (:mod:`provisioner`), and the blob /
queue platform services Pregel.NET's control plane uses (:mod:`services`).
"""

from .specs import GB, LARGE_VM, MBPS, SMALL_VM, VMSpec, scaled_large
from .costmodel import DEFAULT_PERF_MODEL, PerfModel
from .network import NetworkModel, TrafficSummary
from .memorymodel import MemoryModel, MemoryUsage
from .billing import BillingMeter, ChargeLine
from .costmeter import (
    DEFAULT_PRICES,
    CostMeter,
    CostReport,
    PriceBook,
    attribute_cost,
)
from .provisioner import ElasticProvisioner, ScaleEvent
from .services import BlobStore, CloudQueue, QueueService
from .spot import expected_evictions, spot_failure_schedule, spot_price

__all__ = [
    "GB",
    "MBPS",
    "LARGE_VM",
    "SMALL_VM",
    "VMSpec",
    "scaled_large",
    "DEFAULT_PERF_MODEL",
    "PerfModel",
    "NetworkModel",
    "TrafficSummary",
    "MemoryModel",
    "MemoryUsage",
    "BillingMeter",
    "ChargeLine",
    "CostMeter",
    "CostReport",
    "DEFAULT_PRICES",
    "PriceBook",
    "attribute_cost",
    "ElasticProvisioner",
    "ScaleEvent",
    "BlobStore",
    "CloudQueue",
    "QueueService",
    "expected_evictions",
    "spot_failure_schedule",
    "spot_price",
]
