"""VM instance specifications and pricing — Azure-2012 stand-ins.

The paper provisions *large* Azure instances for partition workers (4 cores
@ 1.6 GHz, 7 GB RAM, 400 Mbps NIC, $0.48/VM-hour) and *small* instances
(exactly one quarter of each: 1 core, 1.75 GB, 100 Mbps, $0.12/VM-hour) for
the web/manager roles.

Our dataset analogues are ~1000x smaller than the paper's SNAP graphs, so a
literal 7 GB worker would never feel memory pressure; :func:`scaled_large`
shrinks the memory capacity (and only the memory — time coefficients are
relative anyway) so the paper's *ratios* reappear at our scale.  Scenario
configs state the scale they use.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

__all__ = ["VMSpec", "LARGE_VM", "SMALL_VM", "scaled_large", "GB", "MBPS"]

GB = 1024**3
MBPS = 1_000_000 / 8  # 1 megabit/s in bytes/s


@dataclass(frozen=True)
class VMSpec:
    """A simulated VM flavor.

    ``network_bytes_per_s`` is per-VM full-duplex NIC capacity;
    ``price_per_hour`` is billed pro-rata per VM-second by
    :class:`~repro.cloud.billing.BillingMeter`.
    """

    name: str
    cores: int
    memory_bytes: int
    network_bytes_per_s: float
    price_per_hour: float

    def __post_init__(self) -> None:
        if self.cores <= 0:
            raise ValueError("cores must be positive")
        if self.memory_bytes <= 0:
            raise ValueError("memory_bytes must be positive")
        if self.network_bytes_per_s <= 0:
            raise ValueError("network_bytes_per_s must be positive")
        if self.price_per_hour < 0:
            raise ValueError("price_per_hour must be non-negative")

    @property
    def price_per_second(self) -> float:
        return self.price_per_hour / 3600.0


#: The paper's large Azure instance (partition workers).
LARGE_VM = VMSpec(
    name="azure-large",
    cores=4,
    memory_bytes=7 * GB,
    network_bytes_per_s=400 * MBPS,
    price_per_hour=0.48,
)

#: The paper's small Azure instance (web UI / job manager) — one quarter.
SMALL_VM = VMSpec(
    name="azure-small",
    cores=1,
    memory_bytes=int(1.75 * GB),
    network_bytes_per_s=100 * MBPS,
    price_per_hour=0.12,
)


def scaled_large(memory_bytes: int, name: str | None = None) -> VMSpec:
    """A large-VM flavor with memory shrunk to ``memory_bytes``.

    Used by scenarios to map the paper's 7 GB physical / 6 GB target regime
    onto our scaled-down graphs; all other resources keep the large-VM shape.
    """
    return replace(
        LARGE_VM,
        name=name or f"azure-large-mem{memory_bytes}",
        memory_bytes=int(memory_bytes),
    )
