"""Worker-to-worker data-plane timing model.

Pregel.NET opens a TCP endpoint between every pair of workers, re-established
each superstep to dodge socket timeouts, and ships *bulk* buffers of
serialized messages on background threads (§III).  This module turns a
worker's per-superstep traffic matrix row into seconds:

``transfer = max(bytes_out, bytes_in) / nic  +  peers * (latency + setup)``

The max() reflects full-duplex NICs with send/receive overlapped by the
background threads; per-peer terms reflect connection setup and the first
byte's latency per flow.  Optional deterministic jitter models multi-tenant
bandwidth variability.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .costmodel import PerfModel
from .specs import VMSpec

__all__ = ["NetworkModel", "TrafficSummary"]


@dataclass(frozen=True)
class TrafficSummary:
    """One worker's data-plane activity in one superstep."""

    bytes_out: float
    bytes_in: float
    peers_out: int
    peers_in: int

    def __post_init__(self) -> None:
        if min(self.bytes_out, self.bytes_in) < 0:
            raise ValueError("byte counts must be non-negative")
        if min(self.peers_out, self.peers_in) < 0:
            raise ValueError("peer counts must be non-negative")


class NetworkModel:
    """Computes data-plane seconds for a worker's superstep traffic."""

    def __init__(self, spec: VMSpec, model: PerfModel) -> None:
        self.spec = spec
        self.model = model
        self._rng = (
            np.random.default_rng(model.jitter_seed) if model.jitter > 0 else None
        )

    def transfer_time(self, traffic: TrafficSummary, superstep: int = 0) -> float:
        """Seconds spent moving this worker's bytes for one superstep."""
        m = self.model
        nic = self.spec.network_bytes_per_s
        if self._rng is not None:
            # Deterministic multi-tenant jitter: the effective NIC share
            # wobbles within [1-jitter, 1+jitter].
            wobble = 1.0 + m.jitter * float(self._rng.uniform(-1.0, 1.0))
            nic = nic * max(wobble, 1e-3)
        volume = max(traffic.bytes_out, traffic.bytes_in) / nic
        peers = max(traffic.peers_out, traffic.peers_in)
        overhead = peers * (m.latency_per_peer + m.conn_setup_per_peer)
        return volume + overhead
