"""Elastic VM provisioning with scaling overheads.

§VIII's elasticity analysis assumes worker counts can change at superstep
boundaries.  The provisioner tracks the fleet, charges the billing meter for
every allocated VM-second, and charges *time* for scale events:

* scale-out pays :attr:`~repro.cloud.costmodel.PerfModel.provision_delay`
  (VM boot + role warmup) once per scaling step (boots overlap);
* scale-in pays :attr:`~repro.cloud.costmodel.PerfModel.release_delay`;
* both pay migration time proportional to the vertices whose partition
  moved (``migrate_per_vertex``).

The paper's own projections "do not yet consider the overheads of scaling";
setting the three coefficients to zero reproduces that idealized analysis,
and the elastic benches report both variants.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .billing import BillingMeter
from .costmodel import PerfModel
from .specs import VMSpec

__all__ = ["ElasticProvisioner", "ScaleEvent"]


@dataclass(frozen=True)
class ScaleEvent:
    """A fleet-size change applied at a superstep boundary."""

    superstep: int
    old_workers: int
    new_workers: int
    overhead_seconds: float


@dataclass
class ElasticProvisioner:
    """Tracks fleet size, billing and scaling overheads across a run."""

    spec: VMSpec
    model: PerfModel
    workers: int
    meter: BillingMeter = field(default_factory=BillingMeter)
    events: list[ScaleEvent] = field(default_factory=list)

    def __post_init__(self) -> None:
        if self.workers <= 0:
            raise ValueError("initial worker count must be positive")

    def advance(self, seconds: float, label: str = "") -> None:
        """Bill the current fleet for ``seconds`` of wall time."""
        self.meter.charge(self.spec, self.workers, seconds, label=label)

    def scale_to(
        self, new_workers: int, superstep: int, vertices_moved: int = 0
    ) -> float:
        """Change the fleet size; returns the overhead seconds incurred.

        The overhead is also billed (the fleet is allocated while waiting on
        boots/drains — you pay for idle VMs during scaling, as on Azure).
        """
        if new_workers <= 0:
            raise ValueError("new_workers must be positive")
        if new_workers == self.workers:
            return 0.0
        m = self.model
        overhead = m.migrate_per_vertex * max(0, vertices_moved)
        if new_workers > self.workers:
            overhead += m.provision_delay
            billed = new_workers  # new VMs are billed from acquisition
        else:
            overhead += m.release_delay
            billed = self.workers  # old VMs bill until drained
        self.meter.charge(self.spec, billed, overhead, label=f"scale@{superstep}")
        self.events.append(
            ScaleEvent(superstep, self.workers, new_workers, overhead)
        )
        self.workers = new_workers
        return overhead

    @property
    def total_cost(self) -> float:
        return self.meter.total_cost
