"""The performance model: every time/size coefficient in one place.

The BSP engine *executes* vertex programs for real and *models* elapsed time
from true operation counts.  All coefficients live in :class:`PerfModel` so
ablation benches can zero out one effect at a time and scenarios can document
exactly what they assume.

Defaults are calibrated to the paper's large Azure VM (4 x 1.6 GHz cores) so
that the evaluation's qualitative shapes reproduce:

* per-message costs comparable to per-vertex compute ("the CPU utilization
  for delivering messages by our framework is comparable to the user's
  vertex compute logic", §IV);
* remote messages pay serialization + shared NIC bandwidth + per-peer
  latency, local messages only a queue append;
* barriers cost more with more workers (Azure-queue polling round trips);
* exceeding physical memory applies a punitive virtual-memory multiplier
  (random-access paging is *worse* than sequential disk buffering, §IV).
"""

from __future__ import annotations

from dataclasses import dataclass, replace

__all__ = ["PerfModel", "DEFAULT_PERF_MODEL", "SCALED_PERF_MODEL"]


@dataclass(frozen=True)
class PerfModel:
    """Coefficients for the simulated-time accounting.

    Times are seconds per unit on one large-VM core; sizes are bytes.
    """

    # --- compute plane -------------------------------------------------
    #: base cost of one compute() invocation (scheduling + state access)
    t_compute_vertex: float = 8e-6
    #: cost to drain one received message inside compute()
    t_msg_in: float = 2e-6
    #: cost to emit one message (framework-side routing, either plane)
    t_msg_out: float = 2e-6
    #: fraction of perfect multi-core scaling achieved by the task library
    parallel_efficiency: float = 0.85

    # --- data plane ----------------------------------------------------
    #: per-remote-message serialization/deserialization CPU cost
    t_serialize: float = 2.5e-6
    #: framing overhead added to each message on the wire
    msg_header_bytes: int = 32
    #: default payload size when a program does not override payload_nbytes
    default_payload_bytes: int = 16
    #: per-superstep TCP connection (re-)establishment cost, per peer
    conn_setup_per_peer: float = 2e-3
    #: one-way latency charged per active peer flow per superstep
    latency_per_peer: float = 1e-3

    # --- control plane ---------------------------------------------------
    #: fixed barrier cost per superstep (manager token + queue round trip)
    barrier_base: float = 40e-3
    #: additional barrier cost per worker (check-in fan-in via queues)
    barrier_per_worker: float = 12e-3

    # --- memory ----------------------------------------------------------
    #: bytes of bookkeeping per resident vertex (handles, queues, GC slack)
    vertex_overhead_bytes: int = 96
    #: buffered message footprint = wire size * this expansion factor
    #: (deserialized .NET/Python objects are fatter than their wire form)
    msg_memory_expansion: float = 2.0
    #: multiplier applied to a worker's superstep time per unit of
    #: memory-overflow ratio (used/capacity - 1); models VM thrashing
    spill_penalty: float = 60.0
    #: overflow ratio beyond which the cloud fabric restarts the VM
    restart_overflow_ratio: float = 0.5
    #: time lost to a fabric-initiated VM restart (reload partition etc.)
    restart_time: float = 120.0

    # --- fault tolerance ---------------------------------------------------
    #: sequential blob-storage bandwidth for checkpoint save/restore
    checkpoint_bandwidth: float = 100e6

    # --- execution mode (§II/§IV framework-design alternatives) ------------
    #: buffer inter-superstep messages on local disk instead of memory
    #: (Giraph/Hama-style).  Removes message memory pressure entirely but
    #: charges sequential disk I/O for every buffered message — the
    #: "uniformly adds a multiplicative overhead" §IV abjures.
    disk_buffering: bool = False
    #: sequential local-disk bandwidth used by disk buffering / MR reload
    disk_bandwidth: float = 80e6
    #: MapReduce-style iteration (Hadoop-layered frameworks, §II-A): no
    #: resident state between supersteps — each superstep re-reads the graph
    #: partition and vertex state from the DFS and writes state back, in
    #: addition to disk-buffered messages.
    mapreduce_iteration: bool = False

    # --- elasticity -------------------------------------------------------
    #: time to provision + warm a new worker VM (scale-out)
    provision_delay: float = 90.0
    #: time to drain + release a worker VM (scale-in)
    release_delay: float = 10.0
    #: time to repartition/migrate state per resident vertex moved
    migrate_per_vertex: float = 10e-6

    # --- noise ------------------------------------------------------------
    #: multi-tenancy jitter amplitude (0 disables; deterministic when seeded)
    jitter: float = 0.0
    jitter_seed: int = 0
    #: worker ids the jitter applies to (None = all workers).  Narrowing the
    #: blast radius does not change the rng draw sequence, so untargeted
    #: workers keep identical timing — the controlled-straggler scenario the
    #: diagnosis layer's acceptance tests use.
    jitter_workers: tuple[int, ...] | None = None

    def __post_init__(self) -> None:
        if not 0 < self.parallel_efficiency <= 1:
            raise ValueError("parallel_efficiency must be in (0, 1]")
        if self.spill_penalty < 0:
            raise ValueError("spill_penalty must be non-negative")
        if self.jitter < 0 or self.jitter >= 1:
            raise ValueError("jitter must be in [0, 1)")
        if self.jitter_workers is not None:
            normalized = tuple(sorted(int(w) for w in self.jitter_workers))
            if any(w < 0 for w in normalized):
                raise ValueError("jitter_workers must be non-negative ids")
            object.__setattr__(self, "jitter_workers", normalized)
        for field_name in (
            "t_compute_vertex",
            "t_msg_in",
            "t_msg_out",
            "t_serialize",
            "conn_setup_per_peer",
            "latency_per_peer",
            "barrier_base",
            "barrier_per_worker",
        ):
            if getattr(self, field_name) < 0:
                raise ValueError(f"{field_name} must be non-negative")

    # Convenience ablations -------------------------------------------------
    def without(self, **zeroed: float) -> "PerfModel":
        """Return a copy with the named coefficients replaced (typically 0).

        Example: ``model.without(barrier_base=0, barrier_per_worker=0)``.
        """
        return replace(self, **zeroed)

    def effective_cores(self, cores: int) -> float:
        """Usable parallelism of a ``cores``-core VM under the task library."""
        return max(1.0, cores * self.parallel_efficiency)

    def message_wire_bytes(self, payload_bytes: int) -> int:
        """Serialized size of one message on the wire."""
        return int(self.msg_header_bytes + payload_bytes)

    def message_memory_bytes(self, payload_bytes: int) -> float:
        """Resident size of one buffered message."""
        return self.message_wire_bytes(payload_bytes) * self.msg_memory_expansion

    def barrier_time(self, num_workers: int) -> float:
        """Control-plane synchronization cost for one superstep."""
        if num_workers <= 0:
            raise ValueError("num_workers must be positive")
        return self.barrier_base + self.barrier_per_worker * num_workers


#: Shared default instance (immutable).
DEFAULT_PERF_MODEL = PerfModel()

#: The *scaled regime* used by the paper-reproduction scenarios.
#:
#: Our dataset analogues are roughly 1000x smaller than the paper's SNAP
#: graphs, so one modeled message/vertex-op stands for ~1000 real ones;
#: per-operation coefficients are scaled up by that factor while absolute
#: control-plane costs (barriers, connection setup — which do not shrink
#: with the graph) stay at their measured-scale values.  This keeps the
#: paper's governing ratio intact: peak supersteps are minutes of data-plane
#: work against ~0.1 s barriers, while tail supersteps are barrier-dominated
#: — the regime in which swath overlap (§VI-C) and elastic scale-in (§VIII)
#: pay off.
SCALED_PERF_MODEL = PerfModel(
    t_compute_vertex=2.5e-4,
    t_msg_in=6.25e-4,
    t_msg_out=6.25e-4,
    t_serialize=1.25e-3,
    barrier_base=30e-3,
    barrier_per_worker=6e-3,
    # Gentler than the default: with the scaled data-plane coefficients the
    # spilled supersteps already dominate; 25 lands Fig. 4's speedups in the
    # paper's 2.5-3.5x band.
    spill_penalty=25.0,
)
