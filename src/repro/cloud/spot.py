"""Preemptible ("spot") VM economics for BSP jobs.

A natural question over the paper's pay-as-you-go analysis: public clouds
sell interruptible capacity at a deep discount — is checkpoint-and-restart
BSP cheap enough to exploit it?  This module models a spot market:

* spot VMs cost ``discount`` x the on-demand price;
* each VM is independently evicted as a Poisson process with rate
  ``evictions_per_hour`` (of *simulated* time);
* an eviction is a worker failure — the engine's checkpoint/rollback
  machinery (Pregel-style coordinated recovery) handles it, paying restart
  plus recomputation time.

:func:`spot_failure_schedule` converts a reference trace + eviction rate
into the engine's ``failure_schedule``; :func:`spot_price` builds the
discounted VM flavor.  The bench sweeps eviction rates to find where spot
stops being worth it.
"""

from __future__ import annotations

from dataclasses import replace

import numpy as np

from ..bsp.superstep import JobTrace
from .specs import VMSpec

__all__ = ["spot_price", "spot_failure_schedule", "expected_evictions"]


def spot_price(spec: VMSpec, discount: float = 0.3) -> VMSpec:
    """The spot flavor of ``spec``: same hardware, discounted price.

    ``discount`` is the *fraction of the on-demand price you pay* (0.3 =
    70% off, the typical spot ballpark).
    """
    if not 0.0 < discount <= 1.0:
        raise ValueError("discount must be in (0, 1]")
    return replace(
        spec,
        name=f"{spec.name}-spot{int(discount * 100)}",
        price_per_hour=spec.price_per_hour * discount,
    )


def expected_evictions(
    trace: JobTrace, num_workers: int, evictions_per_hour: float
) -> float:
    """Mean eviction count for a job shaped like ``trace``."""
    if evictions_per_hour < 0:
        raise ValueError("evictions_per_hour must be non-negative")
    hours = trace.total_time / 3600.0
    return evictions_per_hour * num_workers * hours


def spot_failure_schedule(
    trace: JobTrace,
    num_workers: int,
    evictions_per_hour: float,
    seed: int = 0,
) -> dict[int, int]:
    """Sample per-superstep evictions from a reference (failure-free) trace.

    Each superstep of duration ``t`` gives each worker an eviction
    probability ``1 - exp(-rate * t / 3600)``; at most one eviction per
    superstep is kept (the engine's rollback makes simultaneous failures
    equivalent to one).  Deterministic for a given seed.

    The schedule is approximate for the *recovered* run (replayed supersteps
    are not re-sampled), which makes it a slight *underestimate* of spot
    pain — noted by the bench.

    The returned dict feeds ``JobSpec.failure_schedule`` and works on
    every backend: the in-process engines *model* the eviction (charge
    rollback time, restore state), while
    :class:`repro.dist.ProcessBSPEngine` makes it real — the victim
    worker process is SIGKILLed and a replacement is restarted from the
    checkpoint (its :meth:`~repro.dist.ProcessBSPEngine.kill_worker_at`
    writes into the same schedule).
    """
    if evictions_per_hour < 0:
        raise ValueError("evictions_per_hour must be non-negative")
    rng = np.random.default_rng(seed)
    schedule: dict[int, int] = {}
    for step in trace:
        p = 1.0 - np.exp(-evictions_per_hour * step.elapsed / 3600.0)
        victims = np.flatnonzero(rng.random(num_workers) < p)
        if len(victims):
            schedule[step.index] = int(victims[0])
    return schedule
