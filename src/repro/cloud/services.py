"""Azure-like platform services: blob storage and reliable queues.

Pregel.NET (§III) wires its control plane through exactly these services:
the web role submits jobs via a queue, workers read the graph file from blob
storage, the manager drives supersteps with a *step* queue and collects
worker check-ins from a *barrier* queue.  The stand-ins here are in-memory
but keep the same semantics (FIFO queues with visibility of message counts,
named blob containers with byte payloads), so the engine's control flow is
structured like the paper's deployment and is unit-testable.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Any

__all__ = ["BlobStore", "CloudQueue", "QueueService"]


class BlobStore:
    """Named byte blobs grouped in containers (Azure blob storage stand-in)."""

    def __init__(self) -> None:
        self._containers: dict[str, dict[str, bytes]] = {}

    def put(self, container: str, name: str, data: bytes) -> None:
        if not isinstance(data, (bytes, bytearray)):
            raise TypeError("blob data must be bytes")
        self._containers.setdefault(container, {})[name] = bytes(data)

    def get(self, container: str, name: str) -> bytes:
        try:
            return self._containers[container][name]
        except KeyError:
            raise KeyError(f"blob {container}/{name} not found") from None

    def exists(self, container: str, name: str) -> bool:
        return name in self._containers.get(container, {})

    def delete(self, container: str, name: str) -> None:
        try:
            del self._containers[container][name]
        except KeyError:
            raise KeyError(f"blob {container}/{name} not found") from None

    def list(self, container: str) -> list[str]:
        return sorted(self._containers.get(container, {}))

    def total_bytes(self) -> int:
        return sum(
            len(b) for c in self._containers.values() for b in c.values()
        )


@dataclass
class CloudQueue:
    """FIFO message queue with at-least-once get/delete semantics folded to
    simple pop (our simulated workers never crash mid-dequeue)."""

    name: str
    _items: deque = field(default_factory=deque)

    def put(self, message: Any) -> None:
        self._items.append(message)

    def get(self) -> Any:
        if not self._items:
            raise IndexError(f"queue {self.name!r} is empty")
        return self._items.popleft()

    def try_get(self) -> Any | None:
        return self._items.popleft() if self._items else None

    def __len__(self) -> int:
        return len(self._items)

    @property
    def empty(self) -> bool:
        return not self._items


class QueueService:
    """Named queues, created on first use (Azure queue service stand-in)."""

    def __init__(self) -> None:
        self._queues: dict[str, CloudQueue] = {}

    def queue(self, name: str) -> CloudQueue:
        if name not in self._queues:
            self._queues[name] = CloudQueue(name)
        return self._queues[name]

    def names(self) -> list[str]:
        return sorted(self._queues)
