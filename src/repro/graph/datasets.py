"""Synthetic analogues of the paper's SNAP evaluation datasets (Table 1).

The paper evaluates on four real SNAP graphs we cannot download in this
offline environment (and whose full sizes are intractable for pure-Python
betweenness centrality — the paper itself extrapolates from 4-hour runs over
50–75 roots):

=================  =========  ==========  =================
Graph              Vertices   Edges       90% eff. diameter
=================  =========  ==========  =================
SlashDot0922 (SD)     82,168     948,464   4.7
web-Google (WG)      875,713   5,105,039   8.1
cit-Patents (CP)   3,774,768  16,518,948   9.4
LiveJournal (LJ)   4,847,571  68,993,773   6.5
=================  =========  ==========  =================

Each analogue is generated to match the *structure class* that drives the
paper's results, scaled by a ``scale`` knob (1.0 ≈ thousands of vertices,
suitable for the benchmark harness; tests use smaller scales):

* **SD** — dense small-world social graph: Watts–Strogatz core plus random
  shortcuts; lowest diameter of the four (paper: 4.7).
* **WG** — power-law web graph: Barabási–Albert (hubs = portal pages);
  mid-band diameter (paper: 8.1).
* **CP** — citation-like graph with *skewed planted communities*; the
  largest diameter of the four (paper: 9.4).  Skewed communities are the
  load-imbalance mechanism of §VII: min-cut partitions align with
  communities, so BFS waves concentrate in a few partitions.
* **LJ** — large skewed social network: R-MAT with supernodes; low diameter
  (paper: 6.5).

The relative ordering of sizes (SD < WG < CP < LJ in vertices) and of
effective diameters (SD < LJ < WG < CP) is preserved; tests assert both.
"""

from __future__ import annotations

from typing import Callable

from .csr import CSRGraph
from . import generators as gen

__all__ = [
    "slashdot_analogue",
    "webgoogle_analogue",
    "citpatents_analogue",
    "livejournal_analogue",
    "DATASETS",
    "load",
    "PAPER_TABLE1",
]

#: Paper's Table 1 ground truth, for reports and tests.
PAPER_TABLE1 = {
    "SD": {"vertices": 82_168, "edges": 948_464, "eff_diameter": 4.7},
    "WG": {"vertices": 875_713, "edges": 5_105_039, "eff_diameter": 8.1},
    "CP": {"vertices": 3_774_768, "edges": 16_518_948, "eff_diameter": 9.4},
    "LJ": {"vertices": 4_847_571, "edges": 68_993_773, "eff_diameter": 6.5},
}


def slashdot_analogue(scale: float = 1.0, seed: int = 101) -> CSRGraph:
    """SlashDot-like small-world social graph (lowest effective diameter).

    Watts–Strogatz with a generous neighborhood (k=10) and moderate rewiring
    gives the high-clustering + short-paths signature (paper: 4.7).
    """
    n = max(60, int(820 * scale))
    k = min(10, (n - 2) // 2 * 2 or 2)
    g = gen.watts_strogatz(n, k=k, beta=0.2, seed=seed)
    g.name = "SD-analogue"
    return g


def webgoogle_analogue(scale: float = 1.0, seed: int = 202) -> CSRGraph:
    """web-Google-like sparse power-law graph (second-largest diameter).

    Mixed-attachment Barabási–Albert: sparse, hub-dominated, with longer
    paths than a social graph of the same size (paper: 8.1).
    """
    n = max(80, int(1750 * scale))
    g = gen.barabasi_albert_mixed(n, seed=seed, p_single=0.7)
    g.name = "WG-analogue"
    return g


def citpatents_analogue(scale: float = 1.0, seed: int = 303) -> CSRGraph:
    """cit-Patents-like community-chain graph (largest diameter).

    Chain of skewed-size Watts–Strogatz communities with distance-decaying
    inter-community links (citations mostly reach nearby time windows);
    largest effective diameter of the four (paper: 9.4), and the dataset on
    which min-cut partitioning induces superstep load imbalance (§VII).
    """
    base = max(24, int(250 * scale))
    g = gen.community_chain(
        num_blocks=6, base_size=base, seed=seed,
        inter_links=max(8, int(60 * scale)),
    )
    g.name = "CP-analogue"
    return g


def livejournal_analogue(scale: float = 1.0, seed: int = 404) -> CSRGraph:
    """LiveJournal-like skewed social network (diameter between SD and WG).

    R-MAT with softened skew (a=0.45): supernodes plus a short-paths core
    (paper: 6.5).  The largest of the four in vertex count, as in Table 1.
    Sparse R-MAT strands ~25% of vertices outside the giant component, so —
    like the real LJ crawl, whose WCC covers ~99% of vertices — stragglers
    are wired into the core with one degree-proportional edge each.
    """
    import math

    import numpy as np

    from .builder import GraphBuilder
    from .properties import connected_components

    scale_bits = max(8, round(math.log2(max(4096 * scale, 256))))
    g = gen.rmat(scale=scale_bits, edge_factor=2, seed=seed, a=0.45, b=0.22, c=0.22)
    labels = connected_components(g)
    giant = int(np.argmax(np.bincount(labels)))
    outside = np.flatnonzero(labels != giant)
    if len(outside):
        rng = np.random.default_rng(seed + 1)
        # Degree-proportional anchor choice keeps the core's skew.
        inside = np.flatnonzero(labels == giant)
        weights = g.out_degrees()[inside].astype(np.float64) + 1.0
        anchors = rng.choice(inside, size=len(outside), p=weights / weights.sum())
        b = GraphBuilder(g.num_vertices, undirected=True)
        e = g.edge_array()
        half = e[e[:, 0] < e[:, 1]]
        b.add_edges(half[:, 0], half[:, 1])
        b.add_edges(outside, anchors)
        g = b.build()
    g.name = "LJ-analogue"
    return g


#: Registry keyed by the paper's dataset abbreviations.
DATASETS: dict[str, Callable[..., CSRGraph]] = {
    "SD": slashdot_analogue,
    "WG": webgoogle_analogue,
    "CP": citpatents_analogue,
    "LJ": livejournal_analogue,
}


def load(key: str, scale: float = 1.0, seed: int | None = None) -> CSRGraph:
    """Load a dataset analogue by its paper abbreviation (SD/WG/CP/LJ)."""
    if key not in DATASETS:
        raise KeyError(f"unknown dataset {key!r}; choose from {sorted(DATASETS)}")
    if seed is None:
        return DATASETS[key](scale=scale)
    return DATASETS[key](scale=scale, seed=seed)
