"""Edge-list accumulation into :class:`~repro.graph.csr.CSRGraph`.

The builder accepts edges in any order (singly for undirected graphs — the
reverse arc is added automatically), then materializes CSR arrays with a
single vectorized counting-sort pass.  This is the only place adjacency is
constructed, so dedupe / self-loop policy lives here.
"""

from __future__ import annotations

import numpy as np

from .csr import CSRGraph

__all__ = ["GraphBuilder", "from_edges"]


class GraphBuilder:
    """Accumulate edges, then :meth:`build` a CSR graph.

    Parameters
    ----------
    num_vertices:
        Fixed vertex-id domain ``0..num_vertices-1``.  Ids outside the domain
        raise at :meth:`add_edges` time.
    undirected:
        When True each added edge also stores the reverse arc and the built
        graph is flagged undirected.
    """

    def __init__(self, num_vertices: int, undirected: bool = False) -> None:
        if num_vertices < 0:
            raise ValueError("num_vertices must be non-negative")
        self.num_vertices = int(num_vertices)
        self.undirected = bool(undirected)
        self._src_chunks: list[np.ndarray] = []
        self._dst_chunks: list[np.ndarray] = []
        self._w_chunks: list[np.ndarray | None] = []

    # ------------------------------------------------------------------
    def add_edge(self, u: int, v: int, weight: float | None = None) -> None:
        self.add_edges(
            np.array([u]), np.array([v]),
            None if weight is None else np.array([weight]),
        )

    def add_edges(self, src, dst, weights=None) -> None:
        """Add a batch of arcs (``src[i] -> dst[i]``), optionally weighted.

        Weighted and unweighted batches must not be mixed in one builder.
        """
        src = np.asarray(src, dtype=np.int64).ravel()
        dst = np.asarray(dst, dtype=np.int64).ravel()
        if len(src) != len(dst):
            raise ValueError("src and dst must have equal length")
        if weights is not None:
            weights = np.asarray(weights, dtype=np.float64).ravel()
            if len(weights) != len(src):
                raise ValueError("weights must match edge count")
        if self._w_chunks and (self._w_chunks[-1] is None) != (weights is None):
            raise ValueError("cannot mix weighted and unweighted batches")
        if len(src) == 0:
            return
        lo = min(src.min(), dst.min())
        hi = max(src.max(), dst.max())
        if lo < 0 or hi >= self.num_vertices:
            raise ValueError(
                f"edge endpoint out of range [0, {self.num_vertices}): "
                f"saw [{lo}, {hi}]"
            )
        self._src_chunks.append(src.astype(np.int32))
        self._dst_chunks.append(dst.astype(np.int32))
        self._w_chunks.append(weights)

    def add_edge_iter(self, edges) -> None:
        """Add edges from an iterable of ``(u, v)`` pairs."""
        pairs = np.array(list(edges), dtype=np.int64)
        if pairs.size == 0:
            return
        self.add_edges(pairs[:, 0], pairs[:, 1])

    @property
    def pending_arcs(self) -> int:
        return sum(len(c) for c in self._src_chunks)

    # ------------------------------------------------------------------
    def build(
        self,
        dedupe: bool = True,
        drop_self_loops: bool = True,
        name: str = "",
    ) -> CSRGraph:
        """Materialize the CSR graph.

        ``dedupe`` removes parallel arcs; ``drop_self_loops`` removes
        ``v -> v`` arcs.  Both default on: the paper's datasets are simple
        graphs.
        """
        n = self.num_vertices
        weighted = bool(self._w_chunks) and self._w_chunks[-1] is not None
        if self._src_chunks:
            src = np.concatenate(self._src_chunks)
            dst = np.concatenate(self._dst_chunks)
            w = np.concatenate(self._w_chunks) if weighted else None
        else:
            src = np.empty(0, dtype=np.int32)
            dst = np.empty(0, dtype=np.int32)
            w = None

        if self.undirected and len(src):
            src, dst = np.concatenate([src, dst]), np.concatenate([dst, src])
            if w is not None:
                w = np.concatenate([w, w])

        if drop_self_loops and len(src):
            keep = src != dst
            src, dst = src[keep], dst[keep]
            if w is not None:
                w = w[keep]

        if len(src):
            # Sort by (src, dst) so CSR rows come out ordered and dedupe is a
            # simple adjacent-duplicate scan (first weight wins).
            key = src.astype(np.int64) * n + dst.astype(np.int64)
            order = np.argsort(key, kind="stable")
            src, dst, key = src[order], dst[order], key[order]
            if w is not None:
                w = w[order]
            if dedupe:
                keep = np.empty(len(key), dtype=bool)
                keep[0] = True
                np.not_equal(key[1:], key[:-1], out=keep[1:])
                src, dst = src[keep], dst[keep]
                if w is not None:
                    w = w[keep]

        counts = np.bincount(src, minlength=n) if len(src) else np.zeros(n, dtype=np.int64)
        indptr = np.zeros(n + 1, dtype=np.int64)
        np.cumsum(counts, out=indptr[1:])
        return CSRGraph(
            n, indptr, dst.copy(), undirected=self.undirected, name=name,
            weights=w.copy() if w is not None else None,
        )


def from_edges(
    num_vertices: int,
    edges,
    undirected: bool = False,
    dedupe: bool = True,
    drop_self_loops: bool = True,
    name: str = "",
    weights=None,
) -> CSRGraph:
    """One-shot convenience wrapper around :class:`GraphBuilder`."""
    b = GraphBuilder(num_vertices, undirected=undirected)
    edges = np.asarray(list(edges) if not isinstance(edges, np.ndarray) else edges)
    if edges.size:
        edges = edges.reshape(-1, 2)
        b.add_edges(edges[:, 0], edges[:, 1], weights)
    return b.build(dedupe=dedupe, drop_self_loops=drop_self_loops, name=name)
