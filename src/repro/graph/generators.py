"""Seeded synthetic graph generators (pure numpy).

These provide the structural classes needed by the paper's evaluation:

* :func:`erdos_renyi` — baseline random graphs for tests.
* :func:`watts_strogatz` — small-world graphs (high clustering, short paths),
  the structure class of the SlashDot social graph.
* :func:`barabasi_albert` — preferential attachment / power-law degree
  graphs, the structure class of the web-Google graph.
* :func:`rmat` — Kronecker-style skewed graphs (supernodes), used for the
  LiveJournal analogue.
* :func:`planted_partition` — community-structured graphs with configurable
  (optionally skewed) community sizes, used for the cit-Patents analogue
  where min-cut partitioning concentrates BFS frontiers in few partitions.

All generators take an explicit ``seed`` and are deterministic for a given
numpy version.  They return :class:`~repro.graph.csr.CSRGraph`.
"""

from __future__ import annotations

import numpy as np

from .builder import GraphBuilder

__all__ = [
    "erdos_renyi",
    "watts_strogatz",
    "barabasi_albert",
    "barabasi_albert_mixed",
    "rmat",
    "planted_partition",
    "community_chain",
    "ring",
    "path",
    "complete",
    "star",
    "binary_tree",
    "grid2d",
]


# ---------------------------------------------------------------------------
# Deterministic toy graphs (used heavily by tests)
# ---------------------------------------------------------------------------
def ring(n: int) -> "CSRGraph":
    """Undirected cycle on ``n`` vertices."""
    if n < 3:
        raise ValueError("ring needs n >= 3")
    u = np.arange(n)
    return _build_und(n, u, (u + 1) % n, name=f"ring({n})")


def path(n: int) -> "CSRGraph":
    """Undirected path on ``n`` vertices."""
    if n < 1:
        raise ValueError("path needs n >= 1")
    u = np.arange(n - 1)
    return _build_und(n, u, u + 1, name=f"path({n})")


def complete(n: int) -> "CSRGraph":
    """Undirected complete graph K_n."""
    if n < 1:
        raise ValueError("complete needs n >= 1")
    u, v = np.triu_indices(n, k=1)
    return _build_und(n, u, v, name=f"K{n}")


def star(n: int) -> "CSRGraph":
    """Undirected star: hub 0 connected to ``n-1`` leaves."""
    if n < 2:
        raise ValueError("star needs n >= 2")
    leaves = np.arange(1, n)
    return _build_und(n, np.zeros(n - 1, dtype=np.int64), leaves, name=f"star({n})")


def binary_tree(depth: int) -> "CSRGraph":
    """Undirected complete binary tree of the given depth (root depth 0)."""
    if depth < 0:
        raise ValueError("depth must be >= 0")
    n = 2 ** (depth + 1) - 1
    kids = np.arange(1, n)
    parents = (kids - 1) // 2
    return _build_und(n, parents, kids, name=f"btree({depth})")


def grid2d(rows: int, cols: int) -> "CSRGraph":
    """Undirected 2-D grid (large diameter: the anti-small-world case)."""
    if rows < 1 or cols < 1:
        raise ValueError("grid2d needs rows, cols >= 1")
    n = rows * cols
    idx = np.arange(n).reshape(rows, cols)
    right_u, right_v = idx[:, :-1].ravel(), idx[:, 1:].ravel()
    down_u, down_v = idx[:-1, :].ravel(), idx[1:, :].ravel()
    return _build_und(
        n,
        np.concatenate([right_u, down_u]),
        np.concatenate([right_v, down_v]),
        name=f"grid({rows}x{cols})",
    )


def _build_und(n, u, v, name=""):
    b = GraphBuilder(n, undirected=True)
    b.add_edges(u, v)
    return b.build(name=name)


# ---------------------------------------------------------------------------
# Random models
# ---------------------------------------------------------------------------
def erdos_renyi(n: int, p: float, seed: int, directed: bool = False):
    """G(n, p) via geometric skipping (O(m) expected, no n^2 table)."""
    if not 0.0 <= p <= 1.0:
        raise ValueError("p must be in [0, 1]")
    rng = np.random.default_rng(seed)
    total_slots = n * n if directed else n * (n - 1) // 2
    if p == 0.0 or total_slots == 0:
        b = GraphBuilder(n, undirected=not directed)
        return b.build(name=f"er({n},{p})")
    if p >= 1.0:
        slots = np.arange(total_slots)
    else:
        # Geometric-gap skipping: draw batches of gaps until the running sum
        # passes the end of the slot space, then truncate.
        chunks: list[np.ndarray] = []
        covered = -1
        expected = int(total_slots * p) + 16
        while covered < total_slots:
            gaps = rng.geometric(p, size=max(64, expected))
            pos = covered + np.cumsum(gaps)
            chunks.append(pos)
            covered = int(pos[-1])
        slots = np.concatenate(chunks)
        slots = slots[slots < total_slots]
    if directed:
        u, v = slots // n, slots % n
        keep = u != v
        u, v = u[keep], v[keep]
    else:
        # Map linear index into strict upper triangle.
        u = (
            n
            - 2
            - np.floor(
                np.sqrt(-8.0 * slots + 4.0 * n * (n - 1) - 7) / 2.0 - 0.5
            )
        ).astype(np.int64)
        v = (slots + u + 1 - n * (n - 1) // 2 + (n - u) * ((n - u) - 1) // 2).astype(
            np.int64
        )
    b = GraphBuilder(n, undirected=not directed)
    b.add_edges(u, v)
    return b.build(name=f"er({n},{p})")


def watts_strogatz(n: int, k: int, beta: float, seed: int):
    """Watts–Strogatz small-world graph: ring lattice with rewiring.

    Each vertex starts connected to its ``k`` nearest neighbors (``k`` even);
    each lattice edge is rewired with probability ``beta`` to a uniformly
    random target (avoiding self-loops; parallel edges collapse in dedupe).
    """
    if k % 2 != 0 or k <= 0:
        raise ValueError("k must be positive and even")
    if k >= n:
        raise ValueError("k must be < n")
    if not 0.0 <= beta <= 1.0:
        raise ValueError("beta must be in [0, 1]")
    rng = np.random.default_rng(seed)
    base = np.arange(n)
    srcs, dsts = [], []
    for d in range(1, k // 2 + 1):
        u = base
        v = (base + d) % n
        rewire = rng.random(n) < beta
        new_tgt = rng.integers(0, n, size=n)
        v = np.where(rewire, new_tgt, v)
        srcs.append(u)
        dsts.append(v)
    b = GraphBuilder(n, undirected=True)
    b.add_edges(np.concatenate(srcs), np.concatenate(dsts))
    return b.build(name=f"ws({n},{k},{beta})")


def barabasi_albert(n: int, m: int, seed: int):
    """Barabási–Albert preferential attachment (power-law degrees).

    Implemented with the repeated-endpoints trick: sampling uniformly from
    the list of all prior edge endpoints is equivalent to degree-proportional
    sampling.
    """
    if m < 1 or m >= n:
        raise ValueError("need 1 <= m < n")
    rng = np.random.default_rng(seed)
    # Start from a star on m+1 vertices so every early vertex has degree >= 1.
    targets = list(range(m))
    repeated: list[int] = []
    srcs: list[int] = []
    dsts: list[int] = []
    for v in range(m, n):
        chosen = set()
        # Sample m distinct targets preferentially.
        while len(chosen) < m:
            if repeated and rng.random() > 1.0 / (len(repeated) + 1):
                cand = repeated[rng.integers(0, len(repeated))]
            else:
                cand = int(rng.integers(0, v))
            chosen.add(int(cand))
        for t in chosen:
            srcs.append(v)
            dsts.append(t)
            repeated.append(v)
            repeated.append(t)
    del targets
    b = GraphBuilder(n, undirected=True)
    b.add_edges(np.array(srcs), np.array(dsts))
    return b.build(name=f"ba({n},{m})")


def barabasi_albert_mixed(n: int, seed: int, p_single: float = 0.7):
    """Barabási–Albert variant attaching with m=1 (prob ``p_single``) or m=2.

    Average attachment between 1 and 2 keeps the graph sparse (web-graph
    density) while m=2 edges close enough cycles to keep it from degenerating
    into a tree; effective diameter lands in the web-graph band (~7-9) rather
    than the m=2 band (~5) or the pure-tree band (~10+).
    """
    if n < 3:
        raise ValueError("need n >= 3")
    if not 0.0 <= p_single <= 1.0:
        raise ValueError("p_single must be in [0, 1]")
    rng = np.random.default_rng(seed)
    repeated: list[int] = []
    srcs: list[int] = []
    dsts: list[int] = []
    for v in range(1, n):
        m = 1 if (v < 3 or rng.random() < p_single) else 2
        chosen: set[int] = set()
        while len(chosen) < min(m, v):
            if repeated and rng.random() > 1.0 / (len(repeated) + 1):
                cand = repeated[rng.integers(0, len(repeated))]
            else:
                cand = int(rng.integers(0, v))
            chosen.add(int(cand))
        for t in chosen:
            srcs.append(v)
            dsts.append(t)
            repeated.append(v)
            repeated.append(t)
    b = GraphBuilder(n, undirected=True)
    b.add_edges(np.array(srcs), np.array(dsts))
    return b.build(name=f"bamix({n},{p_single})")


def community_chain(
    num_blocks: int,
    base_size: int,
    seed: int,
    inter_links: int = 60,
    k: int = 6,
    beta: float = 0.15,
    decay: int = 3,
):
    """Chain-of-communities graph (citation-network analogue).

    Communities (technology areas x time) are Watts–Strogatz blocks of
    *skewed* sizes (``base_size * (1 + i mod 3)``); inter-community links
    decay with chain distance as ``1 / d**decay``, modeling citations mostly
    reaching nearby time windows.  The result has the largest effective
    diameter of our dataset analogues and — key for §VII — min-edge-cut
    partitions align with communities, concentrating BFS frontiers in a few
    partitions at a time (dense blocks + steep decay sharpen the effect).
    """
    if num_blocks < 2:
        raise ValueError("need at least 2 blocks")
    if base_size < 8:
        raise ValueError("base_size too small for a WS block")
    rng = np.random.default_rng(seed)
    sizes = [base_size * (1 + (i % 3)) for i in range(num_blocks)]
    offsets = np.zeros(len(sizes) + 1, dtype=np.int64)
    np.cumsum(sizes, out=offsets[1:])
    b = GraphBuilder(int(offsets[-1]), undirected=True)
    for i, s in enumerate(sizes):
        sub = watts_strogatz(s, k=k, beta=beta, seed=int(rng.integers(1 << 30)))
        e = sub.edge_array()
        half = e[e[:, 0] < e[:, 1]]
        b.add_edges(half[:, 0] + offsets[i], half[:, 1] + offsets[i])
    for i in range(num_blocks):
        for j in range(i + 1, num_blocks):
            cnt = int(inter_links / (j - i) ** decay)
            if cnt < 1:
                continue
            u = rng.integers(0, sizes[i], size=cnt) + offsets[i]
            v = rng.integers(0, sizes[j], size=cnt) + offsets[j]
            b.add_edges(u, v)
    return b.build(name=f"chain({num_blocks}x{base_size})")


def rmat(
    scale: int,
    edge_factor: int,
    seed: int,
    a: float = 0.57,
    b: float = 0.19,
    c: float = 0.19,
    undirected: bool = True,
):
    """R-MAT / Kronecker generator: ``2**scale`` vertices, skewed degrees.

    Classic Graph500 parameters by default (a=0.57, b=c=0.19, d=0.05),
    producing heavy supernodes — the structure that drives the near-
    exponential frontier ramp-up the paper describes for BC/APSP.
    """
    d = 1.0 - a - b - c
    if d < 0:
        raise ValueError("a + b + c must be <= 1")
    n = 2**scale
    m = n * edge_factor
    rng = np.random.default_rng(seed)
    src = np.zeros(m, dtype=np.int64)
    dst = np.zeros(m, dtype=np.int64)
    for _ in range(scale):
        r = rng.random(m)
        go_right = (r >= a) & (r < a + b)
        go_down = (r >= a + b) & (r < a + b + c)
        go_diag = r >= a + b + c
        src = src * 2 + (go_down | go_diag)
        dst = dst * 2 + (go_right | go_diag)
    # Permute vertex ids so structure is not correlated with id order.
    perm = rng.permutation(n)
    src, dst = perm[src], perm[dst]
    builder = GraphBuilder(n, undirected=undirected)
    builder.add_edges(src, dst)
    return builder.build(name=f"rmat({scale},{edge_factor})")


def planted_partition(
    community_sizes,
    p_in: float,
    p_out: float,
    seed: int,
    undirected: bool = True,
):
    """Planted-partition graph over explicit (possibly skewed) communities.

    ``community_sizes`` is a sequence of block sizes.  Within a block, edges
    appear with probability ``p_in``; across blocks with ``p_out``.  Skewed
    block sizes make min-edge-cut partitions align with communities, which
    concentrates traversal frontiers in a few workers — the paper's CP
    load-imbalance effect.
    """
    sizes = np.asarray(list(community_sizes), dtype=np.int64)
    if np.any(sizes <= 0):
        raise ValueError("community sizes must be positive")
    n = int(sizes.sum())
    offsets = np.zeros(len(sizes) + 1, dtype=np.int64)
    np.cumsum(sizes, out=offsets[1:])
    rng = np.random.default_rng(seed)
    srcs, dsts = [], []
    # Intra-community edges per block.
    for ci, size in enumerate(sizes):
        if size < 2 or p_in <= 0:
            continue
        sub = erdos_renyi(int(size), p_in, seed=int(rng.integers(1 << 30)))
        e = sub.edge_array()
        half = e[e[:, 0] < e[:, 1]]
        srcs.append(half[:, 0] + offsets[ci])
        dsts.append(half[:, 1] + offsets[ci])
    # Inter-community edges: expected count sampled directly.
    if p_out > 0:
        for ci in range(len(sizes)):
            for cj in range(ci + 1, len(sizes)):
                slots = int(sizes[ci] * sizes[cj])
                cnt = rng.binomial(slots, p_out)
                if cnt == 0:
                    continue
                u = rng.integers(0, sizes[ci], size=cnt) + offsets[ci]
                v = rng.integers(0, sizes[cj], size=cnt) + offsets[cj]
                srcs.append(u)
                dsts.append(v)
    b = GraphBuilder(n, undirected=undirected)
    if srcs:
        b.add_edges(np.concatenate(srcs), np.concatenate(dsts))
    g = b.build(name=f"ppm({len(sizes)} blocks)")
    return g
