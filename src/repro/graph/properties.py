"""Structural graph statistics.

Everything the paper's Table 1 and §IV analysis rely on: degree statistics,
clustering coefficient, BFS distance profiles, average shortest path length,
and the 90% *effective diameter* (the smallest distance d such that at least
90% of reachable ordered pairs are within distance d, with linear
interpolation between integer distances — the standard SNAP definition).

Exact all-pairs profiles are O(|V||E|); :func:`distance_profile` therefore
supports sampling a subset of source vertices, mirroring how the paper
extrapolates BC from a subset of roots.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .csr import CSRGraph

__all__ = [
    "bfs_levels",
    "distance_profile",
    "effective_diameter",
    "average_shortest_path",
    "degree_stats",
    "clustering_coefficient",
    "connected_components",
    "largest_component",
    "GraphSummary",
    "summarize",
]


def bfs_levels(graph: CSRGraph, source: int) -> np.ndarray:
    """BFS distance from ``source`` to every vertex (-1 if unreachable).

    Frontier expansion is vectorized: each level gathers all neighbor slices
    of the frontier with one fancy-index per level.
    """
    n = graph.num_vertices
    if not 0 <= source < n:
        raise ValueError(f"source {source} out of range")
    dist = np.full(n, -1, dtype=np.int32)
    dist[source] = 0
    frontier = np.array([source], dtype=np.int32)
    level = 0
    indptr, indices = graph.indptr, graph.indices
    while len(frontier):
        level += 1
        # Gather all out-neighbors of the frontier.
        starts, ends = indptr[frontier], indptr[frontier + 1]
        total = int((ends - starts).sum())
        if total == 0:
            break
        out = np.empty(total, dtype=np.int64)
        pos = 0
        for s, e in zip(starts, ends):
            cnt = e - s
            out[pos : pos + cnt] = indices[s:e]
            pos += cnt
        cand = np.unique(out)
        new = cand[dist[cand] < 0]
        dist[new] = level
        frontier = new.astype(np.int32)
    return dist


def distance_profile(
    graph: CSRGraph,
    sources: np.ndarray | None = None,
    sample: int | None = None,
    seed: int = 0,
) -> np.ndarray:
    """Histogram of BFS distances over (sampled) source vertices.

    Returns ``counts`` where ``counts[d]`` is the number of (source, target)
    ordered pairs at distance exactly ``d`` (d >= 1).  ``counts[0]`` counts
    sources themselves and is excluded from diameter statistics by callers.
    """
    n = graph.num_vertices
    if sources is None:
        if sample is not None and sample < n:
            rng = np.random.default_rng(seed)
            sources = rng.choice(n, size=sample, replace=False)
        else:
            sources = np.arange(n)
    sources = np.asarray(sources)
    hist = np.zeros(1, dtype=np.int64)
    for s in sources:
        dist = bfs_levels(graph, int(s))
        reached = dist[dist >= 0]
        if len(reached) == 0:
            continue
        bc = np.bincount(reached)
        if len(bc) > len(hist):
            hist = np.pad(hist, (0, len(bc) - len(hist)))
        hist[: len(bc)] += bc
    return hist


def effective_diameter(
    graph: CSRGraph,
    fraction: float = 0.9,
    sample: int | None = None,
    seed: int = 0,
) -> float:
    """SNAP-style effective diameter with linear interpolation.

    Smallest (fractional) d such that ``fraction`` of reachable ordered pairs
    (excluding self-pairs) lie within distance d.
    """
    if not 0 < fraction <= 1:
        raise ValueError("fraction must be in (0, 1]")
    counts = distance_profile(graph, sample=sample, seed=seed)
    if len(counts) <= 1:
        return 0.0
    pair_counts = counts.copy()
    pair_counts[0] = 0  # self-pairs excluded
    total = pair_counts.sum()
    if total == 0:
        return 0.0
    cum = np.cumsum(pair_counts)
    target = fraction * total
    d = int(np.searchsorted(cum, target))
    if d == 0:
        return 0.0
    prev = cum[d - 1]
    span = cum[d] - prev
    frac = (target - prev) / span if span > 0 else 0.0
    return float(d - 1 + frac) if span > 0 else float(d)


def average_shortest_path(
    graph: CSRGraph, sample: int | None = None, seed: int = 0
) -> float:
    """Mean distance over reachable ordered pairs (excluding self-pairs)."""
    counts = distance_profile(graph, sample=sample, seed=seed)
    if len(counts) <= 1:
        return 0.0
    d = np.arange(len(counts))
    pair_counts = counts.copy()
    pair_counts[0] = 0
    total = pair_counts.sum()
    if total == 0:
        return 0.0
    return float((d * pair_counts).sum() / total)


def degree_stats(graph: CSRGraph) -> dict:
    """Min/mean/max/std of out-degree, plus a power-law tail indicator."""
    deg = graph.out_degrees()
    if len(deg) == 0:
        return {"min": 0, "mean": 0.0, "max": 0, "std": 0.0, "p99_over_mean": 0.0}
    mean = float(deg.mean())
    p99 = float(np.percentile(deg, 99))
    return {
        "min": int(deg.min()),
        "mean": mean,
        "max": int(deg.max()),
        "std": float(deg.std()),
        "p99_over_mean": (p99 / mean) if mean > 0 else 0.0,
    }


def clustering_coefficient(
    graph: CSRGraph, sample: int | None = None, seed: int = 0
) -> float:
    """Mean local clustering coefficient (on the symmetrized graph).

    For each (sampled) vertex: fraction of neighbor pairs that are linked.
    Vertices of degree < 2 contribute 0, matching networkx's convention.
    """
    g = graph if graph.undirected else graph.as_undirected()
    n = g.num_vertices
    if n == 0:
        return 0.0
    if sample is not None and sample < n:
        rng = np.random.default_rng(seed)
        verts = rng.choice(n, size=sample, replace=False)
    else:
        verts = np.arange(n)
    neighbor_sets = None
    total = 0.0
    for v in verts:
        nbrs = g.neighbors(int(v))
        k = len(nbrs)
        if k < 2:
            continue
        nbr_set = set(int(x) for x in nbrs)
        links = 0
        for u in nbrs:
            # count edges among neighbors; each counted twice over unordered
            links += sum(1 for w in g.neighbors(int(u)) if int(w) in nbr_set)
        total += links / (k * (k - 1))
    del neighbor_sets
    return float(total / len(verts))


def connected_components(graph: CSRGraph) -> np.ndarray:
    """Component label per vertex (weakly connected for directed graphs)."""
    g = graph if graph.undirected else graph.as_undirected()
    n = g.num_vertices
    labels = np.full(n, -1, dtype=np.int64)
    cur = 0
    for seed_v in range(n):
        if labels[seed_v] >= 0:
            continue
        dist = bfs_levels(g, seed_v)
        labels[dist >= 0] = cur
        cur += 1
    return labels


def largest_component(graph: CSRGraph) -> np.ndarray:
    """Vertex ids of the largest (weakly) connected component."""
    labels = connected_components(graph)
    if len(labels) == 0:
        return np.empty(0, dtype=np.int64)
    sizes = np.bincount(labels)
    return np.flatnonzero(labels == int(np.argmax(sizes)))


@dataclass(frozen=True)
class GraphSummary:
    """Table-1-style row for a dataset."""

    name: str
    num_vertices: int
    num_edges: int
    effective_diameter_90: float
    avg_degree: float
    clustering: float

    def row(self) -> str:
        return (
            f"{self.name:<24s} {self.num_vertices:>10,d} {self.num_edges:>12,d} "
            f"{self.effective_diameter_90:>8.1f} {self.avg_degree:>8.1f} "
            f"{self.clustering:>8.3f}"
        )


def summarize(
    graph: CSRGraph, sample: int | None = 64, seed: int = 0
) -> GraphSummary:
    """Compute the Table-1 analogue row for a graph (sampled for speed)."""
    stats = degree_stats(graph)
    return GraphSummary(
        name=graph.name or "(unnamed)",
        num_vertices=graph.num_vertices,
        num_edges=graph.num_edges,
        effective_diameter_90=effective_diameter(graph, 0.9, sample=sample, seed=seed),
        avg_degree=stats["mean"],
        clustering=clustering_coefficient(
            graph, sample=min(sample or graph.num_vertices, 256), seed=seed
        ),
    )
