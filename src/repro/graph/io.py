"""Graph serialization: SNAP-style edge-list text and compact ``.npz``.

The paper's workers read graph files from cloud blob storage; our
:mod:`repro.cloud.blob` stand-in stores exactly these formats.  Both writers
round-trip losslessly (tests assert this).
"""

from __future__ import annotations

import io
from pathlib import Path

import numpy as np

from .builder import GraphBuilder
from .csr import CSRGraph

__all__ = [
    "write_edge_list",
    "read_edge_list",
    "write_npz",
    "read_npz",
    "to_edge_list_bytes",
    "from_edge_list_bytes",
]


def write_edge_list(graph: CSRGraph, path: str | Path) -> None:
    """Write a SNAP-style edge list: ``# comment`` header then ``u\\tv`` rows.

    For undirected graphs only the ``u < v`` arc is written.
    """
    Path(path).write_bytes(to_edge_list_bytes(graph))


def to_edge_list_bytes(graph: CSRGraph) -> bytes:
    buf = io.StringIO()
    kind = "undirected" if graph.undirected else "directed"
    buf.write(f"# repro graph: {graph.name or 'unnamed'}\n")
    buf.write(f"# kind: {kind}\n")
    buf.write(f"# nodes: {graph.num_vertices} arcs: {graph.num_arcs}\n")
    if graph.weighted:
        buf.write("# weighted: true\n")
        for v in range(graph.num_vertices):
            nbrs = graph.neighbors(v)
            ws = graph.neighbor_weights(v)
            for u, w in zip(nbrs, ws):
                if not graph.undirected or v < int(u):
                    buf.write(f"{v}\t{int(u)}\t{float(w)!r}\n")
        return buf.getvalue().encode()
    edges = graph.edge_array()
    if graph.undirected:
        edges = edges[edges[:, 0] < edges[:, 1]]
    for u, v in edges:
        buf.write(f"{u}\t{v}\n")
    return buf.getvalue().encode()


def read_edge_list(path: str | Path) -> CSRGraph:
    return from_edge_list_bytes(Path(path).read_bytes())


def from_edge_list_bytes(data: bytes) -> CSRGraph:
    """Parse :func:`to_edge_list_bytes` output (or any SNAP edge list).

    Header comments are optional; without a ``# nodes:`` line the vertex
    count is ``max id + 1`` and the graph is treated as directed.
    """
    name = ""
    undirected = False
    weighted = False
    declared_n: int | None = None
    src: list[int] = []
    dst: list[int] = []
    wts: list[float] = []
    for raw in data.decode().splitlines():
        line = raw.strip()
        if not line:
            continue
        if line.startswith("#"):
            body = line[1:].strip()
            if body.startswith("repro graph:"):
                name = body.split(":", 1)[1].strip()
                if name == "unnamed":
                    name = ""
            elif body.startswith("kind:"):
                undirected = body.split(":", 1)[1].strip() == "undirected"
            elif body.startswith("nodes:"):
                declared_n = int(body.split()[1])
            elif body.startswith("weighted:"):
                weighted = body.split(":", 1)[1].strip() == "true"
            continue
        parts = line.split()
        if len(parts) < 2:
            raise ValueError(f"malformed edge line: {raw!r}")
        src.append(int(parts[0]))
        dst.append(int(parts[1]))
        if len(parts) >= 3:
            weighted = True
            wts.append(float(parts[2]))
        elif weighted:
            raise ValueError(f"missing weight on line: {raw!r}")
    n = declared_n if declared_n is not None else (max(src + dst) + 1 if src else 0)
    b = GraphBuilder(n, undirected=undirected)
    if src:
        b.add_edges(
            np.array(src), np.array(dst), np.array(wts) if weighted else None
        )
    return b.build(name=name)


def write_npz(graph: CSRGraph, path: str | Path) -> None:
    """Compact binary form: CSR arrays + metadata, via numpy ``.npz``."""
    arrays = dict(
        indptr=graph.indptr,
        indices=graph.indices,
        num_vertices=np.int64(graph.num_vertices),
        undirected=np.bool_(graph.undirected),
        name=np.str_(graph.name),
    )
    if graph.weights is not None:
        arrays["weights"] = graph.weights
    np.savez_compressed(Path(path), **arrays)


def read_npz(path: str | Path) -> CSRGraph:
    with np.load(Path(path), allow_pickle=False) as z:
        return CSRGraph(
            int(z["num_vertices"]),
            z["indptr"],
            z["indices"],
            undirected=bool(z["undirected"]),
            name=str(z["name"]),
            weights=z["weights"] if "weights" in z else None,
        )
