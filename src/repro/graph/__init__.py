"""Graph substrate: CSR storage, generators, dataset analogues, statistics."""

from .csr import CSRGraph
from .builder import GraphBuilder, from_edges
from . import generators, datasets, io, properties
from .properties import (
    GraphSummary,
    average_shortest_path,
    bfs_levels,
    clustering_coefficient,
    connected_components,
    degree_stats,
    distance_profile,
    effective_diameter,
    largest_component,
    summarize,
)

__all__ = [
    "CSRGraph",
    "GraphBuilder",
    "from_edges",
    "generators",
    "datasets",
    "io",
    "properties",
    "GraphSummary",
    "average_shortest_path",
    "bfs_levels",
    "clustering_coefficient",
    "connected_components",
    "degree_stats",
    "distance_profile",
    "effective_diameter",
    "largest_component",
    "summarize",
]
