"""Compressed-sparse-row graph storage.

The whole library stores graphs in a :class:`CSRGraph`: two numpy arrays per
direction (``indptr``/``indices``) plus optional cached reverse adjacency.
Vertices are dense integer ids ``0..n-1``.  This mirrors the in-memory layout
a production BSP worker would use: contiguous neighbor slices, O(1) degree
lookup, no per-vertex Python objects.

Undirected graphs are represented as symmetric directed graphs (each
undirected edge stored in both directions); :attr:`CSRGraph.undirected`
records the intent so algorithms and statistics can divide by two where
appropriate.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator

import numpy as np

__all__ = ["CSRGraph"]


def _validate_csr(n: int, indptr: np.ndarray, indices: np.ndarray) -> None:
    if indptr.ndim != 1 or indices.ndim != 1:
        raise ValueError("indptr and indices must be 1-D arrays")
    if len(indptr) != n + 1:
        raise ValueError(f"indptr must have length n+1={n + 1}, got {len(indptr)}")
    if n > 0 and indptr[0] != 0:
        raise ValueError("indptr[0] must be 0")
    if np.any(np.diff(indptr) < 0):
        raise ValueError("indptr must be non-decreasing")
    if len(indices) != (indptr[-1] if n > 0 else 0):
        raise ValueError("indices length must equal indptr[-1]")
    if len(indices) and (indices.min() < 0 or indices.max() >= n):
        raise ValueError("indices contain out-of-range vertex ids")


@dataclass
class CSRGraph:
    """A directed graph in CSR form with lazily-built reverse adjacency.

    Parameters
    ----------
    num_vertices:
        Number of vertices; ids are ``0..num_vertices-1``.
    indptr, indices:
        Standard CSR row-pointer and column-index arrays for *out*-edges.
    undirected:
        True when the graph semantically represents an undirected graph
        stored symmetrically.  :attr:`num_edges` then reports undirected
        edge count (arcs / 2).
    name:
        Optional human-readable label (dataset analogues set this).
    """

    num_vertices: int
    indptr: np.ndarray
    indices: np.ndarray
    undirected: bool = False
    name: str = ""
    #: optional per-arc weights, aligned with :attr:`indices`
    weights: np.ndarray | None = None
    _rev_indptr: np.ndarray | None = field(default=None, repr=False, compare=False)
    _rev_indices: np.ndarray | None = field(default=None, repr=False, compare=False)

    def __post_init__(self) -> None:
        self.indptr = np.asarray(self.indptr, dtype=np.int64)
        self.indices = np.asarray(self.indices, dtype=np.int32)
        _validate_csr(self.num_vertices, self.indptr, self.indices)
        if self.weights is not None:
            self.weights = np.asarray(self.weights, dtype=np.float64)
            if self.weights.shape != self.indices.shape:
                raise ValueError("weights must align with indices")

    @property
    def weighted(self) -> bool:
        return self.weights is not None

    def neighbor_weights(self, v: int) -> np.ndarray:
        """Weights of ``v``'s out-edges (aligned with :meth:`neighbors`).

        Unweighted graphs report unit weights.
        """
        if self.weights is None:
            return np.ones(self.out_degree(v))
        view = self.weights[self.indptr[v] : self.indptr[v + 1]]
        view.flags.writeable = False
        return view

    def edge_weight(self, u: int, v: int) -> float:
        """Weight of arc ``u -> v`` (1.0 when unweighted); KeyError if absent."""
        s, e = self.indptr[u], self.indptr[u + 1]
        idx = np.searchsorted(self.indices[s:e], v)
        if idx >= e - s or self.indices[s + idx] != v:
            raise KeyError(f"no arc {u} -> {v}")
        return float(self.weights[s + idx]) if self.weights is not None else 1.0

    # ------------------------------------------------------------------
    # Basic accessors
    # ------------------------------------------------------------------
    @property
    def num_arcs(self) -> int:
        """Number of stored directed arcs."""
        return int(len(self.indices))

    @property
    def num_edges(self) -> int:
        """Number of logical edges (arcs, halved for undirected graphs)."""
        return self.num_arcs // 2 if self.undirected else self.num_arcs

    def out_degree(self, v: int) -> int:
        return int(self.indptr[v + 1] - self.indptr[v])

    def out_degrees(self) -> np.ndarray:
        """Out-degree of every vertex as an int64 array (a view-free copy)."""
        return np.diff(self.indptr)

    def neighbors(self, v: int) -> np.ndarray:
        """Out-neighbors of ``v`` as a read-only numpy view (no copy)."""
        view = self.indices[self.indptr[v] : self.indptr[v + 1]]
        view.flags.writeable = False
        return view

    def vertices(self) -> range:
        return range(self.num_vertices)

    def iter_edges(self) -> Iterator[tuple[int, int]]:
        """Yield every stored arc as ``(src, dst)``."""
        for v in range(self.num_vertices):
            for u in self.indices[self.indptr[v] : self.indptr[v + 1]]:
                yield v, int(u)

    def edge_array(self) -> np.ndarray:
        """All arcs as an ``(m, 2)`` array — vectorized form of iter_edges."""
        src = np.repeat(
            np.arange(self.num_vertices, dtype=np.int32), np.diff(self.indptr)
        )
        return np.column_stack([src, self.indices.astype(np.int32)])

    # ------------------------------------------------------------------
    # Reverse adjacency (in-edges), built lazily and cached
    # ------------------------------------------------------------------
    def _build_reverse(self) -> None:
        counts = np.bincount(self.indices, minlength=self.num_vertices)
        rev_indptr = np.zeros(self.num_vertices + 1, dtype=np.int64)
        np.cumsum(counts, out=rev_indptr[1:])
        rev_indices = np.empty(self.num_arcs, dtype=np.int32)
        # Counting-sort style scatter: stable pass over out-edges.
        cursor = rev_indptr[:-1].copy()
        src = np.repeat(
            np.arange(self.num_vertices, dtype=np.int32), np.diff(self.indptr)
        )
        order = np.argsort(self.indices, kind="stable")
        rev_indices[:] = src[order]
        # cursor math not needed with argsort; rev_indptr bounds already align
        # because indices sorted stably groups by destination.
        del cursor
        self._rev_indptr = rev_indptr
        self._rev_indices = rev_indices

    def in_degree(self, v: int) -> int:
        if self._rev_indptr is None:
            self._build_reverse()
        assert self._rev_indptr is not None
        return int(self._rev_indptr[v + 1] - self._rev_indptr[v])

    def in_degrees(self) -> np.ndarray:
        if self._rev_indptr is None:
            self._build_reverse()
        assert self._rev_indptr is not None
        return np.diff(self._rev_indptr)

    def in_neighbors(self, v: int) -> np.ndarray:
        """In-neighbors of ``v`` (vertices with an arc into ``v``)."""
        if self._rev_indptr is None:
            self._build_reverse()
        assert self._rev_indptr is not None and self._rev_indices is not None
        view = self._rev_indices[self._rev_indptr[v] : self._rev_indptr[v + 1]]
        view.flags.writeable = False
        return view

    # ------------------------------------------------------------------
    # Transformations
    # ------------------------------------------------------------------
    def reversed(self) -> "CSRGraph":
        """Return a new graph with every arc reversed."""
        if self._rev_indptr is None:
            self._build_reverse()
        assert self._rev_indptr is not None and self._rev_indices is not None
        return CSRGraph(
            self.num_vertices,
            self._rev_indptr.copy(),
            self._rev_indices.copy(),
            undirected=self.undirected,
            name=self.name + ".rev" if self.name else "",
        )

    def as_undirected(self) -> "CSRGraph":
        """Symmetrize: union of arcs and reversed arcs, deduplicated."""
        if self.undirected:
            return self
        edges = self.edge_array()
        both = np.vstack([edges, edges[:, ::-1]])
        from .builder import GraphBuilder  # local import to avoid cycle

        b = GraphBuilder(self.num_vertices, undirected=False)
        b.add_edges(both[:, 0], both[:, 1])
        g = b.build(dedupe=True, drop_self_loops=True)
        return CSRGraph(
            g.num_vertices, g.indptr, g.indices, undirected=True, name=self.name
        )

    def induced_subgraph(self, vertices) -> tuple["CSRGraph", np.ndarray]:
        """Subgraph induced on ``vertices``, with ids renumbered densely.

        Returns ``(subgraph, mapping)`` where ``mapping[new_id] = old_id``
        (sorted ascending).  Arcs are kept iff both endpoints are selected.
        """
        keep = np.unique(np.asarray(list(vertices), dtype=np.int64))
        if len(keep) and (keep.min() < 0 or keep.max() >= self.num_vertices):
            raise ValueError("vertices contain out-of-range ids")
        new_id = np.full(self.num_vertices, -1, dtype=np.int64)
        new_id[keep] = np.arange(len(keep))
        src = np.repeat(
            np.arange(self.num_vertices, dtype=np.int64), np.diff(self.indptr)
        )
        mask = (new_id[src] >= 0) & (new_id[self.indices] >= 0)
        new_src = new_id[src[mask]]
        new_dst = new_id[self.indices[mask]].astype(np.int32)
        counts = (
            np.bincount(new_src, minlength=len(keep))
            if len(new_src)
            else np.zeros(len(keep), dtype=np.int64)
        )
        indptr = np.zeros(len(keep) + 1, dtype=np.int64)
        np.cumsum(counts, out=indptr[1:])
        sub = CSRGraph(
            len(keep), indptr, new_dst.copy(), undirected=self.undirected,
            name=self.name,
        )
        return sub, keep

    def subgraph_arcs(self, mask: np.ndarray) -> "CSRGraph":
        """Keep only arcs where ``mask`` (length num_arcs, bool) is True."""
        mask = np.asarray(mask, dtype=bool)
        if len(mask) != self.num_arcs:
            raise ValueError("mask length must equal num_arcs")
        src = np.repeat(
            np.arange(self.num_vertices, dtype=np.int32), np.diff(self.indptr)
        )
        keep_src, keep_dst = src[mask], self.indices[mask]
        counts = np.bincount(keep_src, minlength=self.num_vertices)
        indptr = np.zeros(self.num_vertices + 1, dtype=np.int64)
        np.cumsum(counts, out=indptr[1:])
        return CSRGraph(
            self.num_vertices, indptr, keep_dst.copy(), undirected=False,
            name=self.name,
        )

    # ------------------------------------------------------------------
    def memory_bytes(self) -> int:
        """Approximate resident bytes of adjacency arrays (both directions)."""
        total = self.indptr.nbytes + self.indices.nbytes
        if self._rev_indptr is not None:
            total += self._rev_indptr.nbytes
        if self._rev_indices is not None:
            total += self._rev_indices.nbytes
        return int(total)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        kind = "undirected" if self.undirected else "directed"
        label = f" {self.name!r}" if self.name else ""
        return (
            f"CSRGraph({kind}{label}, |V|={self.num_vertices}, "
            f"|E|={self.num_edges})"
        )
