"""Transport-agnostic bulk frame codec (pickle 5, out-of-band buffers).

Pregelix's lesson (PAPERS.md) — and the wire model :mod:`repro.cloud.network`
simulates — is that BSP message movement should be bulk, serialized dataflow,
not per-message sends.  Every repro transport therefore moves one *frame*
per logical unit (a command, a reply, a per-destination message bucket),
serialized once.  This module is the single codec shared by the pipe
backend (:mod:`repro.dist`) and the TCP backend (:mod:`repro.net.tcp`).

Frame layout (little-endian, self-describing):

    [u32 n_buffers]
    [u64 pickle_len][pickle bytes (protocol 5)]
    n_buffers x ([u64 buf_len][raw buffer bytes])

NumPy payload arrays travel as out-of-band :class:`pickle.PickleBuffer`\\ s:
the pickle stream holds only array metadata, the raw bytes ride behind it,
and :func:`unpack_frame` hands them back as zero-copy memoryview slices of
the received blob (read-only — which is exactly the message contract,
RPC001).  Pass ``copy=True`` to materialize writable copies instead (the
TCP daemon does this for init payloads whose arrays must stay mutable and
must not pin the receive buffer).

Stream framing: message-oriented channels (multiprocessing pipes) carry
frames as-is, one per message.  Byte-stream channels (TCP sockets) wrap
each frame in an outer ``[u64 frame_len]`` prefix — see
:func:`encode_stream_frame` and :class:`StreamDecoder`, which reassembles
frames from arbitrary chunk boundaries and rejects oversized or malformed
input with a typed :class:`FrameError` instead of unpickling garbage.
"""

from __future__ import annotations

import pickle
import struct

__all__ = [
    "FrameError",
    "FrameTooLarge",
    "MAX_FRAME_BYTES",
    "STREAM_HEADER",
    "StreamDecoder",
    "encode_stream_frame",
    "pack_frame",
    "unpack_frame",
]

_U32 = struct.Struct("<I")
_U64 = struct.Struct("<Q")

#: Outer length prefix used on byte-stream transports.
STREAM_HEADER = _U64

#: Refuse frames beyond this size (2 GiB): a corrupt or hostile length
#: prefix must not make a receiver buffer unbounded memory.
MAX_FRAME_BYTES = 1 << 31


class FrameError(ValueError):
    """A frame is malformed: truncated, trailing garbage, or bad pickle.

    Subclasses :class:`ValueError` so pre-existing callers that caught
    ``ValueError`` keep working.
    """


class FrameTooLarge(FrameError):
    """A frame's declared length exceeds the receiver's limit."""


def pack_frame(obj: object) -> bytes:
    """Serialize ``obj`` into one self-contained length-prefixed frame."""
    buffers: list[pickle.PickleBuffer] = []
    payload = pickle.dumps(obj, protocol=5, buffer_callback=buffers.append)
    parts: list[bytes | memoryview] = [
        _U32.pack(len(buffers)),
        _U64.pack(len(payload)),
        payload,
    ]
    for buf in buffers:
        raw = buf.raw()
        parts.append(_U64.pack(raw.nbytes))
        parts.append(raw)
    return b"".join(parts)


def unpack_frame(blob: bytes | memoryview, *, copy: bool = False) -> object:
    """Inverse of :func:`pack_frame`.

    With ``copy=False`` (default) out-of-band buffers stay zero-copy
    read-only views into ``blob``; with ``copy=True`` they become private
    writable ``bytearray`` copies (so reconstructed arrays are mutable and
    ``blob`` is not pinned by the result).

    Raises :class:`FrameError` on any malformed input — truncation,
    trailing bytes, or a pickle stream that does not decode.
    """
    view = memoryview(blob)
    if view.nbytes < _U32.size + _U64.size:
        raise FrameError(
            f"frame header truncated: {view.nbytes} bytes, "
            f"need at least {_U32.size + _U64.size}"
        )
    (n_buffers,) = _U32.unpack_from(view, 0)
    offset = _U32.size
    (pickle_len,) = _U64.unpack_from(view, offset)
    offset += _U64.size
    if offset + pickle_len > view.nbytes:
        raise FrameError(
            f"frame truncated: pickle stream declares {pickle_len} bytes, "
            f"only {view.nbytes - offset} remain"
        )
    payload = view[offset:offset + pickle_len]
    offset += pickle_len
    buffers: list[memoryview | bytearray] = []
    for i in range(n_buffers):
        if offset + _U64.size > view.nbytes:
            raise FrameError(f"frame truncated in buffer {i} length prefix")
        (buf_len,) = _U64.unpack_from(view, offset)
        offset += _U64.size
        if offset + buf_len > view.nbytes:
            raise FrameError(
                f"frame truncated: buffer {i} declares {buf_len} bytes, "
                f"only {view.nbytes - offset} remain"
            )
        raw = view[offset:offset + buf_len]
        buffers.append(bytearray(raw) if copy else raw)
        offset += buf_len
    if offset != view.nbytes:
        raise FrameError(f"frame has {view.nbytes - offset} trailing bytes")
    try:
        return pickle.loads(payload, buffers=buffers)
    except FrameError:
        raise
    except Exception as exc:
        raise FrameError(f"frame pickle does not decode: {exc!r}") from exc


def encode_stream_frame(
    obj: object, max_frame: int = MAX_FRAME_BYTES
) -> bytes:
    """``pack_frame`` plus the outer length prefix for byte streams."""
    frame = pack_frame(obj)
    if len(frame) > max_frame:
        raise FrameTooLarge(
            f"frame of {len(frame)} bytes exceeds the {max_frame}-byte limit"
        )
    return STREAM_HEADER.pack(len(frame)) + frame


class StreamDecoder:
    """Incremental frame reassembly for byte-stream transports.

    Feed it whatever the socket produced — partial headers, partial
    frames, several frames at once — and it yields each complete decoded
    object exactly once.  A declared length beyond ``max_frame`` raises
    :class:`FrameTooLarge` immediately (before buffering the body).
    """

    def __init__(self, max_frame: int = MAX_FRAME_BYTES) -> None:
        self.max_frame = int(max_frame)
        self._buf = bytearray()

    @property
    def pending_bytes(self) -> int:
        """Bytes buffered toward the next (incomplete) frame."""
        return len(self._buf)

    def feed(self, data: bytes | memoryview) -> list[object]:
        """Absorb ``data``; return every frame it completed, in order."""
        self._buf += data
        out: list[object] = []
        header = STREAM_HEADER.size
        while len(self._buf) >= header:
            (frame_len,) = STREAM_HEADER.unpack_from(self._buf, 0)
            if frame_len > self.max_frame:
                raise FrameTooLarge(
                    f"incoming frame declares {frame_len} bytes, "
                    f"limit is {self.max_frame}"
                )
            if len(self._buf) < header + frame_len:
                break
            frame = bytes(self._buf[header:header + frame_len])
            del self._buf[:header + frame_len]
            out.append(unpack_frame(frame))
        return out
