"""The TCP execution backend: ``ProcessBSPEngine`` over worker daemons.

:class:`TcpBSPEngine` is the engine behind ``repro run --engine tcp``:
the exact coordinator logic of
:class:`~repro.dist.engine.ProcessBSPEngine` — barrier protocol, frame
routing in source-worker-id order, checkpointed recovery, respawn
budgets — driven over a :class:`~repro.net.tcp.TcpTransport` instead of
forked pipes.  Because the coordinator is inherited verbatim, results
stay bit-identical to :class:`~repro.bsp.engine.BSPEngine`
(``certify_determinism(engine="tcp")``) and the simulated accounting —
including rollback charges after a daemon crash — matches the other
backends row for row.

Endpoints come from (first match wins):

* ``endpoints=[(host, port), ...]`` — an explicit list;
* ``workers_file=`` — one ``host:port`` per line, ``#`` comments
  (:func:`repro.net.tcp.load_workers_file`);
* neither — an auto-spawned localhost :class:`~repro.net.tcp.LocalDaemonFleet`
  of ``auto_daemons`` (default ``min(num_workers, 3)``) daemons, torn
  down with the engine.  This is what lets tests and
  ``certify_determinism`` run with zero external setup.

One daemon hosts many workers: placement is round-robin by worker id
with failover, and after a daemon is lost, recovery relaunches its
workers on the survivors (respawn-or-reassign) before restoring the last
checkpoint.
"""

from __future__ import annotations

from typing import Any, Sequence

from ..bsp.job import JobResult, JobSpec
from ..dist.engine import ProcessBSPEngine
from .tcp import LocalDaemonFleet, TcpTransport, load_workers_file

__all__ = ["TcpBSPEngine", "run_job_tcp"]


class TcpBSPEngine(ProcessBSPEngine):
    """BSPEngine whose workers are sessions on TCP worker daemons."""

    def __init__(
        self,
        job: JobSpec,
        endpoints: Sequence[tuple] | None = None,
        workers_file: str | None = None,
        auto_daemons: int | None = None,
        heartbeat_interval: float = 0.1,
        heartbeat_timeout: float | None = 30.0,
        connect_timeout: float = 10.0,
        check_program: bool = True,
        max_respawns: int | None = None,
        transport: TcpTransport | None = None,
    ) -> None:
        if transport is None:
            if endpoints is None and workers_file is not None:
                endpoints = load_workers_file(workers_file)
            local_fleet = None
            if endpoints is None:
                local_fleet = LocalDaemonFleet(
                    auto_daemons or min(int(job.num_workers), 3)
                )
            transport = TcpTransport(
                endpoints=endpoints,
                connect_timeout=connect_timeout,
                local_fleet=local_fleet,
            )
            self._owned_fleet = local_fleet
        else:
            self._owned_fleet = None
        try:
            super().__init__(
                job,
                heartbeat_interval=heartbeat_interval,
                heartbeat_timeout=heartbeat_timeout,
                check_program=check_program,
                max_respawns=max_respawns,
                transport=transport,
            )
        except Exception:
            # The base constructor only reaches its own cleanup once the
            # launch loop starts; a failure before that (program gate,
            # job validation) must still tear down an auto-spawned fleet.
            if self._owned_fleet is not None:
                self._owned_fleet.shutdown()
            raise

    def kill_daemon_of(self, worker_id: int) -> str:
        """Kill the daemon hosting ``worker_id`` (failure injection).

        Returns the endpoint that was killed.  Every worker hosted on
        that daemon is lost at once — the hard-failure mode unique to
        multi-session hosts, which recovery must survive by reassigning
        them all to the surviving daemons.
        """
        h = self._handles[worker_id]
        self._transport.kill_host(h)
        return h.endpoint

    def shutdown(self) -> None:
        super().shutdown()
        if self._owned_fleet is not None:
            self._owned_fleet.shutdown()


def run_job_tcp(job: JobSpec, **engine_kwargs: Any) -> JobResult:
    """Convenience mirror of ``run_job`` / ``run_job_process``."""
    return TcpBSPEngine(job, **engine_kwargs).run()
