"""Coordinator-side TCP transport: sockets to ``repro worker`` daemons.

:class:`TcpTransport` implements the
:class:`~repro.net.transport.Transport` interface over TCP sessions
hosted by :mod:`repro.net.daemon` daemons.  Endpoints come from an
explicit host list, a ``--workers-file``, or — when neither is given —
an auto-spawned :class:`LocalDaemonFleet` of localhost daemons (which is
what lets ``certify_determinism(engine="tcp")`` and the tests run with
zero external setup).

Placement is round-robin by worker id with failover: worker *w* is
offered to endpoint ``w % n`` first, then the rest in order, and the
first daemon that completes the handshake hosts it.  That single rule is
both initial placement and the *respawn-or-reassign* policy — when a
daemon dies mid-job, the engine's existing checkpoint recovery relaunches
the lost workers and this transport simply lands them on the surviving
daemons (or on the original's replacement if one came back).

SIGKILL-equivalent semantics: :meth:`TcpChannel.kill` closes the socket
abortively (``SO_LINGER`` zero ⇒ RST), so the daemon observes a drop —
not a graceful shutdown — exactly as the coordinator observes a daemon
crash.  :meth:`TcpTransport.kill_host` escalates to a real ``SIGKILL``
of the hosting daemon process when this transport spawned it.
"""

from __future__ import annotations

import multiprocessing as mp
import socket
import struct
from collections import deque
from pathlib import Path
from typing import Any, Iterable, Sequence

from .codec import StreamDecoder, encode_stream_frame
from .daemon import PROTOCOL_VERSION, _daemon_process_main
from .transport import (
    Transport,
    TransportClosed,
    TransportError,
    WorkerChannel,
    WorkerInit,
    monotonic_now,
)

__all__ = [
    "LocalDaemonFleet",
    "TcpChannel",
    "TcpTransport",
    "WorkerFleet",
    "load_workers_file",
    "parse_endpoint",
]

Endpoint = tuple  # (host, port)

_RECV_CHUNK = 1 << 20


def parse_endpoint(spec: str) -> Endpoint:
    """``"host:port"`` → ``(host, port)`` (IPv6 via ``[addr]:port``)."""
    spec = spec.strip()
    if spec.startswith("["):  # [::1]:9000
        host, _, rest = spec[1:].partition("]")
        port = rest.lstrip(":")
    else:
        host, _, port = spec.rpartition(":")
    if not host or not port:
        raise ValueError(
            f"bad endpoint {spec!r}: expected host:port or [ipv6]:port"
        )
    return (host, int(port))


def load_workers_file(path: str | Path) -> list[Endpoint]:
    """Parse a workers file: one ``host:port`` per line, ``#`` comments."""
    endpoints = []
    for raw in Path(path).read_text().splitlines():
        line = raw.split("#", 1)[0].strip()
        if line:
            endpoints.append(parse_endpoint(line))
    if not endpoints:
        raise ValueError(f"workers file {path} names no endpoints")
    return endpoints


class TcpChannel(WorkerChannel):
    """One worker session on a remote daemon, over one TCP socket."""

    transport = "tcp"

    def __init__(self, worker_id: int, sock: socket.socket, endpoint: str) -> None:
        super().__init__(worker_id, endpoint=endpoint)
        sock.setblocking(True)
        try:
            sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        except OSError:
            pass  # not fatal; just latency
        self._sock = sock
        self._decoder = StreamDecoder()
        self._inbox: deque = deque()
        self._beats = 0  # heartbeats received but not yet drained
        self._eof = False

    # -- internals -----------------------------------------------------
    def _pump(self, timeout: float) -> bool:
        """Read whatever the socket has within ``timeout``; route frames.

        Returns True when bytes arrived.  Raises TransportClosed on EOF
        or a socket error (the daemon-side session is gone).
        """
        if self._eof:
            raise TransportClosed(f"connection to {self.endpoint} is closed")
        self._sock.settimeout(timeout if timeout > 0 else 0.0)
        try:
            data = self._sock.recv(_RECV_CHUNK)
        except (socket.timeout, BlockingIOError, InterruptedError):
            return False
        except OSError as exc:
            self._eof = True
            raise TransportClosed(
                f"connection to {self.endpoint} failed: {exc}"
            ) from exc
        if not data:
            self._eof = True
            raise TransportClosed(
                f"connection to {self.endpoint} dropped by peer"
            )
        for msg in self._decoder.feed(data):
            if isinstance(msg, tuple) and msg and msg[0] == "hb":
                self._beats += 1
                self.note_beat()
                # v2 heartbeats carry the daemon's liveness-clock stamp
                # — a one-way clock sample for drift tracking.
                payload = msg[2] if len(msg) > 2 else None
                if isinstance(payload, dict) and "clock" in payload:
                    self.clock.observe_oneway(
                        float(payload["clock"]), monotonic_now()
                    )
            else:
                self._inbox.append(msg)
        return True

    # -- WorkerChannel -------------------------------------------------
    def send(self, msg: tuple) -> None:
        if self._eof:
            raise TransportClosed(f"connection to {self.endpoint} is closed")
        try:
            self._sock.sendall(encode_stream_frame(msg))
        except OSError as exc:
            self._eof = True
            raise TransportClosed(
                f"send to {self.endpoint} failed: {exc}"
            ) from exc

    def recv(self, timeout: float) -> tuple | None:
        if self._inbox:
            return self._inbox.popleft()
        self._pump(timeout)
        return self._inbox.popleft() if self._inbox else None

    def drain_heartbeats(self) -> int:
        try:
            while not self._eof and self._pump(0):
                pass
        except TransportClosed:
            pass  # healthy() / the next recv reports the loss
        beats, self._beats = self._beats, 0
        return beats

    def healthy(self) -> bool:
        # A dead TCP peer is only visible on read: poll without blocking.
        if not self._eof:
            try:
                self._pump(0)
            except TransportClosed:
                pass
        return not self._eof

    def death_reason(self) -> str:
        return f"connection to {self.endpoint} lost"

    def kill(self) -> None:
        # SIGKILL-equivalent: abortive close (RST), so the daemon sees a
        # drop — never a graceful FIN it could mistake for a clean stop.
        try:
            self._sock.setsockopt(
                socket.SOL_SOCKET, socket.SO_LINGER,
                struct.pack("ii", 1, 0),
            )
        except OSError:
            pass
        self.close()

    def close(self) -> None:
        self._eof = True
        try:
            self._sock.close()
        except OSError:
            pass


class LocalDaemonFleet:
    """N localhost daemons spawned as forked child processes.

    Forking (where available) keeps unpicklable-by-reference test
    programs importable in the daemon — the same reason the pipe backend
    prefers ``fork``.  Daemon processes are ``daemon=True`` so an
    abandoned coordinator cannot leak them.
    """

    def __init__(
        self,
        count: int,
        host: str = "127.0.0.1",
        max_sessions: int | None = None,
        start_method: str | None = None,
        spawn_timeout: float = 30.0,
    ) -> None:
        if count < 1:
            raise ValueError("a daemon fleet needs at least one daemon")
        if start_method is None:
            start_method = (
                "fork" if "fork" in mp.get_all_start_methods() else None
            )
        ctx = mp.get_context(start_method)
        self._procs: dict[Endpoint, Any] = {}
        try:
            for _ in range(count):
                recv, send = ctx.Pipe(duplex=False)
                proc = ctx.Process(
                    target=_daemon_process_main,
                    name="repro-worker-daemon",
                    args=(host, send, max_sessions),
                    daemon=True,
                )
                proc.start()
                send.close()
                if not recv.poll(spawn_timeout):
                    proc.kill()
                    raise TransportError(
                        "local worker daemon did not report a port within "
                        f"{spawn_timeout:g}s"
                    )
                port = recv.recv()
                recv.close()
                self._procs[(host, int(port))] = proc
        except Exception:
            self.shutdown()
            raise

    def endpoints(self) -> list[Endpoint]:
        return list(self._procs)

    def kill(self, endpoint: Endpoint) -> bool:
        """SIGKILL the daemon at ``endpoint`` (failure injection)."""
        proc = self._procs.get(tuple(endpoint))
        if proc is None or not proc.is_alive():
            return False
        proc.kill()
        proc.join()
        return True

    def shutdown(self) -> None:
        for proc in self._procs.values():
            if proc.is_alive():
                proc.terminate()
        for proc in self._procs.values():
            proc.join(timeout=5.0)
            if proc.is_alive():
                proc.kill()
                proc.join()


class WorkerFleet:
    """A probeable view of a daemon fleet (elastic scaling's worker pool).

    ``capacity()`` answers "how many worker sessions can this fleet host
    right now" — the number :class:`repro.elastic.LiveFleetGuard` caps
    scale-out decisions at.  Daemons that advertise no ``max_sessions``
    count as ``default_slots`` each.
    """

    def __init__(
        self,
        endpoints: Iterable[Endpoint],
        default_slots: int = 8,
        probe_timeout: float = 2.0,
    ) -> None:
        self.endpoints = [tuple(e) for e in endpoints]
        self.default_slots = int(default_slots)
        self.probe_timeout = float(probe_timeout)

    def probe(self) -> list[dict[str, Any]]:
        """``status`` every endpoint; unreachable ones report alive=False."""
        out = []
        for host, port in self.endpoints:
            status: dict[str, Any] = {
                "endpoint": f"{host}:{port}", "alive": False,
            }
            try:
                status.update(probe_endpoint(
                    (host, port), timeout=self.probe_timeout
                ))
                status["alive"] = True
            except (TransportError, OSError):
                pass
            out.append(status)
        return out

    def capacity(self) -> int:
        total = 0
        for status in self.probe():
            if not status["alive"]:
                continue
            slots = status.get("max_sessions")
            total += self.default_slots if slots is None else int(slots)
        return total


def probe_endpoint(
    endpoint: Endpoint, timeout: float = 2.0
) -> dict[str, Any]:
    """Send a ``status`` probe to one daemon; return its vitals dict."""
    host, port = endpoint
    with socket.create_connection((host, port), timeout=timeout) as sock:
        sock.sendall(encode_stream_frame(("status", 0, None)))
        decoder = StreamDecoder()
        sock.settimeout(timeout)
        while True:
            data = sock.recv(_RECV_CHUNK)
            if not data:
                raise TransportError(
                    f"daemon at {host}:{port} closed before replying"
                )
            for msg in decoder.feed(data):
                kind, _epoch, payload = msg
                if kind != "status-reply":
                    raise TransportError(
                        f"daemon at {host}:{port} answered {kind!r} "
                        "to a status probe"
                    )
                return payload


class TcpTransport(Transport):
    """Launch worker sessions on TCP daemons (round-robin + failover)."""

    name = "tcp"

    def __init__(
        self,
        endpoints: Sequence[Endpoint] | None = None,
        auto_daemons: int | None = None,
        connect_timeout: float = 10.0,
        handshake_timeout: float = 60.0,
        local_fleet: LocalDaemonFleet | None = None,
    ) -> None:
        self._connect_timeout = float(connect_timeout)
        self._handshake_timeout = float(handshake_timeout)
        self._fleet = local_fleet
        self._owns_fleet = False
        if endpoints is not None:
            self._endpoints = [tuple(e) for e in endpoints]
            if not self._endpoints:
                raise ValueError("endpoint list is empty")
        elif local_fleet is not None:
            self._endpoints = local_fleet.endpoints()
        else:
            self._fleet = LocalDaemonFleet(auto_daemons or 3)
            self._owns_fleet = True
            self._endpoints = self._fleet.endpoints()
        self._down: set[Endpoint] = set()

    @property
    def endpoints(self) -> list[Endpoint]:
        return list(self._endpoints)

    @property
    def local_fleet(self) -> LocalDaemonFleet | None:
        return self._fleet

    def launch(self, init: WorkerInit) -> TcpChannel:
        n = len(self._endpoints)
        order = [
            self._endpoints[(init.worker_id + i) % n] for i in range(n)
        ]
        errors: list[str] = []
        for endpoint in order:
            if endpoint in self._down:
                continue
            try:
                return self._connect(endpoint, init)
            except (TransportError, OSError) as exc:
                # Unreachable (refused/timed out socket) ⇒ skip it for
                # the rest of this run; a daemon refusal (capacity,
                # version) only skips it for this launch.
                if isinstance(exc, OSError):
                    self._down.add(endpoint)
                errors.append(f"{endpoint[0]}:{endpoint[1]}: {exc}")
        raise TransportError(
            f"no worker daemon accepted worker {init.worker_id}; tried: "
            + "; ".join(errors or ["(all endpoints marked down)"])
        )

    def _connect(self, endpoint: Endpoint, init: WorkerInit) -> TcpChannel:
        host, port = endpoint
        sock = socket.create_connection(
            (host, port), timeout=self._connect_timeout
        )
        channel = TcpChannel(init.worker_id, sock, f"{host}:{port}")
        try:
            t0 = monotonic_now()  # NTP t0: hello leaves the coordinator
            channel.send(("hello", 0, {
                "version": PROTOCOL_VERSION,
                "init": init,
            }))
            deadline = t0 + self._handshake_timeout
            while True:
                reply = channel.recv(0.05)
                if reply is not None:
                    break
                if monotonic_now() > deadline:
                    raise TransportError(
                        f"daemon at {host}:{port} did not answer the "
                        f"handshake within {self._handshake_timeout:g}s"
                    )
            t3 = monotonic_now()  # NTP t3: ready reached the coordinator
            kind, _epoch, payload = reply
            if kind != "ready":
                raise TransportError(
                    f"daemon at {host}:{port} refused worker "
                    f"{init.worker_id}: {payload}"
                )
            # v2 ready payloads stamp t1/t2 on the daemon's clock; feed
            # the four-timestamp exchange into the channel's ClockSync.
            # (The t1..t2 gap — session construction — cancels out of
            # the RTT by the NTP arithmetic.)
            if isinstance(payload, dict) and "clock_recv" in payload:
                channel.clock.observe_handshake(
                    t0, float(payload["clock_recv"]),
                    float(payload["clock_send"]), t3,
                )
                channel.flight_epoch = payload.get("flight_epoch")
            return channel
        except TransportClosed as exc:
            channel.close()
            raise TransportError(
                f"daemon at {host}:{port} dropped the handshake: {exc}"
            ) from exc
        except Exception:
            channel.close()
            raise

    def kill_host(self, channel: WorkerChannel) -> None:
        """SIGKILL the hosting daemon when we spawned it; else cut the cord.

        Either way the daemon side experiences an abrupt loss — which is
        the point: scheduled failures must exercise the same recovery
        path a real daemon crash does.
        """
        if self._fleet is not None:
            endpoint = parse_endpoint(channel.endpoint)
            self._fleet.kill(endpoint)
            self._down.add(endpoint)
        channel.kill()

    def shutdown(self) -> None:
        if self._owns_fleet and self._fleet is not None:
            self._fleet.shutdown()
