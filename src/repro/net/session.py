"""The worker-side command state machine, shared by every transport.

:class:`WorkerSession` owns one
:class:`~repro.bsp.worker.PartitionWorker` plus its private telemetry
(metrics registry, flight-recorder ring, sanitizer-violation cursor) and
turns each coordinator command frame into a reply frame.  The forked
child (:mod:`repro.dist.worker_proc`) and the TCP daemon
(:mod:`repro.net.daemon`) differ only in how frames reach
:meth:`WorkerSession.handle` — the protocol semantics live here once,
which is what keeps the backends bit-identical.

Commands (every frame is ``(cmd, epoch, payload)``; replies echo the
epoch so the coordinator can discard ones that predate a recovery):

``inject``    queue control-plane activation messages
``compute``   begin the superstep, run compute(), return the
              per-destination message frames (combiners already applied
              sender-side), step stats, and aggregator partials
``deliver``   apply inbound frames in the order given (the coordinator
              sends them in source-worker-id order — the sequential
              engine's delivery order), return the barrier report:
              resource numbers, metric deltas, fresh sanitizer
              violations, flight-event tail, captured output
``snapshot`` / ``restore``  checkpointing via the worker's own
              snapshot()/restore()
``extract``   map final vertex states through ``program.extract``
``stop``      acknowledged with ``bye``; the caller ends the loop

Exceptions inside a handler come back as ``("error", epoch, traceback)``
rather than killing the host; actual host death is the coordinator's
heartbeat/liveness monitor's business.
"""

from __future__ import annotations

import traceback
from time import perf_counter
from typing import Any, Callable

from ..bsp.worker import PartitionWorker
from .codec import pack_frame, unpack_frame
from .transport import monotonic_now

__all__ = ["WorkerSession"]


def _report(worker: PartitionWorker) -> dict[str, Any]:
    """Resource numbers the coordinator mirrors into its per-worker view
    (the duck-typed surface ``BSPEngine._account_superstep`` reads)."""
    return {
        "active": worker.active_count,
        "buffered": worker.has_buffered_messages,
        "buffered_bytes": worker.buffered_message_bytes(),
        "queue_depth": worker.buffered_message_count(),
        "graph_bytes": worker.graph_bytes,
        "state_bytes": worker.total_state_bytes,
        "in_next_bytes": worker.in_next_payload_bytes,
        "memory": worker.memory_footprint(),
    }


class WorkerSession:
    """One hosted PartitionWorker plus its barrier-marshalled telemetry."""

    def __init__(
        self,
        worker_id: int,
        graph: Any,
        vertex_ids: Any,
        program: Any,
        model: Any,
        assignment: Any,
        active_ids: Any,
        *,
        want_metrics: bool = False,
        want_flight: bool = False,
        drain_output: Callable[[], str] | None = None,
    ) -> None:
        self.worker_id = worker_id
        self._drain_output = drain_output
        self._registry = None
        self._snapshot_registry = self._delta_snapshot = None
        if want_metrics:
            from ..obs.metrics import MetricsRegistry
            from ..obs.sync import delta_snapshot, snapshot_registry

            self._registry = MetricsRegistry()
            self._snapshot_registry = snapshot_registry
            self._delta_snapshot = delta_snapshot
        # Session-private flight recorder: the fresh tail ships to the
        # coordinator in every barrier ("delivered") reply, which folds it
        # in with FlightRecorder.merge_remote — same delta pattern as
        # metrics.
        self.flight = None
        self._flight_cursor = -1
        if want_flight:
            from ..obs.flight import FlightRecorder

            # The recorder runs on the liveness clock so its epoch and
            # every host stamp live in the timebase ClockSync aligns —
            # the coordinator can then restamp merged events exactly.
            self.flight = FlightRecorder(capacity=1024, clock=monotonic_now)
        self.worker = PartitionWorker(
            worker_id=worker_id,
            graph=graph,
            vertex_ids=vertex_ids,
            program=program,
            model=model,
            assignment=assignment,
            initially_active=active_ids is None,
            metrics=self._registry,
        )
        if active_ids is not None:
            for v in active_ids:
                v = int(v)
                if int(assignment[v]) == worker_id:
                    self.worker.halted[v] = False
        self._prev_metrics = (
            self._snapshot_registry(self._registry)
            if self._registry is not None else {}
        )
        self._violations_seen = 0

    def handle(self, cmd: str, epoch: int, payload: Any) -> tuple:
        """One command frame in, one reply frame out (never raises)."""
        if cmd == "stop":
            return ("bye", epoch, None)
        try:
            return self._dispatch(cmd, epoch, payload)
        except Exception:
            return ("error", epoch, traceback.format_exc())

    def _dispatch(self, cmd: str, epoch: int, payload: Any) -> tuple:
        worker = self.worker
        if cmd == "inject":
            for dst, p in payload:
                worker.inject(int(dst), p)
            return ("ok", epoch, _report(worker))
        if cmd == "compute":
            superstep, agg_values = payload
            t0 = perf_counter()
            worker.begin_superstep(superstep, agg_values)
            worker.run_compute()
            host = perf_counter() - t0
            if self.flight is not None:
                self.flight.record(
                    "worker-compute", superstep=superstep,
                    host_seconds=round(host, 6),
                    msgs=worker.stats.msgs_out_local
                    + worker.stats.msgs_out_remote,
                )
            worker.stats.peers_out = len(worker.out_remote)
            worker.stats.bytes_out = worker.out_remote_wire_bytes
            # One frame per destination: the whole post-combine bucket in
            # its emission (insertion) order.
            frames = {
                int(dw): pack_frame(list(pv.items()))
                for dw, pv in worker.out_remote.items()
            }
            return ("computed", epoch, {
                "frames": frames,
                "stats": worker.stats,
                "agg_partials": worker._agg_partials,
                "host_seconds": host,
                # This host's liveness-clock stamp at compute end; with
                # the channel's ClockSync offset the coordinator places
                # the compute span at its true position in its own
                # timebase instead of at reply-arrival time.
                "clock_end": monotonic_now(),
            })
        if cmd == "deliver":
            recv_msgs = 0
            recv_bytes = 0.0
            for _src, frame in payload:
                for dst_v, payloads in unpack_frame(frame):
                    recv_bytes += worker.deliver_remote(
                        int(dst_v), list(payloads)
                    )
                    recv_msgs += len(payloads)
            metrics_delta = None
            if self._registry is not None:
                cur = self._snapshot_registry(self._registry)
                metrics_delta = self._delta_snapshot(cur, self._prev_metrics)
                self._prev_metrics = cur
            # Sanitizer support: a wrapping program (duck-typed via its
            # `violations` list) accumulates in this host; ship the fresh
            # entries so the coordinator-side observer sees them at the
            # barrier, engine-independent.
            fresh: tuple = ()
            v_list = getattr(worker.program, "violations", None)
            if isinstance(v_list, list):
                fresh = tuple(v_list[self._violations_seen:])
                self._violations_seen = len(v_list)
            flight_events = None
            if self.flight is not None:
                tail, self._flight_cursor = self.flight.events_since(
                    self._flight_cursor
                )
                flight_events = [e.to_dict() for e in tail]
            return ("delivered", epoch, {
                "recv_msgs": recv_msgs,
                "recv_bytes": recv_bytes,
                "report": _report(worker),
                "metrics": metrics_delta,
                "violations": fresh,
                "flight": flight_events,
                # Liveness-clock reading of this recorder's epoch lets
                # the coordinator convert shipped event host stamps
                # (seconds since epoch) back into absolute remote-clock
                # time, then into its own timebase via ClockSync.
                "flight_epoch": (
                    self.flight.epoch if self.flight is not None else None
                ),
                "output": (
                    self._drain_output() if self._drain_output else ""
                ),
            })
        if cmd == "snapshot":
            return ("snapshotted", epoch, worker.snapshot())
        if cmd == "restore":
            worker.restore(payload)
            return ("restored", epoch, _report(worker))
        if cmd == "extract":
            prog = worker.program
            return ("extracted", epoch, {
                int(v): prog.extract(int(v), st)
                for v, st in worker.states.items()
            })
        raise ValueError(f"unknown command {cmd!r}")
