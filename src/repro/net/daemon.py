"""``repro worker`` — the TCP worker daemon (asyncio).

One daemon process listens on a host:port and hosts worker *sessions*: a
coordinator connects one TCP socket per worker it wants this daemon to
run, performs a ``hello`` handshake carrying the
:class:`~repro.net.transport.WorkerInit` payload, and then drives the
standard ``(cmd, epoch, payload)`` command protocol.  Each session runs
a :class:`~repro.net.session.WorkerSession` — the exact command state
machine the forked pipe backend runs — with ``compute()`` executed in a
thread-pool executor so sessions on one daemon overlap and the event
loop stays responsive for heartbeats.

Wire format: codec frames with an outer ``[u64 len]`` prefix
(:func:`repro.net.codec.encode_stream_frame`).  The daemon multiplexes
heartbeat frames ``("hb", -1, n)`` onto the reply stream every
``heartbeat_interval`` seconds; the coordinator's channel routes them to
its liveness clock instead of the reply inbox.

Connection lifecycle: a dropped socket (coordinator gone) silently ends
the session; a ``stop`` command is acknowledged with ``bye`` and ends
the session while the daemon keeps serving.  A ``("status", 0, None)``
probe on a fresh connection answers with daemon vitals and closes.

**Security caveat** — frames are pickles: anyone who can reach the port
can execute code in the daemon.  Bind to localhost or a trusted private
network only (see docs/runtime.md).
"""

from __future__ import annotations

import asyncio
import os
import sys
from pathlib import Path
from typing import Any

from .codec import (
    MAX_FRAME_BYTES,
    STREAM_HEADER,
    FrameError,
    FrameTooLarge,
    encode_stream_frame,
    unpack_frame,
)
from .transport import monotonic_now

__all__ = ["PROTOCOL_VERSION", "WorkerDaemon", "serve"]

#: Handshake protocol version; a coordinator/daemon mismatch refuses the
#: session rather than failing mid-superstep.  v2 added clock-alignment
#: stamps to the ready payload and heartbeat frames (dict payload).
PROTOCOL_VERSION = 2


async def read_stream_frame(
    reader: asyncio.StreamReader,
    max_frame: int = MAX_FRAME_BYTES,
    *,
    copy: bool = True,
) -> tuple:
    """Read one length-prefixed frame from an asyncio stream.

    ``copy=True`` hands back writable buffers: daemon-side state (graph
    columns, vertex state arrays from a checkpoint restore) must stay
    mutable, unlike coordinator-side message payloads which are read-only
    by contract.
    """
    header = await reader.readexactly(STREAM_HEADER.size)
    (frame_len,) = STREAM_HEADER.unpack(header)
    if frame_len > max_frame:
        raise FrameTooLarge(
            f"incoming frame declares {frame_len} bytes, limit is {max_frame}"
        )
    blob = await reader.readexactly(frame_len)
    return unpack_frame(blob, copy=copy)


class WorkerDaemon:
    """Asyncio TCP server hosting PartitionWorker sessions."""

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 0,
        max_sessions: int | None = None,
    ) -> None:
        self.host = host
        self.port = port  # rewritten with the bound port after start()
        self.max_sessions = max_sessions
        self.sessions_active = 0
        self.sessions_served = 0
        self.heartbeats_sent = 0
        self._server: asyncio.AbstractServer | None = None
        # Optional per-daemon telemetry (attach_telemetry): advertised in
        # status() so coordinators can discover the scrape surface.
        self.telemetry_port: int | None = None
        self.flight = None
        self._m_sessions_active = None
        self._m_sessions_total = None
        self._m_heartbeats = None

    # ------------------------------------------------------------------
    async def start(self) -> None:
        self._server = await asyncio.start_server(
            self._on_connect, self.host, self.port
        )
        self.port = self._server.sockets[0].getsockname()[1]

    async def serve_forever(self) -> None:
        assert self._server is not None, "start() first"
        async with self._server:
            await self._server.serve_forever()

    async def close(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()

    @property
    def endpoint(self) -> str:
        return f"{self.host}:{self.port}"

    def status(self) -> dict[str, Any]:
        return {
            "version": PROTOCOL_VERSION,
            "pid": os.getpid(),
            "endpoint": self.endpoint,
            "sessions_active": self.sessions_active,
            "sessions_served": self.sessions_served,
            "max_sessions": self.max_sessions,
            "telemetry_port": self.telemetry_port,
        }

    def attach_telemetry(self, registry, flight=None) -> None:
        """Wire daemon vitals into a metrics registry (and flight ring).

        Call after :meth:`start` so the bound endpoint is known — it
        becomes the ``host`` label every federated scrape keys on.
        """
        labels = {"host": self.endpoint, "transport": "tcp"}
        self._m_sessions_active = registry.gauge(
            "repro_daemon_sessions_active",
            help="Worker sessions currently hosted by this daemon.",
            **labels,
        )
        self._m_sessions_total = registry.counter(
            "repro_daemon_sessions_total",
            help="Worker sessions accepted since daemon start.",
            **labels,
        )
        self._m_heartbeats = registry.counter(
            "repro_daemon_heartbeats_sent_total",
            help="Heartbeat frames multiplexed onto reply streams.",
            **labels,
        )
        self.flight = flight
        if flight is not None:
            flight.record("daemon-start", endpoint=self.endpoint)

    # ------------------------------------------------------------------
    async def _on_connect(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            try:
                kind, _epoch, payload = await read_stream_frame(reader)
            except (asyncio.IncompleteReadError, FrameError, ConnectionError):
                return
            # NTP-style t1: daemon clock at hello receipt.  Stamped here,
            # before session construction, so handshake clock alignment
            # excludes the (potentially heavy) graph unpickling below.
            clock_recv = monotonic_now()
            if kind == "status":
                writer.write(
                    encode_stream_frame(("status-reply", 0, self.status()))
                )
                await writer.drain()
                return
            if kind != "hello":
                writer.write(encode_stream_frame(
                    ("error", 0, f"expected hello or status, got {kind!r}")
                ))
                await writer.drain()
                return
            refusal = self._refuse_hello(payload)
            if refusal is not None:
                writer.write(encode_stream_frame(("error", 0, refusal)))
                await writer.drain()
                return
            await self._serve_session(reader, writer, payload, clock_recv)
        finally:
            try:
                writer.close()
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    def _refuse_hello(self, payload: Any) -> str | None:
        if not isinstance(payload, dict):
            return "malformed hello payload"
        version = payload.get("version")
        if version != PROTOCOL_VERSION:
            return (
                f"protocol version mismatch: coordinator speaks {version}, "
                f"daemon speaks {PROTOCOL_VERSION}"
            )
        if (
            self.max_sessions is not None
            and self.sessions_active >= self.max_sessions
        ):
            return (
                f"daemon at capacity ({self.sessions_active}/"
                f"{self.max_sessions} sessions)"
            )
        return None

    async def _serve_session(
        self,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
        hello: dict,
        clock_recv: float,
    ) -> None:
        from .session import WorkerSession

        init = hello["init"]
        loop = asyncio.get_running_loop()
        # Session construction can be heavy (graph arrives in the hello);
        # keep the loop free for other sessions' heartbeats.
        session = await loop.run_in_executor(
            None,
            lambda: WorkerSession(
                init.worker_id, init.graph, init.vertex_ids, init.program,
                init.model, init.assignment, init.active_ids,
                want_metrics=init.want_metrics,
                want_flight=init.want_flight,
            ),
        )
        self.sessions_active += 1
        self.sessions_served += 1
        if self._m_sessions_active is not None:
            self._m_sessions_active.set(self.sessions_active)
            self._m_sessions_total.inc()
        if self.flight is not None:
            self.flight.record("session-open", worker=init.worker_id)
        writer.write(encode_stream_frame(("ready", 0, {
            "pid": os.getpid(),
            "endpoint": self.endpoint,
            "worker_id": init.worker_id,
            # Clock-alignment stamps: t1 (hello receipt) and t2 (ready
            # send) on this host's liveness clock.  t2 is read here —
            # after session construction — so the coordinator's NTP
            # arithmetic subtracts the build time from the RTT.
            "clock_recv": clock_recv,
            "clock_send": monotonic_now(),
            # The session recorder's epoch on the same clock: lets the
            # coordinator turn shipped flight-event offsets into
            # absolute remote time for restamping.
            "flight_epoch": (
                session.flight.epoch if session.flight is not None else None
            ),
        })))
        await writer.drain()
        stop = asyncio.Event()
        hb_task = asyncio.create_task(self._heartbeats(
            writer, float(init.heartbeat_interval), session.flight, stop
        ))
        try:
            while True:
                try:
                    cmd, epoch, payload = await read_stream_frame(reader)
                except (
                    asyncio.IncompleteReadError, FrameError, ConnectionError
                ):
                    return  # coordinator went away; drop the session
                reply = await loop.run_in_executor(
                    None, session.handle, cmd, epoch, payload
                )
                try:
                    writer.write(encode_stream_frame(reply))
                    await writer.drain()
                except (ConnectionError, OSError):
                    return
                if cmd == "stop":
                    return
        finally:
            stop.set()
            hb_task.cancel()
            self.sessions_active -= 1
            if self._m_sessions_active is not None:
                self._m_sessions_active.set(self.sessions_active)
            if self.flight is not None:
                self.flight.record("session-close", worker=init.worker_id)

    async def _heartbeats(
        self,
        writer: asyncio.StreamWriter,
        interval: float,
        flight,
        stop: asyncio.Event,
    ) -> None:
        """Multiplex ``("hb", -1, {...})`` frames onto the reply stream.

        The payload carries this host's liveness-clock reading — each
        arrival gives the coordinator a one-way clock sample for drift
        tracking on long runs.  No ``drain()``: a concurrent drain with
        the session loop's is not allowed on every Python, and heartbeat
        frames are tiny — the transport buffer absorbs them even under
        backpressure.
        """
        beats = 0
        try:
            while not stop.is_set():
                await asyncio.sleep(interval)
                writer.write(encode_stream_frame(
                    ("hb", -1, {"n": beats, "clock": monotonic_now()})
                ))
                beats += 1
                self.heartbeats_sent += 1
                if self._m_heartbeats is not None:
                    self._m_heartbeats.inc()
                if flight is not None:
                    flight.record("heartbeat-send", beats=beats)
        except (ConnectionError, OSError, asyncio.CancelledError):
            return


class _DaemonHealth:
    """Duck-typed health source for a daemon's ``/healthz`` route."""

    def __init__(self, daemon: WorkerDaemon) -> None:
        self._daemon = daemon

    def snapshot(self) -> dict[str, Any]:
        status = self._daemon.status()
        at_capacity = (
            self._daemon.max_sessions is not None
            and self._daemon.sessions_active >= self._daemon.max_sessions
        )
        status["state"] = "serving"
        status["at_capacity"] = at_capacity
        status["ok"] = not at_capacity
        return status


def serve(
    host: str = "127.0.0.1",
    port: int = 0,
    port_file: str | None = None,
    max_sessions: int | None = None,
    telemetry_port: int | None = None,
    telemetry_port_file: str | None = None,
) -> int:
    """Blocking daemon entry point (``repro worker serve``).

    Binds, announces the endpoint on stderr, optionally writes the bound
    port to ``port_file`` (so scripts can launch with ``--port 0`` and
    discover the port), then serves until interrupted.  With
    ``telemetry_port`` (0 = ephemeral) the daemon also hosts its own
    :class:`~repro.obs.live.LiveTelemetryServer` — the per-host scrape
    surface the coordinator's ``/cluster`` route federates.
    """

    async def main() -> None:
        daemon = WorkerDaemon(host=host, port=port, max_sessions=max_sessions)
        await daemon.start()
        telemetry = None
        if telemetry_port is not None:
            from ..obs.flight import FlightRecorder
            from ..obs.live import LiveTelemetryServer
            from ..obs.metrics import MetricsRegistry

            registry = MetricsRegistry()
            flight = FlightRecorder(capacity=1024, clock=monotonic_now)
            daemon.attach_telemetry(registry, flight)
            telemetry = LiveTelemetryServer(
                metrics=registry,
                flight=flight,
                health=_DaemonHealth(daemon),
                host=host,
                port=telemetry_port,
            )
            telemetry.start()
            daemon.telemetry_port = telemetry.port
            if telemetry_port_file:
                Path(telemetry_port_file).write_text(f"{telemetry.port}\n")
        print(
            f"repro worker: listening on {daemon.endpoint} "
            + (
                f"(telemetry on :{daemon.telemetry_port}) "
                if telemetry is not None else ""
            )
            + "(pickle transport — trusted networks only)",
            file=sys.stderr, flush=True,
        )
        if port_file:
            Path(port_file).write_text(f"{daemon.port}\n")
        try:
            await daemon.serve_forever()
        finally:
            if telemetry is not None:
                telemetry.stop()

    try:
        asyncio.run(main())
    except KeyboardInterrupt:
        pass
    return 0


def _daemon_process_main(host: str, port_conn, max_sessions) -> None:
    """Entry point for in-process-spawned local daemons (test/auto fleets)."""

    async def main() -> None:
        daemon = WorkerDaemon(host=host, port=0, max_sessions=max_sessions)
        await daemon.start()
        port_conn.send(daemon.port)
        port_conn.close()
        await daemon.serve_forever()

    try:
        asyncio.run(main())
    except KeyboardInterrupt:
        pass
