"""repro.net: the cluster runtime — codecs, transports, daemons, TCP engine.

The distributed engine (:mod:`repro.dist`) is split into layers here so
the coordinator logic is transport-agnostic:

* :mod:`repro.net.codec` — the pickle-5 out-of-band frame codec shared
  by every transport, plus stream framing for byte-oriented channels;
* :mod:`repro.net.transport` — the :class:`Transport` /
  :class:`WorkerChannel` interface and the :class:`PipeTransport`
  (forked local processes) backend;
* :mod:`repro.net.session` — the worker-side command state machine,
  shared by the forked child and the TCP daemon;
* :mod:`repro.net.daemon` — the ``repro worker`` asyncio TCP daemon;
* :mod:`repro.net.tcp` — the coordinator-side TCP transport, local
  daemon fleets, and fleet probing;
* :mod:`repro.net.engine` — :class:`TcpBSPEngine`
  (``repro run --engine tcp``).

**Security caveat**: frames are pickles.  Run daemons on localhost or a
trusted private network only (docs/runtime.md § TCP runtime).
"""

from .codec import (
    FrameError,
    FrameTooLarge,
    StreamDecoder,
    encode_stream_frame,
    pack_frame,
    unpack_frame,
)
from .daemon import PROTOCOL_VERSION, WorkerDaemon, serve
from .session import WorkerSession
from .tcp import (
    LocalDaemonFleet,
    TcpChannel,
    TcpTransport,
    WorkerFleet,
    load_workers_file,
    parse_endpoint,
    probe_endpoint,
)
from .transport import (
    PipeChannel,
    PipeTransport,
    Transport,
    TransportClosed,
    TransportError,
    WorkerChannel,
    WorkerInit,
    monotonic_now,
)

__all__ = [
    "FrameError",
    "FrameTooLarge",
    "LocalDaemonFleet",
    "PROTOCOL_VERSION",
    "PipeChannel",
    "PipeTransport",
    "StreamDecoder",
    "TcpBSPEngine",
    "TcpChannel",
    "TcpTransport",
    "Transport",
    "TransportClosed",
    "TransportError",
    "WorkerChannel",
    "WorkerDaemon",
    "WorkerFleet",
    "WorkerInit",
    "WorkerSession",
    "encode_stream_frame",
    "load_workers_file",
    "monotonic_now",
    "pack_frame",
    "parse_endpoint",
    "probe_endpoint",
    "run_job_tcp",
    "serve",
    "unpack_frame",
]


def __getattr__(name: str):
    # TcpBSPEngine pulls in repro.dist (which imports repro.net.transport);
    # resolving it lazily keeps `import repro.dist` and `import repro.net`
    # both cycle-free regardless of which loads first.
    if name in ("TcpBSPEngine", "run_job_tcp"):
        from . import engine

        return getattr(engine, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
