"""Pluggable coordinator↔worker transports for the distributed runtime.

:class:`~repro.dist.engine.ProcessBSPEngine` drives the barrier protocol
against abstract :class:`WorkerChannel`\\ s produced by a
:class:`Transport`.  Two backends exist:

* :class:`PipeTransport` — one forked OS process per worker, duplex
  ``multiprocessing`` pipes, a dedicated heartbeat pipe (the original
  :mod:`repro.dist` shape);
* :class:`~repro.net.tcp.TcpTransport` — sessions hosted by ``repro
  worker`` daemons reached over TCP sockets (:mod:`repro.net.tcp`).

The engine's coordinator logic — frame routing in source-worker-id order,
epoch-tagged replies, checkpointed rollback, respawn budgets — is written
entirely against this interface, which is what keeps the two backends
bit-identical.

Liveness clock: every heartbeat stamp and age in this plane comes from
:func:`monotonic_now` (``time.monotonic``).  Wall-clock time is never
consulted — an NTP step or manual clock jump must not fake a heartbeat
timeout and SIGKILL a healthy worker.
"""

from __future__ import annotations

import multiprocessing as mp
from abc import ABC, abstractmethod
from dataclasses import dataclass
from time import monotonic
from typing import Any

from ..obs.cluster import ClockSync
from .codec import pack_frame, unpack_frame

__all__ = [
    "PipeChannel",
    "PipeTransport",
    "Transport",
    "TransportClosed",
    "TransportError",
    "WorkerChannel",
    "WorkerInit",
    "monotonic_now",
]


def monotonic_now() -> float:
    """The transport plane's single liveness clock (monotonic, not wall)."""
    return monotonic()


class TransportError(RuntimeError):
    """A transport-level operation failed (launch, handshake, …)."""


class TransportClosed(TransportError):
    """The channel's peer is unreachable: pipe broken, socket dropped."""


@dataclass
class WorkerInit:
    """Everything a remote worker needs to build its PartitionWorker."""

    worker_id: int
    graph: Any
    vertex_ids: Any
    program: Any
    model: Any
    assignment: Any
    active_ids: Any
    heartbeat_interval: float
    want_metrics: bool
    want_flight: bool


class WorkerChannel(ABC):
    """One live worker: a message pipe plus liveness bookkeeping.

    The engine's protocol contract: :meth:`send` delivers one
    ``(cmd, epoch, payload)`` frame or raises :class:`TransportClosed`;
    :meth:`recv` returns one reply frame, ``None`` on timeout, or raises
    :class:`TransportClosed`; heartbeats never surface through
    :meth:`recv` — they update :attr:`last_beat` and are counted by
    :meth:`drain_heartbeats`.
    """

    #: transport label stamped on ``dist_*`` metrics
    transport = "?"

    def __init__(self, worker_id: int, endpoint: str) -> None:
        self.worker_id = worker_id
        self.endpoint = endpoint
        self.pending = 0  # replies owed for commands already sent
        self.last_beat = monotonic_now()
        self.alive = True
        #: remote-clock alignment; transports with a real handshake feed
        #: it (TCP).  Same-host backends leave it empty — offset() is
        #: then 0.0, which is exactly right for a forked process.
        self.clock = ClockSync()
        #: the remote session's flight-recorder epoch on its own
        #: liveness clock (None when unknown); set by the handshake.
        self.flight_epoch: float | None = None

    def heartbeat_age(self) -> float:
        """Seconds since the last beat, on the monotonic clock."""
        return monotonic_now() - self.last_beat

    def note_beat(self) -> None:
        self.last_beat = monotonic_now()

    @abstractmethod
    def send(self, msg: tuple) -> None:
        """Ship one frame; raise :class:`TransportClosed` if the peer is gone."""

    @abstractmethod
    def recv(self, timeout: float) -> tuple | None:
        """Return one non-heartbeat frame, or ``None`` after ``timeout``."""

    @abstractmethod
    def drain_heartbeats(self) -> int:
        """Absorb queued heartbeats (updating :attr:`last_beat`); return count."""

    @abstractmethod
    def healthy(self) -> bool:
        """Best-effort peer-alive probe (process alive / socket not EOF)."""

    @abstractmethod
    def death_reason(self) -> str:
        """Human-readable cause once :meth:`healthy` turns false."""

    @abstractmethod
    def kill(self) -> None:
        """SIGKILL-equivalent: terminate the peer session abruptly."""

    @abstractmethod
    def close(self) -> None:
        """Release local resources (idempotent; never raises)."""

    def join(self, timeout: float | None = None) -> None:
        """Wait for a graceful peer exit after a ``stop`` (best-effort)."""


class Transport(ABC):
    """Factory for :class:`WorkerChannel`\\ s plus fleet-level lifecycle."""

    name = "?"

    @abstractmethod
    def launch(self, init: WorkerInit) -> WorkerChannel:
        """Start (or connect to) one worker and hand back its channel."""

    def kill_host(self, channel: WorkerChannel) -> None:
        """Scheduled-failure hook: kill the *host* serving ``channel``.

        The pipe backend's host is the worker process itself; the TCP
        backend SIGKILLs the hosting daemon when it owns one, otherwise
        severs the connection (the daemon-side session dies with it).
        """
        channel.kill()

    def shutdown(self) -> None:
        """Release fleet-level resources (idempotent)."""


# ----------------------------------------------------------------------
# Pipe backend: forked worker processes (the original repro.dist shape)
# ----------------------------------------------------------------------


class PipeChannel(WorkerChannel):
    """A forked worker process with duplex command + heartbeat pipes."""

    transport = "pipe"

    def __init__(self, worker_id: int, proc, conn, hb_conn) -> None:
        super().__init__(worker_id, endpoint=f"pid:{proc.pid}")
        self.proc = proc
        self.conn = conn
        self.hb_conn = hb_conn

    def send(self, msg: tuple) -> None:
        try:
            self.conn.send_bytes(pack_frame(msg))
        except (BrokenPipeError, OSError) as exc:
            raise TransportClosed(f"pipe closed: {exc}") from exc

    def recv(self, timeout: float) -> tuple | None:
        try:
            if not self.conn.poll(timeout):
                return None
            data = self.conn.recv_bytes()
        except (EOFError, OSError) as exc:
            raise TransportClosed(f"pipe closed mid-reply: {exc}") from exc
        return unpack_frame(data)

    def drain_heartbeats(self) -> int:
        beats = 0
        try:
            while self.hb_conn.poll(0):
                self.hb_conn.recv_bytes()
                beats += 1
        except (EOFError, OSError):
            pass  # beats stop when the child dies; healthy() decides
        if beats:
            self.note_beat()
        return beats

    def healthy(self) -> bool:
        return self.proc.is_alive()

    def death_reason(self) -> str:
        return f"process exited (code {self.proc.exitcode})"

    def kill(self) -> None:
        if self.proc.is_alive():
            self.proc.kill()
        self.proc.join()

    def join(self, timeout: float | None = None) -> None:
        self.proc.join(timeout)

    def close(self) -> None:
        for conn in (self.conn, self.hb_conn):
            try:
                conn.close()
            except OSError:
                pass


class PipeTransport(Transport):
    """One forked (or spawned) local OS process per worker."""

    name = "pipe"

    def __init__(self, start_method: str | None = None) -> None:
        if start_method is None:
            # fork keeps unpicklable (e.g. test-local) programs usable.
            start_method = (
                "fork" if "fork" in mp.get_all_start_methods() else None
            )
        self._mp = mp.get_context(start_method)

    def launch(self, init: WorkerInit) -> PipeChannel:
        from ..dist.worker_proc import worker_main

        parent_conn, child_conn = self._mp.Pipe(duplex=True)
        hb_recv, hb_send = self._mp.Pipe(duplex=False)
        proc = self._mp.Process(
            target=worker_main,
            name=f"bsp-worker-{init.worker_id}",
            args=(
                init.worker_id, child_conn, hb_send, init.graph,
                init.vertex_ids, init.program, init.model, init.assignment,
                init.active_ids, init.heartbeat_interval, init.want_metrics,
                init.want_flight,
            ),
            daemon=True,
        )
        proc.start()
        child_conn.close()
        hb_send.close()
        return PipeChannel(init.worker_id, proc, parent_conn, hb_recv)
