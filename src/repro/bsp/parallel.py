"""Threaded execution of the compute phase (real concurrency).

The simulated engine executes workers sequentially and *models* parallel
time.  For credibility (and as the seed of a real deployment), this module
provides :class:`ThreadedBSPEngine`, which runs each superstep's per-worker
``compute()`` loops on a thread pool.  The BSP structure makes this safe
with zero locks:

* during the compute phase a worker touches only its own state, its own
  ``in_cur``/``in_next`` buffers, and its own per-destination ``out_remote``
  buckets (the shared graph/assignment arrays are read-only);
* all cross-worker movement (the flush phase) stays single-threaded at the
  barrier, exactly like the model's bulk transfer.

Results are bit-identical to the sequential engine: within a worker the
vertex order is unchanged, and the flush phase iterates workers in id
order, so message delivery order is deterministic (tests assert equality).
CPython's GIL limits the wall-clock win for pure-Python compute, but any
NumPy-heavy ``compute()`` releases the GIL and genuinely scales.
"""

from __future__ import annotations

import os
from concurrent.futures import ThreadPoolExecutor
from time import perf_counter

from .engine import BSPEngine
from .job import JobSpec

__all__ = ["ThreadedBSPEngine", "default_pool_size", "run_job_threaded"]


def default_pool_size(num_workers: int) -> int:
    """Thread-pool size when the caller does not pin one.

    Capped by the host's core count (more threads than cores only adds
    context-switch overhead for CPU-bound compute) and by 32, the same
    ceiling ``ThreadPoolExecutor`` applies to its own default.
    """
    return max(1, min(32, os.cpu_count() or 1, num_workers))


class ThreadedBSPEngine(BSPEngine):
    """BSPEngine whose compute phases run on a thread pool."""

    def __init__(self, job: JobSpec, max_threads: int | None = None) -> None:
        super().__init__(job)
        if max_threads is not None and max_threads < 1:
            raise ValueError("max_threads must be >= 1")
        pool_size = max_threads or default_pool_size(self.num_workers)
        self._pool = ThreadPoolExecutor(
            max_workers=pool_size,
            thread_name_prefix="bsp-worker",
        )
        # Real-concurrency profiling: per-worker host time inside the pooled
        # compute phase, the number the simulated clock cannot show.
        if self.metrics is not None:
            self.metrics.gauge(
                "bsp_compute_pool_threads", help="Compute thread-pool size"
            ).set(pool_size)
            self._m_task_host = self.metrics.histogram(
                "bsp_worker_compute_host_seconds",
                help="Host wall time of each worker's pooled compute task",
            )
        else:
            self._m_task_host = None

    def _compute_phase(self) -> None:
        if self._m_task_host is None:
            futures = [self._pool.submit(w.run_compute) for w in self.workers]
            for f in futures:
                f.result()  # propagate worker exceptions
            return

        def timed(worker) -> None:
            t0 = perf_counter()
            worker.run_compute()
            # Histogram mutation is lock-protected, so observing from the
            # pooled task itself is safe (no observe-after-join detour).
            self._m_task_host.observe(perf_counter() - t0)

        futures = [self._pool.submit(timed, w) for w in self.workers]
        for f in futures:
            f.result()  # propagate worker exceptions

    def run(self):
        try:
            return super().run()
        finally:
            self._pool.shutdown(wait=True)


def run_job_threaded(job: JobSpec, max_threads: int | None = None):
    """Convenience mirror of :func:`repro.bsp.engine.run_job`."""
    return ThreadedBSPEngine(job, max_threads=max_threads).run()
