"""Per-superstep execution statistics and the job trace.

Everything the paper plots comes out of this module: messages per worker per
superstep (Figs. 3, 7, 10-14), memory over time (Fig. 5), compute+I/O vs
barrier-wait breakdown and utilization (Figs. 9, 12), active vertices and
per-superstep times at different worker counts (Figs. 15-16).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

__all__ = ["WorkerStepStats", "SuperstepStats", "JobTrace"]


@dataclass
class WorkerStepStats:
    """One worker's resource activity in one superstep."""

    worker: int
    compute_calls: int = 0
    msgs_in: int = 0
    msgs_out_local: int = 0
    msgs_out_remote: int = 0
    bytes_out: float = 0.0
    bytes_in: float = 0.0
    peers_out: int = 0
    peers_in: int = 0
    #: messages buffered for the next superstep, measured at the barrier
    queue_depth: int = 0
    compute_time: float = 0.0
    serialize_time: float = 0.0
    network_time: float = 0.0
    disk_time: float = 0.0
    memory_bytes: float = 0.0
    mem_slowdown: float = 1.0
    jitter_factor: float = 1.0
    restarted: bool = False

    @property
    def msgs_out(self) -> int:
        return self.msgs_out_local + self.msgs_out_remote

    @property
    def busy_time(self) -> float:
        """Compute + I/O time (the paper's 'Compute+I/O' component)."""
        return (
            self.compute_time
            + self.serialize_time
            + self.network_time
            + self.disk_time
        )

    @property
    def elapsed(self) -> float:
        """Worker wall time including spill penalty and tenant jitter."""
        return self.busy_time * self.mem_slowdown * self.jitter_factor


@dataclass
class SuperstepStats:
    """Cluster-wide view of one superstep."""

    index: int
    num_workers: int
    workers: list[WorkerStepStats] = field(default_factory=list)
    active_begin: int = 0
    active_end: int = 0
    #: control-plane messages injected at the boundary before this superstep
    injected: int = 0
    barrier_time: float = 0.0
    restart_time: float = 0.0
    elapsed: float = 0.0
    sim_time_end: float = 0.0

    # ---- aggregates over workers --------------------------------------
    @property
    def total_messages(self) -> int:
        return sum(w.msgs_out for w in self.workers)

    @property
    def remote_messages(self) -> int:
        return sum(w.msgs_out_remote for w in self.workers)

    @property
    def messages_per_worker(self) -> np.ndarray:
        return np.array([w.msgs_out for w in self.workers], dtype=np.int64)

    @property
    def peak_memory(self) -> float:
        return max((w.memory_bytes for w in self.workers), default=0.0)

    @property
    def slowest_busy(self) -> float:
        return max((w.elapsed for w in self.workers), default=0.0)

    @property
    def compute_calls(self) -> int:
        return sum(w.compute_calls for w in self.workers)

    @property
    def message_imbalance(self) -> float:
        """max/mean of per-worker emitted messages (1.0 = perfectly even)."""
        per = self.messages_per_worker
        mean = per.mean() if len(per) else 0.0
        return float(per.max() / mean) if mean > 0 else 1.0

    @property
    def any_restart(self) -> bool:
        return any(w.restarted for w in self.workers)


@dataclass
class JobTrace:
    """The full per-superstep history of a job run."""

    steps: list[SuperstepStats] = field(default_factory=list)

    def append(self, stats: SuperstepStats) -> None:
        self.steps.append(stats)

    def __len__(self) -> int:
        return len(self.steps)

    def __iter__(self):
        return iter(self.steps)

    def __getitem__(self, i):
        return self.steps[i]

    # ---- headline scalars ----------------------------------------------
    @property
    def total_time(self) -> float:
        """Simulated wall-clock time of the whole job."""
        return sum(s.elapsed for s in self.steps)

    @property
    def total_messages(self) -> int:
        return sum(s.total_messages for s in self.steps)

    @property
    def peak_memory(self) -> float:
        return max((s.peak_memory for s in self.steps), default=0.0)

    @property
    def total_barrier_time(self) -> float:
        return sum(s.barrier_time for s in self.steps)

    @property
    def num_restarts(self) -> int:
        return sum(
            sum(1 for w in s.workers if w.restarted) for s in self.steps
        )

    # ---- series for the paper's figures ----------------------------------
    def series_messages(self) -> np.ndarray:
        """Total messages emitted per superstep (Figs. 3, 7)."""
        return np.array([s.total_messages for s in self.steps], dtype=np.int64)

    def series_messages_per_worker(self) -> np.ndarray:
        """(supersteps x workers) emitted-message matrix (Figs. 10-14).

        Rows are zero-padded on the right when worker counts differ across
        supersteps (elastic runs).
        """
        if not self.steps:
            return np.zeros((0, 0), dtype=np.int64)
        width = max(s.num_workers for s in self.steps)
        out = np.zeros((len(self.steps), width), dtype=np.int64)
        for i, s in enumerate(self.steps):
            per = s.messages_per_worker
            out[i, : len(per)] = per
        return out

    def series_peak_memory(self) -> np.ndarray:
        """Max per-worker memory per superstep (Fig. 5)."""
        return np.array([s.peak_memory for s in self.steps])

    def series_active_vertices(self) -> np.ndarray:
        """Active vertices at end of each superstep (Fig. 15 top)."""
        return np.array([s.active_end for s in self.steps], dtype=np.int64)

    def series_elapsed(self) -> np.ndarray:
        """Wall time per superstep (feeds the elastic model)."""
        return np.array([s.elapsed for s in self.steps])

    def series_sim_time(self) -> np.ndarray:
        """Cumulative simulated time at the end of each superstep."""
        return np.array([s.sim_time_end for s in self.steps])

    # ---- utilization breakdown (Figs. 9, 12) ------------------------------
    def busy_time_total(self) -> float:
        """Sum over supersteps of the *slowest* worker's busy time."""
        return sum(s.slowest_busy for s in self.steps)

    def utilization(self) -> float:
        """Mean worker utilization: busy time / allocated wall time.

        The paper's 'VM utilization %' — time spent in compute and I/O
        against total elapsed (including barrier waits).
        """
        allocated = 0.0
        busy = 0.0
        for s in self.steps:
            allocated += s.elapsed * s.num_workers
            busy += sum(w.elapsed for w in s.workers)
        return busy / allocated if allocated > 0 else 0.0

    def breakdown(self) -> dict[str, float]:
        """Compute+I/O vs barrier-wait split of total runtime."""
        total = self.total_time
        compute_io = self.busy_time_total()
        return {
            "compute_io": compute_io,
            "barrier_wait": total - compute_io,
            "total": total,
            "utilization": self.utilization(),
        }
