"""The Pregel-style vertex-centric programming API.

A graph application subclasses :class:`VertexProgram` and implements
``compute()``, which the framework calls once per (active or messaged)
vertex per superstep with the messages sent to it in the previous superstep.
Inside ``compute()`` the program uses the :class:`VertexContext` to inspect
the topology, emit messages (delivered next superstep), vote to halt, and
contribute to global aggregators — exactly the surface Pregel.NET exposes
(§III), including the templatized vertex/message types (payloads are
arbitrary Python objects here).

Resource accounting hooks (``payload_nbytes`` / ``state_nbytes``) let the
simulated cloud attribute bytes to messages and vertex state; defaults are
reasonable for small tuples and dataclass-like states.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Any, Iterable, Sequence, TYPE_CHECKING

import numpy as np

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..graph.csr import CSRGraph
    from .aggregators import Aggregator
    from .combiners import Combiner

__all__ = [
    "VertexContext",
    "VertexProgram",
    "MasterContext",
    "run_job_process",
]


def run_job_process(job, **engine_kwargs):
    """Run a job on the multiprocess engine (:mod:`repro.dist`).

    Mirror of ``run_job`` / ``run_job_threaded`` for the third backend;
    the import is lazy so programs that never go multiprocess don't pay
    for it.  ``engine_kwargs`` pass through to
    :class:`~repro.dist.ProcessBSPEngine` (``heartbeat_interval``,
    ``heartbeat_timeout``, ``start_method``).
    """
    from ..dist import ProcessBSPEngine

    return ProcessBSPEngine(job, **engine_kwargs).run()


class MasterContext:
    """Barrier-time view handed to :meth:`VertexProgram.master_compute`.

    Inspired by GPS's global-computation extension (the paper's closest
    related system, §II): at each barrier, after aggregators merge, the job
    manager runs the program's master logic, which may read aggregates,
    publish values for the next superstep, and halt the whole job.
    """

    __slots__ = ("_engine", "_halt")

    def __init__(self, engine) -> None:
        self._engine = engine
        self._halt = False

    @property
    def superstep(self) -> int:
        """Index of the superstep that just completed."""
        return self._engine.superstep

    @property
    def num_workers(self) -> int:
        return self._engine.num_workers

    @property
    def active_vertices(self) -> int:
        return self._engine.active_vertices

    def aggregated(self, name: str) -> Any:
        """This barrier's merged value of a named aggregator."""
        return self._engine.aggregated(name)

    def publish(self, name: str, value: Any) -> None:
        """Overwrite an aggregator's value for the next superstep.

        The name must belong to a declared aggregator (the broadcast channel
        is the aggregator table, as in Pregel/GPS).
        """
        if name not in self._engine._aggregators:
            raise KeyError(f"unknown aggregator {name!r}")
        self._engine._agg_values[name] = value

    def halt_job(self) -> None:
        """Terminate the job at this barrier regardless of vertex activity."""
        self._halt = True


class VertexContext:
    """Per-``compute()`` view of one vertex, provided by the worker.

    The worker reuses a single context object across vertices for allocation
    hygiene; programs must not retain references across calls.
    """

    __slots__ = ("_worker", "_vertex", "_superstep", "_halted_flag")

    def __init__(self) -> None:
        self._worker = None
        self._vertex = -1
        self._superstep = -1
        self._halted_flag = False

    # Wired by the worker before each compute() call.
    def _bind(self, worker, vertex: int, superstep: int) -> None:
        self._worker = worker
        self._vertex = vertex
        self._superstep = superstep
        self._halted_flag = False

    # ------------------------------------------------------------------
    @property
    def vertex_id(self) -> int:
        """Id of the vertex being computed."""
        return self._vertex

    @property
    def superstep(self) -> int:
        """Current superstep index (0-based)."""
        return self._superstep

    @property
    def num_vertices(self) -> int:
        """Total vertices in the graph."""
        return self._worker.graph.num_vertices

    @property
    def out_degree(self) -> int:
        return self._worker.effective_out_degree(self._vertex)

    @property
    def out_neighbors(self) -> np.ndarray:
        """Out-neighbor ids (reflecting any applied edge mutations)."""
        return self._worker.effective_neighbors(self._vertex)

    @property
    def out_weights(self) -> np.ndarray:
        """Out-edge weights aligned with :attr:`out_neighbors` (unit when
        the graph is unweighted or the vertex's edges were mutated)."""
        return self._worker.effective_neighbor_weights(self._vertex)

    # ------------------------------------------------------------------
    def send(self, dst: int, payload: Any) -> None:
        """Send ``payload`` to vertex ``dst``; delivered next superstep."""
        self._worker.emit(self._vertex, int(dst), payload)

    def send_to_neighbors(self, payload: Any) -> None:
        """Send ``payload`` along every (current) out-edge."""
        emit = self._worker.emit
        v = self._vertex
        for u in self._worker.effective_neighbors(v):
            emit(v, int(u), payload)

    def vote_to_halt(self) -> None:
        """Deactivate this vertex until a message re-awakens it."""
        self._halted_flag = True

    # ------------------------------------------------------------------
    # Topology mutation (Pregel edge mutations, self-scope): requested
    # changes to THIS vertex's out-edges become visible next superstep.
    # ------------------------------------------------------------------
    def add_out_edge(self, dst: int) -> None:
        """Add an out-edge from this vertex to ``dst`` (next superstep)."""
        self._worker.request_mutation(self._vertex, "add", int(dst))

    def remove_out_edge(self, dst: int) -> None:
        """Remove this vertex's out-edge to ``dst`` (next superstep).

        Removing a non-existent edge is a silent no-op, per Pregel's default
        mutation-conflict handling.
        """
        self._worker.request_mutation(self._vertex, "remove", int(dst))

    # ------------------------------------------------------------------
    def aggregate(self, name: str, value: Any) -> None:
        """Contribute ``value`` to the named aggregator (visible next step)."""
        self._worker.aggregate(name, value)

    def aggregated(self, name: str) -> Any:
        """Read the named aggregator's value from the *previous* superstep."""
        return self._worker.aggregated(name)


class VertexProgram(ABC):
    """Base class for vertex-centric graph applications.

    Subclasses implement :meth:`compute` and optionally :meth:`init_state`,
    a :attr:`combiner`, and :meth:`aggregators`.

    **The vertex-program contract.**  One program instance is shared by
    every partition worker, and ``ThreadedBSPEngine`` runs workers
    concurrently, so ``compute()`` must behave as a pure function of
    ``(ctx, state, messages)`` plus read-only configuration set before the
    run:

    * Treat ``messages`` and their payloads as read-only — a combiner or
      another receiver may alias them (``repro check`` RPC001).
    * No unseeded randomness or wall-clock reads inside ``compute()``
      (RPC002); no writes to ``self``/class/module state (RPC003) — use the
      returned state and aggregators instead.
    * ``ctx`` is only valid during the call that received it; sends,
      votes, and edge mutations happen in ``compute()`` only (RPC004,
      RPC009), and every program needs a reachable ``vote_to_halt`` /
      ``halt_job`` / fixed-iteration exit (RPC005).
    * Resource hooks and ``aggregators()`` must be honest: accounting and
      the swath heuristics consume them (RPC006-RPC008, RPC010).

    ``docs/vertex-program-contract.md`` spells out each rule; the dynamic
    half (``repro run --sanitize``) verifies the same contracts at runtime.
    """

    #: Optional message combiner applied at the sending worker per
    #: destination vertex (reduces both message count and bytes).
    combiner: "Combiner | None" = None

    # ------------------------------------------------------------------
    def init_state(self, vertex_id: int, graph: "CSRGraph") -> Any:
        """Initial per-vertex state; default ``None``."""
        return None

    @abstractmethod
    def compute(self, ctx: VertexContext, state: Any, messages: Sequence[Any]) -> Any:
        """Process ``messages``, mutate/return state, emit via ``ctx``.

        The return value replaces the vertex state (return ``state`` itself
        for in-place mutation styles).
        """

    def aggregators(self) -> dict[str, "Aggregator"]:
        """Named global aggregators recomputed each superstep."""
        return {}

    def master_compute(self, master: MasterContext) -> None:
        """Global logic run by the job manager at each barrier (optional).

        Runs after aggregators merge; may read them, :meth:`MasterContext.
        publish` values for the next superstep, or :meth:`MasterContext.
        halt_job` (e.g. on convergence).  Default: no-op.
        """

    # --- resource accounting hooks --------------------------------------
    def payload_nbytes(self, payload: Any) -> int:
        """Wire bytes of one message payload (excludes framing header)."""
        return _estimate_nbytes(payload)

    def state_nbytes(self, state: Any) -> int:
        """Resident bytes of one vertex's state."""
        return _estimate_nbytes(state)

    # --- result extraction ----------------------------------------------
    def extract(self, vertex_id: int, state: Any) -> Any:
        """Map final state to the user-facing result value (default: state)."""
        return state

    @property
    def name(self) -> str:
        return type(self).__name__


def _estimate_nbytes(obj: Any, _depth: int = 0) -> int:
    """Cheap recursive size estimate for payload/state accounting.

    Deliberately simple: numbers are 8 bytes, containers add 8 per slot.
    Programs with heavy state (e.g. BC's per-root tables) override the hooks
    with closed-form counts instead.
    """
    if obj is None:
        return 0
    if isinstance(obj, (int, float, bool, np.integer, np.floating)):
        return 8
    if isinstance(obj, (bytes, bytearray, str)):
        return len(obj)
    if isinstance(obj, np.ndarray):
        return int(obj.nbytes)
    if _depth >= 3:  # cap recursion; deep payloads should override the hook
        return 32
    if isinstance(obj, dict):
        return 16 + sum(
            _estimate_nbytes(k, _depth + 1) + _estimate_nbytes(v, _depth + 1) + 8
            for k, v in obj.items()
        )
    if isinstance(obj, (list, tuple, set, frozenset)):
        return 16 + sum(_estimate_nbytes(x, _depth + 1) + 8 for x in obj)
    return 48  # unknown object: a flat default
