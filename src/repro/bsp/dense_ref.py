"""NumPy reference executor for lifted KernelPlans (``--engine dense-ref``).

Interprets the declarative :class:`~repro.check.vectorize.KernelPlan` IR
directly over the graph's CSR arrays: one gather (bincount / ufunc.at /
segmented mode) per superstep, masked map expressions for the state
update, scatter along live arcs for sends, and boolean halt masks in
place of per-vertex vote calls.  No per-vertex Python executes inside the
superstep loop — that is the entire point.

Role in the honesty contract of ``repro check --kernel-plan``: every plan
the static lifter emits is certified against :class:`BSPEngine` by
running both engines on the same job and diffing values, supersteps, and
aggregates (``repro.check.sanitizer.certify_determinism`` with
``engine="dense-ref"``).  The analyzer may only claim RPC015 for programs
this executor provably replays.

Semantics mirrored from the simulation engine:

* messages sent at superstep *s* are delivered at *s+1*;
* a computed vertex is re-activated unless it votes again;
* topology mutations (the k-core peel idiom) requested at *s* are applied
  at the beginning of *s+1*;
* aggregators merge fresh at every barrier; ``master_compute`` runs
  natively on the real program instance after each barrier (lift-time
  analysis already proved its halt decisions order-insensitive);
* the job halts when no messages are in flight and every vertex has
  voted, or when the master halts the job.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any

import numpy as np

from ..cloud.billing import BillingMeter
from .job import JobResult, JobSpec
from .superstep import JobTrace

if TYPE_CHECKING:  # import cycle: repro.check imports repro.bsp
    from ..check.vectorize import KernelPlan

__all__ = ["DenseRefEngine", "PlanRefusedError", "run_job_dense_ref"]


class PlanRefusedError(RuntimeError):
    """The program has no certified dense form for this job."""


_INT_MAX = np.iinfo(np.int64).max
_INT_MIN = np.iinfo(np.int64).min


def _reduce_identity(reduce: str, dtype: np.dtype) -> Any:
    if reduce == "min":
        return np.inf if dtype.kind == "f" else _INT_MAX
    if reduce == "max":
        return -np.inf if dtype.kind == "f" else _INT_MIN
    return 0


class _DenseMaster:
    """Duck-typed :class:`~repro.bsp.api.MasterContext` over dense state."""

    def __init__(self, superstep: int, num_workers: int, active: int,
                 aggs: dict[str, Any]):
        self._superstep = superstep
        self._num_workers = num_workers
        self._active = active
        self._aggs = aggs
        self._halt = False

    @property
    def superstep(self) -> int:
        return self._superstep

    @property
    def num_workers(self) -> int:
        return self._num_workers

    @property
    def active_vertices(self) -> int:
        return self._active

    def aggregated(self, name: str) -> Any:
        return self._aggs[name]

    def publish(self, name: str, value: Any) -> None:
        raise PlanRefusedError(
            "master publish() is not modeled by the dense executor "
            "(the lifter refuses publishing programs)"
        )

    def halt_job(self) -> None:
        self._halt = True


class _Eval:
    """One superstep's expression evaluator with per-expression memoizing.

    Vertex space evaluates over full n-vectors; arc space indexes the
    vertex leaves through the arc's source vertex and adds the
    ``edge_weight`` leaf.  The lifter shares tuple identity between the
    state update, scatter payloads, and masks, so the memo doubles as a
    common-subexpression cache.
    """

    def __init__(self, engine: "DenseRefEngine", superstep: int,
                 state: np.ndarray, msg: np.ndarray | None,
                 msg_count: np.ndarray, out_degree: np.ndarray,
                 aggs: dict[str, Any]):
        self.e = engine
        self.superstep = superstep
        self.state = state
        self.msg = msg
        self.msg_count = msg_count
        self.out_degree = out_degree
        self.aggs = aggs
        self._memo: dict[tuple[int, int], Any] = {}

    def vertex(self, expr) -> Any:
        return self._eval(expr, None, None)

    def scalar(self, expr) -> Any:
        return self._eval(expr, None, None)

    def arc(self, expr, arcs: np.ndarray) -> Any:
        return self._eval(expr, arcs, self.e.src[arcs])

    def arc_hoisted(self, expr, arcs: np.ndarray) -> Any:
        """Arc-space evaluation that computes edge-weight-free subtrees in
        vertex space — where the memo already shares them with the state
        update and masks — and indexes the result per-arc.

        Elementwise ufuncs commute with indexing (``f(x)[rows] ==
        f(x[rows])`` bitwise), so this is exactly :meth:`arc` with the
        evaluation order rearranged to reuse vertex-space work; the
        optimizer (repro.check.planopt) only marks ``hoist`` on payloads
        where that sharing exists.
        """
        key = (id(expr), id(arcs))
        hit = self._memo.get(key)
        if hit is not None:
            return hit
        out = self._eval_hoist(expr, arcs, self.e.src[arcs])
        self._memo[key] = out
        return out

    def _eval_hoist(self, expr, arcs, rows) -> Any:
        if not self.e._touches_weight(expr):
            v = self._eval(expr, None, None)
            if isinstance(v, np.ndarray) and v.ndim == 1 \
                    and v.shape[0] == self.e.n:
                return v[rows]
            return v
        head = expr[0]
        if head == "edge_weight":
            return self.e.weights[arcs]
        a = self._eval_hoist(expr[1], arcs, rows)
        if head == "not":
            return np.logical_not(a)
        if head == "neg":
            return np.negative(a)
        if head == "abs":
            return np.abs(a)
        if head == "cast_int":
            return np.asarray(a).astype(np.int64) if isinstance(
                a, np.ndarray) else int(a)
        if head == "cast_float":
            return np.asarray(a).astype(np.float64) if isinstance(
                a, np.ndarray) else float(a)
        if head == "cast_bool":
            return np.asarray(a).astype(bool) if isinstance(
                a, np.ndarray) else bool(a)
        b = self._eval_hoist(expr[2], arcs, rows)
        if head == "where":
            c = self._eval_hoist(expr[3], arcs, rows)
            return np.where(a, b, c)
        return _BINARY[head](a, b)

    def _eval(self, expr, arcs, rows) -> Any:
        key = (id(expr), -1 if arcs is None else id(arcs))
        hit = self._memo.get(key)
        if hit is not None:
            return hit
        out = self._eval_inner(expr, arcs, rows)
        self._memo[key] = out
        return out

    def _vec(self, base, rows):
        return base if rows is None else base[rows]

    def _eval_inner(self, expr, arcs, rows) -> Any:
        head = expr[0]
        if head == "const":
            return expr[1]
        if head == "param":
            return self.e.params[expr[1]]
        if head == "superstep":
            return self.superstep
        if head == "nv":
            return self.e.n
        if head == "agg":
            return self.aggs[expr[1]]
        if head == "state":
            return self._vec(self.state, rows)
        if head == "vertex":
            if rows is not None:
                return rows
            return self.e.vertex_ids
        if head == "out_degree":
            return self._vec(self.out_degree, rows)
        if head == "msg":
            if self.msg is None:
                raise PlanRefusedError("plan reads messages it never gathers")
            return self._vec(self.msg, rows)
        if head == "msg_count":
            return self._vec(self.msg_count, rows)
        if head == "edge_weight":
            if arcs is None:
                raise PlanRefusedError("edge_weight outside a scatter payload")
            return self.e.weights[arcs]
        a = self._eval(expr[1], arcs, rows)
        if head == "not":
            return np.logical_not(a)
        if head == "neg":
            return np.negative(a)
        if head == "abs":
            return np.abs(a)
        if head == "cast_int":
            return np.asarray(a).astype(np.int64) if isinstance(
                a, np.ndarray) else int(a)
        if head == "cast_float":
            return np.asarray(a).astype(np.float64) if isinstance(
                a, np.ndarray) else float(a)
        if head == "cast_bool":
            return np.asarray(a).astype(bool) if isinstance(
                a, np.ndarray) else bool(a)
        b = self._eval(expr[2], arcs, rows)
        if head == "where":
            c = self._eval(expr[3], arcs, rows)
            return np.where(a, b, c)
        return _BINARY[head](a, b)


_BINARY = {
    "add": np.add,
    "sub": np.subtract,
    "mul": np.multiply,
    "div": np.true_divide,
    "floordiv": np.floor_divide,
    "mod": np.mod,
    "pow": np.power,
    "min2": np.minimum,
    "max2": np.maximum,
    "lt": np.less,
    "le": np.less_equal,
    "gt": np.greater,
    "ge": np.greater_equal,
    "eq": np.equal,
    "ne": np.not_equal,
    "and": np.logical_and,
    "or": np.logical_or,
}


class DenseRefEngine:
    """Run a :class:`JobSpec` by interpreting the program's KernelPlan.

    ``plan`` defaults to lifting the job's program from source (via
    :func:`repro.check.vectorize.lift_of`); a refusal raises
    :class:`PlanRefusedError` with the blocking rule and reason.
    Auto-lifted plans run through the static optimizer
    (:func:`repro.check.planopt.optimize_plan`, certified bit-identical
    by the test suite) unless ``optimize=False``; an explicitly passed
    ``plan`` is always executed exactly as given.
    """

    def __init__(self, job: JobSpec, plan: "KernelPlan | None" = None,
                 optimize: bool = True):
        self.job = job
        program = job.program
        unwrapped = 0
        while hasattr(program, "inner") and unwrapped < 8:
            program = program.inner
            unwrapped += 1
        self.program = program
        if plan is None:
            from ..check.vectorize import lift_of  # lazy: avoids cycle

            verdict = lift_of(program)
            if verdict is None:
                raise PlanRefusedError(
                    f"cannot locate source for {type(program).__name__}; "
                    "no kernel plan to execute"
                )
            if verdict.plan is None:
                raise PlanRefusedError(
                    f"{verdict.rule_id} at {verdict.file}:"
                    f"{verdict.refusal_line}: {verdict.reason}"
                )
            plan = verdict.plan
            if optimize:
                from ..check.planopt import optimize_plan

                plan = optimize_plan(plan).plan
        self.plan = plan
        self._weight_cache: dict[int, bool] = {}
        self.params: dict[str, Any] = {}
        for name in plan.requires_none:
            if getattr(program, name, None) is not None:
                raise PlanRefusedError(
                    f"plan was lifted for {name}=None but the program "
                    f"binds {name}={getattr(program, name)!r}"
                )
        for name in plan.params:
            if not hasattr(program, name):
                raise PlanRefusedError(f"program lacks plan parameter {name!r}")
            self.params[name] = getattr(program, name)

        g = job.graph
        self.n = int(g.num_vertices)
        self.indptr = np.asarray(g.indptr, dtype=np.int64)
        self.dst = np.asarray(g.indices, dtype=np.int64)
        self.m = int(self.dst.shape[0])
        degrees = np.diff(self.indptr)
        self.src = np.repeat(
            np.arange(self.n, dtype=np.int64), degrees
        )
        self.static_degree = degrees.astype(np.int64)
        if g.weights is not None:
            self.weights = np.asarray(g.weights, dtype=np.float64)
        else:
            self.weights = np.ones(self.m, dtype=np.float64)
        self.vertex_ids = np.arange(self.n, dtype=np.int64)

        self._needs_prune = any(
            op.kind == "prune_received"
            for phase in plan.phases
            for op in phase.ops
        )
        if self._needs_prune and len(job.initial_messages) > 0:
            raise PlanRefusedError(
                "peel plans cannot start from injected messages (no arc "
                "identity to prune)"
            )

    def _touches_weight(self, expr) -> bool:
        """Does ``expr`` read the ``edge_weight`` leaf?  id-cached — plan
        expression tuples are stable for the engine's lifetime."""
        key = id(expr)
        hit = self._weight_cache.get(key)
        if hit is None:
            hit = expr[0] == "edge_weight" or any(
                self._touches_weight(c)
                for c in expr[1:]
                if isinstance(c, tuple)
            )
            self._weight_cache[key] = hit
        return hit

    # -- graph helpers -------------------------------------------------
    def _reverse_arcs(self) -> np.ndarray:
        """arc -> index of the reciprocal arc (dst->src), -1 when absent.

        Stable sort keeps the first occurrence for multi-edges, matching
        the worker overlay's ``list.remove`` first-occurrence semantics.
        """
        key = self.src * self.n + self.dst
        order = np.argsort(key, kind="stable")
        skey = key[order]
        want = self.dst * self.n + self.src
        pos = np.searchsorted(skey, want)
        pos_c = np.minimum(pos, self.m - 1) if self.m else pos
        found = (pos < self.m) & (skey[pos_c] == want) if self.m else (
            np.zeros(0, dtype=bool)
        )
        return np.where(found, order[pos_c], -1)

    # -- gathers -------------------------------------------------------
    def _gather(self, reduce: str, pend_dst: np.ndarray,
                pend_val: np.ndarray, msg_count: np.ndarray,
                state: np.ndarray, default: np.ndarray | Any,
                include_self: bool, mdt: np.dtype) -> np.ndarray:
        n = self.n
        if reduce == "count":
            return msg_count
        if reduce == "sum":
            reduced = np.bincount(
                pend_dst, weights=pend_val.astype(np.float64), minlength=n
            )
            if mdt.kind != "f":
                reduced = reduced.astype(mdt)
        elif reduce in ("min", "max"):
            reduced = np.full(n, _reduce_identity(reduce, mdt), dtype=mdt)
            ufunc = np.minimum if reduce == "min" else np.maximum
            ufunc.at(reduced, pend_dst, pend_val.astype(mdt, copy=False))
        elif reduce == "mode":
            reduced = self._gather_mode(
                pend_dst, pend_val, msg_count, state, include_self, mdt
            )
        else:
            raise PlanRefusedError(f"unknown reduce monoid {reduce!r}")
        has = msg_count > 0
        return np.where(has, reduced, default).astype(mdt, copy=False)

    def _gather_mode(self, pend_dst, pend_val, msg_count, state,
                     include_self, mdt) -> np.ndarray:
        # (max multiplicity, then min label) — exactly the Counter idiom's
        # `min(l for l, c in counts.items() if c == max(counts.values()))`.
        n = self.n
        if include_self:
            recv = np.flatnonzero(msg_count > 0)
            pend_dst = np.concatenate([pend_dst, recv])
            pend_val = np.concatenate(
                [pend_val, state[recv].astype(pend_val.dtype, copy=False)]
            )
        order = np.lexsort((pend_val, pend_dst))
        d = pend_dst[order]
        v = pend_val[order]
        run_start = np.ones(d.size, dtype=bool)
        run_start[1:] = (d[1:] != d[:-1]) | (v[1:] != v[:-1])
        run_ids = np.cumsum(run_start) - 1
        counts = np.bincount(run_ids)
        run_dst = d[run_start]
        run_val = v[run_start]
        best = np.zeros(n, dtype=np.int64)
        np.maximum.at(best, run_dst, counts)
        winners = counts == best[run_dst]
        out = np.full(n, _reduce_identity("min", mdt), dtype=mdt)
        np.minimum.at(out, run_dst[winners], run_val[winners])
        return out

    # -- main loop -----------------------------------------------------
    def run(self) -> JobResult:
        job, plan = self.job, self.plan
        n = self.n
        sdt = np.dtype(plan.state_dtype)
        mdt = np.dtype(plan.message_dtype)

        aggregators = dict(self.program.aggregators())
        agg_prev = {k: a.identity() for k, a in aggregators.items()}

        edge_alive = (
            np.ones(self.m, dtype=bool) if plan.uses_mutation else None
        )
        rev_arc = self._reverse_arcs() if self._needs_prune else None

        halted = np.zeros(n, dtype=bool)
        active_ids = job.initial_active_ids()
        if active_ids is not None:
            halted[:] = True
            if active_ids.size:
                halted[active_ids] = False

        boot = _Eval(self, 0, np.zeros(n, dtype=sdt), None,
                     np.zeros(n, dtype=np.int64), self.static_degree,
                     agg_prev)
        state = np.broadcast_to(
            np.asarray(boot.vertex(plan.state_init)), (n,)
        ).astype(sdt).copy()

        pend_dst = np.empty(0, dtype=np.int64)
        pend_val = np.empty(0, dtype=mdt)
        pend_arc = np.empty(0, dtype=np.int64)
        if job.initial_messages:
            pend_dst = np.asarray(
                [int(v) for v, _ in job.initial_messages], dtype=np.int64
            )
            pend_val = np.asarray(
                [p for _, p in job.initial_messages]
            ).astype(mdt)

        queued_off: list[np.ndarray] = []
        supersteps = 0
        halted_flag = False

        with np.errstate(all="ignore"):
            while supersteps < job.max_supersteps:
                if pend_dst.size == 0 and bool(halted.all()):
                    halted_flag = True
                    break
                s = supersteps

                if edge_alive is not None and queued_off:
                    edge_alive[np.concatenate(queued_off)] = False
                    queued_off = []
                if edge_alive is not None:
                    out_degree = np.bincount(
                        self.src[edge_alive], minlength=n
                    ).astype(np.int64)
                else:
                    out_degree = self.static_degree

                msg_count = np.bincount(pend_dst, minlength=n).astype(
                    np.int64
                )
                computed = (msg_count > 0) | (~halted)
                halted[computed] = False

                ev = _Eval(self, s, state, None, msg_count, out_degree,
                           agg_prev)
                if plan.reduce is not None:
                    default = (
                        ev.vertex(plan.gather_default)
                        if plan.gather_default is not None
                        else _reduce_identity(plan.reduce, mdt)
                    )
                    ev.msg = self._gather(
                        plan.reduce, pend_dst, pend_val, msg_count, state,
                        default, plan.include_self, mdt
                    )

                next_dst: list[np.ndarray] = []
                next_val: list[np.ndarray] = []
                next_arc: list[np.ndarray] = []
                contribs: dict[str, Any] = {}

                for phase in plan.phases:
                    if phase.guard is not None and not bool(
                        ev.scalar(phase.guard)
                    ):
                        continue
                    for op in phase.ops:
                        if op.where is None:
                            mask = computed
                        else:
                            w = np.broadcast_to(
                                np.asarray(ev.vertex(op.where)), (n,)
                            )
                            mask = computed & w.astype(bool)
                        if op.kind == "vote":
                            halted[mask] = True
                        elif op.kind == "scatter":
                            arc_sel = mask[self.src]
                            if edge_alive is not None:
                                arc_sel &= edge_alive
                            arcs = np.flatnonzero(arc_sel)
                            if arcs.size == 0:
                                continue
                            raw = (
                                ev.arc_hoisted(op.payload, arcs)
                                if getattr(op, "hoist", False)
                                else ev.arc(op.payload, arcs)
                            )
                            payload = np.broadcast_to(
                                np.asarray(raw, dtype=mdt),
                                arcs.shape,
                            )
                            next_dst.append(self.dst[arcs])
                            next_val.append(payload)
                            next_arc.append(arcs)
                        elif op.kind == "aggregate":
                            vals = np.broadcast_to(
                                np.asarray(ev.vertex(op.value)), (n,)
                            )
                            part = vals[mask].sum()
                            part = (
                                int(part) if vals.dtype.kind in "biu"
                                else float(part)
                            )
                            name = op.name or ""
                            if name in contribs:
                                contribs[name] = aggregators[name].merge(
                                    contribs[name], part
                                )
                            else:
                                contribs[name] = part
                        elif op.kind == "prune_received":
                            if pend_arc.size:
                                hit = mask[self.dst[pend_arc]]
                                rev = rev_arc[pend_arc[hit]]
                                rev = rev[rev >= 0]
                                if rev.size:
                                    queued_off.append(rev)
                        elif op.kind == "drop_edges":
                            arc_sel = mask[self.src]
                            if edge_alive is not None:
                                arc_sel &= edge_alive
                            arcs = np.flatnonzero(arc_sel)
                            if arcs.size:
                                queued_off.append(arcs)
                        else:
                            raise PlanRefusedError(
                                f"unknown kernel op {op.kind!r}"
                            )

                if plan.state_update is not None:
                    new = np.broadcast_to(
                        np.asarray(ev.vertex(plan.state_update)), (n,)
                    ).astype(sdt, copy=False)
                    state = np.where(computed, new, state).astype(
                        sdt, copy=False
                    )

                agg_next = {}
                for name, agg in aggregators.items():
                    ident = agg.identity()
                    if name in contribs:
                        agg_next[name] = agg.merge(ident, contribs[name])
                    else:
                        agg_next[name] = ident

                supersteps += 1
                master = _DenseMaster(
                    s, job.num_workers, int((~halted).sum()), agg_next
                )
                self.program.master_compute(master)
                agg_prev = agg_next
                if master._halt:
                    halted_flag = True
                    break

                if next_dst:
                    pend_dst = np.concatenate(next_dst)
                    pend_val = np.concatenate(next_val)
                    pend_arc = (
                        np.concatenate(next_arc)
                        if self._needs_prune
                        else pend_arc
                    )
                else:
                    pend_dst = np.empty(0, dtype=np.int64)
                    pend_val = np.empty(0, dtype=mdt)
                    pend_arc = np.empty(0, dtype=np.int64)

        extract = self.program.extract
        values = {
            v: extract(v, sv) for v, sv in enumerate(state.tolist())
        }
        return JobResult(
            values=values,
            trace=JobTrace(),
            meter=BillingMeter(),
            supersteps=supersteps,
            halted=halted_flag,
            aggregates=dict(agg_prev),
            kernel_plan=plan,
        )


def run_job_dense_ref(job: JobSpec, plan: "KernelPlan | None" = None,
                      optimize: bool = True) -> JobResult:
    """Lift the job's program and interpret its KernelPlan with NumPy."""
    return DenseRefEngine(job, plan=plan, optimize=optimize).run()
