"""The BSP engine: job manager + superstep loop over partition workers.

Plays Pregel.NET's job-manager role (§III): it builds the worker fleet from
the job's partition, drives supersteps through the control-plane queues,
moves bulk message buffers between workers at superstep boundaries, merges
aggregators at the barrier, detects the halting condition (all vertices
voted to halt and no messages in flight), and accounts simulated time and
cost for every superstep via the cloud models.

Observers (e.g. the swath controller, elastic policies' probes) are invoked
at every superstep boundary with the fresh :class:`SuperstepStats`; they may
inject control-plane activation messages and keep the job alive via
``has_pending_work()`` even when all vertices are momentarily halted.
"""

from __future__ import annotations

from time import perf_counter
from typing import Any

import numpy as np

from ..cloud.billing import BillingMeter
from ..cloud.costmeter import attribute_cost
from ..cloud.memorymodel import MemoryModel
from ..cloud.network import NetworkModel, TrafficSummary
from ..cloud.services import QueueService
from .api import MasterContext
from .job import JobResult, JobSpec, RecoveryEvent
from .superstep import JobTrace, SuperstepStats
from .worker import PartitionWorker

__all__ = ["BSPEngine", "SuperstepObserver", "run_job"]


class SuperstepObserver:
    """Hook interface invoked at every superstep boundary."""

    def on_job_start(self, engine: "BSPEngine") -> None:
        """Called once before superstep 0."""

    def on_superstep_end(self, engine: "BSPEngine", stats: SuperstepStats) -> None:
        """Called after each superstep's stats are final; may inject
        messages via :meth:`BSPEngine.inject_messages`."""

    def has_pending_work(self) -> bool:
        """True while the observer still plans to inject work."""
        return False

    def on_job_end(self, engine: "BSPEngine", result: "JobResult") -> None:
        """Called once after the halting condition, with the final result."""


class BSPEngine:
    """Executes one :class:`~repro.bsp.job.JobSpec` to completion."""

    def __init__(self, job: JobSpec) -> None:
        self.job = job
        self.graph = job.graph
        self.model = job.perf_model
        self.vm_spec = job.vm_spec
        self.partition = job.resolve_partition()
        self.num_workers = job.num_workers
        self.network = NetworkModel(self.vm_spec, self.model)
        self.memory = MemoryModel(self.vm_spec, self.model)
        self.queues = QueueService()  # control plane: step + barrier queues
        self.meter = BillingMeter()
        self.trace = JobTrace()
        self.superstep = 0
        self.sim_time = 0.0
        self.recoveries: list[RecoveryEvent] = []
        self._failure_schedule = dict(job.failure_schedule)
        self._agg_values: dict[str, Any] = {}
        self._aggregators = job.program.aggregators()
        self._master_halt = False
        self._injected_count = 0
        # Multi-tenant noise: per-(worker, superstep) busy-time wobble,
        # deterministic for a given jitter_seed (off by default).
        self._jitter_rng = (
            np.random.default_rng(self.model.jitter_seed)
            if self.model.jitter > 0
            else None
        )
        self._observers: list[SuperstepObserver] = list(job.observers)
        # Observability sinks (all optional; every instrumentation site is
        # guarded by an `is None` check so unobserved runs pay ~nothing).
        self.tracer = job.tracer
        self.metrics = job.metrics
        self.timeline = job.timeline
        self.flight = job.flight
        if self.tracer is not None and self.flight is not None:
            # Spans echo into the flight ring as span-open/span-close
            # events, so the crash tail shows which phase was in flight.
            self.tracer.flight = self.flight
        self._em = (
            _EngineInstruments(self.metrics) if self.metrics is not None else None
        )

        active_ids = job.initial_active_ids()
        assignment = self.partition.assignment
        self.workers: list[PartitionWorker] = []
        for w in range(self.num_workers):
            vids = self.partition.vertices_of(w)
            worker = PartitionWorker(
                worker_id=w,
                graph=self.graph,
                vertex_ids=vids,
                program=job.program,
                model=self.model,
                assignment=assignment,
                initially_active=active_ids is None,
                metrics=self.metrics,
            )
            self.workers.append(worker)
        if active_ids is not None and len(active_ids):
            for v in active_ids:
                self.workers[int(assignment[v])].halted[int(v)] = False

        for dst, payload in job.initial_messages:
            self.inject_message(int(dst), payload)

        self._checkpoint: dict | None = None

    # ------------------------------------------------------------------
    # Control-plane message injection (job-manager originated)
    # ------------------------------------------------------------------
    def inject_message(self, dst: int, payload: Any) -> None:
        """Queue an activation message for ``dst`` (delivered next superstep)."""
        if not 0 <= dst < self.graph.num_vertices:
            raise ValueError(f"inject to unknown vertex {dst}")
        w = int(self.partition.assignment[dst])
        self.workers[w].inject(dst, payload)
        self._injected_count += 1

    def inject_messages(self, pairs) -> None:
        for dst, payload in pairs:
            self.inject_message(int(dst), payload)

    # ------------------------------------------------------------------
    @property
    def active_vertices(self) -> int:
        return sum(w.active_count for w in self.workers)

    @property
    def buffered_messages(self) -> bool:
        return any(w.has_buffered_messages for w in self.workers)

    def aggregated(self, name: str) -> Any:
        """Current (last barrier's) value of a named aggregator."""
        if name not in self._aggregators:
            raise KeyError(f"unknown aggregator {name!r}")
        return self._agg_values.get(name, self._aggregators[name].identity())

    def worker_liveness(self) -> list[dict]:
        """Per-worker liveness for ``/healthz`` (safe from other threads).

        In-process workers cannot die independently of the engine, so the
        base answer is "all alive"; :class:`~repro.dist.engine.ProcessBSPEngine`
        overrides this with real process liveness and heartbeat ages.
        """
        return [
            {"worker": w, "alive": True} for w in range(self.num_workers)
        ]

    # ------------------------------------------------------------------
    def run(self) -> JobResult:
        """Drive supersteps until the halting condition or the step cap.

        Any abnormal end — uncaught compute exception, worker failure past
        recovery, ``KeyboardInterrupt`` — is captured (flight-recorder
        ``abort`` event + postmortem bundle when ``job.postmortem`` is
        attached) before the exception propagates.
        """
        try:
            return self._run_loop()
        except (Exception, KeyboardInterrupt) as exc:
            self._capture_abort(exc)
            raise

    def _capture_abort(self, exc: BaseException) -> None:
        """Record the failure and dump a postmortem bundle (best-effort)."""
        if self.tracer is not None:
            try:  # close the job span (and any deeper strays) as aborted
                self.tracer.unwind(sim=self.sim_time)
            except Exception:
                pass
        if self.flight is not None:
            self.flight.record(
                "abort", superstep=self.superstep, sim=self.sim_time,
                error=type(exc).__name__, message=str(exc)[:200],
            )
        pm = self.job.postmortem
        if pm is not None:
            try:
                pm.dump(self, exc)
            except Exception:  # a broken dump must never mask the failure
                pass

    def _run_loop(self) -> JobResult:
        job = self.job
        step_queue = self.queues.queue("step")
        barrier_queue = self.queues.queue("barrier")

        for obs in self._observers:
            obs.on_job_start(self)

        if job.checkpoint_interval > 0:
            # Initial checkpoint so a failure before the first periodic one
            # can still roll back (Pregel checkpoints before superstep 0).
            self._checkpoint = self._capture_checkpoint(0)

        tracer = self.tracer
        job_span = (
            tracer.start("job", sim=self.sim_time, category="engine",
                         workers=self.num_workers)
            if tracer is not None
            else None
        )
        if self.flight is not None:
            self.flight.record(
                "job-start", sim=self.sim_time, workers=self.num_workers,
                program=type(job.program).__name__,
            )
        halted = False
        while self.superstep < job.max_supersteps:
            if not self.buffered_messages and self.active_vertices == 0:
                if not any(o.has_pending_work() for o in self._observers):
                    halted = True
                    break
                # Observers still hold work but injected nothing runnable:
                # give them a boundary callback on an empty step.
            # The superstep span closes after checkpoints, recovery, observers
            # and the post-superstep hook so its simulated duration covers
            # every cost charged to this superstep (== stats.elapsed).
            span = (
                tracer.start("superstep", sim=self.sim_time,
                             superstep=self.superstep)
                if tracer is not None
                else None
            )
            if self.flight is not None:
                self.flight.record(
                    "superstep-open", superstep=self.superstep,
                    sim=self.sim_time, active=self.active_vertices,
                )
            stats = None
            try:
                step_queue.put(("superstep", self.superstep))
                stats = self._run_one_superstep()
                step_queue.try_get()
                barrier_queue.put(("checkin", self.superstep, stats.active_end))
                barrier_queue.try_get()

                self._maybe_checkpoint(stats)
                failed = self._maybe_fail(stats)
                for obs in self._observers:
                    obs.on_superstep_end(self, stats)
                if self._master_halt and not failed:
                    if self.timeline is not None:
                        self.timeline.record_superstep(stats)
                    halted = True
                    self.superstep += 1
                    break
                if not failed:
                    self._post_superstep(stats)
                    # Record only committed supersteps, after every cost
                    # charged to this step (checkpoint, elastic resize) has
                    # landed in stats.elapsed; failed steps roll back instead.
                    if self.timeline is not None:
                        self.timeline.record_superstep(stats)
                    self.superstep += 1
                elif self.timeline is not None and self.superstep > stats.index:
                    # The failure struck after this boundary's checkpoint
                    # already captured the step: recovery resumes *past* it,
                    # so it is committed — record it, with the recovery cost
                    # it absorbed.
                    self.timeline.record_superstep(stats)
            finally:
                if span is not None:
                    if stats is not None:
                        span.attrs["active_end"] = stats.active_end
                    # A compute/flush phase that raised left its span open;
                    # repair the stack so this close cannot mask the error.
                    tracer.unwind(span, sim=self.sim_time)
                    tracer.end(span, sim=self.sim_time)
        else:
            halted = False
        if job_span is not None:
            tracer.end(job_span, sim=self.sim_time, supersteps=len(self.trace))
        if self.flight is not None:
            self.flight.record(
                "job-end", sim=self.sim_time, supersteps=len(self.trace),
                halted=halted,
            )

        values = self._extract_values()
        result = JobResult(
            values=values,
            trace=self.trace,
            meter=self.meter,
            supersteps=len(self.trace),
            halted=halted,
            aggregates=dict(self._agg_values),
            recoveries=list(self.recoveries),
            cost=attribute_cost(
                self.trace, worker_vm=self.vm_spec,
                manager_vm=self.job.manager_vm,
            ),
        )
        for obs in self._observers:
            on_job_end = getattr(obs, "on_job_end", None)
            if on_job_end is not None:
                on_job_end(self, result)
        return result

    # ------------------------------------------------------------------
    def _run_one_superstep(self) -> SuperstepStats:
        tracer = self.tracer
        host_t0 = perf_counter() if self._em is not None else 0.0
        stats = SuperstepStats(
            index=self.superstep,
            num_workers=self.num_workers,
            active_begin=self.active_vertices,
            injected=self._injected_count,
        )
        self._injected_count = 0

        # Compute phase: every worker drains its input buffer.
        compute_span = (
            tracer.start("compute", sim=self.sim_time)
            if tracer is not None else None
        )
        for w in self.workers:
            w.begin_superstep(self.superstep, self._agg_values)
        self._compute_phase()
        if compute_span is not None:
            tracer.end(compute_span)

        # Flush phase: move bulk remote buffers between workers.
        flush_span = (
            tracer.start("flush", sim=self.sim_time)
            if tracer is not None else None
        )
        recv_msgs = np.zeros(self.num_workers, dtype=np.int64)
        recv_bytes = np.zeros(self.num_workers)
        peers_in = [set() for _ in range(self.num_workers)]
        for w in self.workers:
            w.stats.peers_out = len(w.out_remote)
            for dst_worker, per_vertex in sorted(w.out_remote.items()):
                target = self.workers[dst_worker]
                for dst_v, payloads in per_vertex.items():
                    wire = target.deliver_remote(dst_v, payloads)
                    recv_bytes[dst_worker] += wire
                    recv_msgs[dst_worker] += len(payloads)
                peers_in[dst_worker].add(w.worker_id)
            w.stats.bytes_out = w.out_remote_wire_bytes
        if flush_span is not None:
            tracer.end(flush_span)

        self._merge_aggregators([w._agg_partials for w in self.workers])
        self._master_phase()
        self._account_superstep(
            stats,
            views=self.workers,
            recv_msgs=recv_msgs,
            recv_bytes=recv_bytes,
            peers_in=[len(p) for p in peers_in],
            compute_span=compute_span,
            flush_span=flush_span,
            host_t0=host_t0,
        )
        return stats

    def _merge_aggregators(self, partials_by_worker: list[dict]) -> None:
        """Barrier aggregator merge: fold worker partials in worker-id order.

        The worker-id fold order is part of the determinism contract — both
        execution backends must reassociate float sums identically.
        """
        tracer = self.tracer
        agg_span = (
            tracer.start("aggregate-merge", sim=self.sim_time)
            if tracer is not None else None
        )
        new_aggs: dict[str, Any] = {}
        for name, agg in self._aggregators.items():
            acc = agg.identity()
            for partials in partials_by_worker:
                if name in partials:
                    acc = agg.merge(acc, partials[name])
            new_aggs[name] = acc
        self._agg_values = new_aggs
        if agg_span is not None:
            tracer.end(agg_span)

    def _master_phase(self) -> None:
        """GPS-style global computation at the barrier."""
        tracer = self.tracer
        master_span = (
            tracer.start("master-compute", sim=self.sim_time)
            if tracer is not None else None
        )
        master_ctx = MasterContext(self)
        self.job.program.master_compute(master_ctx)
        if master_ctx._halt:
            self._master_halt = True
        if master_span is not None:
            tracer.end(master_span)

    def _account_superstep(
        self,
        stats: SuperstepStats,
        views,
        recv_msgs,
        recv_bytes,
        peers_in,
        compute_span,
        flush_span,
        host_t0: float,
    ) -> None:
        """Convert true counts into simulated seconds, then bill and record.

        ``views`` are per-worker resource views in worker-id order: the live
        :class:`~repro.bsp.worker.PartitionWorker` objects for the in-process
        engines, or the :mod:`repro.dist` engine's marshalled reports.  Each
        view exposes ``worker_id``, ``stats`` (a
        :class:`~repro.bsp.superstep.WorkerStepStats` with the compute-phase
        counts plus ``bytes_out``/``peers_out`` filled), and the resource
        hooks ``buffered_message_bytes()``, ``buffered_message_count()``,
        ``graph_bytes``, ``total_state_bytes``, ``memory_footprint()``.
        """
        model = self.model
        tracer = self.tracer
        eff = model.effective_cores(self.vm_spec.cores)
        restart_total = 0.0
        for w in views:
            ws = w.stats
            ws.bytes_in = float(recv_bytes[w.worker_id])
            ws.peers_in = int(peers_in[w.worker_id])
            ws.compute_time = (
                ws.compute_calls * model.t_compute_vertex
                + ws.msgs_in * model.t_msg_in
                + (ws.msgs_out_local + ws.msgs_out_remote) * model.t_msg_out
            ) / eff
            ws.serialize_time = (
                (ws.msgs_out_remote + int(recv_msgs[w.worker_id]))
                * model.t_serialize
                / eff
            )
            ws.network_time = self.network.transfer_time(
                TrafficSummary(
                    bytes_out=ws.bytes_out,
                    bytes_in=ws.bytes_in,
                    peers_out=ws.peers_out,
                    peers_in=ws.peers_in,
                ),
                superstep=self.superstep,
            )
            if model.disk_buffering or model.mapreduce_iteration:
                # Giraph/Hama-style disk buffering: every buffered message is
                # written now and read back next superstep (charged together
                # as sequential I/O); MR-style iteration additionally reloads
                # the partition + state from the DFS every superstep.
                traffic = 2.0 * w.buffered_message_bytes()
                if model.mapreduce_iteration:
                    traffic += w.graph_bytes + 2.0 * w.total_state_bytes
                ws.disk_time = traffic / model.disk_bandwidth
            ws.queue_depth = int(w.buffered_message_count())
            ws.memory_bytes = w.memory_footprint()
            ws.mem_slowdown = self.memory.slowdown(ws.memory_bytes)
            if self._jitter_rng is not None:
                # Always draw, so the rng sequence (and every untargeted
                # worker's timing) is identical whether or not
                # jitter_workers narrows the blast radius.
                wobble = float(self._jitter_rng.uniform(-1.0, 1.0))
                targets = self.model.jitter_workers
                if targets is None or w.worker_id in targets:
                    ws.jitter_factor = 1.0 + self.model.jitter * wobble
            if self.memory.restart_triggered(ws.memory_bytes):
                ws.restarted = True
                restart_total += model.restart_time
            stats.workers.append(ws)

        stats.barrier_time = model.barrier_time(self.num_workers)
        stats.restart_time = restart_total
        slowest = max((ws.elapsed for ws in stats.workers), default=0.0)
        stats.elapsed = slowest + stats.barrier_time + restart_total
        stats.active_end = self.active_vertices
        if tracer is not None:
            # Attribute simulated seconds to the already-closed phase spans:
            # the cost model prices them in one lump after the fact.  The
            # superstep span (closed by run()) stays authoritative.
            compute_span.set_sim_duration(
                max((ws.compute_time for ws in stats.workers), default=0.0)
            )
            flush_span.set_sim_duration(
                max(
                    (ws.serialize_time + ws.network_time + ws.disk_time
                     for ws in stats.workers),
                    default=0.0,
                )
            )
            tracer.record(
                "barrier", sim=self.sim_time + slowest,
                sim_duration=stats.barrier_time, workers=self.num_workers,
            )
            end = self.sim_time + stats.elapsed
            tracer.counter(
                "messages-in-flight", sim=end,
                buffered=sum(ws.queue_depth for ws in stats.workers),
            )
            tracer.counter(
                "worker-memory-mb", sim=end,
                **{f"w{ws.worker}": ws.memory_bytes / 1e6
                   for ws in stats.workers},
            )
        if self.flight is not None:
            self.flight.record(
                "barrier-enter", superstep=stats.index,
                sim=self.sim_time + slowest, workers=self.num_workers,
            )
            self.flight.record(
                "message-batch", superstep=stats.index, sim=self.sim_time,
                msgs_local=sum(ws.msgs_out_local for ws in stats.workers),
                msgs_remote=sum(ws.msgs_out_remote for ws in stats.workers),
                bytes_out=sum(ws.bytes_out for ws in stats.workers),
                queued=sum(ws.queue_depth for ws in stats.workers),
            )
            self.flight.record(
                "memory-sample", superstep=stats.index, sim=self.sim_time,
                peak_bytes=stats.peak_memory,
                worker_mb={
                    str(ws.worker): round(ws.memory_bytes / 1e6, 3)
                    for ws in stats.workers
                },
            )
        self.sim_time += stats.elapsed
        stats.sim_time_end = self.sim_time
        if self.flight is not None:
            self.flight.record(
                "barrier-exit", superstep=stats.index, sim=self.sim_time,
                active=stats.active_end, elapsed=stats.elapsed,
            )
        self.trace.append(stats)
        if self._em is not None:
            self._em.observe_superstep(stats, perf_counter() - host_t0)

        # Pay-as-you-go: every allocated VM bills for the whole superstep.
        self.meter.charge(
            self.vm_spec,
            self.num_workers,
            stats.elapsed,
            label=f"superstep-{stats.index}",
        )
        self.meter.charge(
            self.job.manager_vm, 1, stats.elapsed, label=f"manager-{stats.index}"
        )

    def _compute_phase(self) -> None:
        """Run every worker's compute loop (sequential by default).

        :class:`~repro.bsp.parallel.ThreadedBSPEngine` overrides this with a
        thread pool — safe because workers only touch their own buffers
        during compute.
        """
        for w in self.workers:
            w.run_compute()

    def _post_superstep(self, stats: SuperstepStats) -> None:
        """Hook for subclasses, called after observers at each boundary.

        :class:`~repro.elastic.live.LiveElasticEngine` overrides this to
        resize the worker fleet between supersteps.
        """

    def _extract_values(self) -> dict[int, Any]:
        """Collect the user-facing result values from every worker."""
        program = self.job.program
        values: dict[int, Any] = {}
        for w in self.workers:
            for v, st in w.states.items():
                values[v] = program.extract(v, st)
        return values

    # ------------------------------------------------------------------
    # Checkpointing and failure recovery (Pregel-style coordinated rollback)
    # ------------------------------------------------------------------
    def _state_bytes_total(self) -> float:
        return sum(
            w.graph_bytes + w.total_state_bytes + w.in_next_payload_bytes
            for w in self.workers
        )

    def _capture_checkpoint(self, superstep: int) -> dict:
        """Snapshot every worker's state; ``superstep`` is the resume point."""
        return {
            "superstep": superstep,
            "agg_values": dict(self._agg_values),
            "workers": [w.snapshot() for w in self.workers],
        }

    def _restore_checkpoint(self) -> None:
        """Reload every worker from :attr:`_checkpoint` (the mechanics only;
        timing/metering live in :meth:`_recover`)."""
        for w, snap in zip(self.workers, self._checkpoint["workers"]):
            w.restore(snap)

    def _fail_worker(self, worker_id: int) -> None:
        """Make the scheduled failure happen.  The simulated engines model
        the failure implicitly (rollback is the only observable effect);
        the process engine overrides this to actually kill the worker."""

    def _maybe_checkpoint(self, stats: SuperstepStats) -> None:
        interval = self.job.checkpoint_interval
        if interval <= 0 or (self.superstep + 1) % interval != 0:
            return
        span = (
            self.tracer.start("checkpoint", sim=self.sim_time)
            if self.tracer is not None else None
        )
        self._checkpoint = self._capture_checkpoint(self.superstep + 1)
        # Writing states + buffered messages to blob storage takes time.
        write_time = self._state_bytes_total() / self.model.checkpoint_bandwidth
        self.sim_time += write_time
        stats.elapsed += write_time
        stats.sim_time_end = self.sim_time
        self.meter.charge(
            self.vm_spec, self.num_workers, write_time, label="checkpoint"
        )
        if span is not None:
            self.tracer.end(span, sim=self.sim_time)
        if self.flight is not None:
            self.flight.record(
                "checkpoint", superstep=self.superstep, sim=self.sim_time,
                resume_point=self.superstep + 1, write_seconds=write_time,
            )
        if self._em is not None:
            self._em.checkpoints.inc()
            self._em.checkpoint_sim.inc(write_time)

    def _maybe_fail(self, stats: SuperstepStats) -> bool:
        worker_id = self._failure_schedule.pop(self.superstep, None)
        if worker_id is None:
            return False
        if not 0 <= worker_id < self.num_workers:
            raise ValueError(f"failure_schedule names unknown worker {worker_id}")
        self._fail_worker(worker_id)
        self._recover(worker_id, stats)
        return True

    def _recover(self, worker_id: int, stats: SuperstepStats) -> None:
        """Coordinated rollback: every worker reloads the last checkpoint
        (or the initial state when none was taken yet)."""
        assert self._checkpoint is not None  # taken at job start
        span = (
            self.tracer.start("recovery", sim=self.sim_time,
                              failed_worker=worker_id)
            if self.tracer is not None else None
        )
        resume_from = self._checkpoint["superstep"]
        self._restore_checkpoint()
        self._agg_values = dict(self._checkpoint["agg_values"])
        self._master_halt = False  # a halt decided in the lost epoch is void
        restore_time = (
            self.model.restart_time
            + self._state_bytes_total() / self.model.checkpoint_bandwidth
        )
        self.sim_time += restore_time
        stats.elapsed += restore_time
        stats.sim_time_end = self.sim_time
        self.meter.charge(
            self.vm_spec, self.num_workers, restore_time, label="recovery"
        )
        self.recoveries.append(
            RecoveryEvent(
                failed_superstep=self.superstep,
                failed_worker=worker_id,
                resumed_from=resume_from,
                recovery_seconds=restore_time,
            )
        )
        if span is not None:
            self.tracer.end(span, sim=self.sim_time, resumed_from=resume_from)
        if self.flight is not None:
            self.flight.record(
                "recovery", superstep=self.superstep, sim=self.sim_time,
                failed_worker=worker_id, resumed_from=resume_from,
                restore_seconds=restore_time,
            )
        if self._em is not None:
            self._em.recoveries.inc()
            self._em.recovery_sim.inc(restore_time)
        if self.timeline is not None:
            # The lost epoch's rows vanish with the checkpoint; the replayed
            # supersteps re-record on commit.
            self.timeline.rollback(resume_from)
        self.superstep = resume_from


class _EngineInstruments:
    """Engine metrics, resolved once so the superstep loop stays cheap.

    Names and labels are documented in ``docs/observability.md``; the
    registry is duck-typed (:class:`repro.obs.MetricsRegistry`) so the
    engine keeps zero imports from the observability package.
    """

    def __init__(self, registry) -> None:
        self.supersteps = registry.counter(
            "bsp_supersteps_total",
            help="Supersteps executed (replayed ones after recovery included)",
        )
        self.msgs_local = registry.counter(
            "bsp_messages_total",
            help="Messages emitted, post-combine, by delivery plane",
            kind="local",
        )
        self.msgs_remote = registry.counter("bsp_messages_total", kind="remote")
        self.remote_bytes = registry.counter(
            "bsp_remote_bytes_total",
            help="Wire bytes moved between workers at flush",
        )
        self.injected = registry.counter(
            "bsp_injected_messages_total",
            help="Control-plane activation messages injected at boundaries",
        )
        self.compute_calls = registry.counter(
            "bsp_compute_calls_total", help="Vertex compute() invocations"
        )
        self.active = registry.gauge(
            "bsp_active_vertices", help="Active vertices after the last barrier"
        )
        self.workers = registry.gauge(
            "bsp_workers", help="Partition workers in the fleet"
        )
        self.sim_time = registry.gauge(
            "bsp_sim_time_seconds", help="Cumulative simulated job time"
        )
        self.peak_memory = registry.gauge(
            "bsp_superstep_peak_memory_bytes",
            help="Peak per-worker memory in the last superstep",
        )
        self.step_sim = registry.histogram(
            "bsp_superstep_sim_seconds",
            help="Simulated superstep durations",
        )
        self.step_host = registry.histogram(
            "bsp_superstep_host_seconds",
            help="Host wall-clock superstep durations",
        )
        self.barrier_sim = registry.counter(
            "bsp_barrier_sim_seconds_total",
            help="Simulated seconds spent in barriers",
        )
        self.restarts = registry.counter(
            "bsp_worker_restarts_total",
            help="Fabric-initiated VM restarts from memory overflow",
        )
        self.checkpoints = registry.counter(
            "bsp_checkpoints_total", help="Checkpoints written"
        )
        self.checkpoint_sim = registry.counter(
            "bsp_checkpoint_sim_seconds_total",
            help="Simulated seconds spent writing checkpoints",
        )
        self.recoveries = registry.counter(
            "bsp_recoveries_total", help="Coordinated rollbacks executed"
        )
        self.recovery_sim = registry.counter(
            "bsp_recovery_sim_seconds_total",
            help="Simulated seconds spent restoring checkpoints",
        )

    def observe_superstep(self, stats: SuperstepStats, host_seconds: float) -> None:
        self.supersteps.inc()
        self.msgs_local.inc(sum(w.msgs_out_local for w in stats.workers))
        self.msgs_remote.inc(sum(w.msgs_out_remote for w in stats.workers))
        self.remote_bytes.inc(sum(w.bytes_out for w in stats.workers))
        self.injected.inc(stats.injected)
        self.compute_calls.inc(stats.compute_calls)
        self.active.set(stats.active_end)
        self.workers.set(stats.num_workers)
        self.sim_time.set(stats.sim_time_end)
        self.peak_memory.set(stats.peak_memory)
        self.step_sim.observe(stats.elapsed)
        self.step_host.observe(host_seconds)
        self.barrier_sim.inc(stats.barrier_time)
        self.restarts.inc(sum(1 for w in stats.workers if w.restarted))


def run_job(job: JobSpec) -> JobResult:
    """Convenience: build an engine and run the job."""
    return BSPEngine(job).run()
