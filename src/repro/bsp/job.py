"""Job specification and result types for the BSP engine."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Iterable, Sequence

import numpy as np

from ..cloud.billing import BillingMeter
from ..cloud.costmodel import DEFAULT_PERF_MODEL, PerfModel
from ..cloud.specs import LARGE_VM, SMALL_VM, VMSpec
from ..graph.csr import CSRGraph
from ..partition.base import Partition, Partitioner
from ..partition.hashing import HashPartitioner
from .api import VertexProgram
from .superstep import JobTrace

__all__ = ["JobSpec", "JobResult", "RecoveryEvent"]


@dataclass
class JobSpec:
    """Everything needed to run one BSP job on the simulated cloud.

    Mirrors the paper's job-submission request (§III): the graph
    application, the graph, the number of partition workers, and the
    partitioning scheme; plus the simulation's VM flavor and cost model.

    ``initially_active`` follows Pregel's convention (all vertices active in
    superstep 0) by default; message-driven programs (BC, APSP under swath
    scheduling) pass ``False`` and wake vertices with ``initial_messages`` or
    observer injections instead.
    """

    program: VertexProgram
    graph: CSRGraph
    num_workers: int
    partitioner: Partitioner = field(default_factory=HashPartitioner)
    partition: Partition | None = None
    vm_spec: VMSpec = LARGE_VM
    manager_vm: VMSpec = SMALL_VM
    perf_model: PerfModel = DEFAULT_PERF_MODEL
    initially_active: bool | Iterable[int] = True
    initial_messages: Sequence[tuple[int, Any]] = ()
    max_supersteps: int = 10_000
    checkpoint_interval: int = 0
    failure_schedule: dict[int, int] = field(default_factory=dict)
    observers: Sequence[Any] = ()
    #: optional :class:`repro.obs.SpanTracer` recording engine phase spans
    tracer: Any = None
    #: optional :class:`repro.obs.MetricsRegistry` the engine reports into
    metrics: Any = None
    #: optional :class:`repro.obs.RunTimeline` recording one attribution row
    #: per superstep x worker (committed supersteps only)
    timeline: Any = None
    #: optional :class:`repro.obs.FlightRecorder` — the always-on bounded
    #: ring of structured events the live endpoint tails and postmortem
    #: bundles capture
    flight: Any = None
    #: optional postmortem sink (duck-typed: ``dump(engine, error)``,
    #: e.g. :class:`repro.obs.PostmortemWriter`) invoked by the engine on
    #: any abnormal end before the exception propagates
    postmortem: Any = None

    def __post_init__(self) -> None:
        if self.num_workers <= 0:
            raise ValueError("num_workers must be positive")
        if self.max_supersteps <= 0:
            raise ValueError("max_supersteps must be positive")
        if self.checkpoint_interval < 0:
            raise ValueError("checkpoint_interval must be >= 0")
        if self.failure_schedule and self.checkpoint_interval == 0:
            raise ValueError(
                "failure injection requires checkpointing "
                "(set checkpoint_interval > 0)"
            )
        if self.partition is not None:
            if self.partition.num_parts != self.num_workers:
                raise ValueError(
                    "explicit partition's num_parts must equal num_workers"
                )
            if self.partition.num_vertices != self.graph.num_vertices:
                raise ValueError("partition does not cover the graph")

    def resolve_partition(self) -> Partition:
        if self.partition is not None:
            return self.partition
        return self.partitioner.partition(self.graph, self.num_workers)

    def initial_active_ids(self) -> np.ndarray | None:
        """None = all active; else the explicit array of active ids."""
        if self.initially_active is True:
            return None
        if self.initially_active is False:
            return np.empty(0, dtype=np.int64)
        return np.asarray(sorted(int(v) for v in self.initially_active))


@dataclass(frozen=True)
class RecoveryEvent:
    """One injected worker failure and the rollback that handled it."""

    failed_superstep: int
    failed_worker: int
    resumed_from: int
    recovery_seconds: float


@dataclass
class JobResult:
    """Outcome of a BSP job run."""

    values: dict[int, Any]
    trace: JobTrace
    meter: BillingMeter
    supersteps: int
    halted: bool
    aggregates: dict[str, Any] = field(default_factory=dict)
    recoveries: list[RecoveryEvent] = field(default_factory=list)
    #: static :class:`~repro.check.costmodel.ProgramProfile` of the program,
    #: when the runner auto-profiled it (None otherwise)
    profile: Any = None
    #: static :class:`~repro.check.vectorize.KernelPlan` the program lifted
    #: to, when the runner auto-attached one (None when refused / disabled)
    kernel_plan: Any = None
    #: :class:`~repro.analysis.engine_select.EngineDecision` recorded when
    #: the job ran under ``--engine auto`` (None for explicit engines)
    engine_decision: Any = None
    #: :class:`~repro.cloud.costmeter.CostReport` with per-superstep and
    #: per-worker dollar attribution (set by the engine at job end)
    cost: Any = None

    @property
    def total_time(self) -> float:
        """Simulated wall-clock seconds."""
        return self.trace.total_time

    @property
    def total_cost(self) -> float:
        """Simulated dollars (workers + manager, pro-rata)."""
        return self.meter.total_cost

    def values_array(self, dtype=float) -> np.ndarray:
        """Dense result vector indexed by vertex id (for numeric programs)."""
        n = max(self.values) + 1 if self.values else 0
        out = np.zeros(n, dtype=dtype)
        for v, val in self.values.items():
            out[v] = val
        return out
