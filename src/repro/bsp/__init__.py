"""Core Pregel-style BSP engine on the simulated cloud (Pregel.NET analogue)."""

from .api import MasterContext, VertexContext, VertexProgram, run_job_process
from .aggregators import (
    Aggregator,
    AndAggregator,
    CountAggregator,
    MaxAggregator,
    MinAggregator,
    OrAggregator,
    SumAggregator,
)
from .combiners import Combiner, MaxCombiner, MinCombiner, SumCombiner
from .dense_ref import DenseRefEngine, PlanRefusedError, run_job_dense_ref
from .engine import BSPEngine, SuperstepObserver, run_job
from .parallel import ThreadedBSPEngine, run_job_threaded
from .debug import InvariantChecker, MessageRecord, TracingProgram
from .job import JobResult, JobSpec, RecoveryEvent
from .superstep import JobTrace, SuperstepStats, WorkerStepStats
from .worker import PartitionWorker

__all__ = [
    "MasterContext",
    "VertexContext",
    "VertexProgram",
    "Aggregator",
    "AndAggregator",
    "CountAggregator",
    "MaxAggregator",
    "MinAggregator",
    "OrAggregator",
    "SumAggregator",
    "Combiner",
    "MaxCombiner",
    "MinCombiner",
    "SumCombiner",
    "BSPEngine",
    "DenseRefEngine",
    "PlanRefusedError",
    "run_job_dense_ref",
    "SuperstepObserver",
    "run_job",
    "run_job_process",
    "ThreadedBSPEngine",
    "run_job_threaded",
    "InvariantChecker",
    "MessageRecord",
    "TracingProgram",
    "JobResult",
    "JobSpec",
    "RecoveryEvent",
    "JobTrace",
    "SuperstepStats",
    "WorkerStepStats",
    "PartitionWorker",
]
