"""Debugging aids for vertex-program authors.

* :class:`TracingProgram` — wrap any program to record every ``compute()``
  invocation and every message send (src, dst, payload, superstep) without
  touching the program's logic; query the log afterwards.
* :class:`InvariantChecker` — a :class:`~repro.bsp.engine.SuperstepObserver`
  asserting cross-superstep engine invariants while a job runs (message
  conservation, non-negative accounting, barrier monotonicity); violations
  are collected rather than raised so a failing run can still be inspected.

Both are plain library features with no engine hooks beyond the public
observer API — the same extension surface the swath controller uses.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from .api import VertexContext, VertexProgram
from .engine import BSPEngine, SuperstepObserver
from .superstep import SuperstepStats

__all__ = ["MessageRecord", "TracingProgram", "InvariantChecker"]


@dataclass(frozen=True)
class MessageRecord:
    """One recorded send."""

    superstep: int
    src: int
    dst: int
    payload: Any


class _TracingContext:
    """Context proxy that records sends before forwarding them."""

    def __init__(self, log: list[MessageRecord]) -> None:
        self._inner: VertexContext | None = None
        self._log = log

    def _bind_inner(self, ctx: VertexContext) -> None:
        self._inner = ctx

    def _require_bound(self) -> VertexContext:
        if self._inner is None:
            raise AttributeError(
                "tracing context is not bound to a vertex: it is only valid "
                "inside compute() for the vertex currently being computed — "
                "do not stash ctx on self or use it from other hooks "
                "(repro check flags this as RPC009)"
            )
        return self._inner

    # Recorded operations -------------------------------------------------
    def send(self, dst: int, payload: Any) -> None:
        inner = self._require_bound()
        self._log.append(
            MessageRecord(inner.superstep, inner.vertex_id, int(dst), payload)
        )
        inner.send(dst, payload)

    def send_to_neighbors(self, payload: Any) -> None:
        for u in self._require_bound().out_neighbors:
            self.send(int(u), payload)

    # Everything else passes through.
    def __getattr__(self, name: str):
        return getattr(self._require_bound(), name)


class TracingProgram(VertexProgram):
    """Transparent wrapper recording computes and sends of ``inner``.

    The wrapped program's results are unchanged; the trace is available as
    :attr:`messages` and :attr:`computes` after the run.  Payloads are held
    by reference — treat them as read-only.
    """

    def __init__(self, inner: VertexProgram) -> None:
        self.inner = inner
        self.combiner = inner.combiner
        self.messages: list[MessageRecord] = []
        self.computes: list[tuple[int, int, int]] = []  # (superstep, vertex, n_msgs)
        self._proxy = _TracingContext(self.messages)

    # Delegation ----------------------------------------------------------
    def init_state(self, vertex_id, graph):
        return self.inner.init_state(vertex_id, graph)

    def aggregators(self):
        return self.inner.aggregators()

    def master_compute(self, master):
        return self.inner.master_compute(master)

    def payload_nbytes(self, payload):
        return self.inner.payload_nbytes(payload)

    def state_nbytes(self, state):
        return self.inner.state_nbytes(state)

    def extract(self, vertex_id, state):
        return self.inner.extract(vertex_id, state)

    def compute(self, ctx, state, messages):
        self.computes.append((ctx.superstep, ctx.vertex_id, len(messages)))
        self._proxy._bind_inner(ctx)
        return self.inner.compute(self._proxy, state, messages)

    # Query helpers ---------------------------------------------------------
    def sends_from(self, vertex: int) -> list[MessageRecord]:
        return [m for m in self.messages if m.src == vertex]

    def sends_to(self, vertex: int) -> list[MessageRecord]:
        return [m for m in self.messages if m.dst == vertex]

    def messages_in_superstep(self, superstep: int) -> list[MessageRecord]:
        return [m for m in self.messages if m.superstep == superstep]


@dataclass
class InvariantChecker(SuperstepObserver):
    """Collects violations of engine invariants during a run."""

    violations: list[str] = field(default_factory=list)
    _last_buffered: int = 0

    def _check(self, cond: bool, msg: str) -> None:
        if not cond:
            self.violations.append(msg)

    def on_superstep_end(self, engine: BSPEngine, stats: SuperstepStats) -> None:
        s = stats.index
        # Conservation: messages drained this superstep equal the messages
        # buffered at the end of the previous one.  With a combiner the
        # receiver folds batches from different senders, so drained may be
        # smaller — but never larger.
        drained = sum(w.msgs_in for w in stats.workers)
        expected = self._last_buffered + stats.injected
        if engine.job.program.combiner is None:
            self._check(
                drained == expected,
                f"superstep {s}: drained {drained} != buffered+injected "
                f"{expected}",
            )
        else:
            self._check(
                drained <= expected,
                f"superstep {s}: drained {drained} > buffered+injected "
                f"{expected}",
            )
        self._last_buffered = sum(w.msgs_out for w in stats.workers)
        # Cluster-wide remote bytes out == remote bytes in.
        bytes_out = sum(w.bytes_out for w in stats.workers)
        bytes_in = sum(w.bytes_in for w in stats.workers)
        self._check(
            abs(bytes_out - bytes_in) < 1e-6,
            f"superstep {s}: bytes out {bytes_out} != in {bytes_in}",
        )
        # Accounting sanity.
        for w in stats.workers:
            self._check(
                w.busy_time >= 0 and w.memory_bytes >= 0 and w.mem_slowdown >= 1,
                f"superstep {s} worker {w.worker}: negative accounting",
            )
        self._check(
            stats.elapsed >= stats.barrier_time,
            f"superstep {s}: elapsed below barrier time",
        )
        self._check(
            0 <= stats.active_end <= engine.graph.num_vertices,
            f"superstep {s}: active count out of range",
        )

    @property
    def ok(self) -> bool:
        return not self.violations
