"""Global aggregators (Pregel extension).

Vertices contribute values during superstep *s*; the reduced result is
visible to every vertex during superstep *s+1* via
:meth:`~repro.bsp.api.VertexContext.aggregated`.  The job manager performs
the reduction at the barrier — a natural fit for Pregel.NET's barrier-queue
check-in (§III), where each worker's check-in message would carry its
partial aggregate.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Any

__all__ = [
    "Aggregator",
    "SumAggregator",
    "MinAggregator",
    "MaxAggregator",
    "AndAggregator",
    "OrAggregator",
    "CountAggregator",
]


class Aggregator(ABC):
    """Commutative/associative reduction with an identity element."""

    @abstractmethod
    def identity(self) -> Any:
        """Value of an empty reduction (also the start-of-superstep value)."""

    @abstractmethod
    def reduce(self, acc: Any, value: Any) -> Any:
        """Fold one contribution into the accumulator."""

    def merge(self, acc: Any, partial: Any) -> Any:
        """Fold one *worker partial* into the global accumulator.

        Defaults to :meth:`reduce`; aggregators whose reduce is not simply
        value-combining (e.g. :class:`CountAggregator`) must override.
        """
        return self.reduce(acc, partial)


class SumAggregator(Aggregator):
    def identity(self):
        return 0

    def reduce(self, acc, value):
        return acc + value


class MinAggregator(Aggregator):
    def identity(self):
        return float("inf")

    def reduce(self, acc, value):
        return acc if acc <= value else value


class MaxAggregator(Aggregator):
    def identity(self):
        return float("-inf")

    def reduce(self, acc, value):
        return acc if acc >= value else value


class AndAggregator(Aggregator):
    def identity(self):
        return True

    def reduce(self, acc, value):
        return bool(acc and value)


class OrAggregator(Aggregator):
    def identity(self):
        return False

    def reduce(self, acc, value):
        return bool(acc or value)


class CountAggregator(Aggregator):
    """Counts contributions (the value itself is ignored)."""

    def identity(self):
        return 0

    def reduce(self, acc, value):
        return acc + 1

    def merge(self, acc, partial):
        return acc + partial
