"""Partition worker: owns a share of vertices and runs their compute().

Mirrors Pregel.NET's partition-worker role (§III): it loads the vertices of
its partition, calls the user ``compute()`` on each active vertex per
superstep, delivers local messages through in-memory buffers, and batches
remote messages per destination worker for bulk transfer.  The engine plays
the job-manager role and moves the batched buffers between workers at the
end of each superstep.

All resource accounting (operation counts, buffered bytes) happens here with
*true* counts; converting them to simulated seconds is the engine's job.
"""

from __future__ import annotations

from typing import Any

import numpy as np

from ..cloud.costmodel import PerfModel
from ..graph.csr import CSRGraph
from .api import VertexContext, VertexProgram
from .superstep import WorkerStepStats

__all__ = ["PartitionWorker"]


class PartitionWorker:
    """One simulated worker VM's slice of the BSP computation."""

    def __init__(
        self,
        worker_id: int,
        graph: CSRGraph,
        vertex_ids: np.ndarray,
        program: VertexProgram,
        model: PerfModel,
        assignment: np.ndarray,
        initially_active: bool = True,
        metrics: Any = None,
    ) -> None:
        self.worker_id = worker_id
        self.graph = graph
        self.program = program
        self.model = model
        self.assignment = assignment  # vertex -> worker map (shared, read-only)
        self.vertex_ids = np.sort(np.asarray(vertex_ids, dtype=np.int64))

        # Per-vertex program state and accounting.
        self.states: dict[int, Any] = {}
        self._state_bytes: dict[int, int] = {}
        self.total_state_bytes = 0
        for v in self.vertex_ids:
            vi = int(v)
            st = program.init_state(vi, graph)
            self.states[vi] = st
            nb = int(program.state_nbytes(st))
            self._state_bytes[vi] = nb
            self.total_state_bytes += nb

        self.halted: dict[int, bool] = {
            int(v): not initially_active for v in self.vertex_ids
        }

        # Message buffers: current superstep's input and next superstep's.
        self.in_cur: dict[int, list] = {}
        self.in_next: dict[int, list] = {}
        self.in_next_payload_bytes = 0.0

        # Remote out buffers for the running superstep:
        # dst_worker -> dst_vertex -> list (or combined single payload).
        self.out_remote: dict[int, dict[int, list]] = {}
        self.out_remote_wire_bytes = 0.0

        # Fixed footprint of the hosted partition: CSR share + bookkeeping.
        arcs_hosted = int(np.diff(graph.indptr)[self.vertex_ids].sum()) if len(
            self.vertex_ids
        ) else 0
        self.graph_bytes = (
            arcs_hosted * 6 + len(self.vertex_ids) * model.vertex_overhead_bytes
        )

        # Aggregator plumbing (wired by the engine each superstep).
        self._agg_partials: dict[str, Any] = {}
        self._agg_previous: dict[str, Any] = {}
        self._aggregators = program.aggregators()

        # Topology-mutation overlay (Pregel's edge mutations, self-scope):
        # vertices with mutated out-edges get an explicit neighbor list here;
        # mutations requested during superstep s become visible in s+1.
        self._overlay: dict[int, list[int]] = {}
        self._pending_mutations: list[tuple[int, str, int]] = []
        self.overlay_bytes = 0

        self._ctx = VertexContext()
        self.stats = WorkerStepStats(worker=worker_id)

        # Per-worker instruments (optional registry, resolved once here so
        # run_compute() pays two counter bumps per superstep, not per vertex).
        if metrics is not None:
            wl = str(worker_id)
            self._m_compute_calls = metrics.counter(
                "bsp_worker_compute_calls_total",
                help="compute() invocations per worker", worker=wl,
            )
            self._m_msgs_in = metrics.counter(
                "bsp_worker_messages_in_total",
                help="Messages drained by compute() per worker", worker=wl,
            )
        else:
            self._m_compute_calls = None
            self._m_msgs_in = None

    # ------------------------------------------------------------------
    # Superstep lifecycle
    # ------------------------------------------------------------------
    def begin_superstep(self, superstep: int, agg_previous: dict[str, Any]) -> None:
        """Rotate message buffers and reset per-step accounting."""
        self._apply_mutations()
        self.in_cur = self.in_next
        self.in_next = {}
        self.in_next_payload_bytes = 0.0
        self.out_remote = {}
        self.out_remote_wire_bytes = 0.0
        self._agg_previous = agg_previous
        self._agg_partials = {
            name: agg.identity() for name, agg in self._aggregators.items()
        }
        self.stats = WorkerStepStats(worker=self.worker_id)
        self._superstep = superstep

    def compute_set(self) -> list[int]:
        """Vertices that must run compute() this superstep (sorted)."""
        pending = set(self.in_cur)
        pending.update(v for v, h in self.halted.items() if not h)
        return sorted(pending)

    def run_compute(self) -> None:
        """Run compute() for every active/messaged vertex of the partition."""
        program = self.program
        ctx = self._ctx
        superstep = self._superstep
        for v in self.compute_set():
            msgs = self.in_cur.pop(v, ())
            ctx._bind(self, v, superstep)
            new_state = program.compute(ctx, self.states[v], msgs)
            self.states[v] = new_state
            nb = int(program.state_nbytes(new_state))
            self.total_state_bytes += nb - self._state_bytes[v]
            self._state_bytes[v] = nb
            self.halted[v] = ctx._halted_flag
            self.stats.compute_calls += 1
            self.stats.msgs_in += len(msgs)
        self.in_cur = {}
        if self._m_compute_calls is not None:
            self._m_compute_calls.inc(self.stats.compute_calls)
            self._m_msgs_in.inc(self.stats.msgs_in)

    # ------------------------------------------------------------------
    # Topology mutation (Pregel edge mutations, self-scope)
    # ------------------------------------------------------------------
    def effective_neighbors(self, v: int):
        """Out-neighbors of ``v`` including applied mutations."""
        if v in self._overlay:
            return np.asarray(self._overlay[v], dtype=np.int64)
        return self.graph.neighbors(v)

    def effective_out_degree(self, v: int) -> int:
        if v in self._overlay:
            return len(self._overlay[v])
        return self.graph.out_degree(v)

    def effective_neighbor_weights(self, v: int):
        """Out-edge weights aligned with :meth:`effective_neighbors`.

        Mutated vertices report unit weights (edge mutations carry no
        weight; a weighted-mutation API is out of scope).
        """
        if v in self._overlay:
            return np.ones(len(self._overlay[v]))
        return self.graph.neighbor_weights(v)

    def request_mutation(self, v: int, op: str, dst: int) -> None:
        """Queue an out-edge mutation for ``v`` (applied next superstep)."""
        if op not in ("add", "remove"):
            raise ValueError(f"unknown mutation op {op!r}")
        if not 0 <= dst < self.graph.num_vertices:
            raise ValueError(f"mutation targets unknown vertex {dst}")
        self._pending_mutations.append((v, op, dst))

    def _apply_mutations(self) -> None:
        if not self._pending_mutations:
            return
        for v, op, dst in self._pending_mutations:
            lst = self._overlay.get(v)
            if lst is None:
                lst = list(int(u) for u in self.graph.neighbors(v))
                self._overlay[v] = lst
                self.overlay_bytes += 16 + 8 * len(lst)
            if op == "add":
                lst.append(dst)
                self.overlay_bytes += 8
            else:
                try:
                    lst.remove(dst)
                    self.overlay_bytes -= 8
                except ValueError:
                    pass  # removing a non-existent edge is a no-op (Pregel)
        self._pending_mutations = []

    # ------------------------------------------------------------------
    # Message routing (called from VertexContext.send)
    # ------------------------------------------------------------------
    def emit(self, src: int, dst: int, payload: Any) -> None:
        if not 0 <= dst < self.graph.num_vertices:
            raise ValueError(f"message to unknown vertex {dst}")
        dst_worker = int(self.assignment[dst])
        combiner = self.program.combiner
        # Counters track *post-combine* messages — what is actually buffered
        # and transferred, the quantity the paper plots; combining folds an
        # emit into an existing buffered message at no extra cost.
        if dst_worker == self.worker_id:
            box = self.in_next.setdefault(dst, [])
            if combiner is not None and box:
                box[0] = combiner.combine(box[0], payload)
            else:
                box.append(payload)
                self.in_next_payload_bytes += self.program.payload_nbytes(payload)
                self.stats.msgs_out_local += 1
        else:
            bucket = self.out_remote.setdefault(dst_worker, {})
            box = bucket.setdefault(dst, [])
            if combiner is not None and box:
                box[0] = combiner.combine(box[0], payload)
            else:
                box.append(payload)
                self.out_remote_wire_bytes += self.model.message_wire_bytes(
                    self.program.payload_nbytes(payload)
                )
                self.stats.msgs_out_remote += 1

    def deliver_remote(self, dst: int, payloads: list) -> float:
        """Accept a batch of remote messages for local vertex ``dst``.

        Returns the wire bytes received (for the engine's traffic matrix).
        With a combiner, arriving payloads fold into the buffered one.
        """
        combiner = self.program.combiner
        box = self.in_next.setdefault(dst, [])
        wire = 0.0
        for p in payloads:
            wire += self.model.message_wire_bytes(self.program.payload_nbytes(p))
            if combiner is not None and box:
                box[0] = combiner.combine(box[0], p)
            else:
                box.append(p)
                self.in_next_payload_bytes += self.program.payload_nbytes(p)
        return wire

    def inject(self, dst: int, payload: Any) -> None:
        """Control-plane activation message (job-manager originated).

        Wakes ``dst`` next superstep; carries no data-plane cost (the paper's
        manager uses the cheap Azure queues for control traffic).
        """
        self.in_next.setdefault(dst, []).append(payload)

    # ------------------------------------------------------------------
    # Aggregators
    # ------------------------------------------------------------------
    def aggregate(self, name: str, value: Any) -> None:
        if name not in self._aggregators:
            raise KeyError(f"unknown aggregator {name!r}")
        agg = self._aggregators[name]
        self._agg_partials[name] = agg.reduce(self._agg_partials[name], value)

    def aggregated(self, name: str) -> Any:
        if name not in self._aggregators:
            raise KeyError(f"unknown aggregator {name!r}")
        return self._agg_previous.get(name, self._aggregators[name].identity())

    # ------------------------------------------------------------------
    # Introspection used by the engine
    # ------------------------------------------------------------------
    @property
    def active_count(self) -> int:
        """Vertices that have not voted to halt."""
        return sum(1 for h in self.halted.values() if not h)

    @property
    def has_buffered_messages(self) -> bool:
        return bool(self.in_next)

    def buffered_message_count(self) -> int:
        """Messages buffered for the next superstep (post-combine)."""
        return sum(len(box) for box in self.in_next.values())

    def buffered_message_bytes(self) -> float:
        """Wire-equivalent bytes of messages buffered for the next superstep."""
        m = self.model
        return (
            self.in_next_payload_bytes
            + self.buffered_message_count() * m.msg_header_bytes
        )

    def memory_footprint(self) -> float:
        """Peak resident bytes attributed to this superstep.

        Partition share + vertex state + buffered incoming messages for the
        next superstep (expansion-adjusted) + the transient sender-side
        remote buffers.  Under disk buffering (Giraph/Hama-style, §II) the
        buffered messages live on disk, not in memory.
        """
        m = self.model
        if m.disk_buffering or m.mapreduce_iteration:
            buffered = 0.0
        else:
            buffered = self.buffered_message_bytes() * m.msg_memory_expansion
        return (
            self.graph_bytes
            + self.total_state_bytes
            + buffered
            + self.out_remote_wire_bytes
            + self.overlay_bytes
        )

    # ------------------------------------------------------------------
    # Vertex migration (live elastic scaling support)
    # ------------------------------------------------------------------
    def export_vertex(self, v: int) -> tuple:
        """Detach a vertex's live data for migration to another worker."""
        if v not in self.states:
            raise KeyError(f"vertex {v} not hosted by worker {self.worker_id}")
        state = self.states.pop(v)
        nb = self._state_bytes.pop(v)
        self.total_state_bytes -= nb
        halted = self.halted.pop(v)
        pending = self.in_next.pop(v, [])
        for p in pending:
            self.in_next_payload_bytes -= self.program.payload_nbytes(p)
        overlay = self._overlay.pop(v, None)
        if overlay is not None:
            self.overlay_bytes -= 16 + 8 * len(overlay)
        return state, halted, pending, overlay

    def refresh_partition_footprint(self) -> None:
        """Recompute the hosted-partition memory share after migrations."""
        hosted = np.array(sorted(self.states.keys()), dtype=np.int64)
        arcs_hosted = (
            int(np.diff(self.graph.indptr)[hosted].sum()) if len(hosted) else 0
        )
        self.graph_bytes = (
            arcs_hosted * 6 + len(hosted) * self.model.vertex_overhead_bytes
        )

    def import_vertex(
        self, v: int, state, halted: bool, pending: list, overlay=None
    ) -> None:
        """Adopt a migrated vertex (replacing any freshly-initialized state)."""
        if v in self.states:
            self.total_state_bytes -= self._state_bytes[v]
        self.states[v] = state
        nb = int(self.program.state_nbytes(state))
        self._state_bytes[v] = nb
        self.total_state_bytes += nb
        self.halted[v] = halted
        if pending:
            box = self.in_next.setdefault(v, [])
            box.extend(pending)
            for p in pending:
                self.in_next_payload_bytes += self.program.payload_nbytes(p)
        if overlay is not None:
            self._overlay[v] = overlay
            self.overlay_bytes += 16 + 8 * len(overlay)

    # ------------------------------------------------------------------
    # Snapshot / restore (checkpointing support)
    # ------------------------------------------------------------------
    def snapshot(self) -> dict:
        import copy

        return {
            "states": copy.deepcopy(self.states),
            "state_bytes": dict(self._state_bytes),
            "total_state_bytes": self.total_state_bytes,
            "halted": dict(self.halted),
            "in_next": copy.deepcopy(self.in_next),
            "in_next_payload_bytes": self.in_next_payload_bytes,
            "overlay": copy.deepcopy(self._overlay),
            "overlay_bytes": self.overlay_bytes,
            "pending_mutations": list(self._pending_mutations),
        }

    def restore(self, snap: dict) -> None:
        import copy

        self.states = copy.deepcopy(snap["states"])
        self._state_bytes = dict(snap["state_bytes"])
        self.total_state_bytes = snap["total_state_bytes"]
        self.halted = dict(snap["halted"])
        self.in_next = copy.deepcopy(snap["in_next"])
        self.in_next_payload_bytes = snap["in_next_payload_bytes"]
        self._overlay = copy.deepcopy(snap["overlay"])
        self.overlay_bytes = snap["overlay_bytes"]
        self._pending_mutations = list(snap["pending_mutations"])
        self.in_cur = {}
        self.out_remote = {}
        self.out_remote_wire_bytes = 0.0
