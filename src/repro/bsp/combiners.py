"""Message combiners (Pregel extension).

A combiner folds all messages bound for the same destination vertex into one
message *at the sending worker*, reducing network traffic and buffering.
The paper omits combiners from its evaluation ("the impact of these advanced
features is algorithm dependent"), but we implement them because (a) Pregel
defines them, (b) PageRank benefits directly, and (c) an ablation bench
quantifies exactly the message-count reduction the paper alludes to.

Combiners must be commutative and associative; the engine applies them
pairwise in arrival order.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Any

__all__ = ["Combiner", "SumCombiner", "MinCombiner", "MaxCombiner"]


class Combiner(ABC):
    """Pairwise message folding for a single destination vertex."""

    @abstractmethod
    def combine(self, a: Any, b: Any) -> Any:
        """Fold two payloads bound for the same vertex into one."""


class SumCombiner(Combiner):
    """Numeric sum (PageRank's rank mass)."""

    def combine(self, a, b):
        return a + b


class MinCombiner(Combiner):
    """Minimum (SSSP distances, component labels)."""

    def combine(self, a, b):
        return a if a <= b else b


class MaxCombiner(Combiner):
    """Maximum."""

    def combine(self, a, b):
        return a if a >= b else b
