"""Vectorization front-end: lift ``compute()`` ASTs into KernelPlan IR.

The costmodel pass (PR 4) answers *how many bytes* a vertex program moves;
this pass answers *what dataflow* it performs, precisely enough to replay
it with NumPy array kernels instead of a per-vertex Python loop.  It is an
abstract interpreter over the ``compute()`` AST that either

* **lifts** the program into a small declarative :class:`KernelPlan` —
  typed gather / map / scatter-over-CSR / segment-reduce / halt-mask ops
  with an explicit per-superstep phase schedule — or
* **refuses** with a precise finding naming the blocking AST span.

The verdicts surface as four catalog rules (only run under
``repro check --kernel-plan``):

* **RPC015** (info) — program lifts; the finding carries the plan digest.
* **RPC016** (info) — data-dependent control flow / dataflow blocks dense
  mode (message-amplifying fan-out, opaque calls, order-sensitive halts).
* **RPC017** (info) — state or payload schema is not fixed-width /
  NumPy-representable (dicts, lists, variable tuples, opaque objects).
* **RPC018** (info) — the message reduction is not a known monoid
  (ties into the costmodel's combiner inference).

Honesty contract: the analyzer is only allowed to claim RPC015 for
programs that :mod:`repro.bsp.dense_ref` *proves* equivalent to
``BSPEngine`` via ``certify_determinism`` — the test suite certifies every
lifted bundled algorithm, so a false-positive "vectorizable" verdict is a
test failure, not a latent bug.

Expression IR
-------------
Expressions are nested tuples, ``(op, *children)``.  Leaves::

    ("const", v)        literal scalar (bool / int / float)
    ("param", name)     program attribute, resolved when the plan is bound
    ("state",)          per-vertex state vector (value at superstep entry)
    ("vertex",)         vertex ids 0..n-1
    ("superstep",)      current superstep index (scalar)
    ("nv",)             graph.num_vertices (scalar)
    ("out_degree",)     live out-degree vector (respects edge removals)
    ("msg",)            gathered message value (monoid-reduced, default
                        applied where no message arrived)
    ("msg_count",)      deliveries per vertex this superstep
    ("agg", name)       aggregate merged at the previous barrier (scalar)
    ("edge_weight",)    per-arc weight (scatter payloads only)

Compound: ``add sub mul div floordiv mod pow min2 max2 neg abs``,
comparisons ``lt le gt ge eq ne``, logic ``and or not``, selection
``("where", cond, a, b)``, casts ``cast_int cast_float cast_bool``.

Ops (:class:`KOp`) are effects, each masked by a vector ``where``::

    scatter(payload)     send payload along live out-arcs of masked vertices
    aggregate(name, v)   contribute v to a Sum aggregator
    vote(...)            vote_to_halt
    prune_received(...)  remove the reciprocal arc of each delivered arc
                         (k-core peel idiom), applied next superstep
    drop_edges(...)      remove every live out-arc of masked vertices,
                         applied next superstep

Phases group ops under scalar superstep guards (``if ctx.superstep == k``
and friends), giving the per-superstep schedule the dense executor walks.
"""

from __future__ import annotations

import ast
import hashlib
import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any

from .costmodel import (
    FanoutClass,
    _declared_aggregators,
    _declared_combiner,
    profile_program,
)
from .findings import Severity
from .rules import ModuleInfo, ProgramInfo, Rule, _attr_chain, _constant_str

__all__ = [
    "Expr",
    "KOp",
    "KernelPhase",
    "KernelPlan",
    "LiftRefusal",
    "LiftResult",
    "KERNEL_RULES",
    "lift_program",
    "lift_source",
    "lift_file",
    "lift_paths",
    "lift_of",
    "lift_verdict",
    "render_expr",
]

Expr = tuple

#: Declared combiner class name -> the monoid it folds; a compute() body
#: whose message fold disagrees with its declared combiner cannot be
#: replayed densely (the engine delivers per-worker partials, the dense
#: executor folds raw messages — only matching monoids commute).
_COMBINER_MONOID = {
    "SumCombiner": "sum",
    "MinCombiner": "min",
    "MaxCombiner": "max",
}

_BINOPS = {
    ast.Add: "add",
    ast.Sub: "sub",
    ast.Mult: "mul",
    ast.Div: "div",
    ast.FloorDiv: "floordiv",
    ast.Mod: "mod",
    ast.Pow: "pow",
}

_CMPOPS = {
    ast.Lt: "lt",
    ast.LtE: "le",
    ast.Gt: "gt",
    ast.GtE: "ge",
    ast.Eq: "eq",
    ast.NotEq: "ne",
}

_MATH_CONSTS = {"inf": float("inf"), "nan": float("nan"), "pi": 3.141592653589793,
                "e": 2.718281828459045, "tau": 6.283185307179586}

# Internal markers threaded through the environment while translating
# idioms; they never appear in an emitted plan.
_MESSAGES = ("__messages__",)
_COUNTER = ("__counter__",)
_MODE_BEST = ("__mode_best__",)


class LiftRefusal(Exception):
    """Lifting failed; carries the rule verdict and the blocking span."""

    def __init__(self, rule_id: str, node: ast.AST | None, reason: str):
        super().__init__(reason)
        self.rule_id = rule_id
        self.reason = reason
        self.line = getattr(node, "lineno", 1)
        self.col = getattr(node, "col_offset", 0) + 1


@dataclass(frozen=True)
class KOp:
    """One masked effect in a kernel plan."""

    kind: str  # scatter | aggregate | vote | prune_received | drop_edges
    where: Expr | None = None
    payload: Expr | None = None  # scatter
    name: str | None = None  # aggregate
    value: Expr | None = None  # aggregate
    #: optimizer mark (repro.check.planopt): the payload's vertex-space
    #: subtrees are shared with other vertex-evaluated expressions, so the
    #: dense executor should evaluate vertex-space then index per-arc.
    hoist: bool = False

    def as_dict(self) -> dict:
        out: dict[str, Any] = {"op": self.kind}
        if self.where is not None:
            out["where"] = _expr_json(self.where)
        if self.payload is not None:
            out["payload"] = _expr_json(self.payload)
        if self.name is not None:
            out["name"] = self.name
        if self.value is not None:
            out["value"] = _expr_json(self.value)
        if self.hoist:
            out["hoist"] = True
        return out


@dataclass(frozen=True)
class KernelPhase:
    """Ops that run under one scalar superstep guard (None = every step)."""

    guard: Expr | None
    ops: tuple[KOp, ...]

    def as_dict(self) -> dict:
        return {
            "guard": _expr_json(self.guard) if self.guard is not None else None,
            "ops": [op.as_dict() for op in self.ops],
        }


@dataclass(frozen=True)
class KernelPlan:
    """The declarative dense form of one vertex program."""

    program: str
    file: str
    line: int
    state_dtype: str
    state_init: Expr
    message_dtype: str
    #: "sum" | "min" | "max" | "mode" | "count"; None when compute() never
    #: reads its messages (pure generator programs).
    reduce: str | None
    gather_default: Expr | None
    include_self: bool  # mode-reduce counts the vertex's own label once
    phases: tuple[KernelPhase, ...]
    state_update: Expr | None
    params: tuple[str, ...]
    #: program attributes that must be None when the plan is bound (the
    #: lifter proved only the attr-is-None branch of compute()).
    requires_none: tuple[str, ...]
    uses_mutation: bool  # peel programs maintain a live-arc mask
    has_master: bool
    aggregates: tuple[str, ...]  # aggregator names compute() contributes to
    digest: str = field(default="", compare=False)

    def as_dict(self) -> dict:
        return {
            "program": self.program,
            "file": self.file,
            "line": self.line,
            "state_dtype": self.state_dtype,
            "state_init": _expr_json(self.state_init),
            "message_dtype": self.message_dtype,
            "reduce": self.reduce,
            "gather_default": (
                _expr_json(self.gather_default)
                if self.gather_default is not None
                else None
            ),
            "include_self": self.include_self,
            "phases": [p.as_dict() for p in self.phases],
            "state_update": (
                _expr_json(self.state_update)
                if self.state_update is not None
                else None
            ),
            "params": list(self.params),
            "requires_none": list(self.requires_none),
            "uses_mutation": self.uses_mutation,
            "has_master": self.has_master,
            "aggregates": list(self.aggregates),
            "digest": self.digest,
        }

    @property
    def num_ops(self) -> int:
        return sum(len(p.ops) for p in self.phases)


def _expr_json(e: Expr) -> list:
    """Tuples -> lists, recursively (canonical JSON form)."""
    return [_expr_json(c) if isinstance(c, tuple) else c for c in e]


def _plan_digest(plan_dict: dict) -> str:
    body = dict(plan_dict)
    body.pop("digest", None)
    body.pop("file", None)  # digest is content-addressed, not path-addressed
    body.pop("line", None)
    canon = json.dumps(body, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canon.encode("utf-8")).hexdigest()


def render_expr(e: Expr | None) -> str:
    """S-expression text form for findings, docs, and debugging."""
    if e is None:
        return "-"
    head, *rest = e
    if head == "const":
        return repr(rest[0])
    if not rest:
        return head
    if head in ("param", "agg"):
        return f"({head} {rest[0]})"
    return "(" + " ".join([head] + [render_expr(c) for c in rest]) + ")"


# ----------------------------------------------------------------------
# Expression algebra helpers
# ----------------------------------------------------------------------
def _conj(*parts: Expr | None) -> Expr | None:
    out: Expr | None = None
    for p in parts:
        if p is None:
            continue
        out = p if out is None else ("and", out, p)
    return out


def _neg(e: Expr) -> Expr:
    if e[0] == "not":
        return e[1]
    return ("not", e)


_SCALAR_LEAVES = {"const", "param", "superstep", "nv", "agg"}
_VECTOR_LEAVES = {"state", "vertex", "out_degree", "msg", "msg_count",
                  "edge_weight"}


def _is_scalar(e: Expr) -> bool:
    head = e[0]
    if head in _SCALAR_LEAVES:
        return True
    if head in _VECTOR_LEAVES:
        return False
    return all(_is_scalar(c) for c in e[1:] if isinstance(c, tuple))


_DTYPE_RANK = {"bool": 0, "int64": 1, "float64": 2}


def _promote(*dts: str | None) -> str:
    best = None
    for d in dts:
        if d is None:
            continue
        if best is None or _DTYPE_RANK[d] > _DTYPE_RANK[best]:
            best = d
    return best or "float64"


def _dtype_of(e: Expr, state: str, msg: str | None) -> str | None:
    """Static dtype of an expression; None for bind-time params."""
    head = e[0]
    if head == "const":
        v = e[1]
        if isinstance(v, bool):
            return "bool"
        if isinstance(v, int):
            return "int64"
        return "float64"
    if head == "param":
        return None  # adopts the dtype of whatever it combines with
    if head in ("vertex", "nv", "superstep", "msg_count", "out_degree"):
        return "int64"
    if head == "state":
        return state
    if head == "msg":
        return msg or state
    if head in ("edge_weight", "div", "cast_float", "agg", "pow"):
        return "float64"
    if head in ("cast_int", "floordiv"):
        return "int64"
    if head in ("lt", "le", "gt", "ge", "eq", "ne", "and", "or", "not",
                "cast_bool"):
        return "bool"
    if head == "where":
        return _promote(_dtype_of(e[2], state, msg), _dtype_of(e[3], state, msg))
    return _promote(*(
        _dtype_of(c, state, msg) for c in e[1:] if isinstance(c, tuple)
    ))


# ----------------------------------------------------------------------
# The lifter
# ----------------------------------------------------------------------
class _Lifter:
    """Symbolic evaluator over one ``compute()`` body.

    Locals live in ``env`` (name -> expression IR); conditionals fold into
    ``where`` expressions, so every emitted expression references only
    superstep-entry arrays and op ordering cannot matter.  Effects are
    recorded as masked ops tagged with the current scalar guard for phase
    grouping.  Anything outside the modeled language raises
    :class:`LiftRefusal` with the blocking node.
    """

    def __init__(self, program: ProgramInfo, module: ModuleInfo):
        self.program = program
        self.module = module
        self.ctx = program.ctx_name
        self.state_name = program.state_name
        self.messages_name = program.messages_name
        self.env: dict[str, Expr] = {}
        if self.state_name:
            self.env[self.state_name] = ("state",)
        if self.messages_name:
            self.env[self.messages_name] = _MESSAGES
        self.mask: Expr | None = None  # vector condition on the vertex
        self.guard: Expr | None = None  # scalar (superstep) condition
        self.op_records: list[tuple[Expr | None, KOp]] = []
        self.early: list[tuple[Expr, Expr]] = []
        self.final: Expr | None = None
        self.done = False
        self.reduce: str | None = None
        self.gather_default: Expr | None = None
        self.include_self = False
        self.params: set[str] = set()
        self.requires_none: set[str] = set()
        self.uses_mutation = False
        self.agg_dtypes: dict[str, str] = {}
        self.peel_token: Any = None  # payload slot-0 constant of peel msgs
        self.declared_aggs = dict(_declared_aggregators(program))
        self.module_consts = self._module_constants(module)
        self.helper_depth = 0
        self.branch_depth = 0

    # -- setup helpers -------------------------------------------------
    @staticmethod
    def _module_constants(module: ModuleInfo) -> dict[str, Any]:
        consts: dict[str, Any] = {}
        for stmt in module.tree.body:
            if (
                isinstance(stmt, ast.Assign)
                and len(stmt.targets) == 1
                and isinstance(stmt.targets[0], ast.Name)
                and isinstance(stmt.value, ast.Constant)
                and isinstance(stmt.value.value, (bool, int, float))
            ):
                consts[stmt.targets[0].id] = stmt.value.value
        return consts

    def refuse(self, rule: str, node: ast.AST | None, reason: str) -> LiftRefusal:
        return LiftRefusal(rule, node, reason)

    def _cond(self) -> Expr | None:
        return _conj(self.guard, self.mask)

    def _emit(self, op: KOp) -> None:
        self.op_records.append((self.guard, op))

    def _set_reduce(self, kind: str, default: Expr | None, node: ast.AST) -> None:
        if self.reduce is not None and self.reduce != kind:
            raise self.refuse(
                "RPC018", node,
                f"compute() folds messages two different ways "
                f"({self.reduce} and {kind}); a dense gather needs one monoid",
            )
        self.reduce = kind
        if default is not None:
            self.gather_default = default

    # -- binding -------------------------------------------------------
    def _bind(self, name: str, value: Expr, node: ast.AST) -> None:
        if value in (_MESSAGES, _COUNTER, _MODE_BEST):
            self.env[name] = value  # structural markers bind unconditionally
            return
        cond = self._cond()
        if cond is None:
            self.env[name] = value
        else:
            prev = self.env.get(name, ("const", 0))
            self.env[name] = ("where", cond, value, prev)

    # -- statement dispatch --------------------------------------------
    def run(self, body: list[ast.stmt]) -> None:
        self._block(body)
        if not self.done:
            raise self.refuse(
                "RPC016", self.program.compute,
                "not every path through compute() returns a state value",
            )

    def _block(self, stmts: list[ast.stmt]) -> bool:
        """Translate a suite; True when it ends in an unconditional return."""
        for i, stmt in enumerate(stmts):
            if self.done:
                break  # code after a top-level return is unreachable
            self._stmt(stmt)
            if isinstance(stmt, ast.Return):
                return True
        return False

    def _stmt(self, node: ast.stmt) -> None:
        if isinstance(node, ast.Expr):
            if isinstance(node.value, ast.Constant):
                return  # docstring / bare literal
            if isinstance(node.value, ast.Call):
                self._effect_call(node.value)
                return
            if isinstance(node.value, ast.NamedExpr):
                self._expr(node.value)
                return
            raise self.refuse(
                "RPC016", node, "expression statement with no liftable effect"
            )
        if isinstance(node, ast.Assign):
            if len(node.targets) != 1 or not isinstance(node.targets[0], ast.Name):
                raise self.refuse(
                    "RPC016", node,
                    "only single-name assignments are liftable",
                )
            self._bind(node.targets[0].id, self._expr(node.value), node)
            return
        if isinstance(node, ast.AnnAssign):
            if node.value is None or not isinstance(node.target, ast.Name):
                raise self.refuse("RPC016", node, "unliftable annotated assignment")
            self._bind(node.target.id, self._expr(node.value), node)
            return
        if isinstance(node, ast.AugAssign):
            self._augassign(node)
            return
        if isinstance(node, ast.If):
            self._if(node)
            return
        if isinstance(node, ast.For):
            self._for(node)
            return
        if isinstance(node, ast.Return):
            self._return(node)
            return
        if isinstance(node, ast.Match):
            self._match(node)
            return
        if isinstance(node, ast.Pass):
            return
        raise self.refuse(
            "RPC016", node,
            f"{type(node).__name__} statements are data-dependent control "
            "flow the dense executor cannot schedule",
        )

    def _augassign(self, node: ast.AugAssign) -> None:
        if isinstance(node.target, ast.Subscript):
            # LPA self-label damping: counts[state] += 1 on a Counter.
            base = node.target.value
            if (
                isinstance(base, ast.Name)
                and self.env.get(base.id) == _COUNTER
                and isinstance(node.op, ast.Add)
                and isinstance(node.value, ast.Constant)
                and node.value.value == 1
            ):
                idx = self._expr(node.target.slice)
                if idx != ("state",):
                    raise self.refuse(
                        "RPC018", node,
                        "mode reduction only lifts when the vertex's own "
                        "contribution is its current state",
                    )
                self.include_self = True
                return
            raise self.refuse(
                "RPC018", node,
                "in-place update of a subscripted value is not a known "
                "monoid fold",
            )
        if not isinstance(node.target, ast.Name):
            raise self.refuse("RPC016", node, "unliftable augmented target")
        name = node.target.id
        if name not in self.env:
            raise self.refuse(
                "RPC016", node, f"augmented assignment to unbound name '{name}'"
            )
        opname = _BINOPS.get(type(node.op))
        if opname is None:
            raise self.refuse(
                "RPC018", node,
                f"augmented fold '{type(node.op).__name__}' is not a known "
                "monoid",
            )
        value = self._expr(node.value)
        self._bind(name, (opname, self.env[name], value), node)

    # -- conditionals --------------------------------------------------
    def _bind_time_none_test(self, test: ast.expr) -> tuple[str, bool] | None:
        """``self.attr is [not] None`` -> (attr, body_live_when_none)."""
        if not (
            isinstance(test, ast.Compare)
            and len(test.ops) == 1
            and isinstance(test.ops[0], (ast.Is, ast.IsNot))
            and isinstance(test.comparators[0], ast.Constant)
            and test.comparators[0].value is None
        ):
            return None
        chain = _attr_chain(test.left)
        if not (chain and len(chain) == 2 and chain[0] == "self"):
            return None
        return chain[1], isinstance(test.ops[0], ast.Is)

    def _if(self, node: ast.If) -> None:
        bind_none = self._bind_time_none_test(node.test)
        if bind_none is not None:
            attr, body_when_none = bind_none
            self.requires_none.add(attr)
            live = node.body if body_when_none else node.orelse
            self._block(live)
            return

        test = self._expr(node.test)
        scalar = _is_scalar(test)
        pre_env = dict(self.env)

        body_env, body_ret = self._branch(node.body, test, scalar, pre_env)
        if node.orelse:
            else_env, else_ret = self._branch(
                node.orelse, _neg(test), scalar, pre_env
            )
        else:
            else_env, else_ret = pre_env, False

        if body_ret and else_ret:
            self.done = True
            return
        if body_ret:
            self.env = else_env
            self._narrow(_neg(test), scalar)
            return
        if else_ret:
            self.env = body_env
            self._narrow(test, scalar)
            return

        eff = _conj(self.guard, self.mask, test)
        merged = dict(pre_env)
        for n in set(body_env) | set(else_env):
            b = body_env.get(n, pre_env.get(n, ("const", 0)))
            e = else_env.get(n, pre_env.get(n, ("const", 0)))
            if b == e:
                merged[n] = b
            else:
                merged[n] = ("where", eff, b, e)
        self.env = merged

    def _branch(
        self,
        stmts: list[ast.stmt],
        test: Expr,
        scalar: bool,
        pre_env: dict[str, Expr],
    ) -> tuple[dict[str, Expr], bool]:
        saved = (self.env, self.mask, self.guard)
        self.env = dict(pre_env)
        if scalar:
            self.guard = _conj(self.guard, test)
        else:
            self.mask = _conj(self.mask, test)
        self.branch_depth += 1
        try:
            returned = self._block(stmts)
        finally:
            self.branch_depth -= 1
        env = self.env
        self.env, self.mask, self.guard = saved
        return env, returned

    def _narrow(self, test: Expr, scalar: bool) -> None:
        if scalar:
            self.guard = _conj(self.guard, test)
        else:
            self.mask = _conj(self.mask, test)

    def _match(self, node: ast.Match) -> None:
        subject = self._expr(node.subject)
        if not _is_scalar(subject):
            raise self.refuse(
                "RPC016", node,
                "match on a per-vertex value is data-dependent control flow",
            )
        seen: Expr | None = None
        for case in node.cases:
            if case.guard is not None:
                raise self.refuse("RPC016", case.pattern, "guarded match case")
            if isinstance(case.pattern, ast.MatchValue):
                if not isinstance(case.pattern.value, ast.Constant):
                    raise self.refuse(
                        "RPC016", case.pattern, "non-constant match pattern"
                    )
                test: Expr = ("eq", subject, ("const", case.pattern.value.value))
            elif (
                isinstance(case.pattern, ast.MatchAs)
                and case.pattern.pattern is None
                and case.pattern.name is None
            ):
                test = ("const", True)  # wildcard case _
            else:
                raise self.refuse(
                    "RPC016", case.pattern,
                    f"{type(case.pattern).__name__} match pattern is not "
                    "liftable",
                )
            eff = test if seen is None else _conj(_neg(seen), test)
            pre_env = dict(self.env)
            env, returned = self._branch(case.body, eff, True, pre_env)
            if returned:
                raise self.refuse(
                    "RPC016", case.pattern, "return inside a match case"
                )
            cond = _conj(self.guard, self.mask, eff)
            for n, v in env.items():
                if pre_env.get(n) != v:
                    self.env[n] = ("where", cond, v, pre_env.get(n, ("const", 0)))
            seen = test if seen is None else ("or", seen, test)

    # -- loops ---------------------------------------------------------
    def _is_messages(self, node: ast.expr) -> bool:
        return (
            isinstance(node, ast.Name) and self.env.get(node.id) == _MESSAGES
        )

    def _for(self, node: ast.For) -> None:
        if node.orelse:
            raise self.refuse("RPC016", node, "for/else is not liftable")
        if self._is_messages(node.iter):
            self._message_loop(node)
            return
        neigh = self._neighbor_iter(node.iter)
        if neigh is not None:
            self._neighbor_loop(node, weighted=neigh)
            return
        raise self.refuse(
            "RPC016", node.iter,
            "loop over a data-dependent iterable (only the delivered "
            "messages and ctx.out_neighbors are liftable)",
        )

    def _neighbor_iter(self, it: ast.expr) -> bool | None:
        """None = not a neighbor loop; False = plain; True = zip(w) form."""
        chain = _attr_chain(it)
        if chain == [self.ctx, "out_neighbors"]:
            return False
        if (
            isinstance(it, ast.Call)
            and isinstance(it.func, ast.Name)
            and it.func.id == "zip"
            and len(it.args) == 2
            and _attr_chain(it.args[0]) == [self.ctx, "out_neighbors"]
            and _attr_chain(it.args[1]) == [self.ctx, "out_weights"]
        ):
            return True
        return None

    def _message_loop(self, node: ast.For) -> None:
        if not isinstance(node.target, ast.Name):
            raise self.refuse(
                "RPC018", node.target,
                "destructuring message payloads in a fold is not a known "
                "monoid",
            )
        mvar = node.target.id
        body = node.body
        # Idiom A: sum accumulation  `acc += m`
        if (
            len(body) == 1
            and isinstance(body[0], ast.AugAssign)
            and isinstance(body[0].op, ast.Add)
            and isinstance(body[0].target, ast.Name)
            and isinstance(body[0].value, ast.Name)
            and body[0].value.id == mvar
        ):
            acc = body[0].target.id
            prev = self.env.get(acc)
            if prev is None:
                raise self.refuse(
                    "RPC016", body[0], f"accumulator '{acc}' is unbound"
                )
            self._set_reduce("sum", ("const", 0.0), node)
            if prev in (("const", 0), ("const", 0.0)):
                self._bind(acc, ("msg",), node)
            else:
                self._bind(acc, ("add", prev, ("msg",)), node)
            return
        # Idiom B: peel prune  `if m[0] == TOKEN: ctx.remove_out_edge(m[1])`
        if (
            len(body) == 1
            and isinstance(body[0], ast.If)
            and not body[0].orelse
            and len(body[0].body) == 1
            and isinstance(body[0].body[0], ast.Expr)
            and isinstance(body[0].body[0].value, ast.Call)
        ):
            test = body[0].test
            call = body[0].body[0].value
            token = self._slot_test_token(test, mvar)
            if (
                token is not _NO_TOKEN
                and _attr_chain(call.func) == [self.ctx, "remove_out_edge"]
                and len(call.args) == 1
                and self._is_msg_slot(call.args[0], mvar, 1)
            ):
                self._note_peel_token(token, node)
                self.uses_mutation = True
                self._emit(KOp("prune_received", where=self._cond()))
                return
        raise self.refuse(
            "RPC018", node,
            "message loop is not a recognized monoid fold (sum "
            "accumulation or the k-core peel idiom)",
        )

    _NO = object()

    def _slot_test_token(self, test: ast.expr, mvar: str) -> Any:
        """``m[0] == CONST`` -> the constant; else the _NO_TOKEN sentinel."""
        if (
            isinstance(test, ast.Compare)
            and len(test.ops) == 1
            and isinstance(test.ops[0], ast.Eq)
            and self._is_msg_slot(test.left, mvar, 0)
        ):
            return self._resolve_const(test.comparators[0])
        return _NO_TOKEN

    @staticmethod
    def _is_msg_slot(node: ast.expr, mvar: str, slot: int) -> bool:
        return (
            isinstance(node, ast.Subscript)
            and isinstance(node.value, ast.Name)
            and node.value.id == mvar
            and isinstance(node.slice, ast.Constant)
            and node.slice.value == slot
        )

    def _resolve_const(self, node: ast.expr) -> Any:
        if isinstance(node, ast.Constant):
            return node.value
        if isinstance(node, ast.Name) and node.id in self.module_consts:
            return self.module_consts[node.id]
        return _NO_TOKEN

    def _note_peel_token(self, token: Any, node: ast.AST) -> None:
        if token is _NO_TOKEN:
            raise self.refuse(
                "RPC017", node, "peel tag is not a resolvable constant"
            )
        if self.peel_token is not None and self.peel_token != token:
            raise self.refuse(
                "RPC017", node,
                "peel messages are tagged with more than one constant",
            )
        self.peel_token = token

    def _neighbor_loop(self, node: ast.For, weighted: bool) -> None:
        if weighted:
            if not (
                isinstance(node.target, ast.Tuple)
                and len(node.target.elts) == 2
                and all(isinstance(e, ast.Name) for e in node.target.elts)
            ):
                raise self.refuse(
                    "RPC016", node.target, "unliftable zip loop target"
                )
            uvar = node.target.elts[0].id
            wvar = node.target.elts[1].id
        else:
            if not isinstance(node.target, ast.Name):
                raise self.refuse(
                    "RPC016", node.target, "unliftable neighbor loop target"
                )
            uvar = node.target.id
            wvar = None
        dropped = False
        for stmt in node.body:
            if not (
                isinstance(stmt, ast.Expr) and isinstance(stmt.value, ast.Call)
            ):
                raise self.refuse(
                    "RPC016", stmt,
                    "neighbor loop bodies may only send along the arc or "
                    "remove it",
                )
            call = stmt.value
            chain = _attr_chain(call.func)
            if chain == [self.ctx, "send"]:
                if len(call.args) != 2 or not self._is_loop_var(
                    call.args[0], uvar
                ):
                    raise self.refuse(
                        "RPC016", call,
                        "send target inside a neighbor loop must be the "
                        "loop variable (per-arc scatter)",
                    )
                payload = self._scatter_payload(call.args[1], wvar)
                self._emit(
                    KOp("scatter", where=self._cond(), payload=payload)
                )
            elif chain == [self.ctx, "remove_out_edge"]:
                if len(call.args) != 1 or not self._is_loop_var(
                    call.args[0], uvar
                ):
                    raise self.refuse(
                        "RPC016", call,
                        "edge removal inside a neighbor loop must target "
                        "the loop variable",
                    )
                dropped = True
            else:
                raise self.refuse(
                    "RPC016", call,
                    "only ctx.send / ctx.remove_out_edge are liftable "
                    "inside a neighbor loop",
                )
        if dropped:
            self.uses_mutation = True
            self._emit(KOp("drop_edges", where=self._cond()))

    @staticmethod
    def _is_loop_var(node: ast.expr, uvar: str) -> bool:
        if isinstance(node, ast.Name):
            return node.id == uvar
        if (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Name)
            and node.func.id == "int"
            and len(node.args) == 1
        ):
            return (
                isinstance(node.args[0], ast.Name) and node.args[0].id == uvar
            )
        return False

    def _scatter_payload(self, node: ast.expr, wvar: str | None) -> Expr:
        """Translate a per-arc payload; the zip weight var -> edge_weight."""
        if isinstance(node, ast.Tuple):
            # Peel-token payload (TOKEN, ctx.vertex_id): deliveries carry
            # only sender identity, so the dense form is a count token.
            if len(node.elts) == 2:
                token = self._resolve_const(node.elts[0])
                second = self._translate_with_weight(node.elts[1], wvar)
                if token is not _NO_TOKEN and second == ("vertex",):
                    self._note_peel_token(token, node)
                    return ("const", 1)
            raise self.refuse(
                "RPC017", node,
                "tuple payloads only lift as peel tokens "
                "(constant tag, sender id)",
            )
        return self._translate_with_weight(node, wvar)

    def _translate_with_weight(self, node: ast.expr, wvar: str | None) -> Expr:
        if wvar is not None:
            self.env[wvar] = ("edge_weight",)
        try:
            return self._expr(node)
        finally:
            if wvar is not None:
                self.env.pop(wvar, None)

    # -- returns -------------------------------------------------------
    def _return(self, node: ast.Return) -> None:
        if node.value is None:
            raise self.refuse(
                "RPC016", node, "compute() must return the new state"
            )
        expr = self._expr(node.value)
        cond = self._cond()
        if self.branch_depth == 0:
            # The function-suite return covers every path not already
            # captured by an early return (earlies take precedence when
            # the update expression is folded), even under a mask
            # narrowed by earlier early-return branches.
            self.final = expr
            self.done = True
        else:
            assert cond is not None or self.done is False
            self.early.append((cond or ("const", True), expr))

    # -- effect calls --------------------------------------------------
    def _effect_call(self, call: ast.Call) -> None:
        chain = _attr_chain(call.func)
        method: str | None = None
        if chain and len(chain) == 2 and chain[0] == self.ctx:
            method = chain[1]
        elif isinstance(call.func, ast.Name):
            bound = self.env.get(call.func.id)
            if isinstance(bound, tuple) and bound[:1] == ("__ctxmethod__",):
                method = bound[1]
        if method is None:
            raise self.refuse(
                "RPC016", call,
                "opaque call in compute() (only ctx effect methods lift)",
            )
        where = self._cond()
        if method == "send_to_neighbors":
            if len(call.args) != 1:
                raise self.refuse("RPC016", call, "unliftable send arity")
            payload = self._scatter_payload(call.args[0], None)
            self._emit(KOp("scatter", where=where, payload=payload))
            return
        if method == "vote_to_halt":
            self._emit(KOp("vote", where=where))
            return
        if method == "aggregate":
            if len(call.args) != 2:
                raise self.refuse("RPC016", call, "unliftable aggregate arity")
            name = _constant_str(call.args[0])
            if name is None:
                raise self.refuse(
                    "RPC016", call, "aggregate name is not a literal"
                )
            self._check_sum_aggregator(name, call)
            value = self._expr(call.args[1])
            self.agg_dtypes[name] = _promote(
                self.agg_dtypes.get(name),
                _dtype_of(value, "float64", None) or "float64",
            )
            self._emit(
                KOp("aggregate", where=where, name=name, value=value)
            )
            return
        if method == "send":
            raise self.refuse(
                "RPC016", call,
                "send target is data-dependent (dense scatter only follows "
                "the CSR arcs of a neighbor loop)",
            )
        if method in ("remove_out_edge", "add_out_edge"):
            raise self.refuse(
                "RPC016", call,
                f"ctx.{method}() outside a recognized peel idiom mutates "
                "topology data-dependently",
            )
        raise self.refuse(
            "RPC016", call, f"call to ctx.{method}() is not liftable"
        )

    def _check_sum_aggregator(self, name: str, node: ast.AST) -> None:
        decl = self.declared_aggs.get(name)
        if decl is None:
            raise self.refuse(
                "RPC016", node,
                f"aggregator '{name}' is not declared by aggregators()",
            )
        if decl != "SumAggregator":
            raise self.refuse(
                "RPC018", node,
                f"aggregator '{name}' folds with {decl}; only the Sum "
                "monoid lifts to a dense segment reduce",
            )

    # -- expressions ---------------------------------------------------
    def _expr(self, node: ast.expr) -> Expr:
        if isinstance(node, ast.Constant):
            if isinstance(node.value, (bool, int, float)):
                return ("const", node.value)
            raise self.refuse(
                "RPC017", node,
                f"{type(node.value).__name__} constants are not fixed-width "
                "NumPy scalars",
            )
        if isinstance(node, ast.Name):
            if node.id in self.env:
                val = self.env[node.id]
                if val == _MESSAGES:
                    # truthiness: `if messages:` / `... and messages`
                    return ("gt", ("msg_count",), ("const", 0))
                if val in (_COUNTER, _MODE_BEST):
                    raise self.refuse(
                        "RPC018", node,
                        f"'{node.id}' escapes the recognized mode-reduce "
                        "idiom",
                    )
                return val
            if node.id in self.module_consts:
                return ("const", self.module_consts[node.id])
            if node.id in self.module.from_imports:
                mod, attr = self.module.from_imports[node.id]
                if mod == "math" and attr in _MATH_CONSTS:
                    return ("const", _MATH_CONSTS[attr])
            raise self.refuse(
                "RPC016", node,
                f"name '{node.id}' is not statically resolvable",
            )
        if isinstance(node, ast.NamedExpr):  # walrus
            if not isinstance(node.target, ast.Name):
                raise self.refuse("RPC016", node, "unliftable walrus target")
            value = self._expr(node.value)
            self._bind(node.target.id, value, node)
            return self.env[node.target.id]
        if isinstance(node, ast.Attribute):
            return self._attribute(node)
        if isinstance(node, ast.BinOp):
            opname = _BINOPS.get(type(node.op))
            if opname is None:
                raise self.refuse(
                    "RPC018", node,
                    f"operator '{type(node.op).__name__}' is not a liftable "
                    "arithmetic op",
                )
            return (opname, self._expr(node.left), self._expr(node.right))
        if isinstance(node, ast.UnaryOp):
            if isinstance(node.op, ast.USub):
                return ("neg", self._expr(node.operand))
            if isinstance(node.op, ast.Not):
                return _neg(self._expr(node.operand))
            if isinstance(node.op, ast.UAdd):
                return self._expr(node.operand)
            raise self.refuse(
                "RPC018", node, "bitwise inversion is not a liftable op"
            )
        if isinstance(node, ast.BoolOp):
            opname = "and" if isinstance(node.op, ast.And) else "or"
            out = self._expr(node.values[0])
            for v in node.values[1:]:
                out = (opname, out, self._expr(v))
            return out
        if isinstance(node, ast.Compare):
            if len(node.ops) != 1:
                raise self.refuse(
                    "RPC016", node, "chained comparisons are not liftable"
                )
            opname = _CMPOPS.get(type(node.ops[0]))
            if opname is None:
                raise self.refuse(
                    "RPC016", node,
                    f"comparison '{type(node.ops[0]).__name__}' is not "
                    "liftable",
                )
            return (
                opname,
                self._expr(node.left),
                self._expr(node.comparators[0]),
            )
        if isinstance(node, ast.IfExp):
            return (
                "where",
                self._expr(node.test),
                self._expr(node.body),
                self._expr(node.orelse),
            )
        if isinstance(node, ast.Call):
            return self._call(node)
        if isinstance(node, ast.Subscript):
            raise self.refuse(
                "RPC017", node,
                "subscripted access implies a container state or payload "
                "schema, which is not fixed-width",
            )
        if isinstance(node, (ast.Tuple, ast.List, ast.Set, ast.Dict)):
            raise self.refuse(
                "RPC017", node,
                f"{type(node).__name__.lower()} values are not fixed-width "
                "NumPy scalars",
            )
        if isinstance(node, (ast.ListComp, ast.SetComp, ast.DictComp)):
            raise self.refuse(
                "RPC017", node, "comprehensions build container values"
            )
        raise self.refuse(
            "RPC016", node,
            f"{type(node).__name__} expressions are not liftable",
        )

    def _attribute(self, node: ast.Attribute) -> Expr:
        chain = _attr_chain(node)
        if chain is None:
            raise self.refuse(
                "RPC016", node, "attribute chain has a dynamic base"
            )
        if len(chain) == 2 and chain[0] == self.ctx:
            attr = chain[1]
            leaf = {
                "superstep": ("superstep",),
                "vertex_id": ("vertex",),
                "num_vertices": ("nv",),
                "out_degree": ("out_degree",),
            }.get(attr)
            if leaf is not None:
                return leaf
            if attr in ("send", "send_to_neighbors", "vote_to_halt",
                        "aggregate", "remove_out_edge", "add_out_edge"):
                return ("__ctxmethod__", attr)  # alias: emit = ctx.send_...
            raise self.refuse(
                "RPC016", node,
                f"ctx.{attr} has no dense equivalent outside a recognized "
                "idiom",
            )
        if len(chain) == 2 and chain[0] == "self":
            self.params.add(chain[1])
            return ("param", chain[1])
        if len(chain) == 2 and chain[0] in self.module.module_aliases:
            mod = self.module.module_aliases[chain[0]]
            if mod == "math" and chain[1] in _MATH_CONSTS:
                return ("const", _MATH_CONSTS[chain[1]])
        raise self.refuse(
            "RPC016", node,
            f"attribute '{'.'.join(chain)}' is not statically resolvable",
        )

    def _call(self, node: ast.Call) -> Expr:
        func = node.func
        if isinstance(func, ast.Name):
            return self._name_call(node, func.id)
        if isinstance(func, ast.Attribute):
            chain = _attr_chain(func)
            if chain == [self.ctx, "aggregated"]:
                name = (
                    _constant_str(node.args[0]) if len(node.args) == 1 else None
                )
                if name is None:
                    raise self.refuse(
                        "RPC016", node, "aggregated name is not a literal"
                    )
                self._check_sum_aggregator(name, node)
                return ("agg", name)
            if chain and len(chain) == 2 and chain[0] == "self":
                return self._inline_helper(node, chain[1])
            raise self.refuse(
                "RPC016", node,
                "method call in an expression has no dense equivalent",
            )
        raise self.refuse("RPC016", node, "dynamic call target")

    def _name_call(self, node: ast.Call, fname: str) -> Expr:
        args = node.args
        if fname in ("min", "max"):
            return self._min_max(node, fname)
        if fname == "sum":
            if len(args) == 1 and self._is_messages(args[0]) and not node.keywords:
                self._set_reduce("sum", ("const", 0.0), node)
                return ("msg",)
            if len(args) == 1 and isinstance(args[0], ast.GeneratorExp):
                return self._count_genexp(args[0], node)
            raise self.refuse(
                "RPC018", node,
                "sum() over a non-message iterable is not a gather",
            )
        if fname == "len":
            if len(args) == 1 and self._is_messages(args[0]):
                return ("msg_count",)
            raise self.refuse(
                "RPC016", node, "len() of a non-message value"
            )
        if fname in ("int", "float", "bool", "abs") and len(args) == 1:
            inner = self._expr(args[0])
            return {
                "int": ("cast_int", inner),
                "float": ("cast_float", inner),
                "bool": ("cast_bool", inner),
                "abs": ("abs", inner),
            }[fname]
        if fname == "Counter" and self.module.from_imports.get(fname) == (
            "collections", "Counter"
        ):
            if len(args) == 1 and self._is_messages(args[0]):
                return _COUNTER
            raise self.refuse(
                "RPC018", node, "Counter over a non-message iterable"
            )
        raise self.refuse(
            "RPC016", node, f"call to '{fname}()' is not liftable"
        )

    def _min_max(self, node: ast.Call, fname: str) -> Expr:
        args = node.args
        kws = {k.arg: k.value for k in node.keywords}
        # min(messages, default=X) -> monoid gather
        if len(args) == 1 and self._is_messages(args[0]):
            if set(kws) != {"default"}:
                raise self.refuse(
                    "RPC018", node,
                    f"{fname}() over messages needs a default= (empty "
                    "deliveries would raise at runtime)",
                )
            default = self._expr(kws["default"])
            self._set_reduce(fname, default, node)
            return ("msg",)
        # max(counts.values()) -> the winning multiplicity (mode idiom)
        if (
            fname == "max"
            and len(args) == 1
            and not kws
            and self._counter_method(args[0]) == "values"
        ):
            return _MODE_BEST
        # min(l for l, c in counts.items() if c == best) -> mode gather
        if (
            fname == "min"
            and len(args) == 1
            and not kws
            and isinstance(args[0], ast.GeneratorExp)
        ):
            return self._mode_genexp(args[0], node)
        if len(args) >= 2 and not kws:
            opname = "min2" if fname == "min" else "max2"
            out = self._expr(args[0])
            for a in args[1:]:
                out = (opname, out, self._expr(a))
            return out
        raise self.refuse(
            "RPC018", node, f"{fname}() call is not a liftable reduction"
        )

    def _counter_method(self, node: ast.expr) -> str | None:
        if (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Attribute)
            and isinstance(node.func.value, ast.Name)
            and self.env.get(node.func.value.id) == _COUNTER
            and not node.args
            and not node.keywords
        ):
            return node.func.attr
        return None

    def _mode_genexp(self, gen: ast.GeneratorExp, node: ast.AST) -> Expr:
        ok = (
            len(gen.generators) == 1
            and not gen.generators[0].is_async
            and self._counter_method(gen.generators[0].iter) == "items"
            and isinstance(gen.generators[0].target, ast.Tuple)
            and len(gen.generators[0].target.elts) == 2
            and all(
                isinstance(e, ast.Name)
                for e in gen.generators[0].target.elts
            )
            and len(gen.generators[0].ifs) == 1
        )
        if ok:
            lvar = gen.generators[0].target.elts[0].id
            cvar = gen.generators[0].target.elts[1].id
            cond = gen.generators[0].ifs[0]
            elt_ok = isinstance(gen.elt, ast.Name) and gen.elt.id == lvar
            cond_ok = (
                isinstance(cond, ast.Compare)
                and len(cond.ops) == 1
                and isinstance(cond.ops[0], ast.Eq)
                and isinstance(cond.left, ast.Name)
                and cond.left.id == cvar
                and isinstance(cond.comparators[0], ast.Name)
                and self.env.get(cond.comparators[0].id) == _MODE_BEST
            )
            if elt_ok and cond_ok:
                # Ties break to the smallest label: exactly the dense
                # mode-reduce's (max count, min label) ordering.
                self._set_reduce("mode", ("state",), node)
                return ("msg",)
        raise self.refuse(
            "RPC018", node,
            "label-vote expression deviates from the recognized "
            "mode-reduce idiom (min label among max-count labels)",
        )

    def _count_genexp(self, gen: ast.GeneratorExp, node: ast.AST) -> Expr:
        ok = (
            len(gen.generators) == 1
            and not gen.generators[0].is_async
            and self._is_messages(gen.generators[0].iter)
            and isinstance(gen.generators[0].target, ast.Name)
            and isinstance(gen.elt, ast.Constant)
            and gen.elt.value == 1
            and len(gen.generators[0].ifs) <= 1
        )
        if ok:
            mvar = gen.generators[0].target.id
            if gen.generators[0].ifs:
                token = self._slot_test_token(gen.generators[0].ifs[0], mvar)
                if token is _NO_TOKEN:
                    raise self.refuse(
                        "RPC018", node,
                        "counted-message filter is not a constant tag test",
                    )
                self._note_peel_token(token, node)
            self._set_reduce("count", ("const", 0), node)
            return ("msg",)
        raise self.refuse(
            "RPC018", node,
            "generator fold over messages is not a recognized count",
        )

    def _inline_helper(self, call: ast.Call, name: str) -> Expr:
        """Inline ``self.helper(...)`` when it is a single pure return.

        This is the expression-level counterpart of the costmodel's
        interprocedural send-site expansion: a helper whose body is one
        ``return <expr>`` over its formals lifts by substitution.
        """
        if self.helper_depth >= 3:
            raise self.refuse(
                "RPC016", call, "helper inlining exceeded depth 3"
            )
        fn = self.program.methods.get(name)
        if fn is None:
            raise self.refuse(
                "RPC016", call,
                f"self.{name}(...) is not a method of this program "
                "(opaque callable attribute)",
            )
        stmts = [
            s for s in fn.body
            if not (isinstance(s, ast.Expr) and isinstance(s.value, ast.Constant))
        ]
        if len(stmts) != 1 or not isinstance(stmts[0], ast.Return) \
                or stmts[0].value is None:
            raise self.refuse(
                "RPC016", call,
                f"helper self.{name}() is not a single pure return "
                "expression",
            )
        formals = [a.arg for a in fn.args.args[1:]]  # drop self
        if len(call.args) != len(formals) or call.keywords:
            raise self.refuse(
                "RPC016", call, f"helper self.{name}() call arity mismatch"
            )
        bindings = {
            f: self._expr(a) for f, a in zip(formals, call.args)
        }
        saved_env = self.env
        self.env = dict(saved_env)
        # The helper sees only its formals plus self/module names.
        for k in list(self.env):
            if k not in (self.state_name, self.messages_name):
                del self.env[k]
        self.env.update(bindings)
        self.helper_depth += 1
        try:
            return self._expr(stmts[0].value)
        finally:
            self.helper_depth -= 1
            self.env = saved_env

    # -- assembly ------------------------------------------------------
    def state_update_expr(self) -> Expr | None:
        result = self.final
        earlies = list(self.early)
        if result is None:
            # Every path returned inside branches: the last early return
            # is the base case, the rest fold over it.
            _, result = earlies.pop()
        for cond, expr in reversed(earlies):
            result = ("where", cond, expr, result)
        if result == ("state",):
            return None
        return result

    def phases(self) -> tuple[KernelPhase, ...]:
        out: list[KernelPhase] = []
        cur_guard: Expr | None = None
        cur_ops: list[KOp] = []
        first = True
        for guard, op in self.op_records:
            if first or guard != cur_guard:
                if not first:
                    out.append(KernelPhase(cur_guard, tuple(cur_ops)))
                cur_guard, cur_ops, first = guard, [], False
            cur_ops.append(op)
        if not first:
            out.append(KernelPhase(cur_guard, tuple(cur_ops)))
        return tuple(out)


_NO_TOKEN = _Lifter._NO


# ----------------------------------------------------------------------
# init_state / master_compute analysis
# ----------------------------------------------------------------------
def _lift_init(program: ProgramInfo, module: ModuleInfo,
               lifter: _Lifter) -> Expr:
    fn = program.methods.get("init_state")
    if fn is None:
        raise LiftRefusal(
            "RPC016", program.node,
            "program defines no init_state() to lift",
        )
    stmts = [
        s for s in fn.body
        if not (isinstance(s, ast.Expr) and isinstance(s.value, ast.Constant))
    ]
    if len(stmts) != 1 or not isinstance(stmts[0], ast.Return) \
            or stmts[0].value is None:
        raise LiftRefusal(
            "RPC016", fn,
            "init_state() has side effects or opaque statements; only a "
            "single pure return lifts",
        )
    formals = [a.arg for a in fn.args.args[1:]]  # (vertex_id, graph)
    sub = _Lifter(program, module)
    sub.params = lifter.params
    sub.requires_none = lifter.requires_none
    sub.env = {}
    if len(formals) >= 1:
        sub.env[formals[0]] = ("vertex",)
    if len(formals) >= 2:
        # graph.num_vertices is the only graph read with a dense leaf
        sub.ctx = None
        graph_name = formals[1]

        orig_attr = sub._attribute

        def graph_attr(node: ast.Attribute) -> Expr:
            chain = _attr_chain(node)
            if chain == [graph_name, "num_vertices"]:
                return ("nv",)
            return orig_attr(node)

        sub._attribute = graph_attr  # type: ignore[method-assign]
    try:
        return sub._expr(stmts[0].value)
    except LiftRefusal as r:
        # init_state() defines the state *schema*: any value the lifter
        # cannot reduce to a fixed-width scalar expression is a schema
        # refusal, whatever sub-rule tripped first.
        raise LiftRefusal(
            "RPC017",
            _loc(r.line),
            f"state schema is not fixed-width/NumPy-representable: "
            f"init_state() {r.reason}",
        ) from None


def _check_master(program: ProgramInfo, lifter: _Lifter) -> bool:
    """Master runs natively in the dense executor; lift-time we only need
    it to be *order-insensitive*: no publish() re-broadcast, and no halt
    decision comparing a float-summed aggregate against a threshold
    (summation order would flip the barrier count across engines)."""
    fn = program.methods.get("master_compute")
    if fn is None:
        return False
    master = program.master_param
    for node in ast.walk(fn):
        if isinstance(node, ast.Call):
            chain = _attr_chain(node.func)
            if chain and chain[0] == master and chain[-1] == "publish":
                raise LiftRefusal(
                    "RPC016", node,
                    "master publish() re-broadcasts a value the dense "
                    "executor does not model",
                )
        if isinstance(node, ast.Compare):
            for sub in ast.walk(node):
                if not isinstance(sub, ast.Call):
                    continue
                chain = _attr_chain(sub.func)
                if not (chain and chain[0] == master
                        and chain[-1] == "aggregated"):
                    continue
                name = (
                    _constant_str(sub.args[0]) if len(sub.args) == 1 else None
                )
                dtype = lifter.agg_dtypes.get(name or "", "float64")
                if dtype == "float64":
                    raise LiftRefusal(
                        "RPC016", node,
                        f"job halt compares float-summed aggregate "
                        f"'{name}' against a threshold; the decision is "
                        "summation-order-sensitive and cannot be "
                        "certified across engines",
                    )
    return True


# ----------------------------------------------------------------------
# Entry points
# ----------------------------------------------------------------------
def lift_program(program: ProgramInfo, module: ModuleInfo) -> KernelPlan:
    """Lift one VertexProgram subclass; raises :class:`LiftRefusal`."""
    fn = program.compute
    if fn is None:
        raise LiftRefusal(
            "RPC016", program.node,
            "program defines no compute() in this module",
        )
    profile = profile_program(program, module)
    if profile.fanout is FanoutClass.BROADCAST:
        site = min(
            (s for s in profile.send_sites
             if s.fanout is FanoutClass.BROADCAST),
            key=lambda s: s.line,
        )
        raise LiftRefusal(
            "RPC016", _loc(site.line),
            "message amplification: broadcast-class fan-out sends along "
            "data-dependent targets, which a CSR scatter cannot express",
        )

    lifter = _Lifter(program, module)
    state_init = _lift_init(program, module, lifter)
    lifter.run(fn.body)

    declared = _declared_combiner(program)
    if declared is not None and lifter.reduce is not None:
        monoid = _COMBINER_MONOID.get(declared)
        if monoid != lifter.reduce:
            raise LiftRefusal(
                "RPC018", program.node,
                f"declared combiner {declared} folds '{monoid}' but "
                f"compute() folds '{lifter.reduce}'; the dense gather "
                "cannot honour both",
            )

    has_master = _check_master(program, lifter)

    state_update = lifter.state_update_expr()
    phases = lifter.phases()

    init_dtype = _dtype_of(state_init, "float64", None) or "float64"
    payloads = [
        op.payload
        for _, op in lifter.op_records
        if op.kind == "scatter" and op.payload is not None
    ]
    msg_dtype = _promote(*(
        _dtype_of(p, init_dtype, None) for p in payloads
    )) if payloads else "float64"
    state_dtype = init_dtype
    for _ in range(2):  # fixed point through state/msg recursion
        if state_update is not None:
            state_dtype = _promote(
                init_dtype, _dtype_of(state_update, state_dtype, msg_dtype)
            )
        if payloads:
            msg_dtype = _promote(*(
                _dtype_of(p, state_dtype, msg_dtype) for p in payloads
            ))

    plan = KernelPlan(
        program=program.node.name,
        file=module.filename,
        line=program.node.lineno,
        state_dtype=state_dtype,
        state_init=state_init,
        message_dtype=msg_dtype,
        reduce=lifter.reduce,
        gather_default=lifter.gather_default,
        include_self=lifter.include_self,
        phases=phases,
        state_update=state_update,
        params=tuple(sorted(lifter.params)),
        requires_none=tuple(sorted(lifter.requires_none)),
        uses_mutation=lifter.uses_mutation,
        has_master=has_master,
        aggregates=tuple(sorted(lifter.agg_dtypes)),
    )
    digest = _plan_digest(plan.as_dict())
    object.__setattr__(plan, "digest", digest)
    return plan


def _loc(line: int) -> ast.AST:
    node = ast.Pass()
    node.lineno = line
    node.col_offset = 0
    return node


@dataclass(frozen=True)
class LiftResult:
    """Definitive verdict for one program: a plan or a located refusal."""

    program: str
    file: str
    line: int
    plan: KernelPlan | None = None
    rule_id: str | None = None
    reason: str | None = None
    refusal_line: int | None = None
    refusal_col: int | None = None

    @property
    def lifted(self) -> bool:
        return self.plan is not None

    def as_dict(self) -> dict:
        out = {
            "program": self.program,
            "file": self.file,
            "line": self.line,
            "status": "lifted" if self.lifted else "refused",
        }
        if self.plan is not None:
            out["digest"] = self.plan.digest
            out["reduce"] = self.plan.reduce
            out["state_dtype"] = self.plan.state_dtype
            out["phases"] = len(self.plan.phases)
            out["ops"] = self.plan.num_ops
        else:
            out["rule"] = self.rule_id
            out["reason"] = self.reason
            out["refusal_line"] = self.refusal_line
        return out


def lift_verdict(program: ProgramInfo, module: ModuleInfo) -> LiftResult:
    """Lift with memoization per ModuleInfo (the four rules share it)."""
    cache = getattr(module, "_lift_cache", None)
    if cache is None:
        cache = {}
        module._lift_cache = cache  # type: ignore[attr-defined]
    key = id(program.node)
    if key in cache:
        return cache[key]
    try:
        plan = lift_program(program, module)
        result = LiftResult(
            program=program.node.name,
            file=module.filename,
            line=program.node.lineno,
            plan=plan,
        )
    except LiftRefusal as r:
        result = LiftResult(
            program=program.node.name,
            file=module.filename,
            line=program.node.lineno,
            rule_id=r.rule_id,
            reason=r.reason,
            refusal_line=r.line,
            refusal_col=r.col,
        )
    cache[key] = result
    return result


def lift_source(source: str, filename: str = "<string>") -> list[LiftResult]:
    """Verdicts for every VertexProgram subclass in one module's source."""
    from .analyzer import _find_programs

    try:
        tree = ast.parse(source, filename=filename)
    except SyntaxError:
        return []
    module = ModuleInfo.build(tree, filename)
    return [lift_verdict(p, module) for p in _find_programs(tree)]


def lift_file(path: str | Path) -> list[LiftResult]:
    path = Path(path)
    try:
        source = path.read_text(encoding="utf-8")
    except (OSError, UnicodeDecodeError):
        return []
    return lift_source(source, filename=str(path))


def lift_paths(targets) -> list[LiftResult]:
    from .analyzer import iter_python_files

    out: list[LiftResult] = []
    for path in iter_python_files(targets):
        out.extend(lift_file(path))
    return out


def lift_of(program: Any) -> LiftResult | None:
    """Verdict for a *live* program object (or class) from its source file.

    Mirrors :func:`repro.check.costmodel.profile_of`: unwraps wrappers
    exposing ``.inner``; returns None when the source cannot be located.
    """
    import inspect

    seen = 0
    while hasattr(program, "inner") and seen < 8:
        program = program.inner
        seen += 1
    cls = program if isinstance(program, type) else type(program)
    try:
        path = inspect.getsourcefile(cls)
        if path is None:
            return None
        source = Path(path).read_text(encoding="utf-8")
    except (TypeError, OSError, UnicodeDecodeError):
        return None
    for result in lift_source(source, filename=path):
        if result.program == cls.__name__:
            return result
    return None


# ----------------------------------------------------------------------
# Catalog rules (opt-in: only run under `repro check --kernel-plan`)
# ----------------------------------------------------------------------
class VectorizableRule(Rule):
    """RPC015: the program lifts to a dense KernelPlan.  Informational —
    the digest names the exact plan the dense executor was certified on."""

    id = "RPC015"
    severity = Severity.INFO
    summary = "compute() lifts to a dense KernelPlan (vectorizable)"
    hint = "run it with `repro run --engine dense-ref` to use the plan"

    def check(self, program, module):
        res = lift_verdict(program, module)
        if res.plan is not None:
            p = res.plan
            yield self.finding(
                module, program.node,
                f"lifts to KernelPlan {p.digest[:16]} "
                f"({len(p.phases)} phases, {p.num_ops} ops, "
                f"reduce={p.reduce or 'none'}, state={p.state_dtype})",
            )


class DataDependentControlRule(Rule):
    """RPC016: data-dependent control flow or dataflow blocks dense mode."""

    id = "RPC016"
    severity = Severity.INFO
    summary = "data-dependent control flow blocks dense-mode lifting"
    hint = (
        "restructure per-vertex branches into uniform arithmetic over "
        "messages, neighbors, and superstep guards"
    )

    def check(self, program, module):
        res = lift_verdict(program, module)
        if res.rule_id == self.id:
            yield self.finding(
                module, _loc_at(res), f"dense lift refused: {res.reason}"
            )


class PayloadSchemaRule(Rule):
    """RPC017: state/payload schema is not fixed-width NumPy-representable."""

    id = "RPC017"
    severity = Severity.INFO
    summary = "state or payload schema is not fixed-width/NumPy-representable"
    hint = (
        "use scalar states and payloads (float/int/bool); containers and "
        "objects have no dense column form"
    )

    def check(self, program, module):
        res = lift_verdict(program, module)
        if res.rule_id == self.id:
            yield self.finding(
                module, _loc_at(res), f"dense lift refused: {res.reason}"
            )


class UnknownMonoidRule(Rule):
    """RPC018: the message reduction is not a known monoid."""

    id = "RPC018"
    severity = Severity.INFO
    summary = "message reduction is not expressible as a known monoid"
    hint = (
        "fold messages with sum/min/max (or the mode/count idioms); "
        "declare a combiner that matches the fold"
    )

    def check(self, program, module):
        res = lift_verdict(program, module)
        if res.rule_id == self.id:
            yield self.finding(
                module, _loc_at(res), f"dense lift refused: {res.reason}"
            )


def _loc_at(res: LiftResult) -> ast.AST:
    node = ast.Pass()
    node.lineno = res.refusal_line or res.line
    node.col_offset = (res.refusal_col or 1) - 1
    return node


KERNEL_RULES: tuple[Rule, ...] = (
    VectorizableRule(),
    DataDependentControlRule(),
    PayloadSchemaRule(),
    UnknownMonoidRule(),
)
