"""Rule-selection configuration, loadable from ``[tool.repro.check]``.

``select`` / ``ignore`` are lists of rule-id *prefixes* (ruff-style): a
rule is enabled when some select prefix matches and no ignore prefix does.
The defaults enable the whole RPC set.  CLI flags override the table.

``tomllib`` only exists on 3.11+; on 3.10 a minimal line parser reads just
the ``[tool.repro.check]`` table (its values are plain strings/lists, well
within ``ast.literal_eval`` territory).
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from pathlib import Path

__all__ = ["CheckConfig", "DEFAULT_CONFIG", "load_config"]

_TABLE = "tool.repro.check"


@dataclass(frozen=True)
class CheckConfig:
    """Which rules run (prefix match, ruff-style)."""

    select: tuple[str, ...] = ("RPC",)
    ignore: tuple[str, ...] = ()

    def enabled(self, rule_id: str) -> bool:
        if not any(rule_id.startswith(p) for p in self.select):
            return False
        return not any(rule_id.startswith(p) for p in self.ignore)

    def with_overrides(
        self,
        select: list[str] | None = None,
        ignore: list[str] | None = None,
    ) -> "CheckConfig":
        return CheckConfig(
            select=tuple(select) if select else self.select,
            ignore=tuple(ignore) if ignore is not None and ignore else self.ignore,
        )


DEFAULT_CONFIG = CheckConfig()


def _parse_table_fallback(text: str) -> dict:
    """Tiny TOML-table reader for 3.10 (no tomllib): one flat table only."""
    values: dict = {}
    in_table = False
    for raw in text.splitlines():
        line = raw.strip()
        if not line or line.startswith("#"):
            continue
        if line.startswith("["):
            in_table = line == f"[{_TABLE}]"
            continue
        if in_table and "=" in line:
            key, _, value = line.partition("=")
            try:
                values[key.strip()] = ast.literal_eval(value.strip())
            except (ValueError, SyntaxError):
                continue  # value shapes we don't need (dates, inline tables)
    return values


def _read_table(pyproject: Path) -> dict:
    text = pyproject.read_text(encoding="utf-8")
    try:
        import tomllib  # 3.11+
    except ImportError:
        return _parse_table_fallback(text)
    try:
        data = tomllib.loads(text)
    except tomllib.TOMLDecodeError:
        return {}
    table = data
    for part in _TABLE.split("."):
        table = table.get(part, {}) if isinstance(table, dict) else {}
    return table if isinstance(table, dict) else {}


def load_config(start: str | Path | None = None) -> CheckConfig:
    """Find the nearest pyproject.toml at/above ``start`` and read the table.

    Missing file or table -> the defaults, never an error: the analyzer
    must work on any checkout.
    """
    directory = Path(start) if start is not None else Path.cwd()
    if directory.is_file():
        directory = directory.parent
    for candidate in (directory, *directory.parents):
        pyproject = candidate / "pyproject.toml"
        if pyproject.is_file():
            try:
                table = _read_table(pyproject)
            except OSError:
                return DEFAULT_CONFIG
            select = table.get("select", list(DEFAULT_CONFIG.select))
            ignore = table.get("ignore", list(DEFAULT_CONFIG.ignore))
            if not isinstance(select, (list, tuple)) or not all(
                isinstance(s, str) for s in select
            ):
                select = list(DEFAULT_CONFIG.select)
            if not isinstance(ignore, (list, tuple)) or not all(
                isinstance(s, str) for s in ignore
            ):
                ignore = list(DEFAULT_CONFIG.ignore)
            return CheckConfig(select=tuple(select), ignore=tuple(ignore))
    return DEFAULT_CONFIG
