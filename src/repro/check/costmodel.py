"""Static message-cost models for vertex programs (the ``--profile`` pass).

The swath heuristics (§IV, §VI-B) exist because O(|V||E|)-message programs
like BC exhaust worker memory; until now the engine only learned a
program's message behaviour *at runtime*, via probe swaths
(:class:`~repro.scheduling.sizing.SamplingSizer`) or feedback
(:class:`~repro.scheduling.sizing.AdaptiveSizer`).  This module learns it
*before the first superstep*: an abstract-interpretation pass over
``compute()``'s AST (reusing :class:`~repro.check.rules.ProgramInfo`)
produces a :class:`ProgramProfile` per program:

* **fan-out class** — how many messages one ``compute()`` call can emit,
  as a branch-sensitive upper bound over every send site:
  ``none`` / ``O(1)`` / ``O(out_degree)`` / ``broadcast``.  Each send site
  is weighted by its enclosing loops — loops over the vertex's neighbors
  multiply by ``out_degree``; loops over data-dependent sequences
  (messages, state containers) multiply by the in-flow.  A degree factor
  *under* a data loop (BC's per-root forward wave) or two stacked data
  loops is message amplification: ``broadcast`` class, the paper's
  O(|V||E|) shape.  For the bounded classes the profile also carries
  coefficients ``(alpha, beta, gamma)`` such that one call sends at most
  ``alpha + beta*out_degree + gamma*len(messages)`` messages — the
  machine-checkable form the property tests verify against measured runs.
* **payload model** — wire bytes per message estimated from the ``send()``
  argument expressions (scalars 8 bytes, tuple literals 8/slot, opaque
  constructions flagged unbounded).
* **combiner compatibility** — whether ``compute()`` reduces its messages
  with a commutative/associative fold (``sum``/``min``/``max`` over the
  sequence or an accumulation loop) and which
  :mod:`repro.bsp.combiners` combiner that reduction already matches.
* **aggregator inference** — the declared aggregator table with each
  entry's constructor type.
* **safety facts** — unpicklable program/vertex state (lambdas, open
  handles, locks: rule RPC011 and the :mod:`repro.dist` pre-fork gate) and
  state-lifetime accumulators that leak into payloads (RPC014).

Everything here is pure AST — nothing is imported or executed — so the
pass is safe on untrusted code and fast enough to run before every job
(``benchmarks/bench_check.py`` tracks its throughput).
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from enum import Enum
from pathlib import Path
from typing import Any, Iterable

from .rules import (
    ModuleInfo,
    ProgramInfo,
    _attr_chain,
    _collect_aliases,
    _constant_str,
)

__all__ = [
    "FanoutClass",
    "SendSite",
    "PayloadModel",
    "PickleRisk",
    "ProgramProfile",
    "profile_program",
    "profile_source",
    "profile_file",
    "profile_paths",
    "profile_of",
    "estimate_bytes_per_root",
]

#: Container-growing method names (a superset of the generic mutators that
#: actually *add* elements — ``pop``/``clear`` shrink and are not growth).
_GROWTH_CALLS = frozenset(
    {"append", "extend", "insert", "add", "update", "setdefault"}
)

#: ``threading``/``multiprocessing`` constructors whose instances cannot
#: cross a process boundary (pickling them raises).
_LOCK_CONSTRUCTORS = frozenset(
    {"Lock", "RLock", "Condition", "Event", "Semaphore", "BoundedSemaphore",
     "Barrier"}
)


class FanoutClass(str, Enum):
    """Per-``compute()``-call message fan-out, as a total order.

    ``NONE < CONSTANT < OUT_DEGREE < BROADCAST``; a class *covers* every
    class below it, so the overall program class is the max over send
    sites (equivalently: the branch-insensitive upper bound).
    """

    NONE = "none"
    CONSTANT = "O(1)"
    OUT_DEGREE = "O(out_degree)"
    BROADCAST = "broadcast"

    @property
    def level(self) -> int:
        return _FANOUT_LEVELS[self]

    def covers(self, other: "FanoutClass") -> bool:
        """True when this class is an upper bound for ``other``."""
        return self.level >= other.level

    def __str__(self) -> str:  # "broadcast", not "FanoutClass.BROADCAST"
        return self.value


_FANOUT_LEVELS = {
    FanoutClass.NONE: 0,
    FanoutClass.CONSTANT: 1,
    FanoutClass.OUT_DEGREE: 2,
    FanoutClass.BROADCAST: 3,
}


@dataclass(frozen=True)
class PayloadModel:
    """Wire-size model of one (or the widest) message payload.

    ``bounded`` is False when the payload's size depends on data the pass
    cannot bound statically (e.g. ``tuple(best)`` of a grown list) — the
    RPC014 precondition.
    """

    kind: str  # "none" | "scalar" | "tuple" | "sequence" | "opaque"
    nbytes: int  # upper estimate of one payload's wire bytes
    width: int | None = None  # tuple arity when statically known
    bounded: bool = True

    def as_dict(self) -> dict:
        return {
            "kind": self.kind,
            "nbytes": self.nbytes,
            "width": self.width,
            "bounded": self.bounded,
        }


@dataclass(frozen=True)
class SendSite:
    """One ``ctx.send``/``ctx.send_to_neighbors`` call site in compute()."""

    line: int
    call: str  # "send" | "send_to_neighbors"
    loops: tuple[str, ...]  # enclosing loop kinds, outermost first
    fanout: FanoutClass
    payload: PayloadModel
    #: superstep this site is pinned to by an ``if ctx.superstep == k`` guard
    superstep: int | None = None

    def as_dict(self) -> dict:
        return {
            "line": self.line,
            "call": self.call,
            "loops": list(self.loops),
            "fanout": str(self.fanout),
            "payload": self.payload.as_dict(),
            "superstep": self.superstep,
        }


@dataclass(frozen=True)
class PickleRisk:
    """One unpicklable-state hazard for the process engine (RPC011)."""

    line: int
    method: str
    detail: str

    def as_dict(self) -> dict:
        return {"line": self.line, "method": self.method, "detail": self.detail}


@dataclass(frozen=True)
class ProgramProfile:
    """The machine-readable static cost model of one vertex program."""

    program: str
    file: str
    line: int
    fanout: FanoutClass
    #: one call sends <= alpha + beta*out_degree + gamma*len(messages)
    #: messages; None when the class is ``broadcast`` (no affine bound).
    fanout_coeffs: tuple[int, int, int] | None
    send_sites: tuple[SendSite, ...]
    #: fan-out per statically-pinned superstep (sites guarded by
    #: ``ctx.superstep == k``); unpinned sites land under key ``None``.
    fanout_by_superstep: tuple[tuple[int | None, FanoutClass], ...]
    payload: PayloadModel
    combiner_declared: str | None
    #: "sum" | "min" | "max" when compute() folds messages commutatively
    reduction: str | None
    combiner_suggested: str | None
    aggregators: tuple[tuple[str, str], ...]
    #: module ships a ``start_messages`` factory (swath-schedulable)
    message_driven: bool
    pickle_risks: tuple[PickleRisk, ...]
    #: (line, expression) of send payloads referencing state-lifetime
    #: accumulators grown inside compute() (RPC014)
    unbounded_payload_sites: tuple[tuple[int, str], ...]

    def as_dict(self) -> dict:
        return {
            "program": self.program,
            "file": self.file,
            "line": self.line,
            "fanout": str(self.fanout),
            "fanout_coeffs": (
                list(self.fanout_coeffs) if self.fanout_coeffs else None
            ),
            "fanout_by_superstep": [
                {"superstep": s, "fanout": str(c)}
                for s, c in self.fanout_by_superstep
            ],
            "send_sites": [s.as_dict() for s in self.send_sites],
            "payload": self.payload.as_dict(),
            "combiner_declared": self.combiner_declared,
            "reduction": self.reduction,
            "combiner_suggested": self.combiner_suggested,
            "aggregators": [
                {"name": n, "type": t} for n, t in self.aggregators
            ],
            "message_driven": self.message_driven,
            "pickle_risks": [r.as_dict() for r in self.pickle_risks],
            "unbounded_payload_sites": [
                {"line": ln, "expr": expr}
                for ln, expr in self.unbounded_payload_sites
            ],
        }

    def render(self) -> str:
        """One-line human-readable form (``repro check --profile``)."""
        combiner = self.combiner_declared or (
            f"suggest {self.combiner_suggested}"
            if self.combiner_suggested
            else "none"
        )
        aggs = ",".join(n for n, _ in self.aggregators) or "-"
        flags = []
        if self.message_driven:
            flags.append("message-driven")
        if self.pickle_risks:
            flags.append(f"pickle-risks={len(self.pickle_risks)}")
        if self.unbounded_payload_sites:
            flags.append("unbounded-payload")
        tail = f"  [{' '.join(flags)}]" if flags else ""
        return (
            f"{self.file}:{self.line} {self.program}: "
            f"fan-out={self.fanout} payload<={self.payload.nbytes}B "
            f"combiner={combiner} aggregators={aggs}{tail}"
        )


# ----------------------------------------------------------------------
# Alias classification helpers
# ----------------------------------------------------------------------
def _mentions_any(node: ast.AST, ctx: str | None, attrs: set[str],
                  names: set[str]) -> bool:
    """True when the expression reads ``ctx.<attr in attrs>`` or a name."""
    for sub in ast.walk(node):
        if (
            isinstance(sub, ast.Attribute)
            and sub.attr in attrs
            and isinstance(sub.value, ast.Name)
            and sub.value.id == ctx
        ):
            return True
        if isinstance(sub, ast.Name) and sub.id in names:
            return True
    return False


def _derived_names(fn: ast.FunctionDef, ctx: str | None, attrs: set[str],
                   seeds: set[str]) -> set[str]:
    """Names transitively assigned from neighbor-bearing expressions.

    Covers plain assignment and walrus bindings (``if (ns :=
    ctx.out_neighbors())``); both introduce aliases the fan-out
    classifier must chase.
    """
    derived = set(seeds)
    for _ in range(3):  # fixed point over alias-of-alias chains
        grew = False
        for node in ast.walk(fn):
            if isinstance(node, ast.Assign) and _mentions_any(
                node.value, ctx, attrs, derived
            ):
                for t in node.targets:
                    if isinstance(t, ast.Name) and t.id not in derived:
                        derived.add(t.id)
                        grew = True
            elif isinstance(node, ast.NamedExpr) and _mentions_any(
                node.value, ctx, attrs, derived
            ):
                if node.target.id not in derived:
                    derived.add(node.target.id)
                    grew = True
        if not grew:
            break
    return derived


def _send_aliases(fn: ast.FunctionDef, ctx: str | None) -> dict[str, str]:
    """Local names bound (possibly through chains) to a ctx send method.

    ``emit = ctx.send_to_neighbors; send = emit; send(x)`` must count as
    a send site, not silently profile as fan-out NONE.
    """
    if ctx is None:
        return {}
    aliases: dict[str, str] = {}
    for _ in range(3):  # alias-of-alias chains
        grew = False
        for node in ast.walk(fn):
            value = None
            if isinstance(node, ast.Assign):
                value = node.value
                targets = [
                    t for t in node.targets if isinstance(t, ast.Name)
                ]
            elif isinstance(node, ast.NamedExpr):
                value = node.value
                targets = [node.target]
            else:
                continue
            method = None
            if (
                isinstance(value, ast.Attribute)
                and value.attr in ("send", "send_to_neighbors")
                and isinstance(value.value, ast.Name)
                and value.value.id == ctx
            ):
                method = value.attr
            elif isinstance(value, ast.Name) and value.id in aliases:
                method = aliases[value.id]
            if method is None:
                continue
            for t in targets:
                if t.id not in aliases:
                    aliases[t.id] = method
                    grew = True
        if not grew:
            break
    return aliases


def _is_constant_iter(node: ast.expr) -> bool:
    """Iteration with a statically bounded trip count."""
    if isinstance(node, (ast.Tuple, ast.List, ast.Set)):
        return all(isinstance(e, ast.Constant) for e in node.elts)
    if isinstance(node, ast.Call) and isinstance(node.func, ast.Name):
        if node.func.id == "range":
            return all(isinstance(a, ast.Constant) for a in node.args)
        if node.func.id == "enumerate" and node.args:
            return _is_constant_iter(node.args[0])
    return False


def _superstep_pin(test: ast.expr, ctx: str | None) -> int | None:
    """``ctx.superstep == <const>`` guard -> the pinned superstep."""
    if not (
        isinstance(test, ast.Compare)
        and len(test.ops) == 1
        and isinstance(test.ops[0], ast.Eq)
    ):
        return None
    left, right = test.left, test.comparators[0]
    for a, b in ((left, right), (right, left)):
        if (
            isinstance(a, ast.Attribute)
            and a.attr == "superstep"
            and isinstance(a.value, ast.Name)
            and a.value.id == ctx
            and isinstance(b, ast.Constant)
            and isinstance(b.value, int)
        ):
            return b.value
    return None


# ----------------------------------------------------------------------
# Payload model
# ----------------------------------------------------------------------
def _payload_model(expr: ast.expr | None) -> PayloadModel:
    if expr is None:
        return PayloadModel(kind="none", nbytes=0)
    if isinstance(expr, ast.Constant):
        v = expr.value
        if v is None:
            return PayloadModel(kind="none", nbytes=0)
        if isinstance(v, (bytes, str)):
            return PayloadModel(kind="scalar", nbytes=max(8, len(v)))
        return PayloadModel(kind="scalar", nbytes=8)
    if isinstance(expr, (ast.Tuple, ast.List)):
        total = 0
        bounded = True
        for elt in expr.elts:
            if isinstance(elt, ast.Starred):
                bounded = False
                total += 32
                continue
            sub = _payload_model(elt)
            bounded = bounded and sub.bounded
            total += max(8, sub.nbytes)
        return PayloadModel(
            kind="tuple", nbytes=total, width=len(expr.elts), bounded=bounded
        )
    if isinstance(expr, ast.Call):
        fname = None
        if isinstance(expr.func, ast.Name):
            fname = expr.func.id
        elif isinstance(expr.func, ast.Attribute):
            fname = expr.func.attr
        if fname in ("tuple", "list", "frozenset", "set", "dict", "sorted"):
            # A whole container built from runtime data: width unknown.
            return PayloadModel(kind="sequence", nbytes=64, bounded=False)
        return PayloadModel(kind="opaque", nbytes=32, bounded=True)
    if isinstance(
        expr,
        (ast.Name, ast.Attribute, ast.Subscript, ast.BinOp, ast.UnaryOp,
         ast.IfExp, ast.Compare),
    ):
        # Names/arithmetic are modelled as scalars — the dominant idiom
        # (rank mass, distances, labels); containers smuggled through a
        # bare name surface via the RPC014 accumulator check instead.
        return PayloadModel(kind="scalar", nbytes=8)
    return PayloadModel(kind="opaque", nbytes=32, bounded=True)


def _widest(models: Iterable[PayloadModel]) -> PayloadModel:
    best = PayloadModel(kind="none", nbytes=0)
    bounded = True
    for m in models:
        bounded = bounded and m.bounded
        if m.nbytes > best.nbytes or best.kind == "none":
            best = m
    if best.bounded != bounded:
        best = PayloadModel(
            kind=best.kind, nbytes=best.nbytes, width=best.width,
            bounded=bounded,
        )
    return best


# ----------------------------------------------------------------------
# Send-site discovery (the abstract-interpretation walk)
# ----------------------------------------------------------------------
class _SendWalker(ast.NodeVisitor):
    """Tracks enclosing loops and superstep guards down to each send."""

    def __init__(self, ctx_name: str | None, neighbor_names: set[str],
                 data_names: set[str],
                 helper_methods: frozenset[str] = frozenset(),
                 send_aliases: dict[str, str] | None = None) -> None:
        self.ctx = ctx_name
        self.neighbors = neighbor_names
        self.data = data_names
        self.helpers = helper_methods
        self.send_aliases = send_aliases or {}
        self.loop_stack: list[str] = []
        self.superstep_stack: list[int] = []
        self.sites: list[SendSite] = []
        #: ``self.<helper>(...)`` calls to expand interprocedurally:
        #: (method, call node, enclosing loops, enclosing superstep pins)
        self.helper_calls: list[
            tuple[str, ast.Call, tuple[str, ...], tuple[int, ...]]
        ] = []

    # -- loop classification -------------------------------------------
    def _classify_iter(self, node: ast.expr) -> str:
        src = node
        if (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Name)
            and node.func.id in ("enumerate", "sorted", "reversed", "iter")
            and node.args
        ):
            src = node.args[0]
        if _is_constant_iter(src):
            return "constant"
        if _mentions_any(src, self.ctx, {"out_neighbors", "out_weights",
                                         "out_degree"}, self.neighbors):
            return "neighbors"
        return "data"

    def visit_For(self, node: ast.For) -> None:
        kind = self._classify_iter(node.iter)
        # The loop target iterates data-dependent content: names bound from
        # it are data-derived for any nested loop (triangles' `candidates`).
        if kind == "data":
            for t in ast.walk(node.target):
                if isinstance(t, ast.Name):
                    self.data.add(t.id)
        self.loop_stack.append(kind)
        self.generic_visit(node)
        self.loop_stack.pop()

    def visit_While(self, node: ast.While) -> None:
        self.loop_stack.append("data")  # trip count is data-dependent
        self.generic_visit(node)
        self.loop_stack.pop()

    def visit_If(self, node: ast.If) -> None:
        pin = _superstep_pin(node.test, self.ctx)
        if pin is not None:
            self.superstep_stack.append(pin)
            for stmt in node.body:
                self.visit(stmt)
            self.superstep_stack.pop()
            for stmt in node.orelse:
                self.visit(stmt)
        else:
            self.generic_visit(node)

    def visit_Match(self, node: ast.Match) -> None:
        # `match ctx.superstep:` pins each literal-int case the same way
        # an `if ctx.superstep == k:` chain would.
        subject_is_superstep = (
            isinstance(node.subject, ast.Attribute)
            and node.subject.attr == "superstep"
            and isinstance(node.subject.value, ast.Name)
            and node.subject.value.id == self.ctx
        )
        self.visit(node.subject)
        for case in node.cases:
            pin = None
            if (
                subject_is_superstep
                and isinstance(case.pattern, ast.MatchValue)
                and isinstance(case.pattern.value, ast.Constant)
                and isinstance(case.pattern.value.value, int)
            ):
                pin = case.pattern.value.value
            if pin is not None:
                self.superstep_stack.append(pin)
            for stmt in case.body:
                self.visit(stmt)
            if pin is not None:
                self.superstep_stack.pop()

    # -- the send sites -------------------------------------------------
    def visit_Call(self, node: ast.Call) -> None:
        call = None
        if isinstance(node.func, ast.Attribute) and node.func.attr in (
            "send", "send_to_neighbors"
        ):
            call = node.func.attr
        elif (
            isinstance(node.func, ast.Name)
            and node.func.id in self.send_aliases
        ):
            call = self.send_aliases[node.func.id]
        if call is not None:
            loops = tuple(self.loop_stack)
            data = sum(1 for k in loops if k == "data")
            degree = call == "send_to_neighbors" or "neighbors" in loops
            if (degree and data >= 1) or data >= 2:
                # Amplification: messages beget degree-many (or nested
                # data-many) messages — the O(|V||E|) shape.
                fanout = FanoutClass.BROADCAST
            elif degree or data == 1:
                # A single data loop over the in-flow is non-amplifying:
                # replies are bounded by deliveries, themselves
                # edge-bounded — same order as a degree fan-out.
                fanout = FanoutClass.OUT_DEGREE
            else:
                fanout = FanoutClass.CONSTANT
            payload_expr: ast.expr | None = None
            if call == "send" and len(node.args) >= 2:
                payload_expr = node.args[1]
            elif call == "send_to_neighbors" and node.args:
                payload_expr = node.args[0]
            self.sites.append(
                SendSite(
                    line=node.lineno,
                    call=call,
                    loops=loops,
                    fanout=fanout,
                    payload=_payload_model(payload_expr),
                    superstep=(
                        self.superstep_stack[-1]
                        if self.superstep_stack
                        else None
                    ),
                )
            )
        elif (
            isinstance(node.func, ast.Attribute)
            and isinstance(node.func.value, ast.Name)
            and node.func.value.id == "self"
            and node.func.attr in self.helpers
        ):
            self.helper_calls.append(
                (
                    node.func.attr,
                    node,
                    tuple(self.loop_stack),
                    tuple(self.superstep_stack),
                )
            )
        self.generic_visit(node)


def _fanout_coeffs(sites: list[SendSite]) -> tuple[int, int, int] | None:
    """Affine per-call bound ``alpha + beta*deg + gamma*len(messages)``."""
    alpha = beta = gamma = 0
    for s in sites:
        if s.fanout is FanoutClass.BROADCAST:
            return None
        if s.fanout is FanoutClass.CONSTANT:
            alpha += 1
        elif "data" in s.loops:
            gamma += 1
        else:
            beta += 1
    return (alpha, beta, gamma)


# ----------------------------------------------------------------------
# Combiner / aggregator inference
# ----------------------------------------------------------------------
_REDUCTION_COMBINERS = {
    "sum": "SumCombiner",
    "min": "MinCombiner",
    "max": "MaxCombiner",
}


def _call_type_name(expr: ast.expr) -> str | None:
    """``SumAggregator()`` / ``combiners.MinCombiner()`` -> the type name."""
    if not isinstance(expr, ast.Call):
        return None
    if isinstance(expr.func, ast.Name):
        return expr.func.id
    if isinstance(expr.func, ast.Attribute):
        return expr.func.attr
    return None


def _declared_combiner(program: ProgramInfo) -> str | None:
    """The combiner the program itself wires up, if any."""
    for stmt in program.node.body:
        if isinstance(stmt, ast.Assign):
            for t in stmt.targets:
                if isinstance(t, ast.Name) and t.id == "combiner":
                    return _call_type_name(stmt.value) or "custom"
        elif isinstance(stmt, ast.AnnAssign):
            if (
                isinstance(stmt.target, ast.Name)
                and stmt.target.id == "combiner"
                and stmt.value is not None
            ):
                return _call_type_name(stmt.value) or "custom"
    init = program.methods.get("__init__")
    if init is not None:
        for node in ast.walk(init):
            if isinstance(node, ast.Assign):
                for t in node.targets:
                    if (
                        isinstance(t, ast.Attribute)
                        and t.attr == "combiner"
                        and isinstance(t.value, ast.Name)
                        and t.value.id == "self"
                        and not (
                            isinstance(node.value, ast.Constant)
                            and node.value.value is None
                        )
                    ):
                        return _call_type_name(node.value) or "custom"
    return None


def _detect_reduction(fn: ast.FunctionDef, message_names: set[str]) -> str | None:
    """A commutative/associative fold of the delivered messages."""
    loop_vars: dict[str, str] = {}  # loop var -> owning messages name
    for node in ast.walk(fn):
        # Direct builtin fold: min(messages, ...), sum(messages), ...
        if (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Name)
            and node.func.id in _REDUCTION_COMBINERS
            and node.args
            and isinstance(node.args[0], ast.Name)
            and node.args[0].id in message_names
        ):
            return node.func.id
        if isinstance(node, ast.For):
            if (
                isinstance(node.iter, ast.Name)
                and node.iter.id in message_names
                and isinstance(node.target, ast.Name)
            ):
                loop_vars[node.target.id] = node.iter.id
    if loop_vars:
        # Accumulation loop: `for m in messages: acc += m`.
        for node in ast.walk(fn):
            if (
                isinstance(node, ast.AugAssign)
                and isinstance(node.op, ast.Add)
                and isinstance(node.target, ast.Name)
                and isinstance(node.value, ast.Name)
                and node.value.id in loop_vars
            ):
                return "sum"
    return None


def _declared_aggregators(program: ProgramInfo) -> tuple[tuple[str, str], ...]:
    fn = program.methods.get("aggregators")
    if fn is None:
        return ()
    for node in ast.walk(fn):
        if isinstance(node, ast.Return) and isinstance(node.value, ast.Dict):
            out = []
            for k, v in zip(node.value.keys, node.value.values):
                name = _constant_str(k) if k is not None else None
                if name is None:
                    continue
                out.append((name, _call_type_name(v) or "unknown"))
            return tuple(out)
    return ()


# ----------------------------------------------------------------------
# Pickle safety (RPC011 substrate)
# ----------------------------------------------------------------------
def _unpicklable_reason(expr: ast.expr, module: ModuleInfo) -> str | None:
    """Why an assigned/returned expression cannot cross a process boundary."""
    for sub in ast.walk(expr):
        if isinstance(sub, ast.Lambda):
            return "a lambda (unpicklable function object)"
        if isinstance(sub, ast.Call):
            if isinstance(sub.func, ast.Name):
                resolved = module.from_imports.get(sub.func.id)
                if sub.func.id == "open":
                    return "an open file handle"
                if resolved is not None:
                    mod, attr = resolved
                    if mod in ("threading", "multiprocessing", "_thread") and (
                        attr in _LOCK_CONSTRUCTORS
                    ):
                        return f"a {mod}.{attr} (unpicklable lock)"
            elif isinstance(sub.func, ast.Attribute):
                chain = _attr_chain(sub.func)
                if chain and len(chain) >= 2:
                    root = module.module_aliases.get(chain[0])
                    if root in ("threading", "multiprocessing") and (
                        chain[-1] in _LOCK_CONSTRUCTORS
                    ):
                        return f"a {root}.{chain[-1]} (unpicklable lock)"
                    if root == "io" and chain[-1] == "open":
                        return "an open file handle"
    return None


def _nested_function_names(fn: ast.FunctionDef) -> set[str]:
    out = set()
    for node in ast.walk(fn):
        if isinstance(node, ast.FunctionDef) and node is not fn:
            out.add(node.name)
    return out


def _pickle_risks(program: ProgramInfo, module: ModuleInfo) -> list[PickleRisk]:
    risks: list[PickleRisk] = []
    for method in ("__init__", "init_state", "compute"):
        fn = program.methods.get(method)
        if fn is None:
            continue
        closures = _nested_function_names(fn)
        lambda_locals = {
            t.id
            for n in ast.walk(fn)
            if isinstance(n, ast.Assign) and isinstance(n.value, ast.Lambda)
            for t in n.targets
            if isinstance(t, ast.Name)
        }
        nested_returns = {
            id(r)
            for nf in ast.walk(fn)
            if isinstance(nf, ast.FunctionDef) and nf is not fn
            for r in ast.walk(nf)
            if isinstance(r, ast.Return)
        }
        state_name = (
            program.state_name if method == "compute" else None
        )
        for node in ast.walk(fn):
            value: ast.expr | None = None
            where = None
            if isinstance(node, ast.Assign):
                for t in node.targets:
                    if (
                        isinstance(t, ast.Attribute)
                        and isinstance(t.value, ast.Name)
                        and t.value.id == "self"
                    ):
                        value, where = node.value, f"self.{t.attr}"
                    elif (
                        isinstance(t, (ast.Attribute, ast.Subscript))
                        and state_name is not None
                        and _rooted_at_name(t, state_name)
                    ):
                        value, where = node.value, "the vertex state"
            elif isinstance(node, ast.Return) and id(node) not in nested_returns:
                if method == "init_state":
                    value, where = node.value, "the initial vertex state"
                elif method == "compute" and (
                    isinstance(node.value, ast.Lambda)
                    or (
                        isinstance(node.value, ast.Name)
                        and node.value.id in (closures | lambda_locals)
                    )
                ):
                    # Returned value *becomes* the vertex state; a direct
                    # function object there breaks every pickle boundary.
                    value, where = node.value, "the returned vertex state"
            if value is None:
                continue
            reason = _unpicklable_reason(value, module)
            if reason is None and isinstance(value, ast.Name) and (
                value.id in (closures | lambda_locals)
            ):
                reason = "a closure defined inside the method"
            if reason is not None:
                risks.append(
                    PickleRisk(
                        line=node.lineno,
                        method=method,
                        detail=f"{where} holds {reason}",
                    )
                )
    return risks


def _rooted_at_name(node: ast.expr, name: str) -> bool:
    while isinstance(node, (ast.Attribute, ast.Subscript)):
        node = node.value
    return isinstance(node, ast.Name) and node.id == name


# ----------------------------------------------------------------------
# Unbounded accumulators leaking into payloads (RPC014 substrate)
# ----------------------------------------------------------------------
def _grown_state_paths(fn: ast.FunctionDef, state_name: str | None) -> set[str]:
    """Dotted paths of state containers compute() grows each call."""
    if state_name is None:
        return set()
    grown: set[str] = set()
    for node in ast.walk(fn):
        if isinstance(node, ast.Call) and isinstance(node.func, ast.Attribute):
            if node.func.attr in _GROWTH_CALLS:
                chain = _attr_chain(node.func)
                if chain and chain[0] == state_name and len(chain) >= 2:
                    grown.add(".".join(chain[:-1]))
        elif isinstance(node, (ast.Assign, ast.AugAssign)):
            targets = (
                node.targets if isinstance(node, ast.Assign) else [node.target]
            )
            for t in targets:
                if isinstance(t, ast.Subscript) and _rooted_at_name(
                    t.value, state_name
                ):
                    chain = _attr_chain(t.value)
                    if chain:
                        grown.add(".".join(chain))
    return grown


def _payload_references(expr: ast.expr, paths: set[str],
                        state_name: str) -> str | None:
    """The grown path a payload expression reads, if any."""
    for sub in ast.walk(expr):
        if isinstance(sub, (ast.Attribute, ast.Name)):
            chain = _attr_chain(sub) if isinstance(sub, ast.Attribute) else (
                [sub.id]
            )
            if not chain or chain[0] != state_name:
                continue
            dotted = ".".join(chain)
            for p in paths:
                if dotted == p or dotted.startswith(p + ".") or (
                    p.startswith(dotted + ".")
                ):
                    return p
            if len(chain) == 1 and paths:
                # The bare state object itself shipped as a payload while
                # compute() grows one of its containers.
                return next(iter(sorted(paths)))
    return None


def _unbounded_payload_sites(
    fn: ast.FunctionDef, state_name: str | None
) -> list[tuple[int, str]]:
    grown = _grown_state_paths(fn, state_name)
    if not grown or state_name is None:
        return []
    out: list[tuple[int, str]] = []
    for node in ast.walk(fn):
        if not (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Attribute)
            and node.func.attr in ("send", "send_to_neighbors")
        ):
            continue
        payload = None
        if node.func.attr == "send" and len(node.args) >= 2:
            payload = node.args[1]
        elif node.func.attr == "send_to_neighbors" and node.args:
            payload = node.args[0]
        if payload is None:
            continue
        path = _payload_references(payload, grown, state_name)
        if path is not None:
            out.append((node.lineno, path))
    return out


# ----------------------------------------------------------------------
# Entry points
# ----------------------------------------------------------------------
def _module_is_message_driven(module: ModuleInfo) -> bool:
    for stmt in module.tree.body:
        if isinstance(stmt, ast.FunctionDef) and stmt.name == "start_messages":
            return True
        if isinstance(stmt, ast.Assign):
            for t in stmt.targets:
                if isinstance(t, ast.Name) and t.id == "start_messages":
                    return True
    return False


def _collect_sites(
    program: ProgramInfo,
) -> tuple[list[SendSite], str | None, list[tuple[int, str]]]:
    """Walk compute() plus the ``self.*`` helpers it delegates to.

    Programs like bipartite matching route all their sends through
    per-role helper methods (``self._compute_left(ctx, state, messages,
    ...)``); a compute()-only walk would report them message-silent.  The
    worklist expands each ``self.<helper>()`` call once (depth-capped),
    remapping the caller's ctx/state/messages names onto the helper's
    formals from the call-site arguments, and inheriting the call site's
    enclosing loops and superstep pins as a prefix.
    """
    fn = program.compute
    if fn is None:
        return [], None, []
    helper_names = frozenset(
        name for name in program.methods if name != "compute"
    )
    sites: list[SendSite] = []
    reduction: str | None = None
    unbounded: list[tuple[int, str]] = []
    expanded: set[str] = set()
    # (fn, ctx name, state name, messages seeds, loop prefix, pin prefix, depth)
    worklist: list[
        tuple[ast.FunctionDef, str | None, str | None, set[str],
              tuple[str, ...], tuple[int, ...], int]
    ] = [
        (
            fn,
            program.ctx_name,
            program.state_name,
            {program.messages_name} if program.messages_name else set(),
            (),
            (),
            0,
        )
    ]
    while worklist:
        cur, ctx, state, msg_seeds, loops, pins, depth = worklist.pop()
        neighbor_names = _derived_names(
            cur, ctx, {"out_neighbors", "out_weights"}, set()
        )
        message_names = (
            _collect_aliases(cur, msg_seeds) if msg_seeds else set()
        )
        walker = _SendWalker(
            ctx, neighbor_names, set(message_names), helper_names,
            send_aliases=_send_aliases(cur, ctx),
        )
        walker.loop_stack = list(loops)
        walker.superstep_stack = list(pins)
        walker.visit(cur)
        sites.extend(walker.sites)
        if reduction is None:
            reduction = _detect_reduction(cur, message_names)
        unbounded.extend(_unbounded_payload_sites(cur, state))
        if depth >= 3:
            continue
        for name, call, call_loops, call_pins in walker.helper_calls:
            if name in expanded:
                continue
            expanded.add(name)
            helper = program.methods[name]
            formals = [a.arg for a in helper.args.args]
            h_ctx: str | None = None
            h_state: str | None = None
            h_msgs: set[str] = set()
            for i, arg in enumerate(call.args):
                slot = i + 1  # formals[0] is self
                if slot >= len(formals) or not isinstance(arg, ast.Name):
                    continue
                if arg.id == ctx:
                    h_ctx = formals[slot]
                elif arg.id in message_names:
                    h_msgs.add(formals[slot])
                elif state is not None and arg.id == state:
                    h_state = formals[slot]
            worklist.append(
                (helper, h_ctx, h_state, h_msgs, call_loops, call_pins,
                 depth + 1)
            )
    sites.sort(key=lambda s: s.line)
    return sites, reduction, unbounded


def profile_program(program: ProgramInfo, module: ModuleInfo) -> ProgramProfile:
    """Build the static cost model of one VertexProgram subclass."""
    sites, reduction, unbounded = _collect_sites(program)

    fanout = max(
        (s.fanout for s in sites),
        key=lambda c: c.level,
        default=FanoutClass.NONE,
    )
    by_superstep: dict[int | None, FanoutClass] = {}
    for s in sites:
        prev = by_superstep.get(s.superstep, FanoutClass.NONE)
        if s.fanout.level > prev.level:
            by_superstep[s.superstep] = s.fanout

    declared = _declared_combiner(program)
    suggested = None
    if declared is None and reduction is not None:
        widest = _widest(s.payload for s in sites)
        if widest.kind in ("none", "scalar"):
            suggested = _REDUCTION_COMBINERS[reduction]

    return ProgramProfile(
        program=program.node.name,
        file=module.filename,
        line=program.node.lineno,
        fanout=fanout,
        fanout_coeffs=_fanout_coeffs(sites),
        send_sites=tuple(sites),
        fanout_by_superstep=tuple(
            sorted(
                by_superstep.items(),
                key=lambda kv: (kv[0] is None, kv[0] if kv[0] is not None else 0),
            )
        ),
        payload=_widest(s.payload for s in sites),
        combiner_declared=declared,
        reduction=reduction,
        combiner_suggested=suggested,
        aggregators=_declared_aggregators(program),
        message_driven=_module_is_message_driven(module),
        pickle_risks=tuple(_pickle_risks(program, module)),
        unbounded_payload_sites=tuple(unbounded),
    )


def profile_source(
    source: str, filename: str = "<string>"
) -> list[ProgramProfile]:
    """Profiles of every VertexProgram subclass in one module's source."""
    from .analyzer import _find_programs  # shared discovery, no cycle at import

    try:
        tree = ast.parse(source, filename=filename)
    except SyntaxError:
        return []
    module = ModuleInfo.build(tree, filename)
    return [profile_program(p, module) for p in _find_programs(tree)]


def profile_file(path: str | Path) -> list[ProgramProfile]:
    path = Path(path)
    try:
        source = path.read_text(encoding="utf-8")
    except (OSError, UnicodeDecodeError):
        return []
    return profile_source(source, filename=str(path))


def profile_paths(targets: Iterable[str]) -> list[ProgramProfile]:
    from .analyzer import iter_python_files

    out: list[ProgramProfile] = []
    for path in iter_python_files(targets):
        out.extend(profile_file(path))
    return out


def profile_of(program: Any) -> ProgramProfile | None:
    """Profile a *live* program object (or class) from its source file.

    Unwraps tracing/sanitizing wrappers (anything exposing ``.inner``).
    Returns None when the source cannot be located (REPL/exec-defined
    classes) — callers treat an absent profile as "no static knowledge".
    """
    import inspect

    seen = 0
    while hasattr(program, "inner") and seen < 8:  # unwrap program wrappers
        program = program.inner
        seen += 1
    cls = program if isinstance(program, type) else type(program)
    try:
        path = inspect.getsourcefile(cls)
        if path is None:
            return None
        source = Path(path).read_text(encoding="utf-8")
    except (TypeError, OSError, UnicodeDecodeError):
        return None
    for profile in profile_source(source, filename=path):
        if profile.program == cls.__name__:
            return profile
    return None


def estimate_bytes_per_root(
    profile: ProgramProfile,
    num_vertices: int,
    num_edges: int,
    num_workers: int,
    overhead_bytes: int = 48,
    state_bytes_per_vertex: int = 48,
) -> float:
    """Model-predicted marginal peak per-worker bytes per traversal root.

    For a broadcast-class traversal one root's wave can put O(|E|)
    messages in flight at its peak (§IV's triangle waveform), split across
    workers, each costing the modelled payload plus buffering overhead;
    per-root state (BC's root records, APSP's distance entries) adds one
    entry per reached vertex.  Bounded-fan-out programs don't scale with
    roots, so their per-root marginal cost is a single wavefront row.
    This is a *prior*, not ground truth: the sampling sizer still verifies
    it against one real probe swath before committing.
    """
    if num_workers < 1:
        raise ValueError("num_workers must be >= 1")
    payload = max(8, profile.payload.nbytes)
    if not profile.payload.bounded:
        payload *= 4  # pessimism for statically unbounded payloads
    per_msg = payload + overhead_bytes
    edges = max(num_edges, num_vertices, 1)
    if profile.fanout is FanoutClass.BROADCAST:
        wave = edges / num_workers
    else:
        wave = max(num_vertices, 1) / num_workers
    state = (max(num_vertices, 1) / num_workers) * state_bytes_per_vertex
    if profile.fanout is not FanoutClass.BROADCAST:
        state = 0.0
    return wave * per_msg + state
