"""On-disk result cache for the static analyzer (``.repro-cache/``).

``repro check`` over a large tree re-parses every file on every run even
though almost nothing changed.  The analysis is a pure function of
(source bytes, analyzer version, enabled rules, requested extras), so its
results are content-addressable: the cache key is the SHA-256 of exactly
those inputs, and a warm re-run skips every unchanged file without ever
comparing mtimes.

Entries are one JSON file each under ``<root>/.repro-cache/check/``.
Profiles and kernel-plan verdicts are stored as their ``as_dict()``
envelopes plus pre-rendered text; cache hits return lightweight shims
exposing the same ``as_dict()``/``render()`` surface the CLI consumes
(they are *not* the live dataclasses — library callers who need real
:class:`~repro.check.costmodel.ProgramProfile` objects should analyze
with the cache off, the library default).

Corruption and concurrent writers are handled by construction: a torn or
stale entry fails ``json.loads`` or the version check and is treated as a
miss; writes go through ``os.replace`` of a per-process temp file, so
readers never observe partial JSON.
"""

from __future__ import annotations

import hashlib
import json
import os
from dataclasses import dataclass
from pathlib import Path
from typing import Any

from .findings import Finding, Severity

__all__ = ["AnalysisCache", "CachedEnvelope"]

_CACHE_SUBDIR = Path(".repro-cache") / "check"


class CachedEnvelope:
    """Replayed profile/plan: same ``as_dict``/``render`` surface, no class."""

    def __init__(self, payload: dict, rendered: str = ""):
        self._payload = payload
        self._rendered = rendered

    def as_dict(self) -> dict:
        return self._payload

    def render(self) -> str:
        return self._rendered

    def __getattr__(self, name: str) -> Any:
        try:
            return self._payload[name]
        except KeyError:
            raise AttributeError(name) from None


@dataclass
class AnalysisCache:
    """Content-addressed store for one analyzer configuration.

    ``root`` is where ``.repro-cache/`` lives (default: the working
    directory, so repo-local runs share a cache and containers throw it
    away with the checkout).
    """

    root: Path | None = None

    def __post_init__(self) -> None:
        base = Path(self.root) if self.root is not None else Path.cwd()
        self.directory = base / _CACHE_SUBDIR
        self.hits = 0
        self.misses = 0

    # -- keying --------------------------------------------------------
    @staticmethod
    def key_for(
        source: str,
        analyzer_version: str,
        config_signature: str,
        profile: bool,
        kernel_plan: bool,
        planopt_signature: str = "",
    ) -> str:
        """Content key.  ``planopt_signature`` is the optimizer pass/version
        signature (:data:`~repro.check.planopt.PLANOPT_SIGNATURE`) — hashed
        only when non-empty, so a pass-version bump invalidates every
        cached kernel-plan envelope without touching plain-check keys."""
        h = hashlib.sha256()
        for part in (
            analyzer_version,
            config_signature,
            f"profile={profile}",
            f"kernel_plan={kernel_plan}",
        ):
            h.update(part.encode("utf-8"))
            h.update(b"\x00")
        if planopt_signature:
            h.update(f"planopt={planopt_signature}".encode("utf-8"))
            h.update(b"\x00")
        h.update(source.encode("utf-8"))
        return h.hexdigest()

    def _path(self, key: str) -> Path:
        return self.directory / f"{key}.json"

    # -- lookup / store ------------------------------------------------
    def load(self, key: str, analyzer_version: str) -> dict | None:
        """The stored envelope for ``key``, or None on any kind of miss."""
        try:
            raw = self._path(key).read_text(encoding="utf-8")
            entry = json.loads(raw)
        except (OSError, ValueError):
            self.misses += 1
            return None
        if (
            not isinstance(entry, dict)
            or entry.get("analyzer_version") != analyzer_version
        ):
            self.misses += 1
            return None
        self.hits += 1
        return entry

    def store(self, key: str, entry: dict) -> None:
        """Atomically persist ``entry``; cache write failures are silent
        (a read-only checkout must not break ``repro check``)."""
        try:
            self.directory.mkdir(parents=True, exist_ok=True)
            tmp = self._path(key).with_suffix(f".tmp{os.getpid()}")
            tmp.write_text(
                json.dumps(entry, sort_keys=True), encoding="utf-8"
            )
            os.replace(tmp, self._path(key))
        except OSError:
            pass

    # -- envelope (de)hydration ----------------------------------------
    @staticmethod
    def pack(findings, profiles, plans, elapsed_ms: float,
             analyzer_version: str) -> dict:
        return {
            "analyzer_version": analyzer_version,
            "elapsed_ms": elapsed_ms,
            "findings": [f.as_dict() for f in findings],
            "profiles": [
                {"payload": p.as_dict(), "rendered": p.render()}
                for p in profiles
            ],
            "plans": [{"payload": v.as_dict()} for v in plans],
        }

    @staticmethod
    def unpack(entry: dict) -> tuple[list, list, list, float]:
        findings = [
            Finding(
                file=d["file"],
                line=d["line"],
                col=d["col"],
                rule_id=d["rule"],
                severity=Severity(d["severity"]),
                message=d["message"],
                hint=d.get("hint", ""),
            )
            for d in entry.get("findings", ())
        ]
        profiles = [
            CachedEnvelope(d["payload"], d.get("rendered", ""))
            for d in entry.get("profiles", ())
        ]
        plans = [
            CachedEnvelope(d["payload"])
            for d in entry.get("plans", ())
        ]
        return findings, profiles, plans, float(entry.get("elapsed_ms", 0.0))
