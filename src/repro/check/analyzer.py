"""Static analysis driver: program discovery, rule dispatch, suppression.

Pure-AST (nothing is imported or executed), so ``repro check`` is safe to
run on untrusted or broken code.  The unit of analysis is a
:class:`~repro.bsp.api.VertexProgram` subclass: the analyzer finds them by
base-class name — direct (``class P(VertexProgram)``), attribute-qualified
(``class P(api.VertexProgram)``), or transitive through bases defined in
the same module — including classes nested inside functions (test
fixtures).

Suppression: ``# repro: noqa`` on the flagged line silences every rule
there; ``# repro: noqa[RPC001]`` (comma-separated ids allowed) silences
only the listed rules.
"""

from __future__ import annotations

import ast
import re
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Iterable, Sequence

from .config import CheckConfig, DEFAULT_CONFIG
from .findings import Finding, Severity
from .rules import RULES, ModuleInfo, ProgramInfo

__all__ = [
    "ANALYZER_VERSION",
    "FileResult",
    "analyze_source",
    "analyze_file",
    "analyze_paths",
    "analyze_paths_detailed",
    "iter_python_files",
]

#: Version of the analyzer's output contract.  Bump the minor on additive
#: envelope/profile changes, the major on breaking ones — CI diffs and
#: editor integrations key on this (and the on-disk result cache keys on
#: it, so bumping invalidates every cached entry).
ANALYZER_VERSION = "2.2"

_NOQA_RE = re.compile(
    r"#\s*repro:\s*noqa(?:\s*\[\s*([A-Za-z0-9_,\s]+?)\s*\])?", re.IGNORECASE
)

#: Syntax errors get a pseudo-rule id so they flow through the same pipe.
SYNTAX_RULE_ID = "RPC000"


def _base_matches(base: ast.expr, program_names: set[str]) -> bool:
    if isinstance(base, ast.Name):
        return base.id in program_names
    if isinstance(base, ast.Attribute):
        return base.attr in program_names
    return False


def _find_programs(tree: ast.Module) -> list[ProgramInfo]:
    """All VertexProgram subclasses in the module (transitive, any nesting)."""
    program_names = {"VertexProgram"}
    classes = [n for n in ast.walk(tree) if isinstance(n, ast.ClassDef)]
    # Fixed point: a class whose base is a known program class is one too.
    while True:
        grew = False
        for cls in classes:
            if cls.name in program_names:
                continue
            if any(_base_matches(b, program_names) for b in cls.bases):
                program_names.add(cls.name)
                grew = True
        if not grew:
            break
    out = []
    for cls in classes:
        if cls.name not in program_names:
            continue
        methods = {
            stmt.name: stmt
            for stmt in cls.body
            if isinstance(stmt, ast.FunctionDef)
        }
        out.append(ProgramInfo(node=cls, methods=methods))
    return out


def _suppressed(finding: Finding, lines: Sequence[str]) -> bool:
    if not 1 <= finding.line <= len(lines):
        return False
    m = _NOQA_RE.search(lines[finding.line - 1])
    if m is None:
        return False
    if m.group(1) is None:
        return True  # bare noqa: everything on this line
    ids = {part.strip().upper() for part in m.group(1).split(",")}
    return finding.rule_id.upper() in ids


def analyze_source(
    source: str,
    filename: str = "<string>",
    config: CheckConfig | None = None,
    kernel_plan: bool = False,
) -> list[Finding]:
    """Run the enabled rules over one module's source text.

    ``kernel_plan`` additionally runs the vectorization eligibility rules
    (RPC015-018, :mod:`.vectorize`) and the plan-optimizer rules
    (RPC019-022, :mod:`.planopt`) — opt-in because every program then
    gets exactly one verdict finding, including the advisory RPC015 on
    programs with nothing wrong.
    """
    config = config or DEFAULT_CONFIG
    try:
        tree = ast.parse(source, filename=filename)
    except SyntaxError as exc:
        return [
            Finding(
                file=filename,
                line=exc.lineno or 1,
                col=(exc.offset or 0) or 1,
                rule_id=SYNTAX_RULE_ID,
                severity=Severity.ERROR,
                message=f"syntax error: {exc.msg}",
                hint="fix the syntax error before the rules can run",
            )
        ]
    module = ModuleInfo.build(tree, filename)
    lines = source.splitlines()
    active_rules = list(RULES)
    if kernel_plan:
        from .planopt import PLANOPT_RULES
        from .vectorize import KERNEL_RULES

        active_rules.extend(KERNEL_RULES)
        active_rules.extend(PLANOPT_RULES)
    findings: list[Finding] = []
    for program in _find_programs(tree):
        for rule in active_rules:
            if not config.enabled(rule.id):
                continue
            findings.extend(rule.check(program, module))
    findings = [f for f in findings if not _suppressed(f, lines)]
    findings.sort()
    return findings


def analyze_file(
    path: str | Path,
    config: CheckConfig | None = None,
    kernel_plan: bool = False,
) -> list[Finding]:
    path = Path(path)
    try:
        source = path.read_text(encoding="utf-8")
    except (OSError, UnicodeDecodeError) as exc:
        return [
            Finding(
                file=str(path),
                line=1,
                col=1,
                rule_id=SYNTAX_RULE_ID,
                severity=Severity.ERROR,
                message=f"cannot read file: {exc}",
            )
        ]
    return analyze_source(
        source, filename=str(path), config=config, kernel_plan=kernel_plan
    )


_MODULE_NAME_RE = re.compile(r"^[A-Za-z_][A-Za-z0-9_]*(\.[A-Za-z_][A-Za-z0-9_]*)*$")


def _resolve_target(target: str) -> list[Path]:
    """One CLI target -> python files (path, directory, or dotted module)."""
    path = Path(target)
    if path.is_dir():
        return sorted(
            p
            for p in path.rglob("*.py")
            if "__pycache__" not in p.parts
        )
    if path.is_file():
        return [path]
    if _MODULE_NAME_RE.match(target):
        import importlib.util

        try:
            spec = importlib.util.find_spec(target)
        except (ImportError, ValueError):
            spec = None
        if spec is not None and spec.origin and spec.origin.endswith(".py"):
            return [Path(spec.origin)]
    raise FileNotFoundError(
        f"check target {target!r} is neither a path nor an importable module"
    )


def iter_python_files(targets: Iterable[str]) -> list[Path]:
    """Expand CLI targets to a de-duplicated, ordered file list."""
    seen: set[Path] = set()
    out: list[Path] = []
    for target in targets:
        for p in _resolve_target(str(target)):
            rp = p.resolve()
            if rp not in seen:
                seen.add(rp)
                out.append(p)
    return out


def analyze_paths(
    targets: Iterable[str], config: CheckConfig | None = None
) -> list[Finding]:
    """Analyze every python file under the given paths/modules."""
    findings: list[Finding] = []
    for path in iter_python_files(targets):
        findings.extend(analyze_file(path, config=config))
    findings.sort()
    return findings


@dataclass
class FileResult:
    """Per-file analysis output (findings, cost profiles, wall time)."""

    path: str
    findings: list[Finding] = field(default_factory=list)
    #: ProgramProfile list; populated only when profiling was requested.
    profiles: list = field(default_factory=list)
    #: PlanVerdict list (lift verdict + optimization report); populated
    #: only when --kernel-plan was requested.
    plans: list = field(default_factory=list)
    elapsed_ms: float = 0.0
    #: True when this result was replayed from the on-disk cache; the
    #: elapsed_ms is then the *original* analysis time, not the replay's.
    cached: bool = False


def analyze_paths_detailed(
    targets: Iterable[str],
    config: CheckConfig | None = None,
    profile: bool = False,
    kernel_plan: bool = False,
    cache: Any = None,
) -> list[FileResult]:
    """Per-file findings plus (optionally) cost profiles and timings.

    The flat :func:`analyze_paths` stays the simple API; this drives the
    ``repro check`` JSON envelope, where per-file timing, profile and
    kernel-plan payloads ride alongside the findings.

    ``cache`` is an optional :class:`~repro.check.cache.AnalysisCache`;
    unchanged files (same bytes, analyzer version, config and flags)
    replay from disk without re-running the rules.  Library callers
    default to no cache — the CLI opts in.
    """
    config = config or DEFAULT_CONFIG
    config_sig = f"select={config.select!r};ignore={config.ignore!r}"
    results: list[FileResult] = []
    for path in iter_python_files(targets):
        t0 = time.perf_counter()
        result = FileResult(path=str(path))
        source: str | None = None
        key = None
        if cache is not None:
            try:
                source = path.read_text(encoding="utf-8")
            except (OSError, UnicodeDecodeError):
                source = None  # unreadable: fall through, uncached
            if source is not None:
                if kernel_plan:
                    from .planopt import PLANOPT_SIGNATURE

                    planopt_sig = PLANOPT_SIGNATURE
                else:
                    planopt_sig = ""
                key = cache.key_for(
                    source, ANALYZER_VERSION, config_sig, profile,
                    kernel_plan, planopt_sig,
                )
                entry = cache.load(key, ANALYZER_VERSION)
                if entry is not None:
                    (result.findings, result.profiles, result.plans,
                     result.elapsed_ms) = cache.unpack(entry)
                    result.cached = True
                    results.append(result)
                    continue
        result.findings = analyze_file(
            path, config=config, kernel_plan=kernel_plan
        )
        if profile:
            from .costmodel import profile_file

            result.profiles = profile_file(path)
        if kernel_plan:
            from .planopt import optimize_file

            result.plans = optimize_file(path)
        result.elapsed_ms = (time.perf_counter() - t0) * 1000.0
        if cache is not None and key is not None:
            cache.store(
                key,
                cache.pack(
                    result.findings, result.profiles, result.plans,
                    result.elapsed_ms, ANALYZER_VERSION,
                ),
            )
        results.append(result)
    return results
