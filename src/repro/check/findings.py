"""Finding and severity types shared by the rule engine, CLI, and tests.

A :class:`Finding` is one localized contract violation: where it is
(file/line/col), which rule fired (``rule_id``), how bad it is
(:class:`Severity`), what went wrong (``message``), and how to fix it
(``hint``).  Findings are plain frozen dataclasses so the CLI can render
them as text or JSON and tests can compare them structurally.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum

__all__ = ["Severity", "Finding"]


class Severity(str, Enum):
    """How strongly a rule's violation threatens a run's correctness.

    ``ERROR`` findings fail ``repro check`` (and CI); ``WARNING`` findings
    are reported but do not fail the build unless ``--strict`` is given.
    ``INFO`` findings are advisory facts (e.g. "this program lifts to a
    dense kernel plan") and never fail the build, even under ``--strict``.
    """

    ERROR = "error"
    WARNING = "warning"
    INFO = "info"

    def __str__(self) -> str:  # "error", not "Severity.ERROR", in output
        return self.value


@dataclass(frozen=True, order=True)
class Finding:
    """One rule violation at a source location."""

    file: str
    line: int
    col: int
    rule_id: str
    severity: Severity
    message: str
    hint: str = ""

    def as_dict(self) -> dict:
        """JSON-ready mapping (``--format json`` and future CI annotations)."""
        return {
            "file": self.file,
            "line": self.line,
            "col": self.col,
            "rule": self.rule_id,
            "severity": str(self.severity),
            "message": self.message,
            "hint": self.hint,
        }

    def render(self) -> str:
        """One-line human-readable form (``--format text``)."""
        text = (
            f"{self.file}:{self.line}:{self.col} {self.rule_id} "
            f"[{self.severity}] {self.message}"
        )
        if self.hint:
            text += f"  (fix: {self.hint})"
        return text
