"""The Pregel-contract rule set (RPC001..RPC010).

Each rule inspects one :class:`ProgramInfo` — the AST of a
:class:`~repro.bsp.api.VertexProgram` subclass plus its module's import
table — and yields :class:`~repro.check.findings.Finding`\\ s.  The rules
encode the contracts §III of the paper (and ``bsp/api.py``'s docstrings)
assume of vertex programs; ``docs/vertex-program-contract.md`` states each
contract with its grounding.

Rules are deliberately syntactic and conservative: they only fire on
patterns that are near-certainly violations (mutating the ``messages``
parameter, calling ``random.random()`` from ``compute()``, …) so that a
clean repo stays clean without suppression noise.  Escape hatch:
``# repro: noqa[RPC00X]`` on the flagged line (handled by the analyzer,
not here).
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Iterator

from .findings import Finding, Severity

__all__ = ["Rule", "RULES", "ProgramInfo", "ModuleInfo", "rule_catalog"]

#: Program lifecycle methods that run *outside* the per-vertex compute call
#: (worker construction, barrier, extraction) and therefore must not touch
#: the message-sending surface.
LIFECYCLE_METHODS = frozenset(
    {
        "__init__",
        "init_state",
        "extract",
        "payload_nbytes",
        "state_nbytes",
        "aggregators",
        "master_compute",
    }
)

#: VertexContext calls only valid during compute().
SEND_FAMILY = frozenset(
    {
        "send",
        "send_to_neighbors",
        "vote_to_halt",
        "aggregate",
        "add_out_edge",
        "remove_out_edge",
    }
)

#: Method names that mutate the common Python containers in place.
SEQUENCE_MUTATORS = frozenset(
    {
        "append",
        "extend",
        "insert",
        "remove",
        "pop",
        "clear",
        "sort",
        "reverse",
        "update",
        "setdefault",
        "popitem",
        "add",
        "discard",
    }
)

#: Modules whose direct use inside compute() breaks superstep determinism.
NONDETERMINISTIC_MODULES = frozenset({"random", "uuid", "secrets"})

#: ``numpy.random`` members that *construct* seeded generators (allowed when
#: given an explicit seed argument).
_NP_RANDOM_SEEDABLE = frozenset({"default_rng", "Generator", "SeedSequence"})

#: Wall-clock reads (module, attr) that leak host scheduling into results.
_CLOCK_CALLS = frozenset(
    {
        ("time", "time"),
        ("time", "time_ns"),
        ("time", "monotonic"),
        ("time", "monotonic_ns"),
        ("time", "perf_counter"),
        ("time", "perf_counter_ns"),
        ("os", "urandom"),
        ("os", "getpid"),
    }
)


# ----------------------------------------------------------------------
# Module / program models handed to rules by the analyzer
# ----------------------------------------------------------------------
@dataclass
class ModuleInfo:
    """One parsed module: AST, filename, and its import alias tables."""

    tree: ast.Module
    filename: str
    #: local name -> imported module ("np" -> "numpy")
    module_aliases: dict[str, str] = field(default_factory=dict)
    #: local name -> (module, attr) for ``from module import attr [as name]``
    from_imports: dict[str, tuple[str, str]] = field(default_factory=dict)

    @classmethod
    def build(cls, tree: ast.Module, filename: str) -> "ModuleInfo":
        info = cls(tree=tree, filename=filename)
        for node in ast.walk(tree):
            if isinstance(node, ast.Import):
                for a in node.names:
                    local = a.asname or a.name.split(".")[0]
                    info.module_aliases[local] = (
                        a.name if a.asname else a.name.split(".")[0]
                    )
            elif isinstance(node, ast.ImportFrom) and node.module and node.level == 0:
                for a in node.names:
                    info.from_imports[a.asname or a.name] = (node.module, a.name)
        return info


@dataclass
class ProgramInfo:
    """One VertexProgram subclass as seen by the rules."""

    node: ast.ClassDef
    methods: dict[str, ast.FunctionDef]

    @property
    def compute(self) -> ast.FunctionDef | None:
        return self.methods.get("compute")

    def _compute_param(self, index: int) -> str | None:
        fn = self.compute
        if fn is None:
            return None
        args = fn.args.args
        return args[index].arg if len(args) > index else None

    @property
    def ctx_name(self) -> str | None:
        return self._compute_param(1)

    @property
    def state_name(self) -> str | None:
        return self._compute_param(2)

    @property
    def messages_name(self) -> str | None:
        return self._compute_param(3)

    @property
    def master_param(self) -> str | None:
        fn = self.methods.get("master_compute")
        if fn is None:
            return None
        args = fn.args.args
        return args[1].arg if len(args) > 1 else None


# ----------------------------------------------------------------------
# Shared AST helpers
# ----------------------------------------------------------------------
def _attr_chain(node: ast.expr) -> list[str] | None:
    """``ctx.send`` -> ["ctx", "send"]; None when the base isn't a Name."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        parts.reverse()
        return parts
    return None


def _rooted_at(node: ast.expr, names: set[str]) -> bool:
    """True when an attribute/subscript chain bottoms out at one of names."""
    while isinstance(node, (ast.Attribute, ast.Subscript)):
        node = node.value
    return isinstance(node, ast.Name) and node.id in names


def _method_call_name(call: ast.Call) -> str | None:
    """Name of the method for ``<expr>.method(...)`` calls."""
    if isinstance(call.func, ast.Attribute):
        return call.func.attr
    return None


def _collect_aliases(fn: ast.FunctionDef, seed: set[str]) -> set[str]:
    """Names bound directly to one of ``seed`` via plain assignment."""
    aliases = set(seed)
    for _ in range(3):  # fixed-point for alias-of-alias chains
        grew = False
        for node in ast.walk(fn):
            if (
                isinstance(node, ast.Assign)
                and isinstance(node.value, ast.Name)
                and node.value.id in aliases
            ):
                for t in node.targets:
                    if isinstance(t, ast.Name) and t.id not in aliases:
                        aliases.add(t.id)
                        grew = True
        if not grew:
            break
    return aliases


def _payload_aliases(fn: ast.FunctionDef, messages: set[str]) -> set[str]:
    """Loop variables bound to individual payloads of the messages sequence."""
    out: set[str] = set()
    for node in ast.walk(fn):
        if isinstance(node, (ast.For, ast.comprehension)):
            iter_node = node.iter
            # for m in messages / for i, m in enumerate(messages)
            src = iter_node
            if (
                isinstance(iter_node, ast.Call)
                and isinstance(iter_node.func, ast.Name)
                and iter_node.func.id in ("enumerate", "sorted", "reversed", "iter")
                and iter_node.args
            ):
                src = iter_node.args[0]
            if isinstance(src, ast.Name) and src.id in messages:
                target = node.target
                if isinstance(target, ast.Name):
                    out.add(target.id)
                elif isinstance(target, ast.Tuple):
                    for elt in target.elts:
                        if isinstance(elt, ast.Name):
                            out.add(elt.id)
    return out


def _constant_str(node: ast.expr) -> str | None:
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        return node.value
    return None


# ----------------------------------------------------------------------
# Rule framework
# ----------------------------------------------------------------------
class Rule:
    """One Pregel-contract check.  Subclasses set the metadata and
    implement :meth:`check` as a generator of findings."""

    id: str = "RPC000"
    severity: Severity = Severity.ERROR
    summary: str = ""
    hint: str = ""

    def check(self, program: ProgramInfo, module: ModuleInfo) -> Iterator[Finding]:
        raise NotImplementedError

    def finding(
        self,
        module: ModuleInfo,
        node: ast.AST,
        message: str,
        hint: str | None = None,
    ) -> Finding:
        return Finding(
            file=module.filename,
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0) + 1,
            rule_id=self.id,
            severity=self.severity,
            message=message,
            hint=self.hint if hint is None else hint,
        )


class MessageMutationRule(Rule):
    """RPC001: the delivered ``messages`` sequence and its payloads are the
    engine's buffers, shared with combiners and (under tracing/sanitizing
    wrappers) other consumers — mutating them corrupts other vertices'
    deliveries and breaks replay."""

    id = "RPC001"
    severity = Severity.ERROR
    summary = "compute() mutates the delivered messages sequence or a payload"
    hint = "copy first (list(messages) / copy.copy(payload)) and mutate the copy"

    def check(self, program, module):
        fn = program.compute
        if fn is None or program.messages_name is None:
            return
        seqs = _collect_aliases(fn, {program.messages_name})
        payloads = _payload_aliases(fn, seqs)
        for node in ast.walk(fn):
            if isinstance(node, ast.Call):
                name = _method_call_name(node)
                if name in SEQUENCE_MUTATORS:
                    base = node.func.value
                    if isinstance(base, ast.Name) and base.id in seqs:
                        yield self.finding(
                            module, node,
                            f"compute() calls {name}() on the delivered "
                            "messages sequence",
                        )
                    elif _rooted_at(base, payloads):
                        yield self.finding(
                            module, node,
                            f"compute() calls {name}() on a received payload",
                        )
            elif isinstance(node, (ast.Assign, ast.AugAssign)):
                targets = (
                    node.targets if isinstance(node, ast.Assign) else [node.target]
                )
                for t in targets:
                    if isinstance(t, ast.Subscript) and _rooted_at(
                        t.value, seqs | payloads
                    ):
                        yield self.finding(
                            module, node,
                            "compute() assigns into the delivered messages "
                            "sequence or a received payload",
                        )
                    elif isinstance(t, ast.Attribute) and _rooted_at(
                        t.value, payloads
                    ):
                        yield self.finding(
                            module, node,
                            "compute() assigns an attribute of a received "
                            "payload",
                        )
                    elif (
                        isinstance(node, ast.AugAssign)
                        and isinstance(t, ast.Name)
                        and t.id in seqs
                    ):
                        yield self.finding(
                            module, node,
                            "compute() augment-assigns the delivered messages "
                            "sequence in place",
                        )
            elif isinstance(node, ast.Delete):
                for t in node.targets:
                    if isinstance(t, ast.Subscript) and _rooted_at(
                        t.value, seqs | payloads
                    ):
                        yield self.finding(
                            module, node,
                            "compute() deletes from the delivered messages "
                            "sequence or a received payload",
                        )


class NondeterminismRule(Rule):
    """RPC002: compute() must be a deterministic function of
    (superstep, state, messages, topology); unseeded randomness or clock
    reads make results vary across runs and worker counts."""

    id = "RPC002"
    severity = Severity.ERROR
    summary = "compute() calls an unseeded randomness / wall-clock source"
    hint = (
        "thread a seeded RNG through the program "
        "(self.rng = np.random.default_rng(seed) in __init__) "
        "or derive values from vertex_id/superstep"
    )

    def check(self, program, module):
        fn = program.compute
        if fn is None:
            return
        for node in ast.walk(fn):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            if isinstance(func, ast.Name):
                resolved = module.from_imports.get(func.id)
                if resolved is not None and (
                    resolved[0] in NONDETERMINISTIC_MODULES
                    or resolved in _CLOCK_CALLS
                    or (
                        resolved[0] in ("numpy.random", "random")
                        and resolved[1] not in _NP_RANDOM_SEEDABLE
                    )
                ):
                    yield self.finding(
                        module, node,
                        f"compute() calls {resolved[0]}.{resolved[1]}()",
                    )
                continue
            chain = _attr_chain(func)
            if not chain or len(chain) < 2:
                continue
            root_module = module.module_aliases.get(chain[0])
            if root_module is None:
                continue
            if root_module in NONDETERMINISTIC_MODULES:
                yield self.finding(
                    module, node,
                    f"compute() calls {root_module}.{'.'.join(chain[1:])}()",
                )
            elif (root_module, chain[1]) in _CLOCK_CALLS:
                yield self.finding(
                    module, node,
                    f"compute() reads {root_module}.{chain[1]}()",
                )
            elif (
                root_module == "numpy"
                and len(chain) >= 3
                and chain[1] == "random"
                and chain[2] not in _NP_RANDOM_SEEDABLE
            ):
                yield self.finding(
                    module, node,
                    "compute() uses numpy's global RNG "
                    f"(numpy.random.{chain[2]}())",
                )


class SharedStateWriteRule(Rule):
    """RPC003: one program instance is shared by every partition worker, so
    writes to ``self``/class/module state from compute() are a cross-worker
    race under ThreadedBSPEngine (and silently order-dependent even
    sequentially)."""

    id = "RPC003"
    severity = Severity.ERROR
    summary = "compute() writes shared (instance/class/module) state"
    hint = (
        "keep per-vertex data in the state value compute() returns; "
        "use aggregators for cross-vertex reductions"
    )

    def _scan_methods(self, program: ProgramInfo):
        for name, fn in program.methods.items():
            if name == "compute" or name not in LIFECYCLE_METHODS:
                yield fn

    def check(self, program, module):
        class_name = program.node.name
        for fn in self._scan_methods(program):
            for node in ast.walk(fn):
                if isinstance(node, (ast.Global, ast.Nonlocal)):
                    yield self.finding(
                        module, node,
                        f"{fn.name}() declares "
                        f"{'global' if isinstance(node, ast.Global) else 'nonlocal'}"
                        f" {', '.join(node.names)}",
                    )
                elif isinstance(node, (ast.Assign, ast.AugAssign)):
                    targets = (
                        node.targets
                        if isinstance(node, ast.Assign)
                        else [node.target]
                    )
                    for t in targets:
                        base = t
                        while isinstance(base, ast.Subscript):
                            base = base.value
                        if isinstance(base, ast.Attribute):
                            root = base.value
                            if isinstance(root, ast.Name) and root.id == "self":
                                yield self.finding(
                                    module, node,
                                    f"{fn.name}() assigns self.{base.attr} — "
                                    "the program instance is shared by every "
                                    "worker",
                                )
                            elif (
                                isinstance(root, ast.Name)
                                and root.id == class_name
                            ) or (
                                isinstance(root, ast.Call)
                                and isinstance(root.func, ast.Name)
                                and root.func.id == "type"
                            ):
                                yield self.finding(
                                    module, node,
                                    f"{fn.name}() assigns class attribute "
                                    f"{base.attr}",
                                )
                elif isinstance(node, ast.Call):
                    name = _method_call_name(node)
                    if name in SEQUENCE_MUTATORS:
                        chain = _attr_chain(node.func)
                        if chain and chain[0] == "self" and len(chain) >= 3:
                            yield self.finding(
                                module, node,
                                f"{fn.name}() mutates self.{chain[1]} in "
                                f"place ({name}())",
                            )


class ContextOutsideComputeRule(Rule):
    """RPC004: sends, halting votes, aggregator contributions, and topology
    mutations are only meaningful during compute(); from lifecycle methods
    there is no bound vertex and no superstep to attribute them to."""

    id = "RPC004"
    severity = Severity.ERROR
    summary = "send/vote/aggregate/mutation call outside compute()"
    hint = "move the call into compute(); master_compute() may only publish/halt"

    def check(self, program, module):
        for name in LIFECYCLE_METHODS:
            fn = program.methods.get(name)
            if fn is None:
                continue
            for node in ast.walk(fn):
                if isinstance(node, ast.Call):
                    called = _method_call_name(node)
                    if called in SEND_FAMILY:
                        yield self.finding(
                            module, node,
                            f"{name}() calls .{called}() — only valid inside "
                            "compute()",
                        )


class NoHaltingPathRule(Rule):
    """RPC005: a program whose vertices never vote to halt and whose master
    never halts the job only ends at the max_supersteps backstop — a
    non-termination risk the engine cannot distinguish from useful work."""

    id = "RPC005"
    severity = Severity.WARNING
    summary = "no halting mechanism (no vote_to_halt and no master halt_job)"
    hint = (
        "vote_to_halt() on quiescent vertices, or detect convergence in "
        "master_compute() and call master.halt_job()"
    )

    def check(self, program, module):
        fn = program.compute
        if fn is None:
            return
        votes = halts = False
        for node in ast.walk(program.node):
            if isinstance(node, ast.Call):
                called = _method_call_name(node)
                if called == "vote_to_halt":
                    votes = True
                elif called == "halt_job":
                    halts = True
        if not votes and not halts:
            yield self.finding(
                module, fn,
                "no reachable halting mechanism: compute() never calls "
                "vote_to_halt() and master_compute() never calls halt_job()",
            )


class ResourceHookRule(Rule):
    """RPC006: ``payload_nbytes``/``state_nbytes`` feed the memory model the
    swath heuristics steer by (§IV); a hook that understates the payloads
    the program actually constructs silently breaks the sizing analysis."""

    id = "RPC006"
    severity = Severity.WARNING
    summary = "payload_nbytes/state_nbytes inconsistent with constructed payloads"
    hint = (
        "return a size derived from the payload (e.g. 8 * len(payload)) "
        "or a constant covering the largest tuple sent"
    )

    def _constant_returns(self, fn: ast.FunctionDef):
        consts, others = [], 0
        for node in ast.walk(fn):
            if isinstance(node, ast.Return) and node.value is not None:
                if isinstance(node.value, ast.Constant) and isinstance(
                    node.value.value, (int, float)
                ):
                    consts.append((node, node.value.value))
                else:
                    others += 1
        return consts, others

    def _sent_tuple_sizes(self, program: ProgramInfo):
        for fn in program.methods.values():
            for node in ast.walk(fn):
                if not isinstance(node, ast.Call):
                    continue
                called = _method_call_name(node)
                payload = None
                if called == "send" and len(node.args) >= 2:
                    payload = node.args[1]
                elif called == "send_to_neighbors" and node.args:
                    payload = node.args[0]
                if isinstance(payload, ast.Tuple):
                    yield node, len(payload.elts)

    def check(self, program, module):
        for hook in ("payload_nbytes", "state_nbytes"):
            fn = program.methods.get(hook)
            if fn is None:
                continue
            consts, others = self._constant_returns(fn)
            for node, value in consts:
                if value <= 0:
                    yield Finding(
                        file=module.filename,
                        line=node.lineno,
                        col=node.col_offset + 1,
                        rule_id=self.id,
                        severity=Severity.ERROR,
                        message=f"{hook}() returns {value!r} — sizes must be "
                                "positive for the memory model to hold",
                        hint=self.hint,
                    )
            if hook == "payload_nbytes" and consts and not others:
                declared = max(v for _, v in consts)
                widest = max(
                    (n for _, n in self._sent_tuple_sizes(program)), default=0
                )
                if widest and declared < 8 * widest:
                    yield self.finding(
                        module, fn,
                        f"payload_nbytes() returns a constant {declared} but "
                        f"the program sends {widest}-tuples "
                        f"(at least {8 * widest} bytes)",
                    )


class UndeclaredAggregatorRule(Rule):
    """RPC007: the engine only merges aggregators returned by
    ``aggregators()``; contributing to or reading an undeclared name raises
    KeyError at runtime — catch it before the run."""

    id = "RPC007"
    severity = Severity.ERROR
    summary = "aggregator used without being declared in aggregators()"
    hint = "declare the name in aggregators() (e.g. {'name': SumAggregator()})"

    def _declared(self, program: ProgramInfo) -> frozenset | None:
        fn = program.methods.get("aggregators")
        if fn is None:
            return frozenset()
        for node in ast.walk(fn):
            if isinstance(node, ast.Return) and node.value is not None:
                if isinstance(node.value, ast.Dict):
                    keys = [
                        _constant_str(k)
                        for k in node.value.keys
                        if k is not None
                    ]
                    if any(k is None for k in keys):
                        return None  # computed keys: unknown
                    return frozenset(keys)
                return None  # non-literal return: unknown
        return frozenset()

    def check(self, program, module):
        declared = self._declared(program)
        if declared is None:
            return
        for fn in program.methods.values():
            for node in ast.walk(fn):
                if not isinstance(node, ast.Call):
                    continue
                called = _method_call_name(node)
                if called in ("aggregate", "aggregated", "publish") and node.args:
                    name = _constant_str(node.args[0])
                    if name is not None and name not in declared:
                        yield self.finding(
                            module, node,
                            f"{fn.name}() uses aggregator {name!r} which "
                            "aggregators() never declares",
                        )


class MissingReturnRule(Rule):
    """RPC008: compute()'s return value *replaces* the vertex state; a
    compute that never returns silently resets every vertex's state to
    None each superstep."""

    id = "RPC008"
    severity = Severity.WARNING
    summary = "compute() never returns a value (state becomes None)"
    hint = "return state (or the new state value) from every compute() path"

    def check(self, program, module):
        fn = program.compute
        if fn is None:
            return
        for node in ast.walk(fn):
            if isinstance(node, ast.Return) and node.value is not None:
                if not (
                    isinstance(node.value, ast.Constant)
                    and node.value.value is None
                ):
                    return
        yield self.finding(
            module, fn,
            "compute() has no return statement with a value — the engine "
            "replaces the vertex state with None after every call",
        )


class ContextRetentionRule(Rule):
    """RPC009: the worker reuses one VertexContext across vertices and the
    messages buffer is recycled at the superstep boundary; retaining either
    beyond the compute() call reads another vertex's data later."""

    id = "RPC009"
    severity = Severity.ERROR
    summary = "compute() retains the ctx/messages reference beyond the call"
    hint = "copy what you need (list(messages), ctx.vertex_id) instead"

    def check(self, program, module):
        fn = program.compute
        if fn is None:
            return
        transient = {
            n for n in (program.ctx_name, program.messages_name) if n is not None
        }
        if not transient:
            return
        for node in ast.walk(fn):
            if isinstance(node, ast.Assign) and isinstance(node.value, ast.Name):
                if node.value.id in transient:
                    for t in node.targets:
                        if isinstance(t, (ast.Attribute, ast.Subscript)):
                            yield self.finding(
                                module, node,
                                f"compute() stores {node.value.id!r} outside "
                                "the call (the worker recycles it)",
                            )
            elif isinstance(node, ast.Return) and isinstance(
                node.value, ast.Name
            ):
                if node.value.id in transient:
                    yield self.finding(
                        module, node,
                        f"compute() returns {node.value.id!r} as the vertex "
                        "state — the worker recycles it",
                    )


class PrivateInternalsRule(Rule):
    """RPC010: programs must stay on the documented VertexContext /
    MasterContext surface; reaching into ``ctx._worker`` (or any private
    engine attribute) bypasses mutation ordering and accounting."""

    id = "RPC010"
    severity = Severity.ERROR
    summary = "program reaches into private engine internals (ctx._*, master._*)"
    hint = (
        "use the public API (send/add_out_edge/aggregate/publish); "
        "missing capability? extend bsp/api.py instead"
    )

    def check(self, program, module):
        roots = {
            n
            for n in (program.ctx_name, program.master_param)
            if n is not None
        }
        if not roots:
            return
        for fn in program.methods.values():
            for node in ast.walk(fn):
                if (
                    isinstance(node, ast.Attribute)
                    and node.attr.startswith("_")
                    and not node.attr.startswith("__")
                    and isinstance(node.value, ast.Name)
                    and node.value.id in roots
                ):
                    yield self.finding(
                        module, node,
                        f"{fn.name}() accesses "
                        f"{node.value.id}.{node.attr} — a private engine "
                        "internal",
                    )


def _loc(line: int) -> ast.AST:
    """A bare location carrier for profile-derived findings."""
    node = ast.Pass()
    node.lineno = line
    node.col_offset = 0
    return node


class UnpicklableStateRule(Rule):
    """RPC011: the process engine (``--engine process``) ships program and
    vertex state across process boundaries for checkpoints, recovery, and
    result extraction — lambdas, closures, open handles, and locks in that
    state make every pickle crossing fail at runtime."""

    id = "RPC011"
    severity = Severity.WARNING
    summary = "program/vertex state is unpicklable under --engine process"
    hint = (
        "keep state to plain data; define functions at module level and "
        "re-open handles/locks per superstep instead of storing them"
    )

    def check(self, program, module):
        from .costmodel import profile_program

        profile = profile_program(program, module)
        for risk in profile.pickle_risks:
            yield self.finding(
                module, _loc(risk.line),
                f"{risk.method}() stores {risk.detail}; the process engine "
                "must pickle this state for checkpoints and recovery",
            )


class BroadcastWithoutSwathsRule(Rule):
    """RPC012: broadcast-class programs are the O(|V||E|)-message shape the
    swath scheduler exists for (§IV); without a ``start_messages`` factory
    they can only run all-roots-at-once and will exhaust worker memory on
    any non-toy graph."""

    id = "RPC012"
    severity = Severity.WARNING
    summary = "broadcast-class fan-out without swath scheduling support"
    hint = (
        "expose a module-level start_messages(roots) factory and run the "
        "program through SwathController (repro run --memory-mb ...)"
    )

    def check(self, program, module):
        from .costmodel import FanoutClass, profile_program

        profile = profile_program(program, module)
        if profile.fanout is FanoutClass.BROADCAST and not profile.message_driven:
            yield self.finding(
                module, program.node,
                f"{program.node.name} has broadcast-class fan-out but its "
                "module has no start_messages factory, so runs cannot be "
                "swath-scheduled",
            )


class CombinerEligibleRule(Rule):
    """RPC013: a compute() that folds its messages with a commutative,
    associative reduction re-derives exactly what a combiner computes —
    running combiner-less buffers every individual message (iPregel's
    headline memory cost) instead of one partial per destination."""

    id = "RPC013"
    severity = Severity.WARNING
    summary = "combiner-eligible message reduction running combiner-less"
    hint = "declare the matching repro.bsp.combiners combiner on the program"

    def check(self, program, module):
        from .costmodel import profile_program

        profile = profile_program(program, module)
        if profile.combiner_suggested is not None:
            fn = program.compute
            yield self.finding(
                module, fn if fn is not None else program.node,
                f"compute() reduces its messages with {profile.reduction}() "
                f"but declares no combiner; "
                f"{profile.combiner_suggested} computes the same fold "
                "sender-side",
            )


class UnboundedAccumulatorPayloadRule(Rule):
    """RPC014: a payload that serializes a state-lifetime container grown
    every superstep makes per-message bytes grow with superstep count —
    the payload model is unbounded and swath sizing under-estimates."""

    id = "RPC014"
    severity = Severity.WARNING
    summary = "send payload references an unbounded state accumulator"
    hint = (
        "send a bounded summary (count/top-k/delta) or clear the "
        "accumulator each superstep"
    )

    def check(self, program, module):
        from .costmodel import profile_program

        profile = profile_program(program, module)
        for line, path in profile.unbounded_payload_sites:
            yield self.finding(
                module, _loc(line),
                f"send payload reads '{path}', a state-lifetime container "
                "grown inside compute() — message bytes grow without bound "
                "across supersteps",
            )


#: The full ordered rule set.
RULES: tuple[Rule, ...] = (
    MessageMutationRule(),
    NondeterminismRule(),
    SharedStateWriteRule(),
    ContextOutsideComputeRule(),
    NoHaltingPathRule(),
    ResourceHookRule(),
    UndeclaredAggregatorRule(),
    MissingReturnRule(),
    ContextRetentionRule(),
    PrivateInternalsRule(),
    UnpicklableStateRule(),
    BroadcastWithoutSwathsRule(),
    CombinerEligibleRule(),
    UnboundedAccumulatorPayloadRule(),
)


def rule_catalog() -> list[dict]:
    """Metadata for every rule (docs, ``repro check --list-rules``).

    Includes the kernel-plan rules (RPC015-018) and the plan-optimizer
    rules (RPC019-022) even though the analyzer only runs them under
    ``--kernel-plan``: the catalog documents the full vocabulary.
    Imported lazily — :mod:`.vectorize` and :mod:`.planopt` import this
    module for their rule base class.
    """
    from .planopt import PLANOPT_RULES
    from .vectorize import KERNEL_RULES

    return sorted(
        (
            {
                "id": r.id,
                "severity": str(r.severity),
                "summary": r.summary,
                "hint": r.hint,
            }
            for r in (*RULES, *KERNEL_RULES, *PLANOPT_RULES)
        ),
        key=lambda entry: entry["id"],
    )
