"""KernelPlan optimizer: static fusion passes over the vectorize IR.

The lifter (:mod:`.vectorize`) translates ``compute()`` bodies literally,
so its plans are riddled with redundancy: every branch folds into nested
``where`` expressions that restate their enclosing conditions, op masks
conjoin the phase guard they already run under, and the scatter payload
usually recomputes the exact subtree the state update evaluates anyway.
This module rewrites plans into a cheaper, equivalent form:

* **fuse-masks** — assumption-driven simplification: inside the true
  branch of ``(where c a b)``, ``c`` is a fact; under a phase guard, the
  guard is a fact; under an op mask, the mask is a fact.  Facts collapse
  restated conditions, fusing op masks with their phase guards.
* **const-fold** — folds closed constant subtrees with *NumPy ufunc
  semantics* (the executor's arithmetic, not Python's) and removes
  bit-safe identities (``x*1``; ``x+0`` only for non-float operands —
  ``-0.0 + 0.0`` is ``+0.0``, so float add-identity is not bitwise-safe).
* **dead-op** — drops ops whose mask is constant-false, phases whose
  guard is constant-false, and empty phases.
* **phase-fuse** — merges phases with structurally equal guards.  Merging
  across an intervening phase is *blocked* (RPC020) when it would reorder
  float-significant accumulation: message delivery under ``reduce="sum"``
  or same-name aggregator contributions.
* **hoist-scatter** — marks scatter payloads whose vertex-space subtrees
  are shared with the state update or an op mask; the dense executor then
  evaluates them once over vertices and indexes per-arc (elementwise ufuncs
  commute with indexing, so this is bit-identical).
* **cse** — hash-conses structurally identical subtrees so the executor's
  ``id()``-keyed memo sees the sharing the digest already implies.

Honesty contract (same as RPC015): every rewrite must leave the plan
**bit-identical** under :class:`~repro.bsp.dense_ref.DenseRefEngine` —
:func:`certify_optimization` runs the raw and optimized plans and diffs
values/supersteps/aggregates at the bit level (``-0.0 != 0.0``); the test
suite certifies every bundled algorithm, so a divergent rewrite is a test
failure, not a silent wrong answer.

Value-preservation rules the rewriter obeys:

* A rewrite may change an expression's *dtype* only behind an explicit
  cast (``_keep_dtype``) — except in **mask context** (op ``where``,
  phase guards, condition slots), where consumers cast to bool and only
  truthiness must be preserved.
* Facts are sound elementwise: a value selected only where ``c`` holds
  may be simplified assuming ``c``.
* ``logical_and(a, b)`` is false wherever ``a`` is false, so ``b`` may be
  simplified assuming ``a`` (and dually for ``or``).

The verdicts surface as four catalog rules (``repro check
--kernel-plan``): RPC019 (plan optimized; carries the optimized digest),
RPC020 (fusion blocked; names the blocking op), RPC021 (costmodel /
vectorize verdict disagreement), RPC022 (engine-selection hazard).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, replace
from pathlib import Path
from typing import Any, Callable

import numpy as np

from .costmodel import FanoutClass, profile_program
from .findings import Severity
from .rules import ModuleInfo, ProgramInfo, Rule
from .vectorize import (
    Expr,
    KOp,
    KernelPhase,
    KernelPlan,
    LiftResult,
    _dtype_of,
    _plan_digest,
    lift_verdict,
    render_expr,
)

__all__ = [
    "PASS_VERSIONS",
    "PLANOPT_SIGNATURE",
    "PLANOPT_RULES",
    "FusionBlock",
    "PassReport",
    "PlanOptResult",
    "PlanVerdict",
    "OptCertification",
    "optimize_plan",
    "optimize_verdict",
    "optimize_source",
    "optimize_file",
    "certify_optimization",
    "plan_profile_disagreements",
]

#: (pass name, pass version) in execution order.  Bump a version whenever
#: that pass's rewrites change — the analyzer cache keys on the combined
#: signature, so stale optimized plans can never be replayed.
PASS_VERSIONS: tuple[tuple[str, int], ...] = (
    ("fuse-masks", 1),
    ("const-fold", 1),
    ("dead-op", 1),
    ("phase-fuse", 1),
    ("hoist-scatter", 1),
    ("cse", 1),
)

PLANOPT_SIGNATURE = ";".join(f"{n}={v}" for n, v in PASS_VERSIONS)

_TRUE: Expr = ("const", True)
_FALSE: Expr = ("const", False)

_LEAF_HEADS = {
    "const", "param", "state", "vertex", "superstep", "nv", "out_degree",
    "msg", "msg_count", "agg", "edge_weight",
}

#: NumPy semantics for folding — the executor's exact arithmetic.
_NP_UNARY = {"not": np.logical_not, "neg": np.negative, "abs": np.abs}
_NP_BINARY = {
    "add": np.add, "sub": np.subtract, "mul": np.multiply,
    "div": np.true_divide, "floordiv": np.floor_divide, "mod": np.mod,
    "pow": np.power, "min2": np.minimum, "max2": np.maximum,
    "lt": np.less, "le": np.less_equal, "gt": np.greater,
    "ge": np.greater_equal, "eq": np.equal, "ne": np.not_equal,
    "and": np.logical_and, "or": np.logical_or,
}
#: the executor casts non-array scalars with the Python constructors
_PY_CAST = {"cast_int": int, "cast_float": float, "cast_bool": bool}

_COMPLEMENT = {"lt": "ge", "ge": "lt", "gt": "le", "le": "gt",
               "eq": "ne", "ne": "eq"}

_CAST_FOR = {"bool": "cast_bool", "int64": "cast_int",
             "float64": "cast_float"}
_PY_FOR = {"bool": bool, "int64": int, "float64": float}


def _is_const(e: Any) -> bool:
    return isinstance(e, tuple) and e[0] == "const"


def _neg(e: Expr) -> Expr:
    if e[0] == "not":
        return e[1]
    return ("not", e)


# ----------------------------------------------------------------------
# Fact sets (assumption tracking)
# ----------------------------------------------------------------------
def _assume_true(e: Expr, t: frozenset, f: frozenset):
    head = e[0]
    if head == "and":
        t, f = _assume_true(e[1], t, f)
        return _assume_true(e[2], t, f)
    if head == "not":
        return _assume_false(e[1], t, f)
    if head == "const":
        return t, f
    return t | {e}, f


def _assume_false(e: Expr, t: frozenset, f: frozenset):
    head = e[0]
    if head == "or":
        t, f = _assume_false(e[1], t, f)
        return _assume_false(e[2], t, f)
    if head == "not":
        return _assume_true(e[1], t, f)
    if head == "const":
        return t, f
    return t, f | {e}


def _lookup(e: Expr, t: frozenset, f: frozenset) -> bool | None:
    """Truth value of ``e`` under the facts, or None when undetermined."""
    if e in t:
        return True
    if e in f:
        return False
    head = e[0]
    comp = _COMPLEMENT.get(head)
    if comp is not None:
        ce = (comp,) + e[1:]
        if ce in t:
            return False
        if ce in f:
            return True
    if head == "not":
        inner = _lookup(e[1], t, f)
        if inner is not None:
            return not inner
    return None


def _fold_compound(head: str, args: list) -> Expr | None:
    """Fold a compound over constant children with the executor's own
    NumPy arithmetic (overflow wraps, div-by-zero gives inf/nan — exactly
    what the interpreter would compute at runtime)."""
    try:
        with np.errstate(all="ignore"):
            if head in _NP_UNARY:
                out = _NP_UNARY[head](args[0])
            elif head in _PY_CAST:
                out = _PY_CAST[head](args[0])
            elif head in _NP_BINARY:
                out = _NP_BINARY[head](args[0], args[1])
            elif head == "where":
                out = args[1] if args[0] else args[2]
            else:
                return None
    except Exception:
        return None
    if isinstance(out, np.generic):
        out = out.item()
    if not isinstance(out, (bool, int, float)):
        return None
    return ("const", out)


class _Rewriter:
    """One expression-rewriting pass (fuse-masks or const-fold).

    ``fold=False`` runs the assumption/mask machinery only (fuse-masks);
    ``fold=True`` runs constant folding + identity elimination with no
    seeded facts (const-fold).  Both share the traversal so the boolean
    collapse rules compose.
    """

    def __init__(self, state_dtype: str, message_dtype: str | None,
                 fold: bool):
        self.state = state_dtype
        self.msg = message_dtype
        self.fold = fold
        self.rewrites = 0

    # -- dtype preservation --------------------------------------------
    def _dtype(self, e: Expr) -> str | None:
        return _dtype_of(e, self.state, self.msg)

    def _keep_dtype(self, original: Expr, candidate: Expr,
                    mask_ctx: bool) -> Expr:
        d0 = self._dtype(original)
        d1 = self._dtype(candidate)
        if d0 is None or d1 is None or d0 == d1:
            return candidate
        if mask_ctx and d0 in ("bool", "int64") and d1 in ("bool", "int64"):
            # consumers cast masks to bool; 1/0 vs True/False is the same
            return candidate
        if _is_const(candidate):
            try:
                return ("const", _PY_FOR[d0](candidate[1]))
            except (ValueError, OverflowError):
                pass
        return (_CAST_FOR[d0], candidate)

    def _done(self, original: Expr, candidate: Expr,
              mask_ctx: bool) -> Expr:
        candidate = self._keep_dtype(original, candidate, mask_ctx)
        if candidate != original:
            self.rewrites += 1
        return candidate

    # -- traversal ------------------------------------------------------
    def simplify(self, e: Expr | None,
                 t: frozenset = frozenset(),
                 f: frozenset = frozenset(),
                 mask_ctx: bool = False) -> Expr | None:
        if e is None:
            return None
        return self._simplify(e, t, f, mask_ctx)

    def _simplify(self, e: Expr, t: frozenset, f: frozenset,
                  m: bool) -> Expr:
        head = e[0]
        if head == "const":
            return e
        known = _lookup(e, t, f)
        if known is not None:
            return self._done(e, ("const", known), m)
        if head in _LEAF_HEADS:
            return e
        if head == "where":
            return self._where(e, t, f, m)
        if head == "and":
            return self._and(e, t, f, m)
        if head == "or":
            return self._or(e, t, f, m)
        if head == "not":
            a = self._simplify(e[1], t, f, True)
            if _is_const(a):
                return self._done(e, ("const", not a[1]), m)
            if a[0] == "not" and self._dtype(a[1]) == "bool":
                return self._done(e, a[1], m)
            return self._done(e, ("not", a), m)
        # generic compound: comparisons and arithmetic (value context)
        kids = tuple(
            self._simplify(c, t, f, False) if isinstance(c, tuple) else c
            for c in e[1:]
        )
        out: Expr = (head,) + kids
        if self.fold:
            if all(_is_const(k) for k in kids if isinstance(k, tuple)):
                folded = _fold_compound(head, [k[1] for k in kids])
                if folded is not None:
                    return self._done(e, folded, m)
            out = self._identity(out)
        return self._done(e, out, m)

    def _where(self, e: Expr, t: frozenset, f: frozenset, m: bool) -> Expr:
        c = self._simplify(e[1], t, f, True)
        if _is_const(c):
            pick = e[2] if c[1] else e[3]
            return self._done(e, self._simplify(pick, t, f, m), m)
        ct, cf = _assume_true(c, t, f)
        a = self._simplify(e[2], ct, cf, m)
        ft, ff = _assume_false(c, t, f)
        b = self._simplify(e[3], ft, ff, m)
        if a == b:
            return self._done(e, a, m)
        if (self._dtype(a) == "bool" and self._dtype(b) == "bool"
                and self._dtype(c) == "bool"):
            if a == _TRUE:
                return self._done(e, ("or", c, b), m)
            if b == _FALSE:
                return self._done(e, ("and", c, a), m)
            if a == _FALSE:
                return self._done(e, ("and", _neg(c), b), m)
            if b == _TRUE:
                return self._done(e, ("or", _neg(c), a), m)
        return self._done(e, ("where", c, a, b), m)

    def _and(self, e: Expr, t: frozenset, f: frozenset, m: bool) -> Expr:
        a = self._simplify(e[1], t, f, True)
        if _is_const(a):
            out = self._simplify(e[2], t, f, m) if a[1] else _FALSE
            return self._done(e, out, m)
        at, af = _assume_true(a, t, f)
        b = self._simplify(e[2], at, af, True)
        if _is_const(b):
            return self._done(e, a if b[1] else _FALSE, m)
        if a == b:
            return self._done(e, a, m)
        return self._done(e, ("and", a, b), m)

    def _or(self, e: Expr, t: frozenset, f: frozenset, m: bool) -> Expr:
        a = self._simplify(e[1], t, f, True)
        if _is_const(a):
            out = _TRUE if a[1] else self._simplify(e[2], t, f, m)
            return self._done(e, out, m)
        at, af = _assume_false(a, t, f)
        b = self._simplify(e[2], at, af, True)
        if _is_const(b):
            return self._done(e, _TRUE if b[1] else a, m)
        if a == b:
            return self._done(e, a, m)
        return self._done(e, ("or", a, b), m)

    def _identity(self, e: Expr) -> Expr:
        """Bit-safe algebraic identities (const-fold pass only)."""
        head = e[0]

        def _is_num(k: Any, v) -> bool:
            return (_is_const(k) and type(k[1]) is not bool
                    and k[1] == v)

        if head == "mul":
            if _is_num(e[1], 1):
                return e[2]
            if _is_num(e[2], 1):
                return e[1]
        elif head == "div":
            if _is_num(e[2], 1):
                return e[1]
        elif head in ("add", "sub"):
            # x + 0.0 maps -0.0 to +0.0: only safe for non-float operands
            if _is_num(e[2], 0) and self._dtype(e[1]) != "float64":
                return e[1]
            if (head == "add" and _is_num(e[1], 0)
                    and self._dtype(e[2]) != "float64"):
                return e[2]
        elif head in ("min2", "max2"):
            if e[1] == e[2]:
                return e[1]
        return e


# ----------------------------------------------------------------------
# Pass reports and the optimized-plan result
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class PassReport:
    """What one optimizer pass did to one plan."""

    name: str
    version: int
    changed: bool
    rewrites: int
    elapsed_ms: float

    def as_dict(self) -> dict:
        return {
            "name": self.name,
            "version": self.version,
            "changed": self.changed,
            "rewrites": self.rewrites,
            "elapsed_ms": round(self.elapsed_ms, 3),
        }


@dataclass(frozen=True)
class FusionBlock:
    """A phase merge the optimizer refused, and the op that blocked it."""

    phase: int  # index (post dead-op) of the phase that could not move
    guard: str  # rendered guard of the blocked phase
    op: str  # blocking op kind
    reason: str

    def as_dict(self) -> dict:
        return {
            "phase": self.phase,
            "guard": self.guard,
            "op": self.op,
            "reason": self.reason,
        }


@dataclass(frozen=True)
class PlanOptResult:
    """An optimized plan plus the audit trail that produced it."""

    original: KernelPlan
    plan: KernelPlan
    passes: tuple[PassReport, ...]
    blocked: tuple[FusionBlock, ...]
    fused_phases: int
    hoisted: int
    shared: int  # subtree occurrences unified by cse

    @property
    def changed(self) -> bool:
        return self.plan.digest != self.original.digest

    def as_dict(self) -> dict:
        return {
            "digest": self.plan.digest,
            "original_digest": self.original.digest,
            "changed": self.changed,
            "phases": len(self.plan.phases),
            "ops": self.plan.num_ops,
            "fused_phases": self.fused_phases,
            "hoisted": self.hoisted,
            "shared": self.shared,
            "blocked": [b.as_dict() for b in self.blocked],
            "passes": [p.as_dict() for p in self.passes],
        }


def _rebuild(plan: KernelPlan, **changes: Any) -> KernelPlan:
    new = replace(plan, **changes)
    object.__setattr__(new, "digest", _plan_digest(new.as_dict()))
    return new


# ----------------------------------------------------------------------
# The passes
# ----------------------------------------------------------------------
def _expr_pass(plan: KernelPlan, fold: bool) -> tuple[KernelPlan, int]:
    """fuse-masks (fold=False) / const-fold (fold=True) over every
    expression slot, threading guard and mask facts into op bodies."""
    rw = _Rewriter(plan.state_dtype, plan.message_dtype, fold=fold)
    none = frozenset()
    phases = []
    for phase in plan.phases:
        guard = rw.simplify(phase.guard, mask_ctx=True)
        if guard is not None and not _is_const(guard):
            t, f = _assume_true(guard, none, none)
        else:
            t, f = none, none
        ops = []
        for op in phase.ops:
            where = rw.simplify(op.where, t, f, mask_ctx=True)
            if where is not None and not _is_const(where):
                wt, wf = _assume_true(where, t, f)
            else:
                wt, wf = t, f
            payload = rw.simplify(op.payload, wt, wf)
            value = rw.simplify(op.value, wt, wf)
            ops.append(replace(op, where=where, payload=payload,
                               value=value))
        phases.append(KernelPhase(guard=guard, ops=tuple(ops)))
    update = rw.simplify(plan.state_update)
    init = rw.simplify(plan.state_init)
    default = rw.simplify(plan.gather_default)
    if rw.rewrites == 0:
        return plan, 0
    return _rebuild(
        plan, phases=tuple(phases), state_update=update, state_init=init,
        gather_default=default,
    ), rw.rewrites


def _dead_op_pass(plan: KernelPlan) -> tuple[KernelPlan, int]:
    removed = 0
    phases = []
    for phase in plan.phases:
        guard = phase.guard
        if guard is not None and _is_const(guard):
            if not guard[1]:
                removed += 1 + len(phase.ops)
                continue
            guard = None  # constant-true guard = every superstep
            removed += 1
        ops = []
        for op in phase.ops:
            where = op.where
            if where is not None and _is_const(where):
                if not where[1]:
                    removed += 1
                    continue
                op = replace(op, where=None)  # const-true mask = computed
                removed += 1
            ops.append(op)
        if not ops:
            if phase.ops:
                removed += 1
            continue
        phases.append(KernelPhase(guard=guard, ops=tuple(ops)))
    if removed == 0:
        return plan, 0
    return _rebuild(plan, phases=tuple(phases)), removed


def _fusion_blocker(plan: KernelPlan, phase: KernelPhase,
                    crossing: list) -> tuple[str, str] | None:
    """(op kind, reason) preventing ``phase`` from moving over
    ``crossing`` phases, or None when the move is order-insensitive.

    Everything in a plan reads superstep-entry state only (the lifter's
    core invariant), so the only order-sensitive effects are engine-level
    accumulations: message concatenation order under a ``sum`` gather
    (bincount float-accumulates) and same-name aggregator merge order.
    min/max/count/mode gathers and vote/prune/drop masks are idempotent
    or fully sorted, hence order-free at the bit level.
    """
    kinds = {op.kind for op in phase.ops}
    cross_kinds = {op.kind for g, ops in crossing for op in ops}
    if plan.reduce == "sum" and "scatter" in kinds and \
            "scatter" in cross_kinds:
        return ("scatter",
                "message delivery order is accumulation-significant "
                "under reduce='sum'")
    names = {op.name for op in phase.ops if op.kind == "aggregate"}
    cross_names = {
        op.name for g, ops in crossing for op in ops
        if op.kind == "aggregate"
    }
    both = names & cross_names
    if both:
        return ("aggregate",
                f"aggregator {sorted(both)[0]!r} merges contributions "
                "in op order")
    return None


def _phase_fuse_pass(
    plan: KernelPlan,
) -> tuple[KernelPlan, int, int, tuple[FusionBlock, ...]]:
    merged: list[list] = []  # [guard, [ops...]]
    blocked: list[FusionBlock] = []
    fused = 0
    for idx, phase in enumerate(plan.phases):
        target = None
        for j, (guard, _ops) in enumerate(merged):
            if guard == phase.guard:
                target = j
                break
        if target is None:
            merged.append([phase.guard, list(phase.ops)])
            continue
        if target == len(merged) - 1:
            merged[target][1].extend(phase.ops)
            fused += 1
            continue
        block = _fusion_blocker(plan, phase, merged[target + 1:])
        if block is None:
            merged[target][1].extend(phase.ops)
            fused += 1
        else:
            op_kind, reason = block
            blocked.append(FusionBlock(
                phase=idx, guard=render_expr(phase.guard), op=op_kind,
                reason=reason,
            ))
            merged.append([phase.guard, list(phase.ops)])
    if fused == 0:
        return plan, 0, 0, tuple(blocked)
    phases = tuple(
        KernelPhase(guard=g, ops=tuple(ops)) for g, ops in merged
    )
    return _rebuild(plan, phases=phases), fused, fused, tuple(blocked)


def _uses_edge_weight(e: Expr) -> bool:
    if e[0] == "edge_weight":
        return True
    return any(
        _uses_edge_weight(c) for c in e[1:] if isinstance(c, tuple)
    )


def _compound_subtrees(e: Expr | None, out: set) -> None:
    if e is None or e[0] in _LEAF_HEADS:
        return
    out.add(e)
    for c in e[1:]:
        if isinstance(c, tuple):
            _compound_subtrees(c, out)


def _hoist_pass(plan: KernelPlan) -> tuple[KernelPlan, int]:
    """Mark scatter payloads whose vertex-space subtrees are shared with
    vertex-evaluated expressions (state update, masks, aggregate values,
    other payloads).  The executor then evaluates those subtrees once in
    vertex space — where the shared memo already holds them — and indexes
    per-arc, instead of re-evaluating over (usually larger) arc rows."""
    scatters = [
        op for phase in plan.phases for op in phase.ops
        if op.kind == "scatter" and op.payload is not None
    ]
    if not scatters:
        return plan, 0
    pool: set = set()
    _compound_subtrees(plan.state_update, pool)
    _compound_subtrees(plan.gather_default, pool)
    for phase in plan.phases:
        for op in phase.ops:
            _compound_subtrees(op.where, pool)
            _compound_subtrees(op.value, pool)

    def _wants_hoist(op: KOp, others: set) -> bool:
        subs: set = set()
        _compound_subtrees(op.payload, subs)
        return any(
            s in others and not _uses_edge_weight(s) for s in subs
        )

    hoisted = 0
    phases = []
    for phase in plan.phases:
        ops = []
        for op in phase.ops:
            if op.kind == "scatter" and op.payload is not None \
                    and not op.hoist:
                others = set(pool)
                for other in scatters:
                    if other is not op:
                        _compound_subtrees(other.payload, others)
                if _wants_hoist(op, others):
                    op = replace(op, hoist=True)
                    hoisted += 1
            ops.append(op)
        phases.append(KernelPhase(guard=phase.guard, ops=tuple(ops)))
    if hoisted == 0:
        return plan, 0
    return _rebuild(plan, phases=tuple(phases)), hoisted


def _cse_pass(plan: KernelPlan) -> tuple[KernelPlan, int]:
    """Hash-cons structurally equal subtrees into shared tuples.

    Digest-invariant (structure is unchanged); it exists purely so the
    dense executor's ``(id(expr), id(arcs))`` memo turns structural
    sharing into evaluation sharing."""
    interner: dict = {}
    shared = 0

    def intern(e):
        nonlocal shared
        if e is None or not isinstance(e, tuple):
            return e
        rebuilt = (e[0],) + tuple(
            intern(c) if isinstance(c, tuple) else c for c in e[1:]
        )
        got = interner.get(rebuilt)
        if got is not None:
            shared += 1
            return got
        interner[rebuilt] = rebuilt
        return rebuilt

    phases = tuple(
        KernelPhase(
            guard=intern(phase.guard),
            ops=tuple(
                replace(op, where=intern(op.where),
                        payload=intern(op.payload), value=intern(op.value))
                for op in phase.ops
            ),
        )
        for phase in plan.phases
    )
    new = _rebuild(
        plan, phases=phases, state_update=intern(plan.state_update),
        state_init=intern(plan.state_init),
        gather_default=intern(plan.gather_default),
    )
    return new, shared


# ----------------------------------------------------------------------
# The driver
# ----------------------------------------------------------------------
def optimize_plan(plan: KernelPlan) -> PlanOptResult:
    """Run the full pass pipeline over one plan.

    fuse-masks and const-fold iterate to a fixpoint (each exposes work
    for the other); the structural passes then run once.  Per-pass
    rewrite counts and wall time are accumulated into the reports the
    JSON envelope ships (``opt.passes[*].elapsed_ms``).
    """
    original = plan
    stats: dict[str, list] = {
        name: [0, 0.0, False] for name, _ in PASS_VERSIONS
    }

    def timed(name: str, fn: Callable, *args):
        t0 = time.perf_counter()
        out = fn(*args)
        stats[name][1] += (time.perf_counter() - t0) * 1000.0
        return out

    for _ in range(4):
        plan, r1 = timed("fuse-masks", _expr_pass, plan, False)
        plan, r2 = timed("const-fold", _expr_pass, plan, True)
        for name, n in (("fuse-masks", r1), ("const-fold", r2)):
            stats[name][0] += n
            stats[name][2] = stats[name][2] or n > 0
        if r1 == 0 and r2 == 0:
            break

    plan, removed = timed("dead-op", _dead_op_pass, plan)
    stats["dead-op"][:] = [removed, stats["dead-op"][1], removed > 0]

    plan, rewrites, fused, blocked = timed(
        "phase-fuse", _phase_fuse_pass, plan
    )
    stats["phase-fuse"][:] = [rewrites, stats["phase-fuse"][1], fused > 0]

    plan, hoisted = timed("hoist-scatter", _hoist_pass, plan)
    stats["hoist-scatter"][:] = [
        hoisted, stats["hoist-scatter"][1], hoisted > 0,
    ]

    plan, shared = timed("cse", _cse_pass, plan)
    # cse never changes plan *content* (digest-invariant by construction)
    stats["cse"][:] = [shared, stats["cse"][1], False]

    reports = tuple(
        PassReport(
            name=name, version=version, changed=stats[name][2],
            rewrites=stats[name][0], elapsed_ms=stats[name][1],
        )
        for name, version in PASS_VERSIONS
    )
    return PlanOptResult(
        original=original, plan=plan, passes=reports, blocked=blocked,
        fused_phases=fused, hoisted=hoisted, shared=shared,
    )


# ----------------------------------------------------------------------
# Module-level verdicts (lift + optimize), memoized like lift_verdict
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class PlanVerdict:
    """A lift verdict enriched with its optimization result."""

    lift: LiftResult
    opt: PlanOptResult | None

    @property
    def program(self) -> str:
        return self.lift.program

    @property
    def lifted(self) -> bool:
        return self.lift.lifted

    @property
    def plan(self) -> KernelPlan | None:
        """The *optimized* plan when lifted (the raw plan is
        ``self.lift.plan``)."""
        return self.opt.plan if self.opt is not None else None

    def as_dict(self) -> dict:
        out = self.lift.as_dict()
        if self.opt is not None:
            out["opt"] = self.opt.as_dict()
        return out


def optimize_verdict(program: ProgramInfo, module: ModuleInfo) -> PlanVerdict:
    """Lift + optimize with per-module memoization (the rules share it)."""
    cache = getattr(module, "_planopt_cache", None)
    if cache is None:
        cache = {}
        module._planopt_cache = cache  # type: ignore[attr-defined]
    key = id(program.node)
    if key in cache:
        return cache[key]
    lift = lift_verdict(program, module)
    opt = optimize_plan(lift.plan) if lift.plan is not None else None
    verdict = PlanVerdict(lift=lift, opt=opt)
    cache[key] = verdict
    return verdict


def optimize_source(source: str, filename: str = "<string>") -> list[PlanVerdict]:
    """Enriched verdicts for every VertexProgram subclass in one module."""
    import ast

    from .analyzer import _find_programs

    try:
        tree = ast.parse(source, filename=filename)
    except SyntaxError:
        return []
    module = ModuleInfo.build(tree, filename)
    return [optimize_verdict(p, module) for p in _find_programs(tree)]


def optimize_file(path: str | Path) -> list[PlanVerdict]:
    path = Path(path)
    try:
        source = path.read_text(encoding="utf-8")
    except (OSError, UnicodeDecodeError):
        return []
    return optimize_source(source, filename=str(path))


# ----------------------------------------------------------------------
# Differential certification (raw plan vs optimized plan, bit level)
# ----------------------------------------------------------------------
def _bits(v: Any) -> Any:
    """Bit-faithful comparison key (distinguishes -0.0/0.0, matches NaN)."""
    if isinstance(v, float):
        import struct

        return struct.pack("<d", v)
    return v


@dataclass(frozen=True)
class OptCertification:
    """Outcome of one raw-vs-optimized differential run."""

    program: str
    original_digest: str
    optimized_digest: str
    ok: bool
    mismatches: tuple[str, ...]

    def summary(self) -> str:
        state = "bit-identical" if self.ok else "DIVERGED"
        out = (
            f"planopt certification: {self.program} "
            f"{self.original_digest[:12]} -> {self.optimized_digest[:12]}: "
            f"{state}"
        )
        if self.mismatches:
            out += "\n  " + "\n  ".join(self.mismatches[:10])
        return out


def certify_optimization(make_job: Callable[[], "Any"],
                         max_mismatches: int = 8) -> OptCertification:
    """Run the raw and the optimized plan of ``make_job()``'s program
    under :class:`DenseRefEngine` and diff every observable at the bit
    level.  ``make_job`` is called twice so master-state mutation on the
    program instance cannot leak between the runs.
    """
    from ..bsp.dense_ref import DenseRefEngine
    from .vectorize import lift_of

    job = make_job()
    verdict = lift_of(job.program)
    if verdict is None or verdict.plan is None:
        raise ValueError(
            "certify_optimization needs a liftable program; got "
            f"{type(job.program).__name__}"
        )
    raw = verdict.plan
    opt = optimize_plan(raw).plan
    a = DenseRefEngine(job, plan=raw).run()
    b = DenseRefEngine(make_job(), plan=opt).run()

    mismatches: list[str] = []
    if a.supersteps != b.supersteps:
        mismatches.append(
            f"supersteps: {a.supersteps} != {b.supersteps}"
        )
    if a.halted != b.halted:
        mismatches.append(f"halted: {a.halted} != {b.halted}")
    for v in a.values:
        if len(mismatches) >= max_mismatches:
            break
        if _bits(a.values[v]) != _bits(b.values.get(v)):
            mismatches.append(
                f"vertex {v}: {a.values[v]!r} != {b.values.get(v)!r}"
            )
    for k in a.aggregates:
        if _bits(a.aggregates[k]) != _bits(b.aggregates.get(k)):
            mismatches.append(
                f"aggregate {k!r}: {a.aggregates[k]!r} != "
                f"{b.aggregates.get(k)!r}"
            )
    return OptCertification(
        program=verdict.program,
        original_digest=raw.digest,
        optimized_digest=opt.digest,
        ok=not mismatches,
        mismatches=tuple(mismatches),
    )


# ----------------------------------------------------------------------
# Cross-analysis checks (RPC021 helper)
# ----------------------------------------------------------------------
def plan_profile_disagreements(profile: Any, plan: KernelPlan) -> list[str]:
    """Ways the costmodel profile and the lifted plan contradict each
    other.  Both passes are sound alone; a disagreement means one of them
    mis-modeled the program and neither verdict should be trusted."""
    out: list[str] = []
    if profile is None:
        return out
    has_scatter = any(
        op.kind == "scatter" for p in plan.phases for op in p.ops
    )
    if has_scatter and profile.fanout is FanoutClass.NONE:
        out.append(
            "plan scatters messages but the costmodel classifies the "
            "program as fanout=none"
        )
    if not has_scatter and profile.fanout.level >= FanoutClass.OUT_DEGREE.level:
        out.append(
            f"costmodel classifies fanout={profile.fanout} but the plan "
            "has no scatter op"
        )
    if (plan.reduce in ("sum", "min", "max")
            and profile.reduction is not None
            and profile.reduction != plan.reduce):
        out.append(
            f"plan gathers with reduce='{plan.reduce}' but the costmodel "
            f"infers reduction='{profile.reduction}'"
        )
    return out


# ----------------------------------------------------------------------
# Catalog rules (opt-in: only run under `repro check --kernel-plan`)
# ----------------------------------------------------------------------
class PlanOptimizedRule(Rule):
    """RPC019: the optimizer rewrote the plan; the finding carries the
    optimized digest so dashboards can track what actually executes."""

    id = "RPC019"
    severity = Severity.INFO
    summary = "KernelPlan optimizes (fused masks / folded constants)"
    hint = (
        "dense-ref executes the optimized plan; it is certified "
        "bit-identical to the unoptimized plan by the test suite"
    )

    def check(self, program, module):
        v = optimize_verdict(program, module)
        if v.opt is None or not v.opt.changed:
            return
        o = v.opt
        rewrites = sum(p.rewrites for p in o.passes)
        extras = []
        if o.fused_phases:
            extras.append(f"{o.fused_phases} phase(s) fused")
        if o.hoisted:
            extras.append(f"{o.hoisted} scatter(s) hoisted")
        detail = f" ({', '.join(extras)})" if extras else ""
        yield self.finding(
            module, program.node,
            f"plan {o.original.digest[:16]} optimizes to "
            f"{o.plan.digest[:16]}: {rewrites} rewrite(s), "
            f"{o.original.num_ops} -> {o.plan.num_ops} op(s){detail}",
        )


class FusionBlockedRule(Rule):
    """RPC020: an order-sensitive op blocked a phase merge."""

    id = "RPC020"
    severity = Severity.INFO
    summary = "phase fusion blocked by an order-sensitive op"
    hint = (
        "sum-reduced scatters and same-name aggregator contributions "
        "cannot be reordered; group same-guard effects together in "
        "compute() to fuse them"
    )

    def check(self, program, module):
        v = optimize_verdict(program, module)
        if v.opt is None:
            return
        for b in v.opt.blocked:
            yield self.finding(
                module, program.node,
                f"phase {b.phase} (guard {b.guard}) cannot fuse past a "
                f"{b.op} op: {b.reason}",
            )


class VerdictDisagreementRule(Rule):
    """RPC021: the costmodel profile and the kernel plan contradict each
    other — one of the two static passes mis-modeled the program."""

    id = "RPC021"
    severity = Severity.WARNING
    summary = "costmodel profile disagrees with the kernel-plan verdict"
    hint = (
        "trust neither verdict until the disagreement is explained; "
        "file a bug with the program source if both passes look right"
    )

    def check(self, program, module):
        res = lift_verdict(program, module)
        if res.plan is None:
            return
        profile = profile_program(program, module)
        for reason in plan_profile_disagreements(profile, res.plan):
            yield self.finding(module, program.node, reason)


class EngineSelectionHazardRule(Rule):
    """RPC022: static engine selection can only route this program to a
    hazardous engine (broadcast fan-out pinned in a single process)."""

    id = "RPC022"
    severity = Severity.WARNING
    summary = "engine selection hazard: broadcast fan-out pinned single-process"
    hint = (
        "remove the pickle-unsafe state (RPC011) or restructure compute() "
        "so it lifts to a KernelPlan; until then only sim/threaded can "
        "run it and broadcast traffic will not parallelize"
    )

    def check(self, program, module):
        res = lift_verdict(program, module)
        if res.plan is not None:
            return  # dense-ref is eligible: no hazard
        profile = profile_program(program, module)
        if profile is None:
            return
        if profile.fanout is FanoutClass.BROADCAST and profile.pickle_risks:
            risk = profile.pickle_risks[0]
            yield self.finding(
                module, program.node,
                "broadcast fan-out with pickle-unsafe state "
                f"(line {risk.line}: {risk.detail}) pins the program to "
                "single-process engines; `--engine auto` can only route "
                "its message volume to sim/threaded",
            )


PLANOPT_RULES: tuple[Rule, ...] = (
    PlanOptimizedRule(),
    FusionBlockedRule(),
    VerdictDisagreementRule(),
    EngineSelectionHazardRule(),
)
