"""Pregel-aware static analyzer + dynamic sanitizer for vertex programs.

The engine's whole analysis (and the paper's swath heuristics, §IV) assume
vertex programs are true BSP citizens: message-driven, deterministic per
superstep, no shared state, honest resource hooks.  This package verifies
those contracts before and during a run:

* **Static pass** — ``repro check [path|module ...]`` runs the AST rules
  (RPC001..RPC014) over every :class:`~repro.bsp.api.VertexProgram`
  subclass; importable as :func:`analyze_source` / :func:`analyze_paths`
  for tests.  Suppress per line with ``# repro: noqa[RPC00X]``; configure
  defaults in ``[tool.repro.check]`` (pyproject.toml).
* **Cost models** — ``repro check --profile`` (module
  :mod:`repro.check.costmodel`) statically infers each program's
  :class:`ProgramProfile`: message fan-out class, payload-size model,
  combiner/aggregator compatibility, and process-engine pickle safety.
  :func:`profile_of` models a live program object; the profile seeds
  ``SamplingSizer.from_profile(...)`` swath sizing and gates
  :class:`repro.dist.ProcessBSPEngine` before it forks.
* **Vectorization front-end** — ``repro check --kernel-plan`` (module
  :mod:`repro.check.vectorize`) abstract-interprets each ``compute()``
  and either lifts it to a declarative :class:`KernelPlan` (RPC015 —
  gather/map/scatter ops the NumPy reference executor
  :class:`repro.bsp.dense_ref.DenseRefEngine` interprets directly) or
  refuses with the precise blocking construct (RPC016 data-dependent
  control flow, RPC017 non-dense state/payload schema, RPC018 unknown
  reduction monoid).  Every claimed plan is certified bit-equivalent
  against the simulation engine (``certify_determinism(engine=
  "dense-ref")``).
* **Plan optimizer** — module :mod:`repro.check.planopt` statically
  rewrites lifted plans (mask fusion, constant folding, dead-op
  elimination, phase fusion, scatter hoisting, CSE) into the form
  dense-ref actually executes, each rewrite certified bit-identical to
  the unoptimized plan (:func:`certify_optimization`).  Surfaced under
  ``--kernel-plan`` as RPC019 (plan optimized, digest), RPC020 (fusion
  blocked by an order-sensitive op), RPC021 (costmodel / kernel-plan
  verdict disagreement), RPC022 (engine-selection hazard); the optimized
  digests feed ``repro run --engine auto``'s static engine ranking
  (:mod:`repro.analysis.engine_select`).
* **Dynamic sanitizer** — :class:`SanitizingProgram` +
  :class:`SanitizerObserver` fingerprint delivered payloads against
  in-place mutation, :func:`certify_determinism` diffs 1-vs-N-worker
  (threaded) outputs, and :func:`check_aggregator_laws` probes declared
  aggregators for the barrier-merge algebra.  ``repro run --sanitize``
  and ``repro check --sanitize`` wire them into real runs; violations
  surface through :mod:`repro.obs` metrics.

The contracts each rule enforces are documented in
``docs/vertex-program-contract.md``.
"""

from .analyzer import (
    ANALYZER_VERSION,
    FileResult,
    analyze_file,
    analyze_paths,
    analyze_paths_detailed,
    analyze_source,
)
from .cache import AnalysisCache
from .config import CheckConfig, DEFAULT_CONFIG, load_config
from .costmodel import (
    FanoutClass,
    PayloadModel,
    PickleRisk,
    ProgramProfile,
    SendSite,
    estimate_bytes_per_root,
    profile_file,
    profile_of,
    profile_paths,
    profile_source,
)
from .findings import Finding, Severity
from .rules import RULES, rule_catalog
from .sanitizer import (
    AggregatorLawReport,
    DeterminismReport,
    SanitizerObserver,
    SanitizerViolation,
    SanitizingProgram,
    SmokeReport,
    certify_determinism,
    check_aggregator_laws,
    freeze,
    run_sanitize_smoke,
)
from .planopt import (
    PLANOPT_RULES,
    PLANOPT_SIGNATURE,
    FusionBlock,
    OptCertification,
    PassReport,
    PlanOptResult,
    PlanVerdict,
    certify_optimization,
    optimize_file,
    optimize_plan,
    optimize_source,
    plan_profile_disagreements,
)
from .vectorize import (
    KERNEL_RULES,
    KernelPhase,
    KernelPlan,
    KOp,
    LiftResult,
    lift_file,
    lift_of,
    lift_paths,
    lift_source,
)

__all__ = [
    "ANALYZER_VERSION",
    "FileResult",
    "analyze_file",
    "analyze_paths",
    "analyze_paths_detailed",
    "analyze_source",
    "FanoutClass",
    "PayloadModel",
    "PickleRisk",
    "ProgramProfile",
    "SendSite",
    "estimate_bytes_per_root",
    "profile_file",
    "profile_of",
    "profile_paths",
    "profile_source",
    "CheckConfig",
    "DEFAULT_CONFIG",
    "load_config",
    "Finding",
    "Severity",
    "RULES",
    "rule_catalog",
    "AggregatorLawReport",
    "DeterminismReport",
    "SanitizerObserver",
    "SanitizerViolation",
    "SanitizingProgram",
    "SmokeReport",
    "certify_determinism",
    "check_aggregator_laws",
    "freeze",
    "run_sanitize_smoke",
    "AnalysisCache",
    "KERNEL_RULES",
    "KernelPhase",
    "KernelPlan",
    "KOp",
    "LiftResult",
    "lift_file",
    "lift_of",
    "lift_paths",
    "lift_source",
    "PLANOPT_RULES",
    "PLANOPT_SIGNATURE",
    "FusionBlock",
    "OptCertification",
    "PassReport",
    "PlanOptResult",
    "PlanVerdict",
    "certify_optimization",
    "optimize_file",
    "optimize_plan",
    "optimize_source",
    "plan_profile_disagreements",
]
