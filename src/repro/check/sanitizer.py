"""Dynamic sanitizer: runtime checks for the contracts RPC rules can't see.

Three cooperating probes, all opt-in (``--sanitize`` or direct API use):

* :class:`SanitizingProgram` — a transparent wrapper (same pattern as
  :class:`~repro.bsp.debug.TracingProgram`) that fingerprints every
  delivered payload before ``compute()`` and re-fingerprints after,
  catching in-place mutation of the engine's message buffers (RPC001's
  runtime twin — it also catches mutation through helper calls the static
  pass can't follow).
* :func:`certify_determinism` — runs the same job at 1 worker (sequential
  engine) and N workers (:class:`~repro.bsp.parallel.ThreadedBSPEngine`)
  and diffs the ``extract()`` outputs, certifying worker-count
  determinism: the property iPregel-style surveys report silently broken
  by message-order dependence, unseeded randomness, and shared state.
* :func:`check_aggregator_laws` — probes each declared aggregator for
  commutativity, merge-associativity, and identity on sampled values;
  barrier merges fold worker partials in arbitrary groupings, so a law
  violation makes aggregates depend on the partitioning.

:class:`SanitizerObserver` rides the public
:class:`~repro.bsp.engine.SuperstepObserver` surface, runs the aggregator
probe at job start, drains the wrapper's violations at each barrier, and
emits them through the :mod:`repro.obs` metrics registry
(``repro_sanitizer_violations_total{kind=...}``) so violations show up in
run telemetry next to the engine's own series.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Any, Callable, Sequence

import numpy as np

from ..bsp.api import VertexProgram
from ..bsp.engine import BSPEngine, SuperstepObserver
from ..bsp.job import JobSpec
from ..bsp.parallel import ThreadedBSPEngine

__all__ = [
    "SanitizerViolation",
    "SanitizingProgram",
    "SanitizerObserver",
    "DeterminismReport",
    "certify_determinism",
    "AggregatorLawReport",
    "check_aggregator_laws",
    "SmokeCase",
    "SmokeReport",
    "run_sanitize_smoke",
    "freeze",
]


# ----------------------------------------------------------------------
# Structural fingerprinting
# ----------------------------------------------------------------------
def freeze(obj: Any, _depth: int = 0) -> Any:
    """Canonical immutable fingerprint of a payload/state value.

    Two calls on the *same object* compare equal iff the object was not
    mutated in between; unknown object types fall back to ``repr`` (no
    false positives — same object, same repr — at the cost of missing
    mutations inside objects with default reprs).
    """
    if obj is None or isinstance(obj, (bool, int, float, complex, str, bytes)):
        return obj
    if isinstance(obj, (np.integer, np.floating, np.bool_)):
        return obj.item()
    if isinstance(obj, np.ndarray):
        return ("ndarray", obj.shape, str(obj.dtype), obj.tobytes())
    if _depth >= 8:
        return "<depth-capped>"
    if isinstance(obj, (list, tuple)):
        return (
            "list" if isinstance(obj, list) else "tuple",
            tuple(freeze(x, _depth + 1) for x in obj),
        )
    if isinstance(obj, dict):
        return (
            "dict",
            tuple(
                (freeze(k, _depth + 1), freeze(v, _depth + 1))
                for k, v in obj.items()
            ),
        )
    if isinstance(obj, (set, frozenset)):
        return ("set", tuple(sorted(repr(freeze(x, _depth + 1)) for x in obj)))
    slots = getattr(type(obj), "__slots__", None)
    if slots is not None:
        if isinstance(slots, str):
            slots = (slots,)
        return (
            "obj",
            type(obj).__name__,
            tuple(
                (s, freeze(getattr(obj, s, None), _depth + 1)) for s in slots
            ),
        )
    d = getattr(obj, "__dict__", None)
    if d is not None:
        return ("obj", type(obj).__name__, freeze(d, _depth + 1))
    return repr(obj)


@dataclass(frozen=True)
class SanitizerViolation:
    """One runtime contract violation caught by the sanitizer."""

    kind: str  # payload-mutated | messages-resized | aggregator-law
    superstep: int
    vertex: int
    detail: str


class SanitizingProgram(VertexProgram):
    """Transparent wrapper detecting in-place mutation of delivered payloads.

    The wrapped program's behavior is unchanged; violations accumulate in
    :attr:`violations` (appends are atomic under the GIL, so the wrapper is
    safe under :class:`~repro.bsp.parallel.ThreadedBSPEngine`).
    """

    def __init__(self, inner: VertexProgram) -> None:
        self.inner = inner
        self.combiner = inner.combiner
        self.violations: list[SanitizerViolation] = []

    # Delegation (keeps memory/aggregator modeling undistorted) ----------
    def init_state(self, vertex_id, graph):
        return self.inner.init_state(vertex_id, graph)

    def aggregators(self):
        return self.inner.aggregators()

    def master_compute(self, master):
        return self.inner.master_compute(master)

    def payload_nbytes(self, payload):
        return self.inner.payload_nbytes(payload)

    def state_nbytes(self, state):
        return self.inner.state_nbytes(state)

    def extract(self, vertex_id, state):
        return self.inner.extract(vertex_id, state)

    @property
    def name(self) -> str:
        return f"Sanitizing({self.inner.name})"

    # ------------------------------------------------------------------
    def compute(self, ctx, state, messages):
        n_before = len(messages)
        before = [freeze(p) for p in messages]
        out = self.inner.compute(ctx, state, messages)
        if len(messages) != n_before:
            self.violations.append(
                SanitizerViolation(
                    kind="messages-resized",
                    superstep=ctx.superstep,
                    vertex=ctx.vertex_id,
                    detail=f"len {n_before} -> {len(messages)}",
                )
            )
        else:
            for i, (fp, payload) in enumerate(zip(before, messages)):
                if freeze(payload) != fp:
                    self.violations.append(
                        SanitizerViolation(
                            kind="payload-mutated",
                            superstep=ctx.superstep,
                            vertex=ctx.vertex_id,
                            detail=f"message[{i}] mutated in place",
                        )
                    )
        return out


class SanitizerObserver(SuperstepObserver):
    """Drains a :class:`SanitizingProgram`'s violations at every barrier.

    Pass ``metrics`` (a :class:`repro.obs.MetricsRegistry`) to surface
    violations as ``repro_sanitizer_violations_total{kind=...}`` counters in
    run telemetry.  The program may be bound lazily at ``on_job_start`` —
    handy when the program is constructed deep inside a runner.
    """

    def __init__(
        self,
        program: SanitizingProgram | None = None,
        metrics: Any = None,
        check_aggregators: bool = True,
    ) -> None:
        self._program = program
        self._metrics = metrics
        self._check_aggregators = check_aggregators
        self._seen = 0
        self._flight = None
        self.violations: list[SanitizerViolation] = []
        self.aggregator_reports: list[AggregatorLawReport] = []

    @property
    def ok(self) -> bool:
        return not self.violations

    def _emit(self, violation: SanitizerViolation) -> None:
        self.violations.append(violation)
        if self._metrics is not None:
            self._metrics.counter(
                "repro_sanitizer_violations_total",
                help="Vertex-program contract violations caught at runtime",
                kind=violation.kind,
            ).inc()
        if self._flight is not None:
            self._flight.record(
                "sanitizer-violation", superstep=violation.superstep,
                kind=violation.kind, vertex=violation.vertex,
                detail=violation.detail,
            )

    def on_job_start(self, engine: BSPEngine) -> None:
        # Violations land in the run's flight recorder too, so postmortem
        # bundles and the live /events tail surface contract breakage.
        self._flight = getattr(engine, "flight", None)
        if self._program is None and isinstance(
            engine.job.program, SanitizingProgram
        ):
            self._program = engine.job.program
        if self._check_aggregators and self._program is not None:
            self.aggregator_reports = check_aggregator_laws(self._program.inner)
            for report in self.aggregator_reports:
                for failure in report.failures:
                    self._emit(
                        SanitizerViolation(
                            kind="aggregator-law",
                            superstep=-1,
                            vertex=-1,
                            detail=f"{report.name}: {failure}",
                        )
                    )

    def on_superstep_end(self, engine: BSPEngine, stats) -> None:
        if self._program is None:
            return
        fresh = self._program.violations[self._seen:]
        self._seen = len(self._program.violations)
        for violation in fresh:
            self._emit(violation)


# ----------------------------------------------------------------------
# Worker-count determinism certification
# ----------------------------------------------------------------------
def _approx_equal(a: Any, b: Any, rel_tol: float, abs_tol: float) -> bool:
    if isinstance(a, (bool, np.bool_)) or isinstance(b, (bool, np.bool_)):
        return bool(a) == bool(b)
    if isinstance(a, (int, float, np.integer, np.floating)) and isinstance(
        b, (int, float, np.integer, np.floating)
    ):
        fa, fb = float(a), float(b)
        if math.isnan(fa) and math.isnan(fb):
            return True
        if math.isinf(fa) or math.isinf(fb):
            return fa == fb
        return math.isclose(fa, fb, rel_tol=rel_tol, abs_tol=abs_tol)
    if isinstance(a, np.ndarray) or isinstance(b, np.ndarray):
        a, b = np.asarray(a), np.asarray(b)
        return a.shape == b.shape and bool(
            np.allclose(a, b, rtol=rel_tol, atol=abs_tol, equal_nan=True)
        )
    if isinstance(a, (list, tuple)) and isinstance(b, (list, tuple)):
        return len(a) == len(b) and all(
            _approx_equal(x, y, rel_tol, abs_tol) for x, y in zip(a, b)
        )
    if isinstance(a, dict) and isinstance(b, dict):
        return a.keys() == b.keys() and all(
            _approx_equal(v, b[k], rel_tol, abs_tol) for k, v in a.items()
        )
    if isinstance(a, (set, frozenset)) and isinstance(b, (set, frozenset)):
        return a == b
    try:
        return bool(a == b)
    except Exception:
        return False


@dataclass
class DeterminismReport:
    """Outcome of a 1-vs-N worker-count determinism diff."""

    ok: bool
    num_workers: int
    mismatches: list[tuple[int, Any, Any]] = field(default_factory=list)
    total_mismatches: int = 0
    supersteps: tuple[int, int] = (0, 0)
    #: backend the N-worker run used: "sim", "threaded", "process",
    #: or "dense-ref"
    engine: str = "threaded"

    def summary(self) -> str:
        if self.ok:
            return (
                f"deterministic across 1 vs {self.num_workers} workers "
                f"({self.supersteps[0]}/{self.supersteps[1]} supersteps)"
            )
        shown = ", ".join(
            f"v{v}: {a!r} != {b!r}" for v, a, b in self.mismatches[:3]
        )
        return (
            f"NONDETERMINISTIC across 1 vs {self.num_workers} workers: "
            f"{self.total_mismatches} vertices differ ({shown}, ...)"
        )


def certify_determinism(
    program_factory: Callable[[], VertexProgram],
    graph,
    num_workers: int = 4,
    *,
    engine: str = "threaded",
    threaded: bool = True,
    initially_active: Any = True,
    initial_messages: Sequence[tuple[int, Any]] = (),
    max_supersteps: int = 10_000,
    rel_tol: float = 1e-9,
    abs_tol: float = 1e-12,
    max_mismatches: int = 10,
    job_kwargs: dict | None = None,
) -> DeterminismReport:
    """Run at 1 worker and at ``num_workers`` on ``engine``, diff outputs.

    ``engine`` picks the N-worker backend: ``"sim"`` (sequential engine,
    pure partitioning effects), ``"threaded"``
    (:class:`~repro.bsp.parallel.ThreadedBSPEngine`, adds real
    concurrency), ``"process"`` (:class:`~repro.dist.ProcessBSPEngine`,
    adds serialization and real process boundaries), ``"tcp"``
    (:class:`~repro.net.TcpBSPEngine`, adds sockets to auto-spawned
    localhost worker daemons), or ``"dense-ref"``
    (:class:`~repro.bsp.dense_ref.DenseRefEngine`, interprets the
    program's static KernelPlan with NumPy — this is how RPC015 claims
    are certified).  ``threaded=False`` is the deprecated spelling of
    ``engine="sim"``.

    ``program_factory`` must build a *fresh* program per call — programs may
    carry instance state (converged_at, caches) that must not leak between
    the reference and the test run.  Float outputs compare with tolerance:
    barrier-order float-sum reassociation is legal BSP behavior; structural
    divergence is not.
    """
    if num_workers < 2:
        raise ValueError("num_workers must be >= 2 to exercise partitioning")
    if not threaded and engine == "threaded":
        engine = "sim"  # back-compat: threaded=False meant the sim engine
    kwargs = dict(
        initially_active=initially_active,
        initial_messages=list(initial_messages),
        max_supersteps=max_supersteps,
        **(job_kwargs or {}),
    )
    ref = BSPEngine(
        JobSpec(program=program_factory(), graph=graph, num_workers=1, **kwargs)
    ).run()
    if engine == "sim":
        engine_cls = BSPEngine
    elif engine == "threaded":
        engine_cls = ThreadedBSPEngine
    elif engine == "process":
        from ..dist import ProcessBSPEngine

        engine_cls = ProcessBSPEngine
    elif engine == "tcp":
        from ..net.engine import TcpBSPEngine

        engine_cls = TcpBSPEngine
    elif engine == "dense-ref":
        from ..bsp.dense_ref import DenseRefEngine

        engine_cls = DenseRefEngine
    else:
        raise ValueError(
            f"unknown engine {engine!r}; use 'sim', 'threaded', 'process', "
            "'tcp' or 'dense-ref'"
        )
    alt = engine_cls(
        JobSpec(
            program=program_factory(), graph=graph, num_workers=num_workers,
            **kwargs,
        )
    ).run()

    mismatches: list[tuple[int, Any, Any]] = []
    total = 0
    for v in sorted(set(ref.values) | set(alt.values)):
        a, b = ref.values.get(v), alt.values.get(v)
        if not _approx_equal(a, b, rel_tol, abs_tol):
            total += 1
            if len(mismatches) < max_mismatches:
                mismatches.append((v, a, b))
    return DeterminismReport(
        ok=total == 0,
        num_workers=num_workers,
        mismatches=mismatches,
        total_mismatches=total,
        supersteps=(ref.supersteps, alt.supersteps),
        engine=engine,
    )


# ----------------------------------------------------------------------
# Aggregator algebra probes
# ----------------------------------------------------------------------
_SAMPLE_POOLS: tuple[tuple[Any, ...], ...] = (
    (3, 1, 4, 1, 5),
    (0.5, 2.25, -1.5, 3.0, 0.75),
    (True, False, True, True),
    ((1, 2), (0, 5), (3, 1)),
)


@dataclass
class AggregatorLawReport:
    """Law-probe outcome for one declared aggregator."""

    name: str
    ok: bool
    failures: list[str] = field(default_factory=list)
    skipped: str = ""


def _fold(agg, values) -> Any:
    acc = agg.identity()
    for v in values:
        acc = agg.reduce(acc, v)
    return acc


def check_aggregator_laws(
    program: VertexProgram,
    rel_tol: float = 1e-9,
    abs_tol: float = 1e-12,
) -> list[AggregatorLawReport]:
    """Probe every declared aggregator for the barrier-merge algebra.

    The engine folds contributions per worker, then merges worker partials
    in arbitrary grouping and order — so ``reduce`` must be commutative,
    ``merge`` must compose partials associatively, and ``identity`` must be
    neutral.  Sampled values are deterministic (no RNG: the probe itself
    must satisfy RPC002).
    """
    reports = []
    for name, agg in program.aggregators().items():
        pool = None
        for candidate in _SAMPLE_POOLS:
            try:
                _fold(agg, candidate)
                agg.merge(agg.identity(), _fold(agg, candidate))
            except Exception:
                continue
            pool = candidate
            break
        if pool is None:
            reports.append(
                AggregatorLawReport(
                    name=name, ok=True,
                    skipped="no sample pool accepted by reduce()",
                )
            )
            continue
        failures: list[str] = []
        eq = lambda x, y: _approx_equal(x, y, rel_tol, abs_tol)  # noqa: E731
        # Commutativity of reduce over pairs.
        for i in range(len(pool)):
            for j in range(i + 1, len(pool)):
                ab = _fold(agg, (pool[i], pool[j]))
                ba = _fold(agg, (pool[j], pool[i]))
                if not eq(ab, ba):
                    failures.append(
                        f"reduce not commutative: "
                        f"fold({pool[i]!r},{pool[j]!r})={ab!r} but "
                        f"fold({pool[j]!r},{pool[i]!r})={ba!r}"
                    )
        # Merge-associativity: any split into worker partials must agree
        # with the single-worker fold.
        whole = _fold(agg, pool)
        for cut in range(1, len(pool)):
            left, right = pool[:cut], pool[cut:]
            merged = agg.merge(_fold(agg, left), _fold(agg, right))
            if not eq(merged, whole):
                failures.append(
                    f"merge not partition-invariant at split {cut}: "
                    f"{merged!r} != {whole!r}"
                )
        # Identity neutrality under merge.
        one = _fold(agg, pool[:1])
        if not eq(agg.merge(agg.identity(), one), one):
            failures.append("merge(identity, x) != x")
        # Deduplicate repeated law messages (pairs often fail identically).
        deduped = list(dict.fromkeys(failures))
        reports.append(
            AggregatorLawReport(name=name, ok=not deduped, failures=deduped[:5])
        )
    return reports


# ----------------------------------------------------------------------
# The CI smoke harness (two real algorithms through every probe)
# ----------------------------------------------------------------------
@dataclass
class SmokeCase:
    """One algorithm's pass through the sanitizer battery."""

    name: str
    sanitizer_violations: list[SanitizerViolation]
    determinism: DeterminismReport
    aggregator_reports: list[AggregatorLawReport]

    @property
    def ok(self) -> bool:
        return (
            not self.sanitizer_violations
            and self.determinism.ok
            and all(r.ok for r in self.aggregator_reports)
        )

    def as_dict(self) -> dict:
        return {
            "name": self.name,
            "ok": self.ok,
            "violations": [
                {
                    "kind": v.kind,
                    "superstep": v.superstep,
                    "vertex": v.vertex,
                    "detail": v.detail,
                }
                for v in self.sanitizer_violations
            ],
            "determinism": self.determinism.summary(),
            "aggregators": {
                r.name: ("ok" if r.ok else r.failures)
                for r in self.aggregator_reports
            },
        }


@dataclass
class SmokeReport:
    """All smoke cases; ``ok`` gates CI."""

    cases: list[SmokeCase]
    num_workers: int

    @property
    def ok(self) -> bool:
        return all(c.ok for c in self.cases)

    def as_dict(self) -> dict:
        return {
            "ok": self.ok,
            "num_workers": self.num_workers,
            "cases": [c.as_dict() for c in self.cases],
        }

    def summary(self) -> str:
        lines = []
        for c in self.cases:
            status = "ok" if c.ok else "FAIL"
            lines.append(
                f"sanitize {c.name}: {status} — "
                f"{len(c.sanitizer_violations)} violation(s); "
                f"{c.determinism.summary()}"
            )
        return "\n".join(lines)


def _smoke_case(
    name: str,
    program_factory: Callable[[], VertexProgram],
    graph,
    num_workers: int,
    metrics: Any = None,
    **job_kwargs,
) -> SmokeCase:
    program = SanitizingProgram(program_factory())
    observer = SanitizerObserver(program, metrics=metrics)
    ThreadedBSPEngine(
        JobSpec(
            program=program, graph=graph, num_workers=num_workers,
            observers=[observer], **job_kwargs,
        )
    ).run()
    determinism = certify_determinism(
        program_factory, graph, num_workers,
        initially_active=job_kwargs.get("initially_active", True),
        initial_messages=job_kwargs.get("initial_messages", ()),
    )
    return SmokeCase(
        name=name,
        sanitizer_violations=list(observer.violations),
        determinism=determinism,
        aggregator_reports=observer.aggregator_reports,
    )


def run_sanitize_smoke(
    scale: float = 0.05,
    num_workers: int = 4,
    metrics: Any = None,
) -> SmokeReport:
    """The CI sanitizer smoke: PageRank and BC through every probe.

    PageRank covers the uniform-message profile with an aggregator and a
    combiner; BC covers the message-driven triangle-waveform workload with
    heavy per-root state — together they exercise every engine surface the
    sanitizer instruments.
    """
    from ..algorithms.bc import BCProgram, start_messages
    from ..algorithms.pagerank import PageRankProgram
    from ..graph import datasets

    graph = datasets.load("SD", scale=scale)
    roots = list(range(min(4, graph.num_vertices)))
    cases = [
        _smoke_case(
            "pagerank",
            lambda: PageRankProgram(iterations=10),
            graph,
            num_workers,
            metrics=metrics,
        ),
        _smoke_case(
            "bc",
            BCProgram,
            graph,
            num_workers,
            metrics=metrics,
            initially_active=False,
            initial_messages=start_messages(roots),
        ),
    ]
    return SmokeReport(cases=cases, num_workers=num_workers)
