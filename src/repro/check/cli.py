"""The ``repro check`` subcommand: argument wiring and report rendering.

Kept separate from :mod:`repro.cli` so the top-level CLI only pays the
import when the subcommand actually runs, and so tests can drive
:func:`run_check` with a plain namespace.

The ``--format json`` output is a stable envelope: ``version`` (the
analyzer contract version), ``rules`` (metadata for every rule that ran),
``files`` (per-file findings/timings/cached flag, in analysis order), the
flat ``findings`` list plus ``errors``/``warnings``/``infos`` counts,
``profiles`` (one cost model per discovered program when ``--profile`` is
set), ``plans`` (one kernel-plan verdict — digest or located refusal —
per program when ``--kernel-plan`` is set), and ``sanitize``.  New keys
are only ever *added*; consumers must ignore unknown keys.

Exit status: 1 on any ERROR finding, on WARNING findings under
``--strict``, or on a failed sanitizer smoke.  INFO findings (RPC015)
never fail the build.
"""

from __future__ import annotations

import argparse
import json
import sys

from .analyzer import ANALYZER_VERSION, analyze_paths_detailed
from .config import DEFAULT_CONFIG, load_config
from .findings import Severity

__all__ = ["add_check_arguments", "run_check"]


def add_check_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "paths", nargs="*", default=["src/repro/algorithms", "examples"],
        help="files, directories, or dotted modules to analyze "
             "(default: src/repro/algorithms examples)",
    )
    parser.add_argument(
        "--format", choices=["text", "json"], default="text",
        help="finding output format",
    )
    parser.add_argument(
        "--profile", action="store_true",
        help="emit a static cost profile (fan-out class, payload model, "
             "combiner/aggregator inference) per vertex program",
    )
    parser.add_argument(
        "--kernel-plan", action="store_true", dest="kernel_plan",
        help="run the vectorization front-end: lift each program to a "
             "dense KernelPlan (RPC015) or report exactly why it cannot "
             "be lifted (RPC016-018), then run the plan optimizer "
             "(RPC019-022: fusion, folding, engine-selection hazards) "
             "with per-pass elapsed_ms in the JSON envelope",
    )
    parser.add_argument(
        "--no-cache", action="store_true",
        help="ignore and do not write the .repro-cache/ analysis cache",
    )
    parser.add_argument(
        "--select", action="append", metavar="PREFIX",
        help="rule-id prefixes to enable (overrides [tool.repro.check])",
    )
    parser.add_argument(
        "--ignore", action="append", metavar="PREFIX",
        help="rule-id prefixes to disable",
    )
    parser.add_argument(
        "--no-config", action="store_true",
        help="skip pyproject.toml [tool.repro.check] discovery",
    )
    parser.add_argument(
        "--strict", action="store_true",
        help="fail (exit 1) on WARNING findings too, not just ERROR",
    )
    parser.add_argument(
        "--list-rules", action="store_true",
        help="print the rule catalog and exit",
    )
    parser.add_argument(
        "--sanitize", action="store_true",
        help="also run the dynamic sanitizer smoke "
             "(PageRank + BC at 1 vs N threaded workers)",
    )
    parser.add_argument(
        "--sanitize-workers", type=int, default=4,
        help="worker count for the sanitizer determinism diff",
    )
    parser.add_argument(
        "--sanitize-scale", type=float, default=0.05,
        help="dataset scale for the sanitizer smoke graph",
    )


def run_check(args: argparse.Namespace) -> int:
    from .rules import rule_catalog

    if args.list_rules:
        if args.format == "json":
            # Stable, golden-testable envelope: schema-versioned, rules
            # sorted by id (rule_catalog() already sorts).
            print(
                json.dumps(
                    {"version": ANALYZER_VERSION, "rules": rule_catalog()},
                    indent=2,
                    sort_keys=True,
                )
            )
        else:
            for rule in rule_catalog():
                print(
                    f"{rule['id']} [{rule['severity']}] {rule['summary']}\n"
                    f"    fix: {rule['hint']}"
                )
        return 0

    config = DEFAULT_CONFIG if args.no_config else load_config()
    config = config.with_overrides(select=args.select, ignore=args.ignore)

    profile = getattr(args, "profile", False)
    kernel_plan = getattr(args, "kernel_plan", False)
    cache = None
    if not getattr(args, "no_cache", False):
        from .cache import AnalysisCache

        cache = AnalysisCache()
    try:
        files = analyze_paths_detailed(
            args.paths, config=config, profile=profile,
            kernel_plan=kernel_plan, cache=cache,
        )
    except FileNotFoundError as exc:
        print(f"repro check: {exc}", file=sys.stderr)
        return 2

    findings = sorted(f for fr in files for f in fr.findings)
    profiles = [p for fr in files for p in fr.profiles]
    plans = [v for fr in files for v in fr.plans]
    errors = sum(1 for f in findings if f.severity is Severity.ERROR)
    infos = sum(1 for f in findings if f.severity is Severity.INFO)
    warnings = len(findings) - errors - infos

    smoke = None
    if args.sanitize:
        from .sanitizer import run_sanitize_smoke

        smoke = run_sanitize_smoke(
            scale=args.sanitize_scale, num_workers=args.sanitize_workers
        )

    if args.format == "json":
        payload = {
            "version": ANALYZER_VERSION,
            "rules": [
                r for r in rule_catalog() if config.enabled(r["id"])
            ],
            "files": [
                {
                    "path": fr.path,
                    "findings": [f.as_dict() for f in fr.findings],
                    "elapsed_ms": round(fr.elapsed_ms, 3),
                    "cached": fr.cached,
                }
                for fr in files
            ],
            "findings": [f.as_dict() for f in findings],
            "errors": errors,
            "warnings": warnings,
            "infos": infos,
            "profiles": (
                [p.as_dict() for p in profiles] if profile else None
            ),
            "plans": (
                [v.as_dict() for v in plans] if kernel_plan else None
            ),
            "sanitize": smoke.as_dict() if smoke is not None else None,
        }
        print(json.dumps(payload, indent=2))
    else:
        for f in findings:
            print(f.render())
        summary = (
            f"repro check: {errors} error(s), {warnings} warning(s)"
        )
        if infos:
            summary += f", {infos} info(s)"
        if not findings:
            summary += " — all programs honor the Pregel contract"
        cached_files = sum(1 for fr in files if fr.cached)
        if cached_files:
            summary += f" [{cached_files}/{len(files)} file(s) cached]"
        print(summary)
        if profile:
            if profiles:
                print(f"-- cost profiles ({len(profiles)} program(s)) --")
                for p in profiles:
                    print(p.render())
            else:
                print("-- cost profiles: no vertex programs found --")
        if kernel_plan:
            lifted = sum(
                1 for v in plans
                if v.as_dict().get("status") == "lifted"
            )
            print(
                f"-- kernel plans: {lifted}/{len(plans)} program(s) "
                "lift to a dense plan --"
            )
            for v in plans:
                d = v.as_dict()
                if d.get("status") == "lifted":
                    print(
                        f"  {d['program']}: lifted "
                        f"(digest {d['digest'][:16]}, reduce={d['reduce']}, "
                        f"{d['phases']} phase(s), {d['ops']} op(s))"
                    )
                    opt = d.get("opt")
                    if opt and opt.get("changed"):
                        rewrites = sum(
                            p["rewrites"] for p in opt.get("passes", ())
                        )
                        print(
                            f"    optimized -> {opt['digest'][:16]} "
                            f"({rewrites} rewrite(s), {opt['ops']} op(s), "
                            f"{opt['hoisted']} hoisted)"
                        )
                else:
                    print(
                        f"  {d['program']}: refused {d['rule']} at "
                        f"{d['file']}:{d['refusal_line']} — {d['reason']}"
                    )
        if smoke is not None:
            print(smoke.summary())

    failed = errors > 0 or (args.strict and warnings > 0)
    if smoke is not None and not smoke.ok:
        failed = True
    return 1 if failed else 0
