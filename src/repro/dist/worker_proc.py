"""Child-process side of the pipe (fork) transport.

:func:`worker_main` is the entry point each forked worker process runs.
The command protocol itself — inject/compute/deliver/snapshot/restore/
extract/stop with epoch-tagged replies — lives in the transport-shared
:class:`repro.net.session.WorkerSession`; this module only supplies the
pipe plumbing around it: frame I/O on the duplex command pipe, the
heartbeat thread on its dedicated pipe, and stdout/stderr capture.

A worker process must never write to the shared stdout/stderr —
concurrent children interleave mid-line and corrupt the parent's progress
display.  Everything (user ``print()`` in compute(), library chatter) is
captured and shipped to the coordinator at each barrier, which emits it
atomically with a ``[worker N]`` prefix.

A daemon thread sends a heartbeat byte on the dedicated pipe every
``heartbeat_interval`` seconds; the parent tracks receive times on the
monotonic clock to detect hung (not just dead) workers.
"""

from __future__ import annotations

import io
import sys
import threading

from ..net.codec import pack_frame, unpack_frame
from ..net.session import WorkerSession

__all__ = ["worker_main"]


def _heartbeat_loop(
    conn, interval: float, stop: threading.Event, flight=None
) -> None:
    beats = 0
    while not stop.wait(interval):
        try:
            conn.send_bytes(b"\x01")
        except (BrokenPipeError, OSError):
            return
        beats += 1
        if flight is not None:
            flight.record("heartbeat-send", beats=beats)


def worker_main(
    worker_id: int,
    conn,
    hb_conn,
    graph,
    vertex_ids,
    program,
    model,
    assignment,
    active_ids,
    heartbeat_interval: float,
    want_metrics: bool,
    want_flight: bool = False,
) -> None:
    """Command loop for one worker process (the child's ``main``)."""
    captured = io.StringIO()
    sys.stdout = sys.stderr = captured

    def _drain_output() -> str:
        text = captured.getvalue()
        if text:
            captured.seek(0)
            captured.truncate()
        return text

    session = WorkerSession(
        worker_id, graph, vertex_ids, program, model, assignment, active_ids,
        want_metrics=want_metrics, want_flight=want_flight,
        drain_output=_drain_output,
    )

    stop = threading.Event()
    threading.Thread(
        target=_heartbeat_loop,
        args=(hb_conn, heartbeat_interval, stop, session.flight),
        daemon=True,
    ).start()

    try:
        while True:
            cmd, epoch, payload = unpack_frame(conn.recv_bytes())
            conn.send_bytes(pack_frame(session.handle(cmd, epoch, payload)))
            if cmd == "stop":
                return
    except (EOFError, OSError, KeyboardInterrupt):
        pass  # coordinator went away; exit quietly
    finally:
        stop.set()
