"""Child-process side of the multiprocess BSP runtime.

:func:`worker_main` is the entry point each worker process runs: it builds
its own :class:`~repro.bsp.worker.PartitionWorker` (and, when the parent
wants telemetry, a private :class:`~repro.obs.metrics.MetricsRegistry` so
hot-path instrumentation never crosses the process boundary), then serves
the coordinator's command loop over a pipe:

``inject``    queue control-plane activation messages
``compute``   begin the superstep, run compute(), return the per-destination
              message frames (combiners already applied sender-side by
              :meth:`PartitionWorker.emit`), step stats, and aggregator
              partials
``deliver``   apply inbound frames from other workers in the order given
              (the coordinator sends them in source-worker-id order, which
              reproduces the sequential engine's delivery order exactly),
              and return the barrier report: resource numbers, metric
              deltas, and any sanitizer violations since the last barrier
``snapshot``  / ``restore``  checkpointing, reusing the worker's own
              snapshot()/restore()
``extract``   map final vertex states through ``program.extract``
``stop``      exit the loop

Every command is a ``(cmd, epoch, payload)`` frame and every reply echoes
the epoch, so the coordinator can discard replies that predate a recovery.
Exceptions inside a handler are returned as ``("error", epoch, traceback)``
rather than killing the process; actual process death is the parent's
heartbeat/liveness monitor's business.

A daemon thread sends a heartbeat byte on a dedicated pipe every
``heartbeat_interval`` seconds; the parent tracks receive times to detect
hung (not just dead) workers.
"""

from __future__ import annotations

import io
import sys
import threading
import traceback
from time import perf_counter
from typing import Any

from ..bsp.worker import PartitionWorker
from .frames import pack_frame, unpack_frame

__all__ = ["worker_main"]


def _heartbeat_loop(
    conn, interval: float, stop: threading.Event, flight=None
) -> None:
    beats = 0
    while not stop.wait(interval):
        try:
            conn.send_bytes(b"\x01")
        except (BrokenPipeError, OSError):
            return
        beats += 1
        if flight is not None:
            flight.record("heartbeat-send", beats=beats)


def _report(worker: PartitionWorker) -> dict[str, Any]:
    """Resource numbers the parent mirrors into its per-worker view
    (the duck-typed surface ``BSPEngine._account_superstep`` reads)."""
    return {
        "active": worker.active_count,
        "buffered": worker.has_buffered_messages,
        "buffered_bytes": worker.buffered_message_bytes(),
        "queue_depth": worker.buffered_message_count(),
        "graph_bytes": worker.graph_bytes,
        "state_bytes": worker.total_state_bytes,
        "in_next_bytes": worker.in_next_payload_bytes,
        "memory": worker.memory_footprint(),
    }


def worker_main(
    worker_id: int,
    conn,
    hb_conn,
    graph,
    vertex_ids,
    program,
    model,
    assignment,
    active_ids,
    heartbeat_interval: float,
    want_metrics: bool,
    want_flight: bool = False,
) -> None:
    """Command loop for one worker process (the child's ``main``)."""
    # A worker process must never write to the shared stdout/stderr —
    # concurrent children interleave mid-line and corrupt the parent's
    # progress display.  Capture everything (user print() in compute(),
    # library chatter) and ship it to the coordinator at each barrier,
    # which emits it atomically with a "[worker N]" prefix.
    captured = io.StringIO()
    sys.stdout = sys.stderr = captured

    def _drain_output() -> str:
        text = captured.getvalue()
        if text:
            captured.seek(0)
            captured.truncate()
        return text

    registry = None
    snapshot_registry = delta_snapshot = None
    if want_metrics:
        from ..obs.metrics import MetricsRegistry
        from ..obs.sync import delta_snapshot, snapshot_registry

        registry = MetricsRegistry()
    # Child-private flight recorder: the fresh tail ships to the
    # coordinator in every barrier ("delivered") reply, which folds it in
    # with FlightRecorder.merge_remote — same delta pattern as metrics.
    flight = None
    flight_cursor = -1
    if want_flight:
        from ..obs.flight import FlightRecorder

        flight = FlightRecorder(capacity=1024)
    worker = PartitionWorker(
        worker_id=worker_id,
        graph=graph,
        vertex_ids=vertex_ids,
        program=program,
        model=model,
        assignment=assignment,
        initially_active=active_ids is None,
        metrics=registry,
    )
    if active_ids is not None:
        for v in active_ids:
            v = int(v)
            if int(assignment[v]) == worker_id:
                worker.halted[v] = False

    stop = threading.Event()
    threading.Thread(
        target=_heartbeat_loop,
        args=(hb_conn, heartbeat_interval, stop, flight),
        daemon=True,
    ).start()

    prev_metrics = snapshot_registry(registry) if registry is not None else {}
    violations_seen = 0
    try:
        while True:
            cmd, epoch, payload = unpack_frame(conn.recv_bytes())
            if cmd == "stop":
                conn.send_bytes(pack_frame(("bye", epoch, None)))
                return
            try:
                if cmd == "inject":
                    for dst, p in payload:
                        worker.inject(int(dst), p)
                    reply = ("ok", epoch, _report(worker))
                elif cmd == "compute":
                    superstep, agg_values = payload
                    t0 = perf_counter()
                    worker.begin_superstep(superstep, agg_values)
                    worker.run_compute()
                    host = perf_counter() - t0
                    if flight is not None:
                        flight.record(
                            "worker-compute", superstep=superstep,
                            host_seconds=round(host, 6),
                            msgs=worker.stats.msgs_out_local
                            + worker.stats.msgs_out_remote,
                        )
                    worker.stats.peers_out = len(worker.out_remote)
                    worker.stats.bytes_out = worker.out_remote_wire_bytes
                    # One frame per destination: the whole post-combine
                    # bucket in its emission (insertion) order.
                    frames = {
                        int(dw): pack_frame(list(pv.items()))
                        for dw, pv in worker.out_remote.items()
                    }
                    reply = ("computed", epoch, {
                        "frames": frames,
                        "stats": worker.stats,
                        "agg_partials": worker._agg_partials,
                        "host_seconds": host,
                    })
                elif cmd == "deliver":
                    recv_msgs = 0
                    recv_bytes = 0.0
                    for _src, frame in payload:
                        for dst_v, payloads in unpack_frame(frame):
                            recv_bytes += worker.deliver_remote(
                                int(dst_v), list(payloads)
                            )
                            recv_msgs += len(payloads)
                    metrics_delta = None
                    if registry is not None:
                        cur = snapshot_registry(registry)
                        metrics_delta = delta_snapshot(cur, prev_metrics)
                        prev_metrics = cur
                    # Sanitizer support: a wrapping program (duck-typed via
                    # its `violations` list) accumulates in this process;
                    # ship the fresh entries so the parent-side observer
                    # sees them at the barrier, engine-independent.
                    fresh: tuple = ()
                    v_list = getattr(worker.program, "violations", None)
                    if isinstance(v_list, list):
                        fresh = tuple(v_list[violations_seen:])
                        violations_seen = len(v_list)
                    flight_events = None
                    if flight is not None:
                        tail, flight_cursor = flight.events_since(
                            flight_cursor
                        )
                        flight_events = [e.to_dict() for e in tail]
                    reply = ("delivered", epoch, {
                        "recv_msgs": recv_msgs,
                        "recv_bytes": recv_bytes,
                        "report": _report(worker),
                        "metrics": metrics_delta,
                        "violations": fresh,
                        "flight": flight_events,
                        "output": _drain_output(),
                    })
                elif cmd == "snapshot":
                    reply = ("snapshotted", epoch, worker.snapshot())
                elif cmd == "restore":
                    worker.restore(payload)
                    reply = ("restored", epoch, _report(worker))
                elif cmd == "extract":
                    prog = worker.program
                    reply = ("extracted", epoch, {
                        int(v): prog.extract(int(v), st)
                        for v, st in worker.states.items()
                    })
                else:
                    raise ValueError(f"unknown command {cmd!r}")
            except Exception:
                reply = ("error", epoch, traceback.format_exc())
            conn.send_bytes(pack_frame(reply))
    except (EOFError, OSError, KeyboardInterrupt):
        pass  # coordinator went away; exit quietly
    finally:
        stop.set()
