"""Bulk frame codec for the multiprocess transport (pickle 5, out-of-band).

Pregelix's lesson (PAPERS.md) — and the wire model :mod:`repro.cloud.network`
simulates — is that BSP message movement should be bulk, serialized dataflow,
not per-message sends.  The process engine therefore moves one *frame* per
(source worker, destination worker) pair per superstep: the sender's whole
post-combine ``out_remote`` bucket, serialized once.

Layout (little-endian, length-prefixed):

    [u32 n_buffers]
    [u64 pickle_len][pickle bytes (protocol 5)]
    n_buffers x ([u64 buf_len][raw buffer bytes])

NumPy payload arrays travel as out-of-band :class:`pickle.PickleBuffer`\\ s:
the pickle stream holds only array metadata, the raw bytes ride behind it,
and :func:`unpack_frame` hands them back as zero-copy memoryview slices of
the received blob (read-only — which is exactly the message contract,
RPC001).
"""

from __future__ import annotations

import pickle
import struct

__all__ = ["pack_frame", "unpack_frame"]

_U32 = struct.Struct("<I")
_U64 = struct.Struct("<Q")


def pack_frame(obj: object) -> bytes:
    """Serialize ``obj`` into one self-contained length-prefixed frame."""
    buffers: list[pickle.PickleBuffer] = []
    payload = pickle.dumps(obj, protocol=5, buffer_callback=buffers.append)
    parts: list[bytes | memoryview] = [
        _U32.pack(len(buffers)),
        _U64.pack(len(payload)),
        payload,
    ]
    for buf in buffers:
        raw = buf.raw()
        parts.append(_U64.pack(raw.nbytes))
        parts.append(raw)
    return b"".join(parts)


def unpack_frame(blob: bytes | memoryview) -> object:
    """Inverse of :func:`pack_frame`; buffers stay views into ``blob``."""
    view = memoryview(blob)
    (n_buffers,) = _U32.unpack_from(view, 0)
    offset = _U32.size
    (pickle_len,) = _U64.unpack_from(view, offset)
    offset += _U64.size
    payload = view[offset:offset + pickle_len]
    offset += pickle_len
    buffers = []
    for _ in range(n_buffers):
        (buf_len,) = _U64.unpack_from(view, offset)
        offset += _U64.size
        buffers.append(view[offset:offset + buf_len])
        offset += buf_len
    if offset != view.nbytes:
        raise ValueError(f"frame has {view.nbytes - offset} trailing bytes")
    return pickle.loads(payload, buffers=buffers)
