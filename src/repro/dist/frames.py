"""Compatibility shim: the frame codec now lives in :mod:`repro.net.codec`.

The pickle-5 out-of-band frame format started life here as the process
engine's private wire format; the TCP runtime (:mod:`repro.net`) made it
the shared codec for every transport.  Import from
:mod:`repro.net.codec` in new code — this module re-exports the original
names so existing imports keep working.
"""

from __future__ import annotations

from ..net.codec import (  # noqa: F401
    _U32,
    _U64,
    FrameError,
    pack_frame,
    unpack_frame,
)

__all__ = ["pack_frame", "unpack_frame", "FrameError"]
