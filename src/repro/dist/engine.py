"""Distributed BSP engine: one worker per process or remote session.

:class:`ProcessBSPEngine` is the reproduction's distributed *execution
backend* — the same job model, vertex programs, simulated-cloud
accounting, trace format, and checkpoint/rollback semantics as the
sequential :class:`~repro.bsp.engine.BSPEngine`, but with every
:class:`~repro.bsp.worker.PartitionWorker` hosted behind a pluggable
:class:`~repro.net.transport.Transport`, the way Pregel.NET runs workers
as real processes on Azure VMs (§III).  Pure-Python ``compute()`` escapes
the GIL ceiling that caps :class:`~repro.bsp.parallel.ThreadedBSPEngine`.

Architecture (the paper's job-manager/worker split, §III):

* the parent is the coordinator: it drives the barrier protocol (inject →
  compute → deliver → aggregator merge → master compute → accounting),
  routes bulk message frames between workers, merges aggregator partials
  in worker-id order, runs ``master_compute``, prices the superstep on the
  cloud models, and owns the checkpoint;
* each worker owns its partition's state and serves the command loop in
  :class:`repro.net.session.WorkerSession`; messages cross the wire as
  length-prefixed pickle-5 frames (:mod:`repro.net.codec`), combiners
  already applied sender-side.

Transports (:mod:`repro.net`): the default
:class:`~repro.net.transport.PipeTransport` forks one local OS process
per worker (the historical ``repro.dist`` shape);
:class:`~repro.net.tcp.TcpTransport` places sessions on ``repro worker``
daemons over sockets (:class:`repro.net.TcpBSPEngine` is the
pre-configured subclass behind ``--engine tcp``).  The coordinator logic
below is transport-agnostic.

Determinism: workers compute independently, but frames are routed to each
destination in source-worker-id order and applied in emission order —
exactly the sequential engine's flush order — and aggregator partials merge
in worker-id order, so ``extract()`` output is bit-identical to the
sequential engine (``certify_determinism(engine="process")`` and
``engine="tcp"`` check this).

Robustness: workers heartbeat through their channel; the parent detects
death (``healthy()``/channel errors) and hangs (heartbeat age beyond
``heartbeat_timeout`` on the **monotonic** clock — wall-time jumps cannot
fake a timeout), kills the victim if needed, launches a replacement, and
replays Pregel-style coordinated rollback from the last checkpoint using
the engine's existing checkpoint machinery.
:meth:`ProcessBSPEngine.kill_worker_at` schedules a *real* kill through
the same ``failure_schedule`` dict that
:func:`repro.cloud.spot.spot_failure_schedule` produces.

Telemetry parity: workers keep private metric registries and ship deltas
at each barrier (:mod:`repro.obs.sync`); the parent folds them into the
job's registry, records per-worker compute host time as ``worker-compute``
spans, and adds transport (``dist_frames_total``, ``dist_frame_bytes_total``)
and liveness (``dist_heartbeats_total``, ``dist_workers_alive``) series,
all labeled with the transport name.
"""

from __future__ import annotations

import sys
from time import monotonic
from typing import Any

import numpy as np

from ..bsp.engine import BSPEngine
from ..bsp.job import JobResult, JobSpec
from ..bsp.superstep import SuperstepStats
from ..net.transport import (
    PipeTransport,
    Transport,
    TransportClosed,
    WorkerChannel,
    WorkerInit,
    monotonic_now,
)
from ..obs.metrics import DEFAULT_SIZE_BUCKETS
from ..obs.sync import apply_snapshot

__all__ = [
    "ProcessBSPEngine",
    "WorkerFailure",
    "ChildError",
    "ProgramSafetyError",
    "run_job_process",
]

try:
    from time import perf_counter
except ImportError:  # pragma: no cover - perf_counter is always there
    perf_counter = monotonic


class WorkerFailure(RuntimeError):
    """A worker died or hung (SIGKILL, crash, drop, heartbeat timeout)."""

    def __init__(self, worker_id: int, reason: str) -> None:
        super().__init__(f"worker {worker_id} failed: {reason}")
        self.worker_id = worker_id
        self.reason = reason


class ProgramSafetyError(RuntimeError):
    """The static analyzer found state the process engine cannot pickle.

    Raised *before any worker is launched* (RPC011): lambdas, open
    handles, or locks stored in program/vertex state would otherwise
    surface as an opaque ``PicklingError`` deep inside the first
    checkpoint, recovery, or result extraction.  Carries the individual
    :class:`~repro.check.costmodel.PickleRisk` entries; bypass with
    ``ProcessBSPEngine(job, check_program=False)`` if the state is known
    to never cross a process boundary.
    """

    def __init__(self, program_name: str, risks) -> None:
        self.program_name = program_name
        self.risks = tuple(risks)
        lines = "\n".join(
            f"  - {r.method}(): {r.detail} (line {r.line})"
            for r in self.risks
        )
        super().__init__(
            f"program {program_name} holds unpicklable state and cannot "
            f"run under the process engine:\n{lines}\n"
            "Keep state to plain data (RPC011), or pass "
            "check_program=False to override."
        )


class ChildError(RuntimeError):
    """A worker raised inside a command handler (carries the worker's
    traceback; the hosting process itself is still alive)."""


class _WorkerView:
    """Parent-side mirror of one worker's resource numbers and step stats.

    Duck-types the per-worker surface
    :meth:`BSPEngine._account_superstep` reads; refreshed from the worker's
    barrier report each superstep.
    """

    __slots__ = (
        "worker_id", "stats", "active_count", "has_buffered",
        "graph_bytes", "total_state_bytes", "in_next_payload_bytes",
        "_buffered_bytes", "_queue_depth", "_memory",
    )

    def __init__(self, worker) -> None:
        # Seeded from the parent's never-computed PartitionWorker, which
        # carries the correct initial counts and footprints.
        self.worker_id = worker.worker_id
        self.stats = worker.stats
        self.active_count = worker.active_count
        self.has_buffered = worker.has_buffered_messages
        self.graph_bytes = worker.graph_bytes
        self.total_state_bytes = worker.total_state_bytes
        self.in_next_payload_bytes = worker.in_next_payload_bytes
        self._buffered_bytes = worker.buffered_message_bytes()
        self._queue_depth = worker.buffered_message_count()
        self._memory = worker.memory_footprint()

    def apply_report(self, report: dict) -> None:
        self.active_count = int(report["active"])
        self.has_buffered = bool(report["buffered"])
        self.graph_bytes = report["graph_bytes"]
        self.total_state_bytes = report["state_bytes"]
        self.in_next_payload_bytes = report["in_next_bytes"]
        self._buffered_bytes = report["buffered_bytes"]
        self._queue_depth = int(report.get("queue_depth", 0))
        self._memory = report["memory"]

    def buffered_message_bytes(self) -> float:
        return self._buffered_bytes

    def buffered_message_count(self) -> int:
        return self._queue_depth

    def memory_footprint(self) -> float:
        return self._memory


class _DistInstruments:
    """Transport + liveness metrics (names in ``docs/runtime.md``).

    Every series carries a ``transport`` label (``pipe``, ``tcp``, …) so
    mixed-backend dashboards can tell the planes apart.
    """

    def __init__(self, registry, transport: str) -> None:
        self._registry = registry
        self._transport = transport
        self.frames = registry.counter(
            "dist_frames_total",
            help="Bulk message frames routed through the coordinator",
            transport=transport,
        )
        self.frame_bytes = registry.counter(
            "dist_frame_bytes_total",
            help="Serialized bytes of routed message frames",
            transport=transport,
        )
        self.frame_size = registry.histogram(
            "dist_frame_size_bytes",
            help="Size distribution of routed message frames",
            buckets=DEFAULT_SIZE_BUCKETS,
            transport=transport,
        )
        self.failures = registry.counter(
            "dist_worker_failures_total",
            help="Workers lost (killed, crashed, dropped, or hung)",
            transport=transport,
        )
        self.respawns = registry.counter(
            "dist_worker_respawns_total",
            help="Replacement workers started",
            transport=transport,
        )
        self.alive = registry.gauge(
            "dist_workers_alive", help="Live workers", transport=transport,
        )

    def heartbeats(self, worker_id: int):
        return self._registry.counter(
            "dist_heartbeats_total",
            help="Heartbeats received from workers",
            worker=str(worker_id),
            transport=self._transport,
        )

    def record_clock(self, worker_id: int, stats: dict) -> None:
        """Mirror a channel's ClockSync estimate into per-worker gauges."""
        labels = {"worker": str(worker_id), "transport": self._transport}
        self._registry.gauge(
            "dist_clock_offset_seconds",
            help="Estimated remote-minus-local monotonic clock offset",
            **labels,
        ).set(stats["offset_seconds"])
        self._registry.gauge(
            "dist_clock_uncertainty_seconds",
            help="Clock offset error bound (half the handshake RTT)",
            **labels,
        ).set(stats["uncertainty_seconds"])
        self._registry.gauge(
            "dist_clock_drift_rate",
            help="Relative clock drift (remote seconds per local second)",
            **labels,
        ).set(stats["drift_rate"])


class ProcessBSPEngine(BSPEngine):
    """BSPEngine whose workers live behind a Transport (see module docs)."""

    def __init__(
        self,
        job: JobSpec,
        heartbeat_interval: float = 0.1,
        heartbeat_timeout: float | None = 30.0,
        start_method: str | None = None,
        check_program: bool = True,
        max_respawns: int | None = None,
        transport: Transport | None = None,
    ) -> None:
        if check_program:
            self._gate_program(job.program)
        super().__init__(job)
        if heartbeat_interval <= 0:
            raise ValueError("heartbeat_interval must be positive")
        if heartbeat_timeout is not None and heartbeat_timeout <= heartbeat_interval:
            raise ValueError("heartbeat_timeout must exceed the interval")
        if max_respawns is not None and max_respawns < 0:
            raise ValueError("max_respawns must be >= 0 (or None: unlimited)")
        self._hb_interval = float(heartbeat_interval)
        self._hb_timeout = (
            None if heartbeat_timeout is None else float(heartbeat_timeout)
        )
        #: respawn budget: replacement workers allowed before the run is
        #: declared dead (None = unlimited, the historical behavior)
        self._max_respawns = max_respawns
        self._respawns = 0
        self._transport = (
            transport if transport is not None
            else PipeTransport(start_method)
        )
        self._epoch = 0
        self._active_ids = job.initial_active_ids()
        self._dm = (
            _DistInstruments(self.metrics, self._transport.name)
            if self.metrics is not None else None
        )
        self._views = [_WorkerView(w) for w in self.workers]
        self._handles: list[WorkerChannel | None] = [None] * self.num_workers
        try:
            for w in range(self.num_workers):
                self._handles[w] = self._launch_worker(w)
        except Exception:
            self.shutdown()
            raise

    @staticmethod
    def _gate_program(program: Any) -> None:
        """RPC011 pre-launch gate: fail fast on statically unpicklable state."""
        from ..check.costmodel import profile_of

        profile = profile_of(program)
        if profile is not None and profile.pickle_risks:
            raise ProgramSafetyError(profile.program, profile.pickle_risks)

    # ------------------------------------------------------------------
    # Control-plane injection: buffered here, flushed to workers at the
    # next superstep (or checkpoint) boundary — same visibility as the
    # sequential engine's direct in_next append.
    # ------------------------------------------------------------------
    def inject_message(self, dst: int, payload: Any) -> None:
        if not 0 <= dst < self.graph.num_vertices:
            raise ValueError(f"inject to unknown vertex {dst}")
        buf = getattr(self, "_inject_buffer", None)
        if buf is None:
            # Lazily created: the base __init__ injects initial messages
            # before this subclass's __init__ body runs.
            buf = self._inject_buffer = []
        buf.append((int(dst), payload))
        self._injected_count += 1

    def _flush_injections(self) -> None:
        buf = getattr(self, "_inject_buffer", None)
        if not buf:
            return
        per_worker: dict[int, list] = {}
        assignment = self.partition.assignment
        for dst, payload in buf:
            per_worker.setdefault(int(assignment[dst]), []).append(
                (dst, payload)
            )
        self._inject_buffer = []
        epoch = self._epoch
        targets = [self._handles[w] for w in sorted(per_worker)]
        for h in targets:
            self._send(h, ("inject", epoch, per_worker[h.worker_id]))
        for h in targets:
            self._views[h.worker_id].apply_report(
                self._expect(h, "ok", epoch)
            )

    # ------------------------------------------------------------------
    # Fleet-state properties come from the marshalled views, not the
    # parent's (never-computed) PartitionWorkers.
    # ------------------------------------------------------------------
    @property
    def active_vertices(self) -> int:
        return sum(v.active_count for v in self._views)

    @property
    def buffered_messages(self) -> bool:
        if getattr(self, "_inject_buffer", None):
            return True
        return any(v.has_buffered for v in self._views)

    def _state_bytes_total(self) -> float:
        return sum(
            v.graph_bytes + v.total_state_bytes + v.in_next_payload_bytes
            for v in self._views
        )

    # ------------------------------------------------------------------
    # The superstep: the same phases as the sequential engine, executed
    # over the wire.  Unplanned worker death aborts the attempt, rolls
    # back, and retries from the restored superstep.
    # ------------------------------------------------------------------
    def _run_one_superstep(self) -> SuperstepStats:
        while True:
            try:
                return self._attempt_superstep()
            except WorkerFailure as failure:
                if self.job.checkpoint_interval <= 0:
                    raise RuntimeError(
                        f"worker {failure.worker_id} died with checkpointing "
                        "disabled; set JobSpec.checkpoint_interval to enable "
                        "recovery"
                    ) from failure
                # The aborted attempt produced no accounted stats; charge
                # the rollback on a scratch object (sim clock, meter, and
                # the recovery log still record it) and retry from the
                # restored superstep.
                scratch = SuperstepStats(
                    index=self.superstep,
                    num_workers=self.num_workers,
                    active_begin=0,
                )
                self._recover(failure.worker_id, scratch)

    def _attempt_superstep(self) -> SuperstepStats:
        tracer = self.tracer
        host_t0 = perf_counter() if self._em is not None else 0.0
        stats = SuperstepStats(
            index=self.superstep,
            num_workers=self.num_workers,
            active_begin=self.active_vertices,
            injected=self._injected_count,
        )
        self._injected_count = 0
        self._flush_injections()
        self._drain_heartbeats()
        epoch = self._epoch
        handles = self._handles

        # Compute phase: every worker drains its input buffer concurrently.
        compute_span = (
            tracer.start("compute", sim=self.sim_time)
            if tracer is not None else None
        )
        for h in handles:
            self._send(h, ("compute", epoch, (self.superstep, self._agg_values)))
        computed = [self._expect(h, "computed", epoch) for h in handles]
        if compute_span is not None:
            tracer.end(compute_span)
        if tracer is not None:
            for h, rep in zip(handles, computed):
                extra = {}
                clock_end = rep.get("clock_end")
                if clock_end is not None:
                    # Place the span where the compute actually ended in
                    # this tracer's timebase (remote stamp mapped through
                    # the channel's clock alignment), not at the moment
                    # the reply happened to arrive.
                    since_end = monotonic_now() - h.clock.to_local(
                        float(clock_end)
                    )
                    extra["host_end"] = tracer.now() - max(0.0, since_end)
                tracer.record(
                    "worker-compute", sim=self.sim_time, category="dist",
                    host_duration=rep["host_seconds"], worker=h.worker_id,
                    **extra,
                )

        # Flush phase: route each source's frames to their destinations in
        # source-worker-id order (the sequential engine's delivery order).
        flush_span = (
            tracer.start("flush", sim=self.sim_time)
            if tracer is not None else None
        )
        inbound: list[list] = [[] for _ in range(self.num_workers)]
        for h, rep in zip(handles, computed):
            for dst, frame in sorted(rep["frames"].items()):
                inbound[dst].append((h.worker_id, frame))
                if self._dm is not None:
                    self._dm.frames.inc()
                    self._dm.frame_bytes.inc(len(frame))
                    self._dm.frame_size.observe(len(frame))
        for h in handles:
            self._send(h, ("deliver", epoch, inbound[h.worker_id]))
        delivered = [self._expect(h, "delivered", epoch) for h in handles]
        if flush_span is not None:
            tracer.end(flush_span)

        recv_msgs = np.array(
            [d["recv_msgs"] for d in delivered], dtype=np.int64
        )
        recv_bytes = np.array([d["recv_bytes"] for d in delivered])
        peers_in = [len(inbound[w]) for w in range(self.num_workers)]
        violations = getattr(self.job.program, "violations", None)
        for view, h, comp, deliv in zip(
            self._views, handles, computed, delivered
        ):
            view.stats = comp["stats"]
            view.apply_report(deliv["report"])
            if self.metrics is not None and deliv["metrics"]:
                apply_snapshot(self.metrics, deliv["metrics"])
            if self.flight is not None and deliv.get("flight"):
                self.flight.merge_remote(
                    view.worker_id, deliv["flight"],
                    restamp=self._flight_restamp(
                        h, deliv.get("flight_epoch")
                    ),
                )
            if isinstance(violations, list) and deliv["violations"]:
                violations.extend(deliv["violations"])
            if deliv.get("output"):
                self._emit_child_output(view.worker_id, deliv["output"])

        self._merge_aggregators([c["agg_partials"] for c in computed])
        self._master_phase()
        self._account_superstep(
            stats,
            views=self._views,
            recv_msgs=recv_msgs,
            recv_bytes=recv_bytes,
            peers_in=peers_in,
            compute_span=compute_span,
            flush_span=flush_span,
            host_t0=host_t0,
        )
        return stats

    @staticmethod
    def _emit_child_output(worker_id: int, text: str) -> None:
        """Relay a worker's captured stdout/stderr, atomically.

        Pipe-backend children never touch the shared stderr (worker_proc
        captures it); the coordinator is the only writer, so progress
        lines and worker prints cannot interleave mid-line.  One write()
        call per batch.
        """
        prefix = f"[worker {worker_id}] "
        body = "".join(
            f"{prefix}{line}\n" for line in text.splitlines()
        )
        sys.stderr.write(body)

    # ------------------------------------------------------------------
    # Checkpointing and recovery: same parent-held checkpoint dict as the
    # sequential engine; capture/restore cross the wire.
    # ------------------------------------------------------------------
    def _capture_checkpoint(self, superstep: int) -> dict:
        # Buffered injections are part of the snapshot (sim parity: the
        # sequential engine injects straight into in_next, which
        # snapshot() captures).
        self._flush_injections()
        epoch = self._epoch
        for h in self._handles:
            self._send(h, ("snapshot", epoch, None))
        snaps = [self._expect(h, "snapshotted", epoch) for h in self._handles]
        return {
            "superstep": superstep,
            "agg_values": dict(self._agg_values),
            "workers": snaps,
        }

    def _fail_worker(self, worker_id: int) -> None:
        """The scheduled-failure hook: a real kill, not a model.

        The transport decides what "kill" means: SIGKILL the worker
        process (pipe) or SIGKILL/sever the hosting daemon (tcp).
        """
        h = self._handles[worker_id]
        self._transport.kill_host(h)
        self._mark_dead(h, "SIGKILL (scheduled failure)")

    def kill_worker_at(self, superstep: int, worker_id: int) -> None:
        """Schedule a kill of ``worker_id`` after ``superstep`` completes.

        Feeds the same schedule dict as ``JobSpec.failure_schedule`` /
        :func:`repro.cloud.spot.spot_failure_schedule`, so spot-eviction
        scenarios replay on real processes unchanged.
        """
        if self.job.checkpoint_interval <= 0:
            raise ValueError(
                "failure injection requires checkpointing "
                "(JobSpec.checkpoint_interval > 0)"
            )
        if not 0 <= worker_id < self.num_workers:
            raise ValueError(f"unknown worker {worker_id}")
        self._failure_schedule[int(superstep)] = int(worker_id)

    def _restore_checkpoint(self) -> None:
        attempts = self.num_workers + 2
        for _ in range(attempts):
            try:
                self._restore_once()
                return
            except WorkerFailure:
                continue  # the victim is marked dead; retrying respawns it
        raise RuntimeError(
            f"checkpoint restore failed {attempts} times; workers keep dying"
        )

    def _restore_once(self) -> None:
        self._epoch += 1  # replies from before the rollback are now stale
        epoch = self._epoch
        for i, h in enumerate(self._handles):
            if h is None or not h.alive or not h.healthy():
                if h is not None:
                    self._reap(h)
                if (
                    self._max_respawns is not None
                    and self._respawns >= self._max_respawns
                ):
                    raise RuntimeError(
                        f"worker {i} needs a replacement but the respawn "
                        f"budget ({self._max_respawns}) is exhausted after "
                        f"{self._respawns} respawns"
                    )
                self._handles[i] = self._launch_worker(i, respawn=True)
                self._respawns += 1
                if self.flight is not None:
                    self.flight.record(
                        "worker-respawn", superstep=self.superstep,
                        sim=self.sim_time, respawned_worker=i,
                        respawns=self._respawns,
                        budget=self._max_respawns,
                    )
                if self._dm is not None:
                    self._dm.respawns.inc()
            else:
                self._drain(h)
        snaps = self._checkpoint["workers"]
        for h in self._handles:
            self._send(h, ("restore", epoch, snaps[h.worker_id]))
        for h in self._handles:
            self._views[h.worker_id].apply_report(
                self._expect(h, "restored", epoch)
            )

    def worker_liveness(self) -> list[dict]:
        """Real per-worker liveness (the /healthz view of the fleet)."""
        out = []
        for w, h in enumerate(self._handles):
            if h is None:
                out.append({"worker": w, "alive": False})
                continue
            out.append({
                "worker": w,
                "alive": bool(h.alive and h.healthy()),
                "heartbeat_age_seconds": round(h.heartbeat_age(), 3),
                "endpoint": h.endpoint,
                "transport": h.transport,
            })
        return out

    def _extract_values(self) -> dict[int, Any]:
        epoch = self._epoch
        for h in self._handles:
            self._send(h, ("extract", epoch, None))
        values: dict[int, Any] = {}
        for h in self._handles:
            values.update(self._expect(h, "extracted", epoch))
        return values

    # ------------------------------------------------------------------
    # Worker lifecycle and the request/reply protocol, written against
    # the Transport/WorkerChannel interface (repro.net.transport).
    # ------------------------------------------------------------------
    def _worker_init(self, worker_id: int) -> WorkerInit:
        return WorkerInit(
            worker_id=worker_id,
            graph=self.graph,
            vertex_ids=self.partition.vertices_of(worker_id),
            program=self.job.program,
            model=self.model,
            assignment=self.partition.assignment,
            active_ids=self._active_ids,
            heartbeat_interval=self._hb_interval,
            want_metrics=self.metrics is not None,
            want_flight=self.flight is not None,
        )

    def _launch_worker(
        self, worker_id: int, respawn: bool = False
    ) -> WorkerChannel:
        handle = self._transport.launch(self._worker_init(worker_id))
        if self.flight is not None:
            self.flight.record(
                "worker-reconnect" if respawn else "worker-connect",
                superstep=self.superstep, sim=self.sim_time,
                connected_worker=worker_id, endpoint=handle.endpoint,
                transport=handle.transport,
            )
        if handle.clock.synchronized:
            stats = handle.clock.stats()
            if self.flight is not None:
                self.flight.record(
                    "clock-sync", superstep=self.superstep,
                    sim=self.sim_time, synced_worker=worker_id,
                    endpoint=handle.endpoint,
                    offset_seconds=round(stats["offset_seconds"], 6),
                    uncertainty_seconds=round(
                        stats["uncertainty_seconds"], 6
                    ),
                )
            if self._dm is not None:
                self._dm.record_clock(worker_id, stats)
        if self._dm is not None:
            self._dm.heartbeats(worker_id)  # create the series eagerly
            self._dm.alive.set(
                1 + sum(
                    1 for h in self._handles
                    if h is not None and h.alive and h.worker_id != worker_id
                )
            )
        return handle

    def _mark_dead(self, h: WorkerChannel, reason: str = "unknown") -> None:
        if not h.alive:
            return
        h.alive = False
        h.pending = 0
        if self.flight is not None:
            self.flight.record(
                "worker-lost", superstep=self.superstep, sim=self.sim_time,
                lost_worker=h.worker_id, reason=reason,
            )
        if self._dm is not None:
            self._dm.failures.inc()
            self._dm.alive.set(
                sum(1 for x in self._handles if x is not None and x.alive)
            )

    def _reap(self, h: WorkerChannel) -> None:
        self._mark_dead(h)
        h.kill()
        h.close()

    def _send(self, h: WorkerChannel, msg: tuple) -> None:
        self._drain(h)
        if not h.alive:
            raise WorkerFailure(h.worker_id, "worker is gone")
        try:
            h.send(msg)
        except TransportClosed as exc:
            self._mark_dead(h, str(exc))
            raise WorkerFailure(h.worker_id, str(exc)) from exc
        h.pending += 1

    def _drain(self, h: WorkerChannel) -> None:
        """Consume replies owed from an aborted exchange (discarded)."""
        while h.pending and h.alive:
            self._recv_raw(h)

    def _recv_raw(self, h: WorkerChannel) -> tuple:
        while True:
            try:
                msg = h.recv(0.01)
            except TransportClosed as exc:
                self._mark_dead(h, str(exc))
                raise WorkerFailure(h.worker_id, str(exc)) from exc
            if msg is not None:
                h.pending -= 1
                return msg
            self._check_liveness(h)

    def _drain_heartbeats(self) -> None:
        for h in self._handles:
            if h is None or not h.alive:
                continue
            beats = h.drain_heartbeats()
            if beats and self._dm is not None:
                self._dm.heartbeats(h.worker_id).inc(beats)
                if h.clock.synchronized:
                    # Heartbeats carry one-way clock samples; refresh the
                    # per-worker skew/drift gauges as the estimate moves.
                    self._dm.record_clock(h.worker_id, h.clock.stats())

    def _flight_restamp(self, h: WorkerChannel, flight_epoch):
        """Build the remote→local flight-event restamp for one worker.

        A shipped event's ``host`` is seconds since the remote session
        recorder's epoch.  ``epoch + host`` is absolute remote liveness
        time; the channel's ClockSync maps it into the local liveness
        clock; and an anchor pair read *now* converts that into this
        recorder's timebase.  The map is affine per merge batch, so
        per-worker event order is always preserved.  Returns ``None``
        (merge-time stamping) when the remote epoch is unknown — e.g. a
        pre-v2 daemon.
        """
        if flight_epoch is None:
            flight_epoch = h.flight_epoch
        if flight_epoch is None or self.flight is None:
            return None
        epoch = float(flight_epoch)
        clock = h.clock
        anchor_rec = self.flight.now()
        anchor_local = monotonic_now()

        def restamp(worker_host: float) -> float:
            local_t = clock.to_local(epoch + worker_host)
            return anchor_rec - (anchor_local - local_t)

        return restamp

    def _check_liveness(self, waiting_on: WorkerChannel) -> None:
        """Drain heartbeats; fail the awaited worker if dead or hung."""
        self._drain_heartbeats()
        h = waiting_on
        if not h.healthy():
            reason = h.death_reason()
            self._mark_dead(h, reason)
            raise WorkerFailure(h.worker_id, reason)
        # Heartbeat ages live on the monotonic clock (channel-internal):
        # a wall-clock jump must never fake a timeout.
        if (
            self._hb_timeout is not None
            and h.heartbeat_age() > self._hb_timeout
        ):
            if self.flight is not None:
                self.flight.record(
                    "heartbeat-miss", superstep=self.superstep,
                    sim=self.sim_time, lost_worker=h.worker_id,
                    age_seconds=round(h.heartbeat_age(), 3),
                )
            h.kill()
            self._mark_dead(
                h, f"heartbeat timeout ({self._hb_timeout:g}s)"
            )
            raise WorkerFailure(
                h.worker_id, f"heartbeat timeout ({self._hb_timeout:g}s)"
            )

    def _expect(self, h: WorkerChannel, kind: str, epoch: int):
        while True:
            r_kind, r_epoch, payload = self._recv_raw(h)
            if r_epoch != epoch:
                continue  # stale reply from before a recovery
            if r_kind == "error":
                raise ChildError(
                    f"worker {h.worker_id} failed handling {kind!r}:\n{payload}"
                )
            if r_kind != kind:
                raise RuntimeError(
                    f"worker {h.worker_id}: expected {kind!r} reply, "
                    f"got {r_kind!r}"
                )
            return payload

    # ------------------------------------------------------------------
    def run(self) -> JobResult:
        try:
            return super().run()
        finally:
            self.shutdown()

    def shutdown(self) -> None:
        """Stop and reap every worker, then the transport (idempotent)."""
        handles = getattr(self, "_handles", None)
        if not handles:
            transport = getattr(self, "_transport", None)
            if transport is not None:
                transport.shutdown()
            return
        for h in handles:
            if h is None or not h.alive:
                continue
            try:
                self._drain(h)
                h.send(("stop", self._epoch, None))
            except (WorkerFailure, TransportClosed):
                continue
        for h in handles:
            if h is None:
                continue
            h.join(timeout=5.0)
            if h.healthy():
                h.kill()
            h.close()
            h.alive = False
        self._transport.shutdown()


def run_job_process(job: JobSpec, **engine_kwargs: Any) -> JobResult:
    """Convenience mirror of ``run_job`` / ``run_job_threaded``."""
    return ProcessBSPEngine(job, **engine_kwargs).run()
