"""repro.dist: distributed BSP runtime (real worker processes).

The third execution backend next to the sequential
:class:`~repro.bsp.engine.BSPEngine` and the thread-pool
:class:`~repro.bsp.parallel.ThreadedBSPEngine`:
:class:`ProcessBSPEngine` runs each partition worker behind a pluggable
transport (:mod:`repro.net`) — forked local processes with pipe frames
by default, ``repro worker`` TCP daemons via
:class:`repro.net.TcpBSPEngine` — with bulk frame transport
(:mod:`repro.net.codec`), heartbeat failure detection, and checkpointed
recovery that restarts replacement workers.  ``docs/runtime.md``
compares the engines.
"""

from .engine import (
    ChildError,
    ProcessBSPEngine,
    ProgramSafetyError,
    WorkerFailure,
    run_job_process,
)
from .frames import FrameError, pack_frame, unpack_frame

__all__ = [
    "ProcessBSPEngine",
    "WorkerFailure",
    "ChildError",
    "ProgramSafetyError",
    "run_job_process",
    "FrameError",
    "pack_frame",
    "unpack_frame",
]
