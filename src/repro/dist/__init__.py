"""repro.dist: multiprocess BSP runtime (real worker processes).

The third execution backend next to the sequential
:class:`~repro.bsp.engine.BSPEngine` and the thread-pool
:class:`~repro.bsp.parallel.ThreadedBSPEngine`:
:class:`ProcessBSPEngine` runs each partition worker in its own OS
process with bulk frame transport (:mod:`repro.dist.frames`), heartbeat
failure detection, and checkpointed recovery that restarts replacement
processes.  ``docs/runtime.md`` compares the three engines.
"""

from .engine import (
    ChildError,
    ProcessBSPEngine,
    ProgramSafetyError,
    WorkerFailure,
    run_job_process,
)
from .frames import pack_frame, unpack_frame

__all__ = [
    "ProcessBSPEngine",
    "WorkerFailure",
    "ChildError",
    "run_job_process",
    "pack_frame",
    "unpack_frame",
]
