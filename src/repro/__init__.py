"""repro — reproduction of *Optimizations and Analysis of BSP Graph
Processing Models on Public Clouds* (Redekopp, Simmhan, Prasanna; IPDPS
2013).

A Pregel-style BSP graph-processing engine (the paper's Pregel.NET
analogue) running on a deterministic simulated public cloud, plus the
paper's contributions built on top of it:

* :mod:`repro.scheduling` — swath sizing & initiation heuristics (§IV);
* :mod:`repro.partition` — hash / METIS-style multilevel / streaming
  partitioners and the §VII load-imbalance analysis;
* :mod:`repro.elastic` — elastic worker-scaling policies and the §VIII
  extrapolation model;
* :mod:`repro.algorithms` — betweenness centrality (Brandes), APSP,
  PageRank, SSSP, connected components;
* :mod:`repro.graph` — CSR graph substrate, generators, and synthetic
  analogues of the paper's SNAP datasets;
* :mod:`repro.cloud` — the simulated Azure-like substrate (VM specs,
  cost model, network/memory/billing, elastic provisioning);
* :mod:`repro.analysis` — experiment harness regenerating every table and
  figure of the paper's evaluation;
* :mod:`repro.obs` — observability layer: engine phase spans, metrics
  registry with Prometheus/JSON exporters, live run telemetry.

Quickstart::

    from repro.graph import datasets
    from repro.analysis import RunConfig, run_traversal
    from repro.scheduling import AdaptiveSizer, DynamicPeakDetect

    g = datasets.load("WG", scale=0.2)
    run = run_traversal(
        g, RunConfig(num_workers=8), roots=range(40), kind="bc",
        sizer=AdaptiveSizer(target_bytes=2**20),
        initiation=DynamicPeakDetect(),
    )
    print(run.total_time, run.result.values[0])
"""

from . import (
    algorithms,
    analysis,
    bsp,
    cloud,
    elastic,
    graph,
    obs,
    partition,
    scheduling,
)

__version__ = "1.0.0"

__all__ = [
    "algorithms",
    "analysis",
    "bsp",
    "cloud",
    "elastic",
    "graph",
    "obs",
    "partition",
    "scheduling",
    "__version__",
]
