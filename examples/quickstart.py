#!/usr/bin/env python
"""Quickstart: run PageRank and betweenness centrality on the BSP engine.

Builds a small web-graph analogue, partitions it across 4 simulated cloud
workers, runs two vertex programs, and prints results plus the simulated
time/cost the cloud substrate accounted for.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro.algorithms import BCProgram, PageRankProgram
from repro.algorithms import bc as bc_messages
from repro.bsp import JobSpec, run_job
from repro.graph import datasets

def main() -> None:
    # 1. A graph: synthetic analogue of the paper's web-Google dataset.
    graph = datasets.load("WG", scale=0.2)
    print(f"graph: {graph}")

    # 2. PageRank — every vertex starts active, 30 supersteps, flat profile.
    job = JobSpec(program=PageRankProgram(iterations=30), graph=graph, num_workers=4)
    result = run_job(job)
    ranks = result.values_array()
    top = np.argsort(ranks)[-5:][::-1]
    print("\nPageRank (30 iterations):")
    for v in top:
        print(f"  vertex {v:>5d}  rank {ranks[v]:.5f}")
    print(f"  simulated time {result.total_time:.1f}s, cost ${result.total_cost:.4f}, "
          f"{result.supersteps} supersteps")

    # 3. Betweenness centrality — message-driven; start traversals from a
    #    subset of roots (the paper's methodology) and extrapolate.
    roots = range(25)
    job = JobSpec(
        program=BCProgram(),
        graph=graph,
        num_workers=4,
        initially_active=False,
        initial_messages=bc_messages.start_messages(roots),
    )
    result = run_job(job)
    scores = result.values_array()
    top = np.argsort(scores)[-5:][::-1]
    print(f"\nBetweenness centrality ({len(list(roots))} roots):")
    for v in top:
        print(f"  vertex {v:>5d}  score {scores[v]:.1f}")
    print(f"  simulated time {result.total_time:.1f}s, "
          f"peak worker memory {result.trace.peak_memory / 1e6:.2f} MB")

    # 4. The engine's trace powers all of the paper's figures.
    msgs = result.trace.series_messages()
    print(f"\nmessages per superstep (triangle waveform): "
          f"peak {msgs.max():,} at step {int(msgs.argmax())} of {len(msgs)}")


if __name__ == "__main__":
    main()
