#!/usr/bin/env python
"""Partitioning under BSP barriers — reproduces the paper's §VII analysis.

Runs betweenness centrality over two structurally different graphs with
three partitioning strategies and shows why a low edge cut does not always
translate into lower runtime: under bulk-synchronous execution the slowest
worker sets each superstep's duration, so per-superstep load *balance*
matters as much as total communication.

Run:  python examples/partitioning_study.py
"""

import numpy as np

from repro.analysis import RunConfig, paper_partitioners, run_traversal, tables
from repro.cloud.costmodel import SCALED_PERF_MODEL
from repro.graph import datasets
from repro.partition import evaluate
from repro.scheduling import StaticSizer


def study(graph, roots):
    rows = []
    times = {}
    for name, partitioner in paper_partitioners().items():
        partition = partitioner.partition(graph, 8)
        quality = evaluate(graph, partition, name)
        cfg = RunConfig(
            num_workers=8, partitioner=partitioner, perf_model=SCALED_PERF_MODEL
        ).with_memory(1 << 62)
        run = run_traversal(graph, cfg, roots, kind="bc", sizer=StaticSizer(10))
        trace = run.result.trace
        msgs = trace.series_messages()
        peak_steps = [s for s in trace if s.total_messages > 0.25 * msgs.max()]
        imbalance = float(np.mean([s.message_imbalance for s in peak_steps]))
        times[name] = run.total_time
        rows.append([
            name,
            f"{quality.remote_fraction:.0%}",
            f"{run.total_time:.1f}s",
            f"{trace.utilization():.0%}",
            f"{imbalance:.2f}",
        ])
    for row in rows:
        row.append(f"{times[row[0]] / times['Hash']:.2f}")
    return rows


def main() -> None:
    for key, nroots in (("WG", 30), ("CP", 25)):
        graph = datasets.load(key, scale=0.3)
        print(f"\n=== {graph} ===")
        rows = study(graph, range(nroots))
        print(tables.table(
            ["strategy", "remote edges", "BC time", "utilization",
             "peak-step imbalance (max/mean)", "vs Hash"],
            rows,
        ))

    print(
        "\nTakeaway (the paper's §VII): on the web graph the low edge cut"
        "\nwins; on the community-chain citation graph METIS's partitions"
        "\nalign with communities, the BFS wave concentrates in one worker"
        "\nat a time, and the barrier turns that skew into lost time —"
        "\nhashing's even spread becomes competitive despite ~88% remote"
        "\nedges."
    )


if __name__ == "__main__":
    main()
