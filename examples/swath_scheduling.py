#!/usr/bin/env python
"""Swath scheduling in action — the paper's §IV heuristics end to end.

Scenario: a cloud tenant must run betweenness centrality on a web graph,
but the classic Pregel approach (start every traversal at once) overflows
worker memory and thrashes virtual memory.  This example shows the
escalation path the paper proposes:

1. baseline — the largest single swath that completes (spills, slow);
2. sampling sizer — probe swaths, extrapolate, commit to a static size;
3. adaptive sizer + dynamic initiation — fully automated, overlapping
   swaths that hug the memory target.

Run:  python examples/swath_scheduling.py
"""

from repro.analysis import bc_scenario, run_traversal, tables
from repro.scheduling import (
    AdaptiveSizer,
    DynamicPeakDetect,
    SamplingSizer,
    SequentialInitiation,
    StaticSizer,
)


def main() -> None:
    # A calibrated scenario: worker memory chosen so the paper-baseline
    # swath of 40 roots overflows physical memory by ~35%.
    sc = bc_scenario("WG", scale=0.25)
    roots = sc.roots[: sc.base_swath]
    cfg = sc.config()
    print(f"graph: {sc.graph}")
    print(f"worker memory: {sc.capacity_bytes / 1e6:.2f} MB physical, "
          f"{sc.target_bytes / 1e6:.2f} MB heuristic target\n")

    configs = [
        ("baseline (one big swath)", StaticSizer(sc.base_swath), SequentialInitiation()),
        ("sampling sizer", SamplingSizer(sc.target_bytes), SequentialInitiation()),
        ("adaptive sizer", AdaptiveSizer(sc.target_bytes), SequentialInitiation()),
        ("adaptive + dynamic initiation", AdaptiveSizer(sc.target_bytes), DynamicPeakDetect()),
    ]

    rows = []
    base_time = None
    for name, sizer, initiation in configs:
        run = run_traversal(
            sc.graph, cfg, roots, kind="bc", sizer=sizer, initiation=initiation
        )
        t = run.total_time
        if base_time is None:
            base_time = t
        trace = run.result.trace
        rows.append([
            name,
            f"{t:.1f}s",
            f"{base_time / t:.2f}x",
            run.num_swaths,
            run.result.supersteps,
            f"{trace.peak_memory / sc.capacity_bytes:.2f}",
            "yes" if trace.peak_memory > sc.capacity_bytes else "no",
        ])
        # Show what the controller actually scheduled.
        sizes = [e.size for e in run.controller.events]
        print(f"{name}: swath sizes {sizes}")

    print()
    print(tables.table(
        ["configuration", "sim. time", "speedup", "swaths", "supersteps",
         "peak mem / physical", "spilled?"],
        rows,
    ))
    print("\nThe baseline pays the virtual-memory penalty at its traversal "
          "peak; the heuristics keep buffered messages inside physical "
          "memory and (with dynamic initiation) overlap swath tails with "
          "the next swath's ramp-up.")


if __name__ == "__main__":
    main()
