#!/usr/bin/env python
"""Writing your own vertex program — the library-user tutorial.

Implements "degrees of Kevin Bacon" from scratch: given a set of celebrity
vertices, every vertex computes its distance to the *nearest* celebrity and
which celebrity that is, plus a global histogram via aggregators.  Shows
the full API surface a program author touches:

* ``init_state`` / ``compute`` / ``vote_to_halt`` — the Pregel core;
* a ``MinCombiner`` folding concurrent relaxations;
* an aggregator + ``master_compute`` that stops the job once 95% of
  vertices are within a target distance (no fixed iteration count);
* resource hooks (``payload_nbytes``/``state_nbytes``) so the simulated
  cloud accounts your program's memory honestly.

Run:  python examples/custom_program.py
"""

import math

import numpy as np

from repro.bsp import (
    JobSpec,
    MinCombiner,
    SumAggregator,
    VertexProgram,
    run_job,
)
from repro.graph import datasets


class NearestCelebrity(VertexProgram):
    """Multi-source BFS tracking (distance, celebrity) per vertex."""

    combiner = MinCombiner()  # payloads are (distance, celebrity) tuples

    def __init__(self, celebrities, coverage_target=0.95):
        self.celebrities = set(int(c) for c in celebrities)
        self.coverage_target = coverage_target

    def aggregators(self):
        return {"reached": SumAggregator()}

    def init_state(self, vertex_id, graph):
        self._n = graph.num_vertices
        return (math.inf, -1)  # (distance to nearest celebrity, which one)

    def state_nbytes(self, state):
        return 16

    def payload_nbytes(self, payload):
        return 16

    def compute(self, ctx, state, messages):
        best = min(messages) if messages else (math.inf, -1)
        if ctx.superstep == 0 and ctx.vertex_id in self.celebrities:
            best = (0, ctx.vertex_id)
        if best < state:
            state = best
            ctx.aggregate("reached", 1)
            dist, celeb = state
            ctx.send_to_neighbors((dist + 1, celeb))
        ctx.vote_to_halt()
        return state

    def master_compute(self, master):
        # Stop early once enough of the graph knows its nearest celebrity.
        if not hasattr(self, "_covered"):
            self._covered = 0
        self._covered += master.aggregated("reached")
        if self._covered >= self.coverage_target * self._n:
            master.halt_job()


def main() -> None:
    graph = datasets.load("SD", scale=0.5)  # the social graph analogue
    # The three highest-degree vertices play the celebrities.
    degrees = graph.out_degrees()
    celebrities = np.argsort(degrees)[-3:]
    print(f"graph: {graph}; celebrities: {celebrities.tolist()}")

    program = NearestCelebrity(celebrities)
    result = run_job(JobSpec(program=program, graph=graph, num_workers=4))

    dists = np.array([
        result.values[v][0] for v in range(graph.num_vertices)
    ])
    finite = dists[np.isfinite(dists)]
    print(f"\ncompleted in {result.supersteps} supersteps "
          f"({result.total_time:.1f} simulated seconds, "
          f"${result.total_cost:.4f})")
    print(f"coverage: {len(finite) / graph.num_vertices:.0%} of vertices")
    print("degrees-of-separation histogram:")
    for d in range(int(finite.max()) + 1):
        count = int((finite == d).sum())
        print(f"  {d}: {'#' * (count // 5)} {count}")
    mean_sep = finite.mean()
    print(f"\nmean separation {mean_sep:.2f} — the 'six degrees' small-world "
          f"signature the paper's §IV analysis leans on")


if __name__ == "__main__":
    main()
