#!/usr/bin/env python
"""Checkpointing and failure recovery — the Pregel extension in practice.

Public-cloud VMs get preempted and the paper observed the Azure fabric
restarting unresponsive workers.  This example runs PageRank with periodic
checkpoints to (simulated) blob storage, injects a worker failure mid-job,
and shows the coordinated rollback producing bit-identical results at a
quantified time/cost overhead.

Run:  python examples/fault_tolerance.py
"""

from dataclasses import replace

import numpy as np

from repro.algorithms import PageRankProgram
from repro.bsp import JobSpec, run_job
from repro.cloud.costmodel import SCALED_PERF_MODEL
from repro.graph import datasets


def main() -> None:
    graph = datasets.load("SD", scale=0.5)
    print(f"graph: {graph}\n")

    # Scaled cost regime (see DESIGN.md): supersteps cost whole simulated
    # seconds, so replay-vs-checkpoint trade-offs are visible; the fabric
    # restart itself is quick relative to the job.
    perf = replace(SCALED_PERF_MODEL, restart_time=5.0, checkpoint_bandwidth=2e6)
    base_spec = dict(
        program=PageRankProgram(iterations=30), graph=graph, num_workers=4,
        perf_model=perf,
    )

    plain = run_job(JobSpec(**base_spec))
    print(f"no checkpointing:       {plain.total_time:7.1f}s  "
          f"${plain.total_cost:.4f}")

    ckpt = run_job(JobSpec(**base_spec, checkpoint_interval=5))
    print(f"checkpoint every 5:     {ckpt.total_time:7.1f}s  "
          f"${ckpt.total_cost:.4f}  "
          f"(+{ckpt.total_time / plain.total_time - 1:.1%} time)")

    failed = run_job(
        JobSpec(**base_spec, checkpoint_interval=5, failure_schedule={17: 2})
    )
    ev = failed.recoveries[0]
    print(f"worker 2 dies at step {ev.failed_superstep}: "
          f"{failed.total_time:7.1f}s  ${failed.total_cost:.4f}  "
          f"(rolled back to superstep {ev.resumed_from}, "
          f"recovery {ev.recovery_seconds:.0f}s)")

    assert np.allclose(plain.values_array(), ckpt.values_array())
    assert np.allclose(plain.values_array(), failed.values_array())
    print("\nall three runs produce identical PageRank vectors — recovery "
          "replays deterministically from the last checkpoint")

    # Sweep the checkpoint interval: the classic recovery-time vs overhead
    # trade-off, priced in simulated dollars.
    print("\ncheckpoint-interval trade-off (one failure at superstep 17):")
    print(f"{'interval':>9s} {'time':>9s} {'cost':>9s}")
    for interval in (2, 5, 10, 15):
        res = run_job(
            JobSpec(**base_spec, checkpoint_interval=interval,
                    failure_schedule={17: 2})
        )
        print(f"{interval:>9d} {res.total_time:>8.1f}s ${res.total_cost:>7.4f}")
    print("\nshort intervals pay steady checkpoint I/O; long intervals pay "
          "more recomputation after the failure")


if __name__ == "__main__":
    main()
