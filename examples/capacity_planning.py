#!/usr/bin/env python
"""Cost-performance capacity planning for an eScience tenant.

The paper's closing pitch: the evaluation "offers help to eScience users to
make framework selection and cost-performance-scalability trade-offs".
This example is that user's workflow: given a betweenness-centrality job
and a pay-as-you-go budget, sweep the worker count, apply the partitioning
advisor and the swath heuristics, and print the cost/time frontier —
including the paper's headline option of *fewer workers + better
heuristics* beating naive over-provisioning.

Run:  python examples/capacity_planning.py
"""

from repro.analysis import bc_scenario, run_traversal, tables
from repro.partition import PartitioningAdvisor
from repro.scheduling import (
    AdaptiveSizer,
    DynamicPeakDetect,
    SequentialInitiation,
    StaticSizer,
)


def main() -> None:
    sc = bc_scenario("WG", scale=0.25)
    roots = sc.roots[: sc.base_swath]
    print(f"job: betweenness centrality over {len(roots)} roots on {sc.graph}")

    # Step 1: should this tenant pay for a partitioning pass at all?
    advice = PartitioningAdvisor(seed=0).advise(sc.graph, 8)
    print(f"\npartitioning advisor: {advice.summary()}\n")

    # Step 2: sweep fleet size x scheduling sophistication.
    rows = []
    frontier = []
    for workers in (2, 4, 8, 12):
        for label, sizer_fn, initiation_fn in (
            ("naive (one swath)", lambda: StaticSizer(sc.base_swath),
             SequentialInitiation),
            ("heuristics on", lambda: AdaptiveSizer(sc.target_bytes),
             DynamicPeakDetect),
        ):
            run = run_traversal(
                sc.graph, sc.config(num_workers=workers), roots, kind="bc",
                sizer=sizer_fn(), initiation=initiation_fn(),
            )
            time_s = run.total_time
            cost = run.result.total_cost
            spilled = run.result.trace.peak_memory > sc.capacity_bytes
            rows.append([
                workers, label, f"{time_s:.1f}s", f"${cost:.4f}",
                "yes" if spilled else "no",
            ])
            frontier.append((time_s, cost, workers, label))

    print(tables.table(
        ["workers", "scheduling", "sim. time", "cost", "spills?"], rows,
    ))

    # Step 3: the Pareto frontier (no config both faster and cheaper).
    pareto = [
        (t, c, w, l)
        for (t, c, w, l) in frontier
        if not any(t2 < t and c2 < c for (t2, c2, _, _) in frontier)
    ]
    print("\nPareto-efficient configurations:")
    for t, c, w, label in sorted(pareto):
        print(f"  {w:>2d} workers, {label:<18s} {t:7.1f}s  ${c:.4f}")

    naive8 = next(t for (t, c, w, l) in frontier
                  if w == 8 and l.startswith("naive"))
    smart4 = next((t, c) for (t, c, w, l) in frontier
                  if w == 4 and l == "heuristics on")
    print(
        f"\nThe paper's §VI-B headline, priced: 4 workers with heuristics "
        f"run in {smart4[0]:.1f}s for ${smart4[1]:.4f} — faster than the "
        f"naive 8-worker deployment's {naive8:.1f}s at half the fleet."
    )


if __name__ == "__main__":
    main()
