#!/usr/bin/env python
"""Elastic scaling analysis — the paper's §VIII methodology end to end.

Runs the same BC job at 4 and 8 workers (identical superstep sequences),
derives the per-superstep speedup profile, and evaluates scaling policies:
fixed fleets, the paper's 50%-active-vertices dynamic threshold, and the
per-superstep oracle.  Also prices everything through the pay-as-you-go
billing model.

Run:  python examples/elastic_scaling.py
"""

from repro.analysis import bc_scenario, run_traversal, tables
from repro.elastic import (
    ActiveFractionPolicy,
    AlignedTraces,
    ElasticityModel,
    FixedWorkers,
    OraclePolicy,
    normalize_outcomes,
)
from repro.scheduling import SequentialInitiation, StaticSizer


def main() -> None:
    sc = bc_scenario("WG", scale=0.25)
    print(f"graph: {sc.graph}; fixed swath of {sc.elastic_swath} roots "
          f"(heuristics off, as in the paper's §VIII)\n")

    runs = {}
    for workers in (4, 8):
        runs[workers] = run_traversal(
            sc.graph, sc.config(num_workers=workers),
            sc.roots[: sc.base_swath], kind="bc",
            sizer=StaticSizer(sc.base_swath // 2),
            initiation=SequentialInitiation(),
        )
        print(f"measured {workers}-worker run: "
              f"{runs[workers].total_time:.1f}s over "
              f"{runs[workers].result.supersteps} supersteps")

    traces = AlignedTraces.from_traces(
        runs[4].result.trace, runs[8].result.trace, 4, 8, sc.graph.num_vertices
    )
    model = ElasticityModel(traces)

    speedup = model.speedup_series()
    active = model.active_series().astype(float)
    print(f"\nper-superstep profile ({len(speedup)} steps):")
    print(f"  active vertices  {tables.sparkline(active, width=56)}")
    print(f"  8v4 speedup      {tables.sparkline(speedup, width=56)}")
    print(f"  speedup range {speedup.min():.2f}x .. {speedup.max():.2f}x "
          f"({int((speedup > 2).sum())} superlinear, "
          f"{int((speedup < 1).sum())} below 1x)")

    policies = [
        FixedWorkers(4), FixedWorkers(8),
        ActiveFractionPolicy(0.5), OraclePolicy(),
    ]
    rows = normalize_outcomes(model.evaluate_all(policies), "Fixed-4")
    print("\nprojected runtime and cost (normalized to the fixed 4-worker run):")
    print(tables.table(
        ["policy", "norm. time", "norm. cost", "scale events"],
        [[r.label, f"{r.norm_time:.3f}x", f"{r.norm_cost:.3f}x", r.scale_events]
         for r in rows],
    ))
    print(
        "\nScaling out only for the high-activity supersteps captures the"
        "\nsuperlinear spikes (doubled aggregate memory at the peaks) while"
        "\navoiding 8-worker barrier overhead in the drained tail — near"
        "\nfixed-8 runtime at near fixed-4 cost."
    )


if __name__ == "__main__":
    main()
