"""Extension bench — timeline recording overhead and detector precision.

Two claims behind ``repro perf`` worth guarding numerically:

* attaching a :class:`repro.obs.RunTimeline` must be cheap (it appends
  one dataclass row per worker per superstep on quantities the engine
  already computed), and leaving it detached must cost nothing but an
  ``is None`` check per site;
* the straggler detector must attribute injected jitter to the injected
  worker — precision on a known-cause workload.

Numbers land in ``BENCH_perf.json`` for cross-revision comparison.
"""

import dataclasses
import json
import time

from repro.algorithms import PageRankProgram
from repro.bsp import JobSpec, run_job
from repro.cloud.costmodel import DEFAULT_PERF_MODEL
from repro.graph import generators as gen
from repro.obs import DiagnosticMonitor, RunTimeline
from repro.obs.diagnose import dominant_cause

from helpers import banner, run_once

#: alternate off/on runs, keep the fastest of each (interpreter noise)
REPEATS = 5
ITERATIONS = 20


def _job(graph, timeline=None, model=DEFAULT_PERF_MODEL, **kw):
    return JobSpec(
        program=PageRankProgram(ITERATIONS), graph=graph, num_workers=4,
        perf_model=model, timeline=timeline, **kw,
    )


def measure_overhead(graph):
    off, on = [], []
    for _ in range(REPEATS):
        t0 = time.perf_counter()
        run_job(_job(graph))
        off.append(time.perf_counter() - t0)
        t0 = time.perf_counter()
        run_job(_job(graph, timeline=RunTimeline()))
        on.append(time.perf_counter() - t0)
    return min(off), min(on)


def measure_precision(graph, seeds=range(6), target=2):
    """Fraction of flags landing on the jittered worker with the jitter
    cause, over several jitter seeds."""
    hits = total = 0
    for seed in seeds:
        model = dataclasses.replace(
            DEFAULT_PERF_MODEL, jitter=0.6, jitter_seed=seed,
            jitter_workers=(target,),
        )
        monitor = DiagnosticMonitor()
        run_job(_job(graph, model=model, observers=[monitor]))
        total += len(monitor.flags)
        hits += sum(
            f.worker == target and f.cause == "jitter"
            for f in monitor.flags
        )
        assert monitor.flags, f"seed {seed}: 0.6 jitter must flag"
        assert dominant_cause(monitor.flags)[0] == "jitter"
    return hits / total if total else 0.0


def test_timeline_overhead_and_detector_precision(benchmark):
    graph = gen.watts_strogatz(2000, 8, 0.1, seed=1)

    def run_all():
        return measure_overhead(graph), measure_precision(graph)

    (off_s, on_s), precision = run_once(benchmark, run_all)
    overhead = on_s / off_s - 1.0

    banner("repro perf: timeline overhead + straggler detector precision")
    print(f"{'timeline off':<18} {off_s * 1e3:>10.1f} ms")
    print(f"{'timeline on':<18} {on_s * 1e3:>10.1f} ms  ({overhead:+.1%})")
    print(f"{'precision':<18} {precision:>10.1%}")

    # Recording rides quantities the engine already computed; anything
    # past a few percent means a hot path grew work.  Generous bound so
    # shared-runner noise doesn't flap CI.
    assert overhead < 0.15, f"timeline recording cost {overhead:.1%}"
    # Injected jitter on a balanced graph must dominate the flags.
    assert precision >= 0.8, f"detector precision {precision:.1%}"

    payload = {
        "workload": {
            "graph": "watts_strogatz(2000, 8, 0.1)",
            "iterations": ITERATIONS,
            "workers": 4,
            "repeats": REPEATS,
        },
        "timeline_off_seconds": off_s,
        "timeline_on_seconds": on_s,
        "overhead_fraction": overhead,
        "detector_precision": precision,
    }
    with open("BENCH_perf.json", "w") as f:
        json.dump(payload, f, indent=2)
    print("wrote BENCH_perf.json")
