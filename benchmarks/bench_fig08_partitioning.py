"""Figure 8 — relative runtime under METIS / Streaming vs Hash partitioning.

Paper (8 workers, PageRank/BC/APSP on WG and CP; remote-edge fractions
Hash/METIS/Streaming = 87%/18%/35% on WG, 86%/17%/65% on CP):

* WG improves ~42-50% with METIS and 24-35% with Streaming — partitioning
  pays off;
* CP shows no marked improvement for the traversal algorithms despite the
  similar edge-cut gap — superstep load imbalance cancels it — and hashing
  is *faster* than METIS for APSP on CP;
* §VII also reports a best case of ~5x for METIS on WG BC with the swath
  heuristics turned on (vs hashing, same heuristics).
"""

from repro.analysis import (
    RunConfig,
    paper_partitioners,
    run_pagerank,
    run_traversal,
    tables,
)
from repro.cloud.costmodel import SCALED_PERF_MODEL
from repro.partition import remote_edge_fraction
from repro.scheduling import AdaptiveSizer, DynamicPeakDetect, StaticSizer

from helpers import banner, run_once

ROOTS = {"WG": 30, "CP": 25}


def run_fig8(scenarios):
    times = {}
    remote = {}
    for ds, sc in scenarios.items():
        for name, part in paper_partitioners().items():
            cfg = RunConfig(
                num_workers=8, partitioner=part, perf_model=SCALED_PERF_MODEL
            ).with_memory(1 << 62)
            p = part.partition(sc.graph, 8)
            remote[(ds, name)] = remote_edge_fraction(sc.graph, p)
            times[(ds, "PageRank", name)] = run_pagerank(
                sc.graph, cfg, iterations=30
            ).total_time
            for kind, label in (("bc", "BC"), ("apsp", "APSP")):
                times[(ds, label, name)] = run_traversal(
                    sc.graph, cfg, range(ROOTS[ds]), kind=kind,
                    sizer=StaticSizer(10),
                ).total_time
    return times, remote


PAPER_REMOTE = {
    ("WG", "Hash"): 0.87, ("WG", "METIS"): 0.18, ("WG", "Streaming"): 0.35,
    ("CP", "Hash"): 0.86, ("CP", "METIS"): 0.17, ("CP", "Streaming"): 0.65,
}


def test_fig08_partitioning_relative_time(benchmark, wg_scenario, cp_scenario):
    times, remote = run_once(
        benchmark, run_fig8, {"WG": wg_scenario, "CP": cp_scenario}
    )

    banner("Figure 8: runtime normalized to Hash partitioning (8 workers)")
    rows = []
    for ds in ("WG", "CP"):
        for app in ("PageRank", "BC", "APSP"):
            hash_t = times[(ds, app, "Hash")]
            rows.append(
                [
                    f"{app} ({ds})",
                    "1.00",
                    f"{times[(ds, app, 'METIS')] / hash_t:.2f}",
                    f"{times[(ds, app, 'Streaming')] / hash_t:.2f}",
                ]
            )
    print(tables.table(["app (graph)", "Hash", "METIS", "Streaming"], rows))

    print()
    rows = [
        [ds, name, f"{PAPER_REMOTE[(ds, name)]:.0%}", f"{remote[(ds, name)]:.0%}"]
        for ds in ("WG", "CP")
        for name in ("Hash", "METIS", "Streaming")
    ]
    print(
        tables.table(
            ["graph", "strategy", "remote edges (paper)", "remote edges (ours)"],
            rows,
        )
    )
    print("\nPaper shape: WG gains 42-50% (METIS) / 24-35% (Streaming); CP's "
          "superstep load imbalance cancels the benefit — Hash beats METIS "
          "for APSP on CP.")

    # WG: clear improvement from better partitioning.
    for app in ("PageRank", "BC", "APSP"):
        ratio = times[("WG", app, "METIS")] / times[("WG", app, "Hash")]
        assert ratio < 0.85, f"WG {app} METIS ratio {ratio:.2f}"
    # CP: traversal benefit collapses; APSP prefers hashing outright.
    assert times[("CP", "BC", "METIS")] / times[("CP", "BC", "Hash")] > 0.9
    assert times[("CP", "APSP", "METIS")] > times[("CP", "APSP", "Hash")]
    # Remote-edge ordering matches the paper on both graphs.
    for ds in ("WG", "CP"):
        assert (
            remote[(ds, "METIS")]
            < remote[(ds, "Streaming")]
            < remote[(ds, "Hash")]
        )


def run_with_heuristics(sc):
    """§VII text: METIS's best case ~5x over hashing with heuristics on."""
    out = {}
    for name, part in paper_partitioners().items():
        cfg = RunConfig(
            num_workers=8, partitioner=part, perf_model=SCALED_PERF_MODEL
        ).with_memory(sc.capacity_bytes)
        out[name] = run_traversal(
            sc.graph, cfg, sc.roots[: sc.base_swath], kind="bc",
            sizer=AdaptiveSizer(sc.target_bytes), initiation=DynamicPeakDetect(),
        ).total_time
    return out


def test_fig08_with_heuristics_on(benchmark, wg_scenario):
    times = run_once(benchmark, run_with_heuristics, wg_scenario)
    ratio = times["METIS"] / times["Hash"]
    banner("§VII: METIS vs Hash on WG BC with swath heuristics ON")
    print(f"METIS/Hash = {ratio:.2f} (paper: best case ~0.2, i.e. 5x)")
    assert ratio < 0.8
