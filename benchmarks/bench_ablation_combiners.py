"""Ablation — Pregel combiners (the extension the paper omits, §III).

The paper leaves combiners out of its evaluation ("the impact of these
advanced features is algorithm dependent").  We quantify that statement:

* PageRank (many messages converge on hub vertices) benefits directly —
  sender-side SumCombiner folds rank mass per destination;
* BC cannot use a combiner at all (its per-root (fwd/succ/bwd) messages are
  not commutatively foldable), illustrating the "some algorithms unable to
  exploit them fully" caveat.
"""

from repro.analysis import RunConfig, run_pagerank, tables
from repro.cloud.costmodel import SCALED_PERF_MODEL
from repro.graph import datasets

from helpers import banner, fmt_seconds, run_once


def run_combiner_ablation():
    g = datasets.load("LJ", scale=0.3)  # supernodes: best case for combining
    cfg = RunConfig(num_workers=8, perf_model=SCALED_PERF_MODEL).with_memory(1 << 62)
    out = {}
    for label, use in (("with combiner", True), ("without combiner", False)):
        res = run_pagerank(g, cfg, iterations=30, use_combiner=use)
        out[label] = {
            "time": res.total_time,
            "messages": res.trace.total_messages,
            "remote": sum(s.remote_messages for s in res.trace),
        }
    return out


def test_ablation_combiners(benchmark):
    r = run_once(benchmark, run_combiner_ablation)

    banner("Ablation: PageRank with vs without a SumCombiner (LJ analogue)")
    rows = [
        [label, fmt_seconds(d["time"]), f"{d['messages']:,}", f"{d['remote']:,}"]
        for label, d in r.items()
    ]
    print(tables.table(["config", "sim. time", "messages", "remote messages"], rows))
    w, wo = r["with combiner"], r["without combiner"]
    print(
        f"\ncombining saves {1 - w['messages'] / wo['messages']:.0%} of messages "
        f"and {1 - w['time'] / wo['time']:.0%} of runtime on this graph"
    )

    assert w["messages"] < 0.9 * wo["messages"]
    assert w["time"] < wo["time"]
