"""Extension bench — analyzer throughput of ``repro check``.

The static pass (rules RPC001-RPC014 plus the cost-model profiler) runs
in CI on every push and is meant to be cheap enough to run on save in an
editor loop.  This bench measures it honestly: every ``VertexProgram``
source in the repo (bundled algorithms + examples) through the full
detailed pipeline — findings, profiles, per-file timing — and reports
files/sec and programs profiled.  The numbers land in
``BENCH_check.json`` so analyzer regressions show up across revisions.
"""

import json
import time
from pathlib import Path

from repro.check import analyze_paths_detailed

from helpers import banner, run_once

REPO_ROOT = Path(__file__).resolve().parents[1]
TARGETS = [
    REPO_ROOT / "src" / "repro" / "algorithms",
    REPO_ROOT / "examples",
]

#: Re-analyze the corpus this many times so sub-millisecond per-file cost
#: is measured above timer noise.
REPEATS = 20


def test_check_throughput(benchmark):
    def run_all():
        t0 = time.perf_counter()
        for _ in range(REPEATS):
            results = analyze_paths_detailed(TARGETS, profile=True)
        elapsed = time.perf_counter() - t0
        return results, elapsed

    results, elapsed = run_once(benchmark, run_all)

    files = len(results)
    profiles = sum(len(r.profiles or ()) for r in results)
    findings = sum(len(r.findings) for r in results)
    files_per_sec = files * REPEATS / elapsed
    per_file_ms = sorted(r.elapsed_ms for r in results)

    banner(
        f"repro check throughput: {files} files x{REPEATS}, "
        f"{profiles} programs profiled"
    )
    print(f"{'files/sec':<16} {files_per_sec:>10.1f}")
    print(f"{'slowest file ms':<16} {per_file_ms[-1]:>10.2f}")
    print(f"{'findings':<16} {findings:>10d}")

    assert files > 0 and profiles > 0
    # The repo's own programs stay clean (warnings suppressed via noqa).
    assert findings == 0

    payload = {
        "workload": {
            "targets": [str(t.relative_to(REPO_ROOT)) for t in TARGETS],
            "files": files,
            "repeats": REPEATS,
            "programs_profiled": profiles,
        },
        "files_per_second": files_per_sec,
        "wall_clock_seconds": elapsed,
        "slowest_file_ms": per_file_ms[-1],
    }
    with open("BENCH_check.json", "w") as f:
        json.dump(payload, f, indent=2)
    print("wrote BENCH_check.json")
