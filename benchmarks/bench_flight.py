"""Telemetry-plane bench — flight recorder overhead and postmortem latency.

The flight recorder is *always on* for CLI runs, so its cost is the one
observability number that matters most: the ring must stay within a few
percent of an unobserved run (the events it records are O(workers) per
superstep on quantities the engine already computed).  The postmortem
dump happens once, at crash time, but it sits between a failure and the
traceback the operator is waiting for — its latency is worth a number
too.

Numbers land in ``BENCH_flight.json`` for cross-revision comparison.
"""

import json
import time

from repro.algorithms import PageRankProgram
from repro.bsp import JobSpec, run_job
from repro.bsp.api import VertexProgram
from repro.graph import generators as gen
from repro.obs import FlightRecorder, PostmortemWriter
from repro.obs.postmortem import build_bundle

from helpers import banner, run_once

#: alternate off/on runs, keep the fastest of each (interpreter noise)
REPEATS = 7
ITERATIONS = 20
#: acceptance bound: the always-on ring must cost <= 2% wall-clock
MAX_OVERHEAD = 0.02


def _job(graph, flight=None, **kw):
    return JobSpec(
        program=PageRankProgram(ITERATIONS), graph=graph, num_workers=4,
        **({} if flight is None else {"flight": flight}), **kw,
    )


def measure_overhead(graph):
    off, on = [], []
    for _ in range(REPEATS):
        t0 = time.perf_counter()
        run_job(_job(graph))
        off.append(time.perf_counter() - t0)
        t0 = time.perf_counter()
        run_job(_job(graph, flight=FlightRecorder()))
        on.append(time.perf_counter() - t0)
    return min(off), min(on)


class _Explode(VertexProgram):
    def __init__(self, at: int) -> None:
        self.at = at

    def init_state(self, vertex_id, graph):
        return 0.0

    def compute(self, ctx, state, messages):
        if ctx.superstep == self.at:
            raise ValueError("bench crash")
        for dst in ctx.out_neighbors:
            ctx.send(dst, 1.0)
        return state


def measure_postmortem(graph):
    """Seconds from crash to bundle on disk (best of REPEATS)."""
    import tempfile
    from pathlib import Path

    from repro.bsp.engine import BSPEngine

    samples = []
    with tempfile.TemporaryDirectory() as d:
        for i in range(REPEATS):
            pm = PostmortemWriter(Path(d) / f"crash{i}")
            job = JobSpec(
                program=_Explode(10), graph=graph, num_workers=4,
                flight=FlightRecorder(), postmortem=pm,
            )
            engine = BSPEngine(job)
            error = None
            try:
                engine.run()
            except ValueError as exc:
                error = exc
            assert pm.written is not None
            # re-capture from the crashed engine to time capture+write alone
            t0 = time.perf_counter()
            bundle = build_bundle(engine, error)
            (Path(d) / f"re{i}.json").write_text(json.dumps(bundle))
            samples.append(time.perf_counter() - t0)
    return min(samples)


def test_flight_overhead_and_postmortem_latency(benchmark):
    graph = gen.watts_strogatz(2000, 8, 0.1, seed=1)

    def run_all():
        return measure_overhead(graph), measure_postmortem(graph)

    (off_s, on_s), dump_s = run_once(benchmark, run_all)
    overhead = on_s / off_s - 1.0

    banner("flight recorder overhead + postmortem dump latency")
    print(f"{'flight off':<18} {off_s * 1e3:>10.1f} ms")
    print(f"{'flight on':<18} {on_s * 1e3:>10.1f} ms  ({overhead:+.1%})")
    print(f"{'postmortem dump':<18} {dump_s * 1e3:>10.2f} ms")

    # The ring is a deque append per event on already-computed numbers;
    # blowing the bound means a hot path started paying for telemetry.
    assert overhead < MAX_OVERHEAD, (
        f"flight recorder cost {overhead:.1%} (bound {MAX_OVERHEAD:.0%})"
    )

    payload = {
        "workload": {
            "graph": "watts_strogatz(2000, 8, 0.1)",
            "iterations": ITERATIONS,
            "workers": 4,
            "repeats": REPEATS,
        },
        "flight_off_seconds": off_s,
        "flight_on_seconds": on_s,
        "overhead_fraction": overhead,
        "overhead_bound": MAX_OVERHEAD,
        "postmortem_dump_seconds": dump_s,
    }
    with open("BENCH_flight.json", "w") as f:
        json.dump(payload, f, indent=2)
    print("wrote BENCH_flight.json")
